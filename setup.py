"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e . --no-build-isolation`` (and ``python setup.py
develop``) works in offline environments whose setuptools predates
PEP 660 editable wheels.
"""

from setuptools import setup

setup()
