"""Plain-text tables, series, and the per-layer report.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent.  The per-layer
report aggregates a traced profile by its root span (the layer/module
each kernel ran under) — the per-layer view Figure 4 can only hint at.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.gpu.timeline import STAGES, Profile


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation Figure 11 quotes)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    The single definition shared by the batch sharding path
    (:class:`~repro.profiling.parallel.ShardResult`) and the serving
    layer (:class:`~repro.serve.report.ServeReport`) so both quote the
    same p50/p99.  Nearest-rank (no interpolation) keeps results exactly
    reproducible across platforms; an empty sample yields 0.0.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    vals = sorted(values)
    if not vals:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(vals)))
    return float(vals[rank - 1])


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    """One labeled figure series as ``x=y`` pairs."""
    pairs = ", ".join(f"{x}={_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def layer_table(profile: Profile) -> list:
    """Aggregate records by layer (root span), preserving first-seen order.

    Returns one dict per layer: ``layer``, total ``time``, ``share`` of
    the profile, per-stage seconds, ``kernels`` and ``launches``.
    Records logged outside any span fall under ``(untraced)``.
    """
    total = profile.total_time
    rows: dict = {}
    for rec in profile.records:
        layer = rec.layer or "(untraced)"
        row = rows.get(layer)
        if row is None:
            row = rows[layer] = {
                "layer": layer,
                "time": 0.0,
                "kernels": 0,
                "launches": 0,
                **{stage: 0.0 for stage in STAGES},
            }
        row["time"] += rec.time
        row[rec.stage] += rec.time
        row["kernels"] += 1
        row["launches"] += rec.launches
    out = list(rows.values())
    for row in out:
        row["share"] = 0.0 if total == 0 else row["time"] / total
    return out


def format_layer_report(
    profile: Profile, title: str = "", markdown: bool = False
) -> str:
    """Per-layer time/stage breakdown as a text (or markdown) table."""
    headers = ["layer", "time (ms)", "share"] + [f"{s} (ms)" for s in STAGES] + [
        "kernels"
    ]
    rows = [
        [
            r["layer"],
            f"{r['time'] * 1e3:.3f}",
            f"{r['share'] * 100:.1f}%",
            *(f"{r[s] * 1e3:.3f}" for s in STAGES),
            r["kernels"],
        ]
        for r in layer_table(profile)
    ]
    rows.sort(key=lambda row: -float(row[1]))
    if markdown:
        lines = []
        if title:
            lines.append(f"### {title}")
            lines.append("")
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join("---" for _ in headers) + "|")
        for r in rows:
            lines.append("| " + " | ".join(str(c) for c in r) + " |")
        lines.append("")
        lines.append(
            f"Total: {profile.total_time * 1e3:.3f} ms over "
            f"{len(profile.records)} kernels."
        )
        return "\n".join(lines)
    table = format_table(headers, rows, title=title)
    return (
        table
        + f"\ntotal {profile.total_time * 1e3:.3f} ms over "
        + f"{len(profile.records)} kernels"
    )


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
