"""Plain-text tables and series for the benchmark harness.

The benchmarks print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent.
"""

from __future__ import annotations

import math
from typing import Sequence


def geomean(values: Sequence[float]) -> float:
    """Geometric mean (the aggregation Figure 11 quotes)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width text table."""
    str_rows = [[_fmt(c) for c in r] for r in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


def format_series(name: str, xs: Sequence, ys: Sequence[float]) -> str:
    """One labeled figure series as ``x=y`` pairs."""
    pairs = ", ".join(f"{x}={_fmt(y)}" for x, y in zip(xs, ys))
    return f"{name}: {pairs}"


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)
