"""End-to-end model execution across engines and devices.

``run_model`` produces the modeled latency/FPS of one (model, input,
engine, device) combination; ``collect_workloads``/``tune_model`` run
Algorithm 5's offline strategy search for a model on a dataset sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.engine import BaseEngine, EngineConfig, ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.core.tuner import LayerWorkload, StrategyBook, tune_workloads
from repro.gpu.device import GPUSpec, RTX_2080TI
from repro.gpu.timeline import Profile
from repro.nn.modules import Module


@dataclass(frozen=True)
class BenchResult:
    """One end-to-end measurement."""

    model: str
    engine: str
    device: str
    latency: float  # modeled seconds per input
    profile: Profile

    @property
    def fps(self) -> float:
        """Frames per second of the modeled latency.

        Zero latency yields ``inf`` rather than ``0.0``: a broken run
        must never masquerade as a "0 FPS" baseline in regression math
        (a real run would then always look infinitely slower, while the
        old ``0.0`` made every comparison against it silently pass).
        """
        return float("inf") if self.latency == 0 else 1.0 / self.latency


def run_model(
    model: Module,
    inputs: Sequence[SparseTensor],
    engine: BaseEngine,
    device: GPUSpec = RTX_2080TI,
    model_name: str = "",
) -> BenchResult:
    """Average modeled latency of ``model`` over ``inputs``.

    Each input gets a fresh context (coordinate/map caches are per-input,
    as in the real systems).
    """
    if not inputs:
        raise ValueError("need at least one input")
    merged = Profile()
    total = 0.0
    for x in inputs:
        ctx = ExecutionContext(engine=engine, device=device)
        model(x, ctx)
        total += ctx.profile.total_time
        merged.extend(ctx.profile.records)
    return BenchResult(
        model=model_name or model.name,
        engine=engine.config.name,
        device=device.name,
        latency=total / len(inputs),
        profile=merged,
    )


def collect_workloads(
    model: Module,
    inputs: Sequence[SparseTensor],
    device: GPUSpec = RTX_2080TI,
) -> list[LayerWorkload]:
    """Run the model over sample inputs and collect per-layer map sizes.

    Layers are keyed by their module name; each input contributes one
    map-size sample per convolution.
    """
    from repro.core.engine import TorchSparseEngine

    engine = TorchSparseEngine()
    per_layer: dict[str, dict] = {}
    for x in inputs:
        ctx = ExecutionContext(engine=engine, device=device)
        model(x, ctx)
        for name, k, s, c_in, c_out, sizes in ctx.layer_workloads:
            entry = per_layer.setdefault(
                name,
                {"kernel_size": k, "stride": s, "c_in": c_in, "c_out": c_out,
                 "samples": []},
            )
            entry["samples"].append(sizes)
    return [
        LayerWorkload(
            name=name,
            kernel_size=e["kernel_size"],
            stride=e["stride"],
            c_in=e["c_in"],
            c_out=e["c_out"],
            samples=tuple(e["samples"]),
        )
        for name, e in per_layer.items()
    ]


def tune_model(
    model: Module,
    inputs: Sequence[SparseTensor],
    device: GPUSpec = RTX_2080TI,
    dtype=None,
    epsilons: Iterable[float] | None = None,
    thresholds: Iterable[float] | None = None,
) -> StrategyBook:
    """Offline Algorithm 5 for a whole model on a dataset sample."""
    from repro.core.tuner import DEFAULT_EPSILONS, DEFAULT_THRESHOLDS
    from repro.gpu.memory import DType

    workloads = collect_workloads(model, inputs, device)
    return tune_workloads(
        workloads,
        dtype or DType.FP16,
        device,
        epsilons=tuple(epsilons) if epsilons else DEFAULT_EPSILONS,
        thresholds=tuple(thresholds) if thresholds else DEFAULT_THRESHOLDS,
    )


def tuned_engine_config(book: StrategyBook, **overrides) -> EngineConfig:
    """TorchSparse config carrying a tuned strategy book."""
    from dataclasses import replace

    return replace(EngineConfig.torchsparse(), strategy_book=book, **overrides)
