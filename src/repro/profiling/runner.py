"""End-to-end model execution across engines and devices.

``run_model`` produces the modeled latency/FPS of one (model, input,
engine, device) combination; ``run_steady_state`` streams temporally
coherent frames through a persistent mapping cache (cold frame builds,
warm frames reuse); ``collect_workloads``/``tune_model`` run
Algorithm 5's offline strategy search for a model on a dataset sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from typing import Iterable, Sequence

from repro.core.engine import BaseEngine, EngineConfig, ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.core.tuner import LayerWorkload, StrategyBook, tune_workloads
from repro.gpu.device import GPUSpec, RTX_2080TI
from repro.gpu.timeline import Profile
from repro.mapping.cache import MappingCache
from repro.nn.modules import Module


@dataclass(frozen=True)
class BenchResult:
    """One end-to-end measurement."""

    model: str
    engine: str
    device: str
    latency: float  # modeled seconds per input
    profile: Profile

    @property
    def fps(self) -> float:
        """Frames per second of the modeled latency.

        Zero latency yields ``inf`` rather than ``0.0``: a broken run
        must never masquerade as a "0 FPS" baseline in regression math
        (a real run would then always look infinitely slower, while the
        old ``0.0`` made every comparison against it silently pass).
        """
        return float("inf") if self.latency == 0 else 1.0 / self.latency


def run_model(
    model: Module,
    inputs: Sequence[SparseTensor],
    engine: BaseEngine,
    device: GPUSpec = RTX_2080TI,
    model_name: str = "",
) -> BenchResult:
    """Average modeled latency of ``model`` over ``inputs``.

    Each input gets a fresh context (coordinate/map caches are per-input,
    as in the real systems).
    """
    if not inputs:
        raise ValueError("need at least one input")
    merged = Profile()
    total = 0.0
    for x in inputs:
        ctx = ExecutionContext(engine=engine, device=device)
        model(x, ctx)
        total += ctx.profile.total_time
        merged.extend(ctx.profile.records)
    return BenchResult(
        model=model_name or model.name,
        engine=engine.config.name,
        device=device.name,
        latency=total / len(inputs),
        profile=merged,
    )


@dataclass(frozen=True)
class SteadyStateResult:
    """One temporal-coherence stream: frame 0 cold, the rest warm.

    ``frame_latencies`` / ``frame_mapping`` are per-frame modeled
    end-to-end and mapping-stage seconds; ``cache_stats`` is the
    resident :meth:`~repro.mapping.cache.MappingCache.stats` snapshot
    after the stream.
    """

    model: str
    engine: str
    device: str
    frame_latencies: tuple
    frame_mapping: tuple
    cache_stats: dict

    @property
    def frames(self) -> int:
        return len(self.frame_latencies)

    @property
    def cold_latency(self) -> float:
        return self.frame_latencies[0]

    @property
    def warm_latency(self) -> float:
        """Mean modeled latency of the warm frames (frames 1..N-1)."""
        warm = self.frame_latencies[1:]
        return sum(warm) / len(warm)

    @property
    def cold_mapping(self) -> float:
        return self.frame_mapping[0]

    @property
    def warm_mapping(self) -> float:
        warm = self.frame_mapping[1:]
        return sum(warm) / len(warm)

    @property
    def latency_reduction(self) -> float:
        """Warm-frame end-to-end reduction vs. the cold frame."""
        if self.cold_latency == 0:
            return 0.0
        return 1.0 - self.warm_latency / self.cold_latency

    @property
    def mapping_reduction(self) -> float:
        """Warm-frame mapping-stage reduction vs. the cold frame."""
        if self.cold_mapping == 0:
            return 0.0
        return 1.0 - self.warm_mapping / self.cold_mapping

    def to_json(self) -> dict:
        return {
            "model": self.model,
            "engine": self.engine,
            "device": self.device,
            "frames": self.frames,
            "cold_latency": self.cold_latency,
            "warm_latency": self.warm_latency,
            "cold_mapping": self.cold_mapping,
            "warm_mapping": self.warm_mapping,
            "latency_reduction": self.latency_reduction,
            "mapping_reduction": self.mapping_reduction,
            "frame_latencies": list(self.frame_latencies),
            "frame_mapping": list(self.frame_mapping),
            "cache": dict(self.cache_stats),
        }


def run_steady_state(
    model: Module,
    x: SparseTensor,
    engine: BaseEngine,
    device: GPUSpec = RTX_2080TI,
    frames: int = 4,
    seed: int = 0,
    mapcache: MappingCache | None = None,
    model_name: str = "",
) -> SteadyStateResult:
    """Stream ``frames`` temporally coherent frames through one cache.

    Frame 0 is the input itself (the cold frame, building every
    mapping-stage artifact into ``mapcache``); frames 1..N-1 share the
    *exact* coordinate set with fresh seeded features — the streaming
    LiDAR regime after ego-motion compensation, where the sparsity
    pattern persists while reflectance/intensity features change.  Each
    frame still gets a fresh :class:`ExecutionContext` (as in the real
    serving path); only the content-addressed mapping cache persists.
    """
    if frames < 2:
        raise ValueError("need at least 2 frames (one cold, one warm)")
    cache = mapcache if mapcache is not None else MappingCache()
    latencies: list = []
    mapping: list = []
    for f in range(frames):
        if f == 0:
            frame = x
        else:
            rng = np.random.default_rng(seed + f)
            feats = rng.standard_normal(x.feats.shape).astype(x.feats.dtype)
            frame = x.replace_feats(feats)
        ctx = ExecutionContext(engine=engine, device=device, mapcache=cache)
        model(frame, ctx)
        latencies.append(ctx.profile.total_time)
        mapping.append(ctx.profile.stage_times().get("mapping", 0.0))
    return SteadyStateResult(
        model=model_name or model.name,
        engine=engine.config.name,
        device=device.name,
        frame_latencies=tuple(latencies),
        frame_mapping=tuple(mapping),
        cache_stats=cache.stats(),
    )


def collect_workloads(
    model: Module,
    inputs: Sequence[SparseTensor],
    device: GPUSpec = RTX_2080TI,
) -> list[LayerWorkload]:
    """Run the model over sample inputs and collect per-layer map sizes.

    Layers are keyed by their module name; each input contributes one
    map-size sample per convolution.
    """
    from repro.core.engine import TorchSparseEngine

    engine = TorchSparseEngine()
    per_layer: dict[str, dict] = {}
    for x in inputs:
        ctx = ExecutionContext(engine=engine, device=device)
        model(x, ctx)
        for name, k, s, c_in, c_out, sizes in ctx.layer_workloads:
            entry = per_layer.setdefault(
                name,
                {"kernel_size": k, "stride": s, "c_in": c_in, "c_out": c_out,
                 "samples": []},
            )
            entry["samples"].append(sizes)
    return [
        LayerWorkload(
            name=name,
            kernel_size=e["kernel_size"],
            stride=e["stride"],
            c_in=e["c_in"],
            c_out=e["c_out"],
            samples=tuple(e["samples"]),
        )
        for name, e in per_layer.items()
    ]


def tune_model(
    model: Module,
    inputs: Sequence[SparseTensor],
    device: GPUSpec = RTX_2080TI,
    dtype=None,
    epsilons: Iterable[float] | None = None,
    thresholds: Iterable[float] | None = None,
) -> StrategyBook:
    """Offline Algorithm 5 for a whole model on a dataset sample."""
    from repro.core.tuner import DEFAULT_EPSILONS, DEFAULT_THRESHOLDS
    from repro.gpu.memory import DType

    workloads = collect_workloads(model, inputs, device)
    return tune_workloads(
        workloads,
        dtype or DType.FP16,
        device,
        epsilons=tuple(epsilons) if epsilons else DEFAULT_EPSILONS,
        thresholds=tuple(thresholds) if thresholds else DEFAULT_THRESHOLDS,
    )


def tuned_engine_config(book: StrategyBook, **overrides) -> EngineConfig:
    """TorchSparse config carrying a tuned strategy book."""
    from dataclasses import replace

    return replace(EngineConfig.torchsparse(), strategy_book=book, **overrides)
