"""Runtime breakdown (Figure 4)."""

from __future__ import annotations

from repro.gpu.timeline import STAGES, Profile


def stage_breakdown(profile: Profile) -> dict:
    """Stage shares plus the grouping Figure 4 plots.

    Returns stage fractions with ``datamove`` (gather + scatter)
    aggregated alongside the raw stages.
    """
    frac = profile.stage_fractions()
    out = dict(frac)
    out["datamove"] = frac["gather"] + frac["scatter"]
    return out


def format_breakdown(profile: Profile, title: str = "") -> str:
    """Figure-4-style text bar chart."""
    total = profile.total_time
    lines = []
    if title:
        lines.append(title)
    for stage in STAGES:
        t = profile.stage_times()[stage]
        pct = 0.0 if total == 0 else 100 * t / total
        bar = "#" * int(round(pct / 2))
        lines.append(f"  {stage:8s} {pct:5.1f}% {bar}")
    lines.append(f"  total    {total * 1e3:.3f} ms")
    return "\n".join(lines)
