"""Measurement plumbing shared by benchmarks and examples."""

from repro.profiling.breakdown import stage_breakdown
from repro.profiling.runner import (
    BenchResult,
    SteadyStateResult,
    collect_workloads,
    run_model,
    run_steady_state,
    tune_model,
)
from repro.profiling.report import (
    format_layer_report,
    format_series,
    format_table,
    geomean,
    layer_table,
    percentile,
)
from repro.profiling.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "run_model",
    "run_steady_state",
    "collect_workloads",
    "tune_model",
    "BenchResult",
    "SteadyStateResult",
    "stage_breakdown",
    "format_table",
    "format_series",
    "format_layer_report",
    "layer_table",
    "geomean",
    "percentile",
    "to_chrome_trace",
    "write_chrome_trace",
]
