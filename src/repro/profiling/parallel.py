"""Multi-device inference sharding.

TorchSparse supports multi-GPU execution (Section 4.1).  Inference-side
data parallelism needs no gradient exchange: point clouds (or batch
elements) are sharded across devices and the wall time is the makespan
of the slowest shard.  These helpers model exactly that on the device
specs, including heterogeneous fleets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.engine import BaseEngine, ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.gpu.device import GPUSpec
from repro.nn.modules import Module


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one multi-device run."""

    per_device: dict  # device name -> total seconds
    assignments: dict  # device name -> list of input indices
    makespan: float
    total_inputs: int

    @property
    def throughput(self) -> float:
        """Inputs per second at steady state.

        A zero makespan (degenerate cost model / empty schedule) means
        infinitely fast, not infinitely slow — mirroring
        ``BenchResult.fps``.  Returning 0.0 here made empty runs look
        like the *worst* shard instead of a vacuous one.
        """
        return float("inf") if self.makespan == 0 else self.total_inputs / self.makespan

    def speedup_over(self, single_device_time: float) -> float:
        """Speedup vs. a single-device run (``inf`` on zero makespan)."""
        return (
            float("inf")
            if self.makespan == 0
            else single_device_time / self.makespan
        )


def _latency(model: Module, x: SparseTensor, engine: BaseEngine, device: GPUSpec):
    ctx = ExecutionContext(engine=engine, device=device)
    model(x, ctx)
    return ctx.profile.total_time


def shard_inference(
    model: Module,
    inputs: Sequence[SparseTensor],
    engine: BaseEngine,
    devices: Sequence[GPUSpec],
    policy: str = "greedy",
) -> ShardResult:
    """Assign inputs to devices and report the makespan.

    Policies:
        * ``round_robin`` — input ``i`` to device ``i % len(devices)``;
        * ``greedy`` — longest-processing-time-first onto the device
          with the least accumulated time, weighted by device speed
          (the classic LPT heuristic; better on heterogeneous fleets).
    """
    if not inputs:
        raise ValueError("need at least one input")
    if not devices:
        raise ValueError("need at least one device")
    if policy not in ("round_robin", "greedy"):
        raise ValueError(f"unknown policy {policy!r}")

    # per-(input, device) latency matrix
    lat = [
        [_latency(model, x, engine, d) for d in devices] for x in inputs
    ]

    loads = [0.0] * len(devices)
    assign: list[list[int]] = [[] for _ in devices]
    if policy == "round_robin":
        for i in range(len(inputs)):
            d = i % len(devices)
            loads[d] += lat[i][d]
            assign[d].append(i)
    else:
        # LPT by mean latency, placed to minimize the resulting load
        order = sorted(
            range(len(inputs)),
            key=lambda i: -(sum(lat[i]) / len(devices)),
        )
        for i in order:
            best = min(
                range(len(devices)), key=lambda d: loads[d] + lat[i][d]
            )
            loads[best] += lat[i][best]
            assign[best].append(i)

    names = [d.name for d in devices]
    # disambiguate duplicate device names (homogeneous fleets)
    labels = [
        f"{n} #{k}" if names.count(n) > 1 else n
        for k, n in enumerate(names)
    ]
    return ShardResult(
        per_device=dict(zip(labels, loads)),
        assignments={label: a for label, a in zip(labels, assign)},
        makespan=max(loads),
        total_inputs=len(inputs),
    )


def data_parallel_batch(
    model: Module,
    batched: SparseTensor,
    engine: BaseEngine,
    devices: Sequence[GPUSpec],
) -> ShardResult:
    """Split a batched tensor across devices, one batch element at a
    time (greedy placement)."""
    from repro.datasets.collate import batch_split

    singles = batch_split(batched)
    return shard_inference(model, singles, engine, devices, policy="greedy")
