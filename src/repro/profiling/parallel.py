"""Multi-device inference sharding.

TorchSparse supports multi-GPU execution (Section 4.1).  Inference-side
data parallelism needs no gradient exchange: point clouds (or batch
elements) are sharded across devices and the wall time is the makespan
of the slowest shard.  These helpers model exactly that on the device
specs, including heterogeneous fleets.

The per-(input, device) latency matrix is evaluated *lazily* and
memoized by device spec: ``round_robin`` only ever reads one entry per
input, and homogeneous fleets (D copies of the same spec) collapse to a
single model evaluation per input even under ``greedy``.

Placement is health-aware: an optional ``healthy`` mask excludes
quarantined devices (as tracked by :mod:`repro.serve.health`) from both
policies, so the batch path and the serving layer agree on where work
may land.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.engine import BaseEngine, ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.gpu.device import GPUSpec
from repro.nn.modules import Module
from repro.profiling.report import percentile


@dataclass(frozen=True)
class ShardResult:
    """Outcome of one multi-device run."""

    per_device: dict  # device name -> total seconds
    assignments: dict  # device name -> list of input indices
    makespan: float
    total_inputs: int
    #: device name -> tuple of per-input latencies, assignment order
    latencies: dict = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        """Inputs per second at steady state.

        A zero makespan (degenerate cost model / empty schedule) means
        infinitely fast, not infinitely slow — mirroring
        ``BenchResult.fps``.  Returning 0.0 here made empty runs look
        like the *worst* shard instead of a vacuous one.
        """
        return float("inf") if self.makespan == 0 else self.total_inputs / self.makespan

    def speedup_over(self, single_device_time: float) -> float:
        """Speedup vs. a single-device run (``inf`` on zero makespan)."""
        return (
            float("inf")
            if self.makespan == 0
            else single_device_time / self.makespan
        )

    def _samples(self, device: str | None) -> list:
        if device is None:
            return [t for ts in self.latencies.values() for t in ts]
        if device not in self.latencies:
            raise KeyError(
                f"unknown device {device!r}; have {sorted(self.latencies)}"
            )
        return list(self.latencies[device])

    def latency_percentile(self, q: float, device: str | None = None) -> float:
        """Nearest-rank percentile of per-input latencies.

        ``device=None`` pools every input; a device label restricts to
        that shard.  Shares :func:`repro.profiling.report.percentile`
        with the serving layer so batch and serve paths quote identical
        statistics.
        """
        return percentile(self._samples(device), q)

    def p50(self, device: str | None = None) -> float:
        return self.latency_percentile(50.0, device)

    def p99(self, device: str | None = None) -> float:
        return self.latency_percentile(99.0, device)


def _latency(model: Module, x: SparseTensor, engine: BaseEngine, device: GPUSpec):
    ctx = ExecutionContext(engine=engine, device=device)
    model(x, ctx)
    return ctx.profile.total_time


class LazyLatencyMatrix:
    """Memoized per-(input, device-*spec*) modeled latency.

    Entries are computed on first read; two devices sharing one
    :class:`GPUSpec` (frozen, hence hashable) share every entry, so a
    homogeneous fleet costs one model evaluation per input no matter
    how many copies of the card it holds — and ``round_robin``, which
    only ever reads ``[i][i % D]``, pays exactly one per input.
    """

    def __init__(self, model, inputs, engine, devices) -> None:
        self._model = model
        self._inputs = inputs
        self._engine = engine
        self._devices = devices
        self._memo: dict = {}

    @property
    def evaluations(self) -> int:
        """Model evaluations actually performed (memo size)."""
        return len(self._memo)

    def __call__(self, i: int, d: int) -> float:
        key = (i, self._devices[d])
        if key not in self._memo:
            self._memo[key] = _latency(
                self._model, self._inputs[i], self._engine, self._devices[d]
            )
        return self._memo[key]

    def mean_over_devices(self, i: int) -> float:
        return sum(self(i, d) for d in range(len(self._devices))) / len(
            self._devices
        )


def least_loaded(
    loads: Sequence[float], eligible: Sequence[bool] | None = None
) -> int:
    """Index of the least-loaded eligible device (ties go lowest index).

    The one placement primitive shared by LPT sharding and the serving
    layer's dispatch/hedging.  Raises ``ValueError`` when no device is
    eligible.
    """
    candidates = [
        d
        for d in range(len(loads))
        if eligible is None or eligible[d]
    ]
    if not candidates:
        raise ValueError("no eligible device")
    return min(candidates, key=lambda d: (loads[d], d))


def device_labels(devices: Sequence[GPUSpec]) -> list:
    """Display labels, disambiguating duplicate names (``"X #k"``)."""
    names = [d.name for d in devices]
    return [
        f"{n} #{k}" if names.count(n) > 1 else n
        for k, n in enumerate(names)
    ]


def shard_inference(
    model: Module,
    inputs: Sequence[SparseTensor],
    engine: BaseEngine,
    devices: Sequence[GPUSpec],
    policy: str = "greedy",
    healthy: Sequence[bool] | None = None,
) -> ShardResult:
    """Assign inputs to devices and report the makespan.

    Policies:
        * ``round_robin`` — input ``i`` to healthy device ``i % H``
          (rotation over the healthy subset);
        * ``greedy`` — longest-processing-time-first onto the device
          with the least accumulated time, weighted by device speed
          (the classic LPT heuristic; better on heterogeneous fleets).

    ``healthy`` masks out quarantined devices: they receive no
    assignments but keep their (empty) rows in the result, so fleet
    shape is stable across health transitions.
    """
    if not inputs:
        raise ValueError("need at least one input")
    if not devices:
        raise ValueError("need at least one device")
    if policy not in ("round_robin", "greedy"):
        raise ValueError(f"unknown policy {policy!r}")
    if healthy is not None and len(healthy) != len(devices):
        raise ValueError(
            f"healthy mask has {len(healthy)} entries for "
            f"{len(devices)} devices"
        )
    mask = [True] * len(devices) if healthy is None else [bool(h) for h in healthy]
    able = [d for d in range(len(devices)) if mask[d]]
    if not able:
        raise ValueError("no healthy device")

    lat = LazyLatencyMatrix(model, inputs, engine, devices)
    loads = [0.0] * len(devices)
    assign: list[list[int]] = [[] for _ in devices]
    samples: list[list[float]] = [[] for _ in devices]

    def place(i: int, d: int) -> None:
        t = lat(i, d)
        loads[d] += t
        assign[d].append(i)
        samples[d].append(t)

    if policy == "round_robin":
        for i in range(len(inputs)):
            place(i, able[i % len(able)])
    else:
        # LPT by mean latency, placed to minimize the resulting load
        order = sorted(
            range(len(inputs)), key=lambda i: -lat.mean_over_devices(i)
        )
        for i in order:
            best = min(able, key=lambda d: (loads[d] + lat(i, d), d))
            place(i, best)

    labels = device_labels(devices)
    return ShardResult(
        per_device=dict(zip(labels, loads)),
        assignments={label: a for label, a in zip(labels, assign)},
        makespan=max(loads),
        total_inputs=len(inputs),
        latencies={
            label: tuple(s) for label, s in zip(labels, samples)
        },
    )


def data_parallel_batch(
    model: Module,
    batched: SparseTensor,
    engine: BaseEngine,
    devices: Sequence[GPUSpec],
) -> ShardResult:
    """Split a batched tensor across devices, one batch element at a
    time (greedy placement)."""
    from repro.datasets.collate import batch_split

    singles = batch_split(batched)
    return shard_inference(model, singles, engine, devices, policy="greedy")
