"""Chrome-trace export of execution profiles and serve campaigns.

Serializes a :class:`~repro.gpu.timeline.Profile` into the Trace Event
Format consumed by ``chrome://tracing`` / Perfetto.  The model is a
single-stream device, so record order is execution order: kernels are
laid out back-to-back on one ``pipeline`` track, and the span paths
stamped on each record (by the hierarchical tracer) are rendered as
enclosing ``X`` events, so the trace nests layer -> stage -> kernel the
way a real Nsight timeline nests NVTX ranges over kernels.

Untraced profiles (no span paths) degrade gracefully to a flat
back-to-back kernel track.

**Serve mode** (:func:`to_serve_trace`) renders a whole serving
campaign from its flight-recorder journal
(:mod:`repro.obs.timeline`): one track per fleet device with attempts
as duration slices, retries and hedges linked to their parent attempt
by flow arrows, breaker/quarantine transitions and mapping-cache
warm/cold dispatches as instant events, a request-outcome track, and
an admission-queue-depth counter track.  The trace is a pure function
of the journal, so ``repro-bench timeline --trace`` can convert a
journal offline and two same-seed campaigns render identically.
"""

from __future__ import annotations

import json

from repro.gpu.timeline import Profile

#: The single pseudo-thread all kernels and spans render on.
PIPELINE_TID = 1

#: Category assigned to span (non-kernel) events.
SPAN_CATEGORY = "span"


def _span_event(name: str, start_us: float, end_us: float, depth: int) -> dict:
    return {
        "name": name,
        "cat": SPAN_CATEGORY,
        "ph": "X",
        "pid": 1,
        "tid": PIPELINE_TID,
        "ts": round(start_us, 3),
        "dur": round(end_us - start_us, 3),
        "args": {"depth": depth},
    }


def to_chrome_trace(profile: Profile, process_name: str = "repro") -> dict:
    """Build a Trace Event Format dict (``traceEvents`` + metadata).

    Span intervals are reconstructed from the records they contain:
    consecutive records sharing a span-path prefix stay inside one span
    event; when the path changes, the divergent spans close and new
    ones open.  Re-entering an identical path after leaving it opens a
    fresh span event (two calls to the same layer stay two boxes).
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": PIPELINE_TID,
            "args": {"name": "pipeline"},
        },
    ]
    clock_us = 0.0
    open_spans: list = []  # (name, start_us), outermost first

    def close_spans(down_to: int) -> None:
        while len(open_spans) > down_to:
            name, start = open_spans.pop()
            events.append(
                _span_event(name, start, clock_us, depth=len(open_spans))
            )

    for rec in profile.records:
        path = rec.span
        common = 0
        for (open_name, _), name in zip(open_spans, path):
            if open_name != name:
                break
            common += 1
        close_spans(common)
        for name in path[len(open_spans):]:
            open_spans.append((name, clock_us))
        dur_us = rec.time * 1e6
        events.append(
            {
                "name": rec.name,
                "cat": rec.stage,
                "ph": "X",
                "pid": 1,
                "tid": PIPELINE_TID,
                "ts": round(clock_us, 3),
                "dur": round(dur_us, 3),
                "args": {
                    "stage": rec.stage,
                    "bytes_moved": rec.bytes_moved,
                    "flops": rec.flops,
                    "launches": rec.launches,
                    "span": "/".join(path),
                },
            }
        )
        clock_us += dur_us
    close_spans(0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def kernel_events(trace: dict) -> list:
    """The kernel ``X`` events of a trace (span boxes filtered out)."""
    return [
        e
        for e in trace["traceEvents"]
        if e["ph"] == "X" and e.get("cat") != SPAN_CATEGORY
    ]


def span_events(trace: dict) -> list:
    """The span ``X`` events of a trace (layer/stage boxes)."""
    return [
        e
        for e in trace["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == SPAN_CATEGORY
    ]


def write_chrome_trace(profile: Profile, path: str, **kwargs) -> None:
    """Serialize :func:`to_chrome_trace` to a JSON file."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(profile, **kwargs), f)


# -- serve-campaign traces -------------------------------------------------

#: Pseudo-thread carrying per-request terminal-state instants.
REQUESTS_TID = 2

#: Pseudo-thread carrying brownout QoS level changes.
QOS_TID = 3

#: Pseudo-thread carrying failure-domain breaker transitions.
DOMAINS_TID = 4

#: First device track; device ``i`` renders on ``DEVICE_TID_BASE + i``.
DEVICE_TID_BASE = 10


def _us(t: float) -> float:
    return round(t * 1e6, 3)


def to_serve_trace(
    header: dict, events: list, process_name: str = "serve-campaign"
) -> dict:
    """Render a flight-recorder journal as a Perfetto-loadable trace.

    Track layout (one process):

    * one thread per fleet device — every attempt (primary / retry /
      hedge / probe) is an ``X`` duration slice from its ``dispatch``
      to its ``attempt_finish``, named by its dispatch kind with the
      outcome in ``args``;
    * flow arrows (``s``/``f`` pairs) link every retry and hedge
      dispatch back to its causal parent attempt;
    * ``quarantine`` / ``readmit`` / ``device_dead`` and (steady-state)
      mapping-cache warm/cold dispatches render as instant events on
      the device that produced them;
    * a ``requests`` thread carries one instant per terminal state;
    * a ``queue depth`` counter tracks the admission queue over the
      campaign;
    * brownout campaigns add a ``qos`` thread (one instant per
      controller level change, named by the engaged rung) and a ``qos
      level`` counter track following the fleet's quality level;
    * campaigns with a non-trivial failure-domain topology add a
      ``domains`` thread (one instant per ``domain_outage`` /
      ``domain_recovered`` breaker transition, plus one per storm-
      defense ``retry_denied``) and a ``domains down`` counter tracking
      how many domain breakers are open;
    * batched campaigns render each batched attempt as **one** slice on
      its device (members share the attempt id, so the slice is deduped
      across ``batch_dispatch`` member events), each ``batch_formed``
      close as an instant carrying the close reason and hold time, a
      ``batch size`` counter track stepping at every close, and one
      flow arrow per member whose slice carries a causal parent
      (retries and hedge duplicates inside a batch keep their arrows).
    """
    devices = list(header.get("devices") or [])
    for e in events:
        dev = e.get("device")
        if dev is not None and dev not in devices:
            devices.append(dev)
    tid_of = {label: DEVICE_TID_BASE + i for i, label in enumerate(devices)}
    trace_events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": REQUESTS_TID,
            "args": {"name": "requests"},
        },
    ]
    has_qos = bool(header.get("brownout")) or any(
        e["kind"] == "qos_change" for e in events
    )
    if has_qos:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": QOS_TID,
                "args": {"name": "qos"},
            }
        )
        # anchor the counter at full quality from t=0
        trace_events.append(
            {
                "name": "qos level",
                "ph": "C",
                "pid": 1,
                "ts": 0.0,
                "args": {"level": 0},
            }
        )
    has_batching = bool(header.get("batching")) or any(
        e["kind"] == "batch_formed" for e in events
    )
    if has_batching:
        # anchor the counter so the track exists from t=0
        trace_events.append(
            {
                "name": "batch size",
                "ph": "C",
                "pid": 1,
                "ts": 0.0,
                "args": {"size": 0},
            }
        )
    has_domains = bool(header.get("domains")) or any(
        e["kind"] in ("domain_outage", "domain_recovered", "retry_denied")
        for e in events
    )
    domains_down = 0
    if has_domains:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": DOMAINS_TID,
                "args": {"name": "domains"},
            }
        )
        # anchor the breaker counter at all-closed from t=0
        trace_events.append(
            {
                "name": "domains down",
                "ph": "C",
                "pid": 1,
                "ts": 0.0,
                "args": {"down": 0},
            }
        )
    for label, tid in tid_of.items():
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": label},
            }
        )

    # first pass: attempt intervals (dispatch -> attempt_finish)
    dispatches: dict = {}  # attempt -> dispatch event
    finishes: dict = {}    # attempt -> attempt_finish event
    for e in events:
        if e["kind"] == "dispatch":
            dispatches[e["attempt"]] = e
        elif e["kind"] == "batch_dispatch":
            # members share the attempt; the first slice fixes its
            # device and start for flow-arrow sources
            dispatches.setdefault(e["attempt"], e)
        elif e["kind"] == "attempt_finish":
            finishes[e["attempt"]] = e

    flow_id = 0
    last_depth = None
    batched_drawn: set = set()  # attempt ids already given a slice
    for e in events:
        kind, t = e["kind"], e["t"]
        depth = e.get("queue_depth")
        if depth is not None and depth != last_depth:
            trace_events.append(
                {
                    "name": "queue depth",
                    "ph": "C",
                    "pid": 1,
                    "ts": _us(t),
                    "args": {"depth": depth},
                }
            )
            last_depth = depth
        if kind == "dispatch":
            attempt = e["attempt"]
            tid = tid_of[e["device"]]
            finish = finishes.get(attempt)
            end_t = finish["t"] if finish is not None else t
            attrs = e.get("attrs", {})
            dkind = attrs.get("kind", "primary")
            args = {
                "attempt": attempt,
                "request": e.get("request"),
                "outcome": (finish or {}).get("attrs", {}).get("outcome"),
                "slack": e.get("slack"),
            }
            for key in ("model", "scene", "warm", "qos"):
                if key in attrs:
                    args[key] = attrs[key]
            trace_events.append(
                {
                    "name": dkind,
                    "cat": "attempt",
                    "ph": "X",
                    "pid": 1,
                    "tid": tid,
                    "ts": _us(t),
                    "dur": round(_us(end_t) - _us(t), 3),
                    "args": args,
                }
            )
            if "warm" in attrs:
                trace_events.append(
                    {
                        "name": "mapcache:%s"
                        % ("warm" if attrs["warm"] else "cold"),
                        "cat": "mapcache",
                        "ph": "i",
                        "s": "t",
                        "pid": 1,
                        "tid": tid,
                        "ts": _us(t),
                    }
                )
            parent = attrs.get("parent")
            if parent is not None and parent in dispatches:
                parent_tid = tid_of[dispatches[parent]["device"]]
                parent_finish = finishes.get(parent)
                # a retry's parent already finished (arrow leaves the
                # end of the failed slice); a hedge's parent is still
                # running (arrow leaves at the fork instant)
                s_t = (
                    parent_finish["t"]
                    if parent_finish is not None and parent_finish["t"] <= t
                    else t
                )
                flow_id += 1
                common = {
                    "cat": dkind,
                    "name": dkind,
                    "id": flow_id,
                    "pid": 1,
                }
                trace_events.append(
                    {**common, "ph": "s", "tid": parent_tid, "ts": _us(s_t)}
                )
                trace_events.append(
                    {**common, "ph": "f", "bp": "e", "tid": tid, "ts": _us(t)}
                )
        elif kind == "batch_formed":
            attrs = e.get("attrs", {})
            trace_events.append(
                {
                    "name": "batch_formed:%s" % attrs.get("reason"),
                    "cat": "batch",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid_of[e["device"]],
                    "ts": _us(t),
                    "args": {
                        "batch": attrs.get("batch"),
                        "size": attrs.get("size"),
                        "members": attrs.get("members"),
                        "reason": attrs.get("reason"),
                        "held": attrs.get("held"),
                    },
                }
            )
            trace_events.append(
                {
                    "name": "batch size",
                    "ph": "C",
                    "pid": 1,
                    "ts": _us(t),
                    "args": {"size": attrs.get("size")},
                }
            )
        elif kind == "batch_dispatch":
            attempt = e["attempt"]
            tid = tid_of[e["device"]]
            attrs = e.get("attrs", {})
            dkind = attrs.get("kind", "primary")
            if attempt not in batched_drawn:
                batched_drawn.add(attempt)
                finish = finishes.get(attempt)
                end_t = finish["t"] if finish is not None else t
                args = {
                    "attempt": attempt,
                    "batch": attrs.get("batch"),
                    "size": attrs.get("size"),
                    "outcome": (finish or {}).get("attrs", {}).get("outcome"),
                }
                for key in ("model", "warm", "qos"):
                    if key in attrs:
                        args[key] = attrs[key]
                trace_events.append(
                    {
                        "name": "%s x%s"
                        % (
                            "hedge" if dkind == "hedge" else "batch",
                            attrs.get("size"),
                        ),
                        "cat": "attempt",
                        "ph": "X",
                        "pid": 1,
                        "tid": tid,
                        "ts": _us(t),
                        "dur": round(_us(end_t) - _us(t), 3),
                        "args": args,
                    }
                )
            parent = attrs.get("parent")
            if parent is not None and parent in dispatches:
                parent_tid = tid_of[dispatches[parent]["device"]]
                parent_finish = finishes.get(parent)
                s_t = (
                    parent_finish["t"]
                    if parent_finish is not None and parent_finish["t"] <= t
                    else t
                )
                flow_id += 1
                common = {
                    "cat": dkind,
                    "name": dkind,
                    "id": flow_id,
                    "pid": 1,
                }
                trace_events.append(
                    {**common, "ph": "s", "tid": parent_tid, "ts": _us(s_t)}
                )
                trace_events.append(
                    {**common, "ph": "f", "bp": "e", "tid": tid, "ts": _us(t)}
                )
        elif kind in ("quarantine", "readmit", "device_dead"):
            trace_events.append(
                {
                    "name": kind,
                    "cat": "health",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": tid_of[e["device"]],
                    "ts": _us(t),
                }
            )
        elif kind == "terminal":
            attrs = e.get("attrs", {})
            args = {"request": e.get("request")}
            for key in ("reason", "error", "latency"):
                if key in attrs:
                    args[key] = attrs[key]
            trace_events.append(
                {
                    "name": attrs.get("state", "terminal"),
                    "cat": "terminal",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": REQUESTS_TID,
                    "ts": _us(t),
                    "args": args,
                }
            )
        elif kind == "qos_change":
            attrs = e.get("attrs", {})
            trace_events.append(
                {
                    "name": attrs.get("rung", "qos"),
                    "cat": "qos",
                    "ph": "i",
                    "s": "p",
                    "pid": 1,
                    "tid": QOS_TID,
                    "ts": _us(t),
                    "args": {
                        "level": attrs.get("level"),
                        "direction": attrs.get("direction"),
                        "burn": attrs.get("burn"),
                    },
                }
            )
            trace_events.append(
                {
                    "name": "qos level",
                    "ph": "C",
                    "pid": 1,
                    "ts": _us(t),
                    "args": {"level": attrs.get("level")},
                }
            )
        elif kind == "hedge_skip":
            trace_events.append(
                {
                    "name": "hedge_skip",
                    "cat": "hedge",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": REQUESTS_TID,
                    "ts": _us(t),
                    "args": {
                        "request": e.get("request"),
                        "reason": e.get("attrs", {}).get("reason"),
                    },
                }
            )
        elif kind in ("domain_outage", "domain_recovered"):
            attrs = e.get("attrs", {})
            domains_down += 1 if kind == "domain_outage" else -1
            trace_events.append(
                {
                    "name": f"{kind}:{attrs.get('domain')}",
                    "cat": "domain",
                    "ph": "i",
                    "s": "p",
                    "pid": 1,
                    "tid": DOMAINS_TID,
                    "ts": _us(t),
                    "args": {
                        "domain": attrs.get("domain"),
                        "swept": attrs.get("swept"),
                    },
                }
            )
            trace_events.append(
                {
                    "name": "domains down",
                    "ph": "C",
                    "pid": 1,
                    "ts": _us(t),
                    "args": {"down": domains_down},
                }
            )
        elif kind == "retry_denied":
            trace_events.append(
                {
                    "name": "retry_denied",
                    "cat": "storm",
                    "ph": "i",
                    "s": "t",
                    "pid": 1,
                    "tid": DOMAINS_TID,
                    "ts": _us(t),
                    "args": {
                        "request": e.get("request"),
                        "reason": e.get("attrs", {}).get("reason"),
                    },
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def flow_events(trace: dict) -> list:
    """The flow (``s``/``f``) events of a serve trace."""
    return [e for e in trace["traceEvents"] if e["ph"] in ("s", "f")]


def attempt_events(trace: dict) -> list:
    """The attempt ``X`` slices of a serve trace."""
    return [
        e
        for e in trace["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == "attempt"
    ]


def write_serve_trace(
    header: dict, events: list, path: str, **kwargs
) -> None:
    """Serialize :func:`to_serve_trace` to a JSON file (deterministic:
    sorted keys, compact separators)."""
    with open(path, "w") as f:
        json.dump(
            to_serve_trace(header, events, **kwargs),
            f,
            sort_keys=True,
            separators=(",", ":"),
        )
