"""Chrome-trace export of execution profiles.

Serializes a :class:`~repro.gpu.timeline.Profile` into the Trace Event
Format consumed by ``chrome://tracing`` / Perfetto.  The model is a
single-stream device, so record order is execution order: kernels are
laid out back-to-back on one ``pipeline`` track, and the span paths
stamped on each record (by the hierarchical tracer) are rendered as
enclosing ``X`` events, so the trace nests layer -> stage -> kernel the
way a real Nsight timeline nests NVTX ranges over kernels.

Untraced profiles (no span paths) degrade gracefully to a flat
back-to-back kernel track.
"""

from __future__ import annotations

import json

from repro.gpu.timeline import Profile

#: The single pseudo-thread all kernels and spans render on.
PIPELINE_TID = 1

#: Category assigned to span (non-kernel) events.
SPAN_CATEGORY = "span"


def _span_event(name: str, start_us: float, end_us: float, depth: int) -> dict:
    return {
        "name": name,
        "cat": SPAN_CATEGORY,
        "ph": "X",
        "pid": 1,
        "tid": PIPELINE_TID,
        "ts": round(start_us, 3),
        "dur": round(end_us - start_us, 3),
        "args": {"depth": depth},
    }


def to_chrome_trace(profile: Profile, process_name: str = "repro") -> dict:
    """Build a Trace Event Format dict (``traceEvents`` + metadata).

    Span intervals are reconstructed from the records they contain:
    consecutive records sharing a span-path prefix stay inside one span
    event; when the path changes, the divergent spans close and new
    ones open.  Re-entering an identical path after leaving it opens a
    fresh span event (two calls to the same layer stay two boxes).
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": PIPELINE_TID,
            "args": {"name": "pipeline"},
        },
    ]
    clock_us = 0.0
    open_spans: list = []  # (name, start_us), outermost first

    def close_spans(down_to: int) -> None:
        while len(open_spans) > down_to:
            name, start = open_spans.pop()
            events.append(
                _span_event(name, start, clock_us, depth=len(open_spans))
            )

    for rec in profile.records:
        path = rec.span
        common = 0
        for (open_name, _), name in zip(open_spans, path):
            if open_name != name:
                break
            common += 1
        close_spans(common)
        for name in path[len(open_spans):]:
            open_spans.append((name, clock_us))
        dur_us = rec.time * 1e6
        events.append(
            {
                "name": rec.name,
                "cat": rec.stage,
                "ph": "X",
                "pid": 1,
                "tid": PIPELINE_TID,
                "ts": round(clock_us, 3),
                "dur": round(dur_us, 3),
                "args": {
                    "stage": rec.stage,
                    "bytes_moved": rec.bytes_moved,
                    "flops": rec.flops,
                    "launches": rec.launches,
                    "span": "/".join(path),
                },
            }
        )
        clock_us += dur_us
    close_spans(0)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def kernel_events(trace: dict) -> list:
    """The kernel ``X`` events of a trace (span boxes filtered out)."""
    return [
        e
        for e in trace["traceEvents"]
        if e["ph"] == "X" and e.get("cat") != SPAN_CATEGORY
    ]


def span_events(trace: dict) -> list:
    """The span ``X`` events of a trace (layer/stage boxes)."""
    return [
        e
        for e in trace["traceEvents"]
        if e["ph"] == "X" and e.get("cat") == SPAN_CATEGORY
    ]


def write_chrome_trace(profile: Profile, path: str, **kwargs) -> None:
    """Serialize :func:`to_chrome_trace` to a JSON file."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(profile, **kwargs), f)
