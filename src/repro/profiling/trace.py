"""Chrome-trace export of execution profiles.

Serializes a :class:`~repro.gpu.timeline.Profile` into the Trace Event
Format consumed by ``chrome://tracing`` / Perfetto, laying kernels out
back-to-back per stage track.  Useful for eyeballing where a model's
modeled time goes, the way one would with an Nsight timeline.
"""

from __future__ import annotations

import json

from repro.gpu.timeline import STAGES, Profile

#: Trace rows: one pseudo-thread per pipeline stage.
_STAGE_TIDS = {stage: i + 1 for i, stage in enumerate(STAGES)}


def to_chrome_trace(profile: Profile, process_name: str = "repro") -> dict:
    """Build a Trace Event Format dict (``traceEvents`` + metadata).

    Kernels are laid out sequentially in record order (the model is a
    single-stream device, so record order is execution order); each
    stage renders as its own thread row.
    """
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for stage, tid in _STAGE_TIDS.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": stage},
            }
        )
    clock_us = 0.0
    for rec in profile.records:
        dur_us = rec.time * 1e6
        events.append(
            {
                "name": rec.name,
                "cat": rec.stage,
                "ph": "X",
                "pid": 1,
                "tid": _STAGE_TIDS[rec.stage],
                "ts": round(clock_us, 3),
                "dur": round(dur_us, 3),
                "args": {
                    "bytes_moved": rec.bytes_moved,
                    "flops": rec.flops,
                    "launches": rec.launches,
                },
            }
        )
        clock_us += dur_us
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(profile: Profile, path: str, **kwargs) -> None:
    """Serialize :func:`to_chrome_trace` to a JSON file."""
    with open(path, "w") as f:
        json.dump(to_chrome_trace(profile, **kwargs), f)
