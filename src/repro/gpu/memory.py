"""DRAM transaction model for scatter/gather.

NVIDIA GPUs service memory through 128-byte transactions (Section
4.3.1).  A warp of 32 threads issuing FP32 scalars fills a transaction
exactly; FP16 scalars fill only half of it, so halving the data *bytes*
does not halve the *transactions* — which is why the paper's naive FP16
port saw only ~1.3x instead of 2x.  Vectorized FP16 (two halves per
thread) restores full transactions at half the count.

We expose this as a per-pattern *transaction efficiency*: the fraction
of each issued transaction that carries useful bytes.  Movement time is

    time = useful_bytes / (bandwidth * efficiency)

so the FP32->FP16 transitions reproduce the measured ladder:
scalar FP16 ≈ 1.3x, vectorized FP16 ≈ 1.9x (Figure 8 / Table 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.obs.metrics import FRACTION_BUCKETS, get_registry


class DType(enum.Enum):
    """Feature storage types supported by the engine."""

    FP32 = 4
    FP16 = 2
    INT8 = 1

    @property
    def nbytes(self) -> int:
        return self.value


class MemoryAccessPattern(enum.Enum):
    """How each thread addresses memory during scatter/gather."""

    SCALAR = "scalar"  # one element per thread
    VECTORIZED = "vectorized"  # 4 bytes per thread (e.g. half2)


#: Bytes per DRAM transaction.
TRANSACTION_BYTES = 128

#: Threads per warp.
WARP_SIZE = 32


def transaction_efficiency(dtype: DType, pattern: MemoryAccessPattern) -> float:
    """Useful fraction of each 128-byte transaction for a pattern.

    Scalar access moves ``WARP_SIZE * dtype.nbytes`` useful bytes per
    transaction.  Real scatter/gather kernels mix the random per-point
    side with a fully-coalesced staging-buffer side, so sub-32-bit
    scalars do better than the naive ``width/4`` ratio; the blend factor
    below is calibrated to the paper's measured 1.32x scalar-FP16
    speedup (Table 3, row 2).
    """
    if pattern is MemoryAccessPattern.VECTORIZED:
        # each thread moves a 4-byte vector -> warp fills the transaction
        return 0.97
    per_warp = WARP_SIZE * dtype.nbytes
    raw = min(1.0, per_warp / TRANSACTION_BYTES)
    if dtype is DType.FP32:
        return 1.0
    # blend: ~half the traffic (the staging buffer) coalesces perfectly
    return 0.5 * raw + 0.5 * min(1.0, 2 * raw) * 0.82


@dataclass(frozen=True)
class MemoryTraffic:
    """Aggregate DRAM activity of one data-movement kernel."""

    bytes_moved: int
    transactions: int
    efficiency: float

    def __add__(self, other: "MemoryTraffic") -> "MemoryTraffic":
        total = self.bytes_moved + other.bytes_moved
        txns = self.transactions + other.transactions
        # byte-weighted efficiency
        if total == 0:
            return MemoryTraffic(0, 0, 1.0)
        eff = (
            self.bytes_moved * self.efficiency + other.bytes_moved * other.efficiency
        ) / total
        return MemoryTraffic(total, txns, eff)


def traffic(
    rows: int,
    channels: int,
    dtype: DType,
    pattern: MemoryAccessPattern,
) -> MemoryTraffic:
    """DRAM traffic for moving ``rows`` feature rows of ``channels`` each."""
    if rows < 0 or channels < 0:
        raise ValueError("rows and channels must be non-negative")
    nbytes = rows * channels * dtype.nbytes
    eff = transaction_efficiency(dtype, pattern)
    useful_per_txn = TRANSACTION_BYTES * eff
    txns = 0 if nbytes == 0 else int(-(-nbytes // useful_per_txn))
    return MemoryTraffic(bytes_moved=nbytes, transactions=txns, efficiency=eff)


def record_traffic(t: MemoryTraffic, kind: str) -> None:
    """Publish one *executed* movement's DRAM activity to the metrics
    registry (transactions, bytes, coalescing efficiency).

    Only execution paths call this; cost probes (e.g. the
    fetch-on-demand dispatch comparison) price the same traffic without
    recording it, so the metrics reflect what actually ran.
    """
    if t.transactions == 0:
        return
    reg = get_registry()
    reg.counter("mem.bytes_moved", kind=kind).inc(t.bytes_moved)
    reg.counter("mem.transactions", kind=kind).inc(t.transactions)
    reg.histogram(
        "mem.coalescing_efficiency", buckets=FRACTION_BUCKETS, kind=kind
    ).observe(t.efficiency, count=t.transactions)


def movement_time(t: MemoryTraffic, bandwidth: float) -> float:
    """Seconds to service a traffic aggregate at ``bandwidth`` bytes/s.

    Time is carried by transactions, not useful bytes: an access pattern
    at 50% efficiency pays for the full 128 bytes of every transaction.
    """
    if t.transactions == 0:
        return 0.0
    return (t.transactions * TRANSACTION_BYTES) / bandwidth
