"""GEMM latency model: the regularity story.

Matrix multiplication in sparse convolution is many skinny GEMMs, one
per kernel offset, each ``(M_i x C_in) @ (C_in x C_out)``.  Two effects
govern their speed on a GPU, and both are modeled mechanistically:

1. **Roofline** — with small channel counts the arithmetic intensity
   ``2*C_in*C_out / ((C_in + C_out) * dtype)`` is low, so early layers
   are memory-bound; late wide layers are compute-bound.
2. **Occupancy** — a GEMM with few output tiles leaves SMs idle.  The
   device's saturating occupancy curve (``GPUSpec.occupancy``) applies
   to *both* roofline ceilings.  Batching B offsets into one ``bmm``
   multiplies the resident tile count by B — that is the entire
   mechanism by which the paper's grouping trades padded FLOPs for
   regularity (Figures 6-7).

``bmm`` pads every member of a group to the largest map, so its FLOPs
and traffic are computed at the padded size; ``mm`` runs each member
separately and pays one launch per member.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.gpu.device import GPUSpec
from repro.gpu.memory import DType
from repro.obs.metrics import FRACTION_BUCKETS, get_registry

#: GEMM thread-block tile (rows x cols of the output it produces).
TILE_M = 64
TILE_N = 64


def _blocks(m: int, n: int) -> int:
    if m <= 0 or n <= 0:
        return 0
    return -(-m // TILE_M) * (-(-n // TILE_N))


@dataclass(frozen=True)
class GemmCost:
    """Latency and accounting of one GEMM (or batched GEMM) launch."""

    time: float
    flops: float
    useful_flops: float
    bytes_moved: float
    launches: int
    utilization: float  # achieved fraction of peak math throughput

    @property
    def achieved_tflops(self) -> float:
        """Achieved *total* (padded) TFLOP/s — the paper's Table 2 metric."""
        return 0.0 if self.time == 0 else self.flops / self.time / 1e12


def record_gemm_cost(cost: GemmCost, kind: str) -> None:
    """Publish one *executed* GEMM's accounting to the metrics registry.

    Execution paths call this once per launched matmul; the tuner's
    offline search prices thousands of candidate plans with the same
    cost functions and must not pollute the metrics, which is why the
    emission is a separate call rather than built into the models.
    """
    if cost.launches == 0:
        return
    reg = get_registry()
    reg.counter("gemm.launches", kind=kind).inc(cost.launches)
    reg.counter("gemm.flops", kind=kind).inc(cost.flops)
    reg.counter("gemm.useful_flops", kind=kind).inc(cost.useful_flops)
    reg.counter("gemm.padded_flops", kind=kind).inc(
        max(0.0, cost.flops - cost.useful_flops)
    )
    reg.histogram(
        "gemm.utilization", buckets=FRACTION_BUCKETS, kind=kind
    ).observe(cost.utilization)


def mm_cost(
    m: int, k: int, n: int, dtype: DType, device: GPUSpec, launches: int = 1
) -> GemmCost:
    """Cost of one ``(m x k) @ (k x n)`` GEMM."""
    if m == 0:
        return GemmCost(0.0, 0.0, 0.0, 0.0, 0, 0.0)
    flops = 2.0 * m * k * n
    nbytes = (m * k + k * n + m * n) * dtype.nbytes
    occ = device.occupancy(_blocks(m, n))
    t_math = device.compute_time(flops, dtype, utilization=occ)
    t_mem = device.mem_time(nbytes, efficiency=occ)
    time = max(t_math, t_mem) + launches * device.launch_overhead
    peak = device.math_throughput(dtype)
    return GemmCost(
        time=time,
        flops=flops,
        useful_flops=flops,
        bytes_moved=nbytes,
        launches=launches,
        utilization=flops / time / peak if time else 0.0,
    )


def bmm_cost(
    map_sizes: Sequence[int], k: int, n: int, dtype: DType, device: GPUSpec
) -> GemmCost:
    """Cost of batching ``len(map_sizes)`` offsets into one padded bmm.

    Every member is padded to ``max(map_sizes)`` rows; the padded rows
    are *real* FLOPs and traffic (the redundant computation the adaptive
    grouper's epsilon bounds), but the whole batch launches once and its
    tiles occupy the device together.
    """
    sizes = [int(s) for s in map_sizes]
    if not sizes or max(sizes) == 0:
        return GemmCost(0.0, 0.0, 0.0, 0.0, 0, 0.0)
    b = len(sizes)
    m_pad = max(sizes)
    flops = 2.0 * b * m_pad * k * n
    useful = 2.0 * sum(sizes) * k * n
    nbytes = b * (m_pad * k + k * n + m_pad * n) * dtype.nbytes
    occ = device.occupancy(b * _blocks(m_pad, n))
    t_math = device.compute_time(flops, dtype, utilization=occ)
    t_mem = device.mem_time(nbytes, efficiency=occ)
    time = max(t_math, t_mem) + device.launch_overhead
    peak = device.math_throughput(dtype)
    return GemmCost(
        time=time,
        flops=flops,
        useful_flops=useful,
        bytes_moved=nbytes,
        launches=1,
        utilization=flops / time / peak if time else 0.0,
    )


def checksum_cost(
    m: int, k: int, n: int, dtype: DType, device: GPUSpec
) -> GemmCost:
    """Cost of maintaining ABFT column checksums through one
    ``(m x k) @ (k x n)`` GEMM (:mod:`repro.robust.integrity`).

    The checksum row of the inputs (``k`` adds over ``m`` rows done in
    the epilogue of the producing kernel, modeled here), one
    ``(1 x k) @ (k x n)`` multiply of that row by the weights, the
    reduction of the output's ``n`` columns, and the ``n``-wide residual
    compare.  Fused into the GEMM epilogue, so ``launches == 0`` — the
    overhead is extra math and a few checksum vectors of traffic, not
    extra kernels; :func:`record_gemm_cost` deliberately skips it and
    the integrity layer reports it under ``integrity.*`` instead.
    """
    if m <= 0 or k <= 0 or n <= 0:
        return GemmCost(0.0, 0.0, 0.0, 0.0, 0, 0.0)
    flops = float(m * k + 2 * k * n + m * n + n)
    nbytes = float(k + 2 * n) * DType.FP32.nbytes
    occ = device.occupancy(_blocks(m, n))
    t_math = device.compute_time(flops, DType.FP32, utilization=occ)
    t_mem = device.mem_time(nbytes, efficiency=occ)
    time = max(t_math, t_mem)
    peak = device.math_throughput(DType.FP32)
    return GemmCost(
        time=time,
        flops=flops,
        useful_flops=flops,
        bytes_moved=nbytes,
        launches=0,
        utilization=flops / time / peak if time else 0.0,
    )


def sequential_cost(
    map_sizes: Sequence[int], k: int, n: int, dtype: DType, device: GPUSpec
) -> GemmCost:
    """Cost of running each offset as its own ``mm`` (the separate
    strategy of Figure 6b): latencies and launches add up."""
    total_t = total_f = total_b = 0.0
    launches = 0
    for m in map_sizes:
        c = mm_cost(int(m), k, n, dtype, device)
        total_t += c.time
        total_f += c.flops
        total_b += c.bytes_moved
        launches += c.launches
    peak = device.math_throughput(dtype)
    return GemmCost(
        time=total_t,
        flops=total_f,
        useful_flops=total_f,
        bytes_moved=total_b,
        launches=launches,
        utilization=total_f / total_t / peak if total_t else 0.0,
    )
