"""Simulated-GPU cost model.

The paper measures on three NVIDIA GPUs.  This environment has none, so
every latency in this repository comes from an analytical device model
that prices the same quantities the CUDA kernels are bound by:

* **DRAM traffic** in 128-byte transactions, with per-access-pattern
  efficiency (scalar vs. vectorized, FP32/FP16/INT8) —
  :mod:`repro.gpu.memory`;
* **cache reuse**, via a set-associative LRU simulator used by the
  locality ablations — :mod:`repro.gpu.cache`;
* **GEMM throughput**, a roofline with an occupancy curve that rewards
  batched (regular) work — :mod:`repro.gpu.gemm`;
* **kernel-launch overhead**, so fusing five small mapping kernels into
  one is visible end to end — :mod:`repro.gpu.device`.

Latency shapes (who wins, by what factor) follow from these ratios, not
from silicon, which is what makes the substitution sound.
"""

from repro.gpu.device import GPU_REGISTRY, GTX_1080TI, RTX_2080TI, RTX_3090, GPUSpec
from repro.gpu.memory import DType, MemoryAccessPattern, movement_time, traffic
from repro.gpu.timeline import KernelRecord, Profile

__all__ = [
    "GPUSpec",
    "GTX_1080TI",
    "RTX_2080TI",
    "RTX_3090",
    "GPU_REGISTRY",
    "DType",
    "MemoryAccessPattern",
    "traffic",
    "movement_time",
    "KernelRecord",
    "Profile",
]
