"""Execution records and per-stage profiles.

Every primitive an engine executes (hash build, map search, gather,
matmul, scatter, dense head ops ...) logs a :class:`KernelRecord`.  The
:class:`Profile` aggregates them into the stage breakdown the paper's
Figure 4 reports (mapping / gather / matmul / scatter / other) and into
end-to-end latency for Figures 11 and 14.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.obs.tracing import Tracer

#: Canonical stage labels, in Figure 4's plotting order.
STAGES = ("mapping", "gather", "matmul", "scatter", "other")


@dataclass(frozen=True)
class KernelRecord:
    """One priced device operation.

    ``span`` is the hierarchical attribution path (layer -> stage)
    stamped by the profile's tracer at log time; empty for records
    logged outside any span.
    """

    name: str
    stage: str
    time: float
    bytes_moved: float = 0.0
    flops: float = 0.0
    launches: int = 1
    span: tuple = ()

    def __post_init__(self) -> None:
        if self.stage not in STAGES:
            raise ValueError(f"unknown stage {self.stage!r}; expected one of {STAGES}")
        if self.time < 0:
            raise ValueError("time must be non-negative")
        object.__setattr__(self, "span", tuple(self.span))

    @property
    def layer(self) -> str:
        """Root span element — the layer/module this kernel ran under."""
        return self.span[0] if self.span else ""


@dataclass
class Profile:
    """Accumulator of kernel records for one forward pass (or many).

    When a :class:`~repro.obs.tracing.Tracer` is attached, every record
    added while a span is open is stamped with the span path.
    """

    records: list[KernelRecord] = field(default_factory=list)
    tracer: Tracer | None = None

    def span(self, name: str, **attrs):
        """Open a tracer span (no-op context when untraced)."""
        if self.tracer is None:
            return nullcontext()
        return self.tracer.span(name, **attrs)

    def add(self, record: KernelRecord) -> KernelRecord:
        if self.tracer is not None and not record.span:
            path = self.tracer.current_path
            if path:
                record = replace(record, span=path)
        self.records.append(record)
        return record

    def log(
        self,
        name: str,
        stage: str,
        time: float,
        bytes_moved: float = 0.0,
        flops: float = 0.0,
        launches: int = 1,
    ) -> KernelRecord:
        return self.add(KernelRecord(name, stage, time, bytes_moved, flops, launches))

    def extend(self, records: Iterable[KernelRecord]) -> None:
        for r in records:
            self.add(r)

    # -- aggregation ------------------------------------------------------

    @property
    def total_time(self) -> float:
        return sum(r.time for r in self.records)

    @property
    def total_bytes(self) -> float:
        return sum(r.bytes_moved for r in self.records)

    @property
    def total_flops(self) -> float:
        return sum(r.flops for r in self.records)

    @property
    def total_launches(self) -> int:
        return sum(r.launches for r in self.records)

    def stage_times(self) -> dict[str, float]:
        """Seconds per stage, with every stage present (0.0 if unused)."""
        out = dict.fromkeys(STAGES, 0.0)
        for r in self.records:
            out[r.stage] += r.time
        return out

    def stage_fractions(self) -> dict[str, float]:
        """Fraction of total time per stage (Figure 4's quantity)."""
        total = self.total_time
        times = self.stage_times()
        if total == 0:
            return times
        return {k: v / total for k, v in times.items()}

    def by_name(self) -> dict[str, float]:
        out: dict[str, float] = defaultdict(float)
        for r in self.records:
            out[r.name] += r.time
        return dict(out)

    def merge(self, other: "Profile") -> "Profile":
        merged = Profile(records=list(self.records))
        merged.extend(other.records)
        return merged

    def clear(self) -> None:
        self.records.clear()

    def summary(self) -> str:
        """Human-readable per-stage table."""
        total = self.total_time
        lines = [f"total {total * 1e3:9.3f} ms over {len(self.records)} kernels"]
        for stage, t in self.stage_times().items():
            pct = 0.0 if total == 0 else 100.0 * t / total
            lines.append(f"  {stage:8s} {t * 1e3:9.3f} ms  ({pct:5.1f}%)")
        return "\n".join(lines)
