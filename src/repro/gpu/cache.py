"""Set-associative LRU cache simulator.

Used by the locality ablations to *demonstrate* (rather than assume) the
paper's Figure 9 claim: with the weight-stationary access order, every
map index is unique within one weight's gather, and by the time the next
weight's gather starts the cache has been flushed by the intervening
scatter — so there is no reuse.  The locality-aware order (all gathers
fused, input-stationary) turns the repeated reads of each input row into
cache hits / register reuse.

The simulator is deliberately small and exact: addresses are mapped to
cache lines, lines to sets, and each set keeps true LRU order.  It is
fast enough for layer-sized traces (hundreds of thousands of accesses)
but is not used inside the end-to-end timing path, which relies on the
closed-form traffic model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import FRACTION_BUCKETS, MetricsRegistry, get_registry


@dataclass
class CacheStats:
    """Hit/miss/eviction counters of one simulation run."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return 0.0 if self.accesses == 0 else self.hits / self.accesses


class LRUCache:
    """A ``capacity``-byte, ``ways``-way set-associative LRU cache.

    Addresses are byte addresses; each access touches the single line
    containing it (callers expand multi-line accesses themselves via
    :meth:`access_range`).
    """

    def __init__(self, capacity_bytes: int, line_bytes: int = 128, ways: int = 16):
        if capacity_bytes % (line_bytes * ways):
            raise ValueError("capacity must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = capacity_bytes // (line_bytes * ways)
        # tag array: -1 = invalid; per-set LRU tracked with an age counter
        self._tags = np.full((self.num_sets, ways), -1, dtype=np.int64)
        self._ages = np.zeros((self.num_sets, ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> None:
        """Invalidate every line (stats are kept)."""
        self._tags.fill(-1)
        self._ages.fill(0)

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        s = line % self.num_sets
        tag = line // self.num_sets
        self._clock += 1
        tags = self._tags[s]
        hit_ways = np.nonzero(tags == tag)[0]
        if hit_ways.size:
            self._ages[s, hit_ways[0]] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        victim = int(np.argmin(self._ages[s]))
        empty = np.nonzero(tags == -1)[0]
        if empty.size:
            victim = int(empty[0])
        else:
            self.stats.evictions += 1
        self._tags[s, victim] = tag
        self._ages[s, victim] = self._clock
        return False

    def access_lines(self, lines: np.ndarray) -> int:
        """Touch a sequence of line indices; returns the hit count.

        Vectorized over the trace where possible, but correctness (true
        LRU) requires sequential set updates, so this loops in Python —
        fine for the ablation-scale traces it serves.
        """
        lines = np.asarray(lines, dtype=np.int64)
        hits = 0
        for line in lines:
            if self.access(int(line) * self.line_bytes):
                hits += 1
        return hits

    def access_range(self, start: int, nbytes: int) -> int:
        """Touch every line overlapping ``[start, start + nbytes)``."""
        if nbytes <= 0:
            return 0
        first = start // self.line_bytes
        last = (start + nbytes - 1) // self.line_bytes
        return self.access_lines(np.arange(first, last + 1))

    def set_occupancy(self) -> np.ndarray:
        """Valid-line fraction per set (how evenly the trace fills it)."""
        return (self._tags != -1).mean(axis=1)

    def publish(
        self, stats: CacheStats | None = None, registry: MetricsRegistry | None = None
    ) -> None:
        """Emit hit/miss/eviction counters and the per-set occupancy
        distribution to the metrics registry.

        ``stats`` defaults to the cache's lifetime stats; trace drivers
        pass the per-trace delta so repeated publishes never double
        count.
        """
        stats = stats if stats is not None else self.stats
        reg = registry if registry is not None else get_registry()
        reg.counter("simcache.hits").inc(stats.hits)
        reg.counter("simcache.misses").inc(stats.misses)
        reg.counter("simcache.evictions").inc(stats.evictions)
        occ = reg.histogram("simcache.set_occupancy", buckets=FRACTION_BUCKETS)
        for frac in self.set_occupancy():
            occ.observe(float(frac))


def simulate_row_trace(
    cache: LRUCache,
    row_indices: np.ndarray,
    row_bytes: int,
    base_address: int = 0,
) -> CacheStats:
    """Replay reads of feature *rows* (index -> contiguous row) through a cache.

    This is the exact access stream of a gather: ``row_indices[i]`` is
    the input point read by the i-th map entry.  Returns the stats delta
    for this trace.
    """
    before_h, before_m = cache.stats.hits, cache.stats.misses
    before_e = cache.stats.evictions
    row_indices = np.asarray(row_indices, dtype=np.int64)
    for r in row_indices:
        start = base_address + int(r) * row_bytes
        cache.access_range(start, row_bytes if row_bytes else cache.line_bytes)
    delta = CacheStats(
        hits=cache.stats.hits - before_h,
        misses=cache.stats.misses - before_m,
        evictions=cache.stats.evictions - before_e,
    )
    cache.publish(delta)
    return delta
