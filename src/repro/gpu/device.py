"""GPU specification sheets and roofline timing.

Three device models mirror the paper's evaluation hardware.  The numbers
are public datasheet values; the only tuned constants are the occupancy
half-point (how many thread blocks saturate the device) and the kernel
launch overhead, both calibrated against the paper's anchor measurements
(see DESIGN.md Section 6).

A key modeled distinction: GTX 1080Ti has **no FP16 tensor cores**, so
FP16 only helps its memory traffic, not its math throughput — exactly
the paper's Section 5.2 observation that tensor cores contribute only a
minor share of the end-to-end gain.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.memory import DType


@dataclass(frozen=True)
class GPUSpec:
    """Performance-relevant parameters of one GPU.

    Attributes:
        name: marketing name.
        dram_bandwidth: achievable DRAM bandwidth, bytes/s.
        fp32_tflops: peak FP32 math throughput, TFLOP/s.
        fp16_tflops: peak FP16 throughput (tensor cores when present).
        has_fp16_tensor_cores: whether FP16 math beats FP32 math.
        l2_bytes: L2 cache capacity.
        sm_count: number of streaming multiprocessors.
        launch_overhead: fixed cost per kernel launch, seconds.
        blocks_half: thread-block count at which occupancy reaches 50%
            of its asymptote (the regularity knob batching exploits).
    """

    name: str
    dram_bandwidth: float
    fp32_tflops: float
    fp16_tflops: float
    has_fp16_tensor_cores: bool
    l2_bytes: int
    sm_count: int
    #: Exposed per-kernel launch cost.  Raw CUDA launches cost 1-2 us of
    #: CPU time, but kernels enqueued back-to-back on a stream hide most
    #: of it; 0.5 us is the typical exposed cost.
    launch_overhead: float = 0.5e-6
    blocks_half: int = 0

    def __post_init__(self) -> None:
        if self.blocks_half <= 0:
            object.__setattr__(self, "blocks_half", self.sm_count)

    # -- throughput queries -------------------------------------------------

    def math_throughput(self, dtype: DType) -> float:
        """Peak FLOP/s for a dtype (FP16 falls back to FP32 rate without
        tensor cores; INT8 math reuses the FP16 path)."""
        if dtype is DType.FP32:
            return self.fp32_tflops * 1e12
        if self.has_fp16_tensor_cores:
            return self.fp16_tflops * 1e12
        return self.fp32_tflops * 1e12

    def occupancy(self, blocks: int) -> float:
        """Fraction of peak achievable with ``blocks`` resident blocks.

        A saturating curve ``b / (b + blocks_half)`` (clamped to 0.95):
        a handful of blocks leaves most SMs idle — this is the
        irregularity penalty that separate per-offset matmuls pay and
        that grouping repairs.
        """
        if blocks <= 0:
            return 0.0
        return min(0.95, blocks / (blocks + self.blocks_half))

    def mem_time(self, bytes_moved: float, efficiency: float = 1.0) -> float:
        """Seconds to move ``bytes_moved`` at a transaction efficiency."""
        if bytes_moved <= 0:
            return 0.0
        eff = max(1e-3, min(1.0, efficiency))
        return bytes_moved / (self.dram_bandwidth * eff)

    def compute_time(self, flops: float, dtype: DType, utilization: float = 1.0) -> float:
        """Seconds to execute ``flops`` at a utilization fraction."""
        if flops <= 0:
            return 0.0
        util = max(1e-3, min(1.0, utilization))
        return flops / (self.math_throughput(dtype) * util)

    def kernel_time(
        self,
        bytes_moved: float = 0.0,
        flops: float = 0.0,
        dtype: DType = DType.FP32,
        mem_efficiency: float = 1.0,
        utilization: float = 1.0,
        launches: int = 1,
    ) -> float:
        """Roofline latency of one (or several fused) kernel launches."""
        return (
            max(
                self.mem_time(bytes_moved, mem_efficiency),
                self.compute_time(flops, dtype, utilization),
            )
            + launches * self.launch_overhead
        )


GTX_1080TI = GPUSpec(
    name="GTX 1080Ti",
    dram_bandwidth=484e9,
    fp32_tflops=11.3,
    fp16_tflops=11.3,  # no tensor cores: FP16 math at FP32 rate
    has_fp16_tensor_cores=False,
    l2_bytes=2_816 * 1024,
    sm_count=28,
)

RTX_2080TI = GPUSpec(
    name="RTX 2080Ti",
    dram_bandwidth=616e9,
    fp32_tflops=13.4,
    # usable FP16 tensor-core rate for irregular GEMM shapes; the paper's
    # Table 2 separate-matmul anchor (8.1 TFLOP/s at ~30% utilization)
    # implies a ~27 TFLOP/s envelope rather than the 107 marketing peak.
    fp16_tflops=26.9,
    has_fp16_tensor_cores=True,
    l2_bytes=5_632 * 1024,
    sm_count=68,
)

RTX_3090 = GPUSpec(
    name="RTX 3090",
    dram_bandwidth=936e9,
    fp32_tflops=35.6,
    fp16_tflops=39.0,
    has_fp16_tensor_cores=True,
    l2_bytes=6_144 * 1024,
    sm_count=82,
)

#: All modeled devices, keyed by short id.
GPU_REGISTRY = {
    "1080ti": GTX_1080TI,
    "2080ti": RTX_2080TI,
    "3090": RTX_3090,
}

# TorchSparse also supports CPU inference (Section 4.1).  The same
# roofline abstraction fits a CPU with reinterpreted parameters: cores
# stand in for SMs (so very few "blocks" already saturate it), L3 for
# L2, and function-call overhead for kernel launches.  FP16 has no fast
# math path on CPUs, hence fp16 == fp32 throughput.
CPU_16C = GPUSpec(
    name="CPU (16-core)",
    dram_bandwidth=76e9,
    fp32_tflops=1.6,
    fp16_tflops=1.6,
    has_fp16_tensor_cores=False,
    l2_bytes=32 * 1024 * 1024,
    sm_count=16,
    launch_overhead=0.1e-6,
)
