"""Baseline engines modeled after the systems compared in Figure 11.

All baselines share the numerics of the core engine (outputs agree up to
storage precision); they differ in which design decisions they make —
exactly the decisions the paper attributes to each system.
"""

from repro.baselines.minkowski import MinkowskiEngineLike, minkowski_config
from repro.baselines.spconv import SpConvLike, spconv_config

__all__ = [
    "MinkowskiEngineLike",
    "minkowski_config",
    "SpConvLike",
    "spconv_config",
]
