"""SpConv-like baseline (Yan et al., 2018, v1.2.1).

Design decisions the paper ascribes to SpConv:

* **grid**-based map search (SpConv introduced it);
* the gather-matmul-scatter dataflow with **separate** per-offset GEMMs;
* an FP16 mode whose scatter/gather stays **scalar** (non-vectorized) —
  the paper's Figure 8a case, capping its movement speedup near 1.3x;
* per-offset (unfused, weight-stationary) movement order.
"""

from __future__ import annotations

from repro.core.engine import BaseEngine, EngineConfig
from repro.gpu.memory import DType


def spconv_config(fp16: bool = True, **overrides) -> EngineConfig:
    """Configuration reproducing SpConv's design decisions.

    Args:
        fp16: the paper benchmarks SpConv's FP16 mode on tensor-core
            GPUs; pass ``False`` for its FP32 mode.
    """
    from dataclasses import replace

    cfg = EngineConfig(
        name="spconv-like-fp16" if fp16 else "spconv-like-fp32",
        dtype=DType.FP16 if fp16 else DType.FP32,
        vectorized=False,
        fused=False,
        locality_aware=False,
        grouping="separate",
        map_backend="grid",
        fused_downsample=False,
        simplified_logic=False,
        use_map_symmetry=False,
    )
    return replace(cfg, **overrides) if overrides else cfg


class SpConvLike(BaseEngine):
    """Engine preset mirroring SpConv v1.2.1."""

    def __init__(self, config: EngineConfig | None = None, fp16: bool = True):
        super().__init__(config=config or spconv_config(fp16=fp16))
