"""MinkowskiEngine-like baseline (Choy et al., 2019, v0.5.4).

Design decisions the paper ascribes to MinkowskiEngine:

* general **hashmap** coordinate tables (its lineage is SparseConvNet's
  hash-based search);
* **separate** per-offset matrix multiplications, FP32;
* per-offset (unfused, weight-stationary) scatter/gather;
* the **fetch-on-demand** dataflow for *small* workloads (Lin et al.,
  2021), which is why it stays competitive on the 1-frame nuScenes
  MinkUNet (Section 5.2).
"""

from __future__ import annotations

from repro.core.engine import BaseEngine, EngineConfig
from repro.gpu.memory import DType

#: Mean map size below which MinkowskiEngine switches to fetch-on-demand.
FETCH_ON_DEMAND_THRESHOLD = 4096


def minkowski_config(**overrides) -> EngineConfig:
    """Configuration reproducing MinkowskiEngine's design decisions."""
    from dataclasses import replace

    cfg = EngineConfig(
        name="minkowski-like",
        dtype=DType.FP32,
        vectorized=False,
        fused=False,
        locality_aware=False,
        grouping="separate",
        map_backend="hash",
        fused_downsample=False,
        simplified_logic=False,
        use_map_symmetry=False,
        fetch_on_demand_threshold=FETCH_ON_DEMAND_THRESHOLD,
    )
    return replace(cfg, **overrides) if overrides else cfg


class MinkowskiEngineLike(BaseEngine):
    """Engine preset mirroring MinkowskiEngine v0.5.4."""

    def __init__(self, config: EngineConfig | None = None):
        super().__init__(config=config or minkowski_config())
