"""repro: a reproduction of TorchSparse (MLSys 2022).

TorchSparse is a high-performance inference engine for 3D sparse
convolution on point clouds.  This package reimplements the full system
in NumPy:

* exact sparse-convolution numerics (``repro.core``, ``repro.nn``),
* the paper's three optimization families — adaptive matmul grouping,
  quantized/vectorized/fused/locality-aware data movement, and mapping
  optimizations (grid hashmaps, kernel fusion, symmetry),
* baseline engines modeled after MinkowskiEngine and SpConv
  (``repro.baselines``),
* a simulated-GPU cost model standing in for real CUDA hardware
  (``repro.gpu``), and
* synthetic LiDAR datasets standing in for SemanticKITTI / nuScenes /
  Waymo (``repro.datasets``).

Quickstart::

    import numpy as np
    from repro import SparseTensor, nn
    from repro.core.engine import ExecutionContext, TorchSparseEngine
    from repro.gpu.device import RTX_2080TI

    coords = np.array([[0, 0, 0, 0], [0, 1, 0, 0]], dtype=np.int32)
    feats = np.random.randn(2, 4).astype(np.float32)
    x = SparseTensor(coords, feats)
    conv = nn.Conv3d(4, 16, kernel_size=3)
    ctx = ExecutionContext(engine=TorchSparseEngine(), device=RTX_2080TI)
    y = conv(x, ctx)
"""

from repro.core.sparse_tensor import SparseTensor
from repro.version import __version__

__all__ = ["SparseTensor", "__version__"]
