"""Synthetic stand-ins for SemanticKITTI / nuScenes / Waymo.

The paper's dataset-dependent behaviour (Figure 12, Table 1a) comes from
*map-size distributions*: a 64-beam close-range SemanticKITTI sweep
produces far denser voxel neighborhoods than a 32-beam nuScenes sweep.
We reproduce exactly that mechanism: a procedural outdoor scene
(:mod:`repro.datasets.scenes`), a ray-cast LiDAR scanner with
per-dataset beam/range/resolution settings (:mod:`repro.datasets.lidar`,
:mod:`repro.datasets.configs`), and standard sparse voxelization with
optional multi-frame aggregation (:mod:`repro.datasets.voxelize`).
"""

from repro.datasets.configs import (
    DATASETS,
    DatasetConfig,
    nuscenes_like,
    semantic_kitti_like,
    waymo_like,
)
from repro.datasets.lidar import LidarConfig, scan
from repro.datasets.scenes import Scene, make_outdoor_scene
from repro.datasets.voxelize import (
    coarsen_sparse_tensor,
    sparse_quantize,
    to_sparse_tensor,
)

__all__ = [
    "Scene",
    "make_outdoor_scene",
    "LidarConfig",
    "scan",
    "coarsen_sparse_tensor",
    "sparse_quantize",
    "to_sparse_tensor",
    "DatasetConfig",
    "semantic_kitti_like",
    "nuscenes_like",
    "waymo_like",
    "DATASETS",
]
