"""Ray-cast LiDAR scanner.

Casts one ray per (elevation beam, azimuth step) from a sensor above the
ego position and intersects it analytically with the scene's ground
plane, boxes (slab test) and vertical cylinders (quadratic in xy).  The
nearest positive hit inside ``max_range`` becomes a point, with a
reflectivity-and-range-derived intensity, per-point semantic label, and
Gaussian range noise — giving the ring structure and surface sparsity of
real automotive LiDAR, which is what shapes the kernel-map statistics
downstream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.scenes import CLASS_IDS, Scene


@dataclass(frozen=True)
class LidarConfig:
    """Sensor model parameters.

    Attributes:
        beams: number of elevation channels.
        azimuth_steps: rays per revolution.
        fov_up / fov_down: elevation limits in degrees.
        max_range: clipping range in meters.
        height: sensor height above local ground.
        range_noise: sigma of Gaussian range noise (meters).
        dropout: fraction of returns randomly dropped.
    """

    beams: int = 64
    azimuth_steps: int = 2048
    fov_up: float = 3.0
    fov_down: float = -25.0
    max_range: float = 80.0
    height: float = 1.8
    range_noise: float = 0.02
    dropout: float = 0.05

    def scaled(self, factor: float) -> "LidarConfig":
        """Resolution-scaled copy (used to shrink benchmark workloads
        while preserving the scan geometry)."""
        return LidarConfig(
            beams=max(4, int(round(self.beams * factor))),
            azimuth_steps=max(16, int(round(self.azimuth_steps * factor))),
            fov_up=self.fov_up,
            fov_down=self.fov_down,
            max_range=self.max_range,
            height=self.height,
            range_noise=self.range_noise,
            dropout=self.dropout,
        )


@dataclass
class PointCloud:
    """One sweep: xyz points, intensities and semantic labels."""

    xyz: np.ndarray  # (N, 3) float32
    intensity: np.ndarray  # (N,) float32 in [0, 1]
    labels: np.ndarray  # (N,) int32 class ids

    @property
    def num_points(self) -> int:
        return int(self.xyz.shape[0])


def _ray_directions(cfg: LidarConfig) -> np.ndarray:
    elev = np.deg2rad(np.linspace(cfg.fov_down, cfg.fov_up, cfg.beams))
    azim = np.linspace(0, 2 * np.pi, cfg.azimuth_steps, endpoint=False)
    e, a = np.meshgrid(elev, azim, indexing="ij")
    ce = np.cos(e)
    return np.stack(
        [ce * np.cos(a), ce * np.sin(a), np.sin(e)], axis=-1
    ).reshape(-1, 3)


def _intersect_ground(origin: np.ndarray, dirs: np.ndarray, scene: Scene):
    """Flat-plane hit refined once against the undulating height field."""
    dz = dirs[:, 2]
    t = np.full(dirs.shape[0], np.inf)
    down = dz < -1e-6
    t0 = (0.0 - origin[2]) / np.where(down, dz, -1.0)
    # one fixed-point refinement against the height field
    px = origin[0] + t0 * dirs[:, 0]
    py = origin[1] + t0 * dirs[:, 1]
    gz = scene.ground_height(px, py)
    t1 = (gz - origin[2]) / np.where(down, dz, -1.0)
    t[down] = t1[down]
    t[t <= 0] = np.inf
    return t


def _intersect_boxes(origin: np.ndarray, dirs: np.ndarray, scene: Scene):
    """Vectorized slab test; returns per-ray nearest t and box index."""
    m = scene.num_boxes
    n = dirs.shape[0]
    if m == 0:
        return np.full(n, np.inf), np.full(n, -1)
    inv = 1.0 / np.where(np.abs(dirs) < 1e-9, 1e-9, dirs)  # (N, 3)
    lo = (scene.box_lo[None] - origin[None, None]) * inv[:, None, :]
    hi = (scene.box_hi[None] - origin[None, None]) * inv[:, None, :]
    t_near = np.minimum(lo, hi).max(axis=2)  # (N, M)
    t_far = np.maximum(lo, hi).min(axis=2)
    hit = (t_far >= t_near) & (t_far > 0)
    t_near = np.where(t_near > 0, t_near, t_far)  # origin inside box
    t_near = np.where(hit, t_near, np.inf)
    idx = t_near.argmin(axis=1)
    best = t_near[np.arange(n), idx]
    return best, np.where(np.isfinite(best), idx, -1)


def _intersect_cylinders(origin: np.ndarray, dirs: np.ndarray, scene: Scene):
    p = scene.num_cylinders
    n = dirs.shape[0]
    if p == 0:
        return np.full(n, np.inf), np.full(n, -1)
    cx = scene.cyl_xyrh[:, 0][None]  # (1, P)
    cy = scene.cyl_xyrh[:, 1][None]
    r = scene.cyl_xyrh[:, 2][None]
    h = scene.cyl_xyrh[:, 3][None]
    dx, dy = dirs[:, 0][:, None], dirs[:, 1][:, None]
    ox = origin[0] - cx
    oy = origin[1] - cy
    a = dx * dx + dy * dy
    b = 2 * (ox * dx + oy * dy)
    c = ox * ox + oy * oy - r * r
    disc = b * b - 4 * a * c
    ok = (disc >= 0) & (a > 1e-12)
    sqrt_d = np.sqrt(np.where(ok, disc, 0))
    t = (-b - sqrt_d) / np.where(ok, 2 * a, 1.0)
    z = origin[2] + t * dirs[:, 2][:, None]
    valid = ok & (t > 0) & (z >= 0) & (z <= h)
    t = np.where(valid, t, np.inf)
    idx = t.argmin(axis=1)
    best = t[np.arange(n), idx]
    return best, np.where(np.isfinite(best), idx, -1)


def scan(
    scene: Scene,
    cfg: LidarConfig,
    ego_xy: tuple = (0.0, 0.0),
    seed: int = 0,
) -> PointCloud:
    """One full revolution from ``ego_xy``; returns the hit points."""
    rng = np.random.default_rng(seed)
    origin = np.array(
        [ego_xy[0], ego_xy[1], scene.ground_height(*map(np.asarray, ego_xy)) + cfg.height],
        dtype=float,
    )
    dirs = _ray_directions(cfg)

    t_g = _intersect_ground(origin, dirs, scene)
    t_b, i_b = _intersect_boxes(origin, dirs, scene)
    t_c, i_c = _intersect_cylinders(origin, dirs, scene)

    t = np.minimum(np.minimum(t_g, t_b), t_c)
    hit = np.isfinite(t) & (t <= cfg.max_range) & (t > 0.5)

    which = np.zeros(dirs.shape[0], dtype=np.int32)  # 0 ground, 1 box, 2 cyl
    which[(t_b <= t_g) & (t_b <= t_c)] = 1
    which[(t_c < t_b) & (t_c <= t_g)] = 2

    labels = np.full(dirs.shape[0], CLASS_IDS["ground"], dtype=np.int32)
    box_hit = hit & (which == 1)
    labels[box_hit] = scene.box_class[i_b[box_hit]]
    cyl_hit = hit & (which == 2)
    labels[cyl_hit] = scene.cyl_class[i_c[cyl_hit]]

    reflect = np.full(dirs.shape[0], 0.2)  # ground reflectivity
    reflect[box_hit] = scene.box_reflect[i_b[box_hit]]
    reflect[cyl_hit] = scene.cyl_reflect[i_c[cyl_hit]]

    if cfg.dropout > 0:
        hit &= rng.random(dirs.shape[0]) >= cfg.dropout

    t_hit = t[hit] + rng.normal(0, cfg.range_noise, int(hit.sum()))
    xyz = origin[None] + t_hit[:, None] * dirs[hit]
    intensity = np.clip(
        reflect[hit] * (1.0 - 0.7 * t[hit] / cfg.max_range)
        + rng.normal(0, 0.02, t_hit.shape),
        0.0,
        1.0,
    )
    return PointCloud(
        xyz=xyz.astype(np.float32),
        intensity=intensity.astype(np.float32),
        labels=labels[hit],
    )


def multi_frame_scan(
    scene: Scene,
    cfg: LidarConfig,
    frames: int,
    ego_speed: float = 5.0,
    seed: int = 0,
) -> PointCloud:
    """Aggregate ``frames`` sweeps along the ego trajectory into the
    latest frame's coordinate system (the paper's 1/3/10-frame models)."""
    clouds = []
    for f in range(frames):
        # frames are captured at 0.1 s spacing, newest last
        offset = -ego_speed * 0.1 * (frames - 1 - f)
        pc = scan(scene, cfg, ego_xy=(offset, 0.0), seed=seed + f)
        # register into the newest frame (translate by the ego motion)
        pc.xyz[:, 0] -= offset
        clouds.append(pc)
    return PointCloud(
        xyz=np.concatenate([c.xyz for c in clouds]),
        intensity=np.concatenate([c.intensity for c in clouds]),
        labels=np.concatenate([c.labels for c in clouds]),
    )
