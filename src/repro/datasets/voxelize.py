"""Sparse voxelization.

Quantizes a point cloud to integer voxel coordinates, deduplicates, and
averages the per-voxel features — the standard preprocessing in front of
every sparse CNN the paper evaluates.  Features follow the common
convention ``(x, y, z, intensity)`` with xyz kept in metric units.
"""

from __future__ import annotations

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.datasets.lidar import PointCloud
from repro.hashmap.coords import pack_coords


def sparse_quantize(
    xyz: np.ndarray,
    features: np.ndarray,
    voxel_size: float,
    batch_index: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantize points to voxels, averaging features of co-located points.

    Returns:
        ``(coords, feats)`` where coords are ``(N, 4)`` ``int32`` rows of
        ``(batch, x, y, z)`` shifted to be non-negative, and feats are the
        per-voxel feature means.
    """
    if voxel_size <= 0:
        raise ValueError("voxel_size must be positive")
    xyz = np.asarray(xyz, dtype=np.float64)
    features = np.asarray(features, dtype=np.float32)
    if xyz.ndim != 2 or xyz.shape[1] != 3:
        raise ValueError(f"xyz must be (N, 3), got {xyz.shape}")
    if features.shape[0] != xyz.shape[0]:
        raise ValueError("features and xyz must have equal lengths")
    if xyz.shape[0] == 0:
        return np.empty((0, 4), dtype=np.int32), np.empty(
            (0, features.shape[1] if features.ndim == 2 else 0), dtype=np.float32
        )

    grid = np.floor(xyz / voxel_size).astype(np.int64)
    grid -= grid.min(axis=0)  # non-negative coordinates
    coords = np.concatenate(
        [np.full((grid.shape[0], 1), batch_index, dtype=np.int64), grid], axis=1
    )
    keys = pack_coords(coords)
    uniq, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)

    feats = np.zeros((uniq.shape[0], features.shape[1]), dtype=np.float64)
    np.add.at(feats, inverse, features.astype(np.float64))
    feats /= counts[:, None]

    # representative coordinates per unique key (first occurrence)
    first = np.full(uniq.shape[0], -1, dtype=np.int64)
    order = np.argsort(inverse, kind="stable")
    pos = np.searchsorted(inverse[order], np.arange(uniq.shape[0]))
    first = order[pos]
    out_coords = coords[first].astype(np.int32)
    return out_coords, feats.astype(np.float32)


def to_sparse_tensor(
    cloud: PointCloud,
    voxel_size: float,
    batch_index: int = 0,
    policy: str | None = None,
) -> SparseTensor:
    """Voxelize a scanned cloud into a ready-to-run :class:`SparseTensor`.

    Feature layout: ``(x, y, z, intensity)``.

    Args:
        policy: when set (``"strict"``/``"repair"``/``"reject"``), run
            the voxelized cloud through :mod:`repro.robust.validate` —
            the dataset-boundary hardening used by the chaos harness and
            by loaders ingesting untrusted scans.  ``None`` skips it.
    """
    features = np.concatenate(
        [cloud.xyz, cloud.intensity[:, None]], axis=1
    ).astype(np.float32)
    coords, feats = sparse_quantize(cloud.xyz, features, voxel_size, batch_index)
    if policy is not None:
        return SparseTensor.sanitized(coords, feats, policy=policy)
    return SparseTensor(coords, feats)


def coarsen_sparse_tensor(tensor: SparseTensor, factor: int) -> SparseTensor:
    """Requantize a voxelized tensor onto a ``factor``x coarser grid.

    The resolution lever of the serving layer's brownout ladder: integer-
    dividing the voxel coordinates merges every ``factor^3`` block of fine
    voxels into one coarse voxel (features averaged, same dedup/averaging
    scheme as :func:`sparse_quantize`), which is exactly what voxelizing
    the original cloud at ``factor x voxel_size`` would produce up to the
    grid origin.  Working from the already-voxelized tensor means the
    latency oracle can reprice a model at reduced resolution without
    re-reading the dataset.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return tensor
    coords = np.asarray(tensor.coords, dtype=np.int64)
    features = np.asarray(tensor.feats, dtype=np.float64)
    if coords.shape[0] == 0:
        return tensor
    coarse = coords.copy()
    coarse[:, 1:] //= factor
    keys = pack_coords(coarse)
    uniq, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    feats = np.zeros((uniq.shape[0], features.shape[1]), dtype=np.float64)
    np.add.at(feats, inverse, features)
    feats /= counts[:, None]
    order = np.argsort(inverse, kind="stable")
    pos = np.searchsorted(inverse[order], np.arange(uniq.shape[0]))
    first = order[pos]
    return SparseTensor(
        coarse[first].astype(np.int32), feats.astype(np.float32)
    )


def voxel_labels(
    cloud: PointCloud, voxel_size: float, num_classes: int
) -> np.ndarray:
    """Majority-vote semantic label per voxel (for segmentation examples).

    Voxel order matches :func:`to_sparse_tensor` for the same inputs.
    """
    xyz = cloud.xyz.astype(np.float64)
    grid = np.floor(xyz / voxel_size).astype(np.int64)
    grid -= grid.min(axis=0)
    coords = np.concatenate(
        [np.zeros((grid.shape[0], 1), dtype=np.int64), grid], axis=1
    )
    keys = pack_coords(coords)
    uniq, inverse = np.unique(keys, return_inverse=True)
    votes = np.zeros((uniq.shape[0], num_classes), dtype=np.int64)
    np.add.at(votes, (inverse, cloud.labels), 1)
    return votes.argmax(axis=1).astype(np.int32)
