"""Per-dataset sensor and voxelization presets.

Each preset mirrors the salient properties of its real counterpart —
beam count, range, resolution and voxel size — which is what drives the
paper's cross-dataset differences (nuScenes kernel maps are much smaller
than SemanticKITTI's; Waymo detection scenes are the heaviest).

``scale`` uniformly shrinks the angular resolution so tests and
benchmarks can run the same pipelines on laptop-sized workloads; the
*relative* statistics between datasets are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.datasets.lidar import LidarConfig, PointCloud, multi_frame_scan, scan
from repro.datasets.scenes import make_outdoor_scene
from repro.datasets.voxelize import to_sparse_tensor


@dataclass(frozen=True)
class DatasetConfig:
    """One synthetic dataset preset."""

    name: str
    lidar: LidarConfig
    voxel_size: float
    frames: int = 1
    extent: float = 100.0
    #: optional (z_min, z_max) crop in meters — detection pipelines crop
    #: to the height band of interest, which also bounds grid-table sizes
    z_crop: tuple | None = None

    def sample(self, seed: int = 0, scale: float = 1.0) -> PointCloud:
        """Scan one scene (deterministic in ``seed``)."""
        scene = make_outdoor_scene(seed=seed, extent=self.extent)
        cfg = self.lidar if scale == 1.0 else self.lidar.scaled(scale)
        if self.frames > 1:
            cloud = multi_frame_scan(scene, cfg, frames=self.frames, seed=seed)
        else:
            cloud = scan(scene, cfg, seed=seed)
        if self.z_crop is not None:
            lo, hi = self.z_crop
            keep = (cloud.xyz[:, 2] >= lo) & (cloud.xyz[:, 2] <= hi)
            cloud = PointCloud(
                xyz=cloud.xyz[keep],
                intensity=cloud.intensity[keep],
                labels=cloud.labels[keep],
            )
        return cloud

    def sample_tensor(self, seed: int = 0, scale: float = 1.0) -> SparseTensor:
        """Scan + voxelize one input."""
        return to_sparse_tensor(self.sample(seed=seed, scale=scale), self.voxel_size)

    def sample_many(
        self, n: int, scale: float = 1.0, seed0: int = 0
    ) -> list:
        """A small evaluation set (the tuner's ~100-sample subset)."""
        return [self.sample_tensor(seed=seed0 + i, scale=scale) for i in range(n)]

    def with_frames(self, frames: int) -> "DatasetConfig":
        from dataclasses import replace

        return replace(self, name=f"{self.name}-{frames}f", frames=frames)

    def cropped(self, z_min: float, z_max: float) -> "DatasetConfig":
        """Detection-style height crop (see ``z_crop``)."""
        from dataclasses import replace

        return replace(self, z_crop=(z_min, z_max))

    def coarsened(self, factor: int) -> "DatasetConfig":
        """The same dataset voxelized ``factor``x coarser (brownout's
        resolution rung)."""
        from dataclasses import replace

        if factor < 1:
            raise ValueError("factor must be >= 1")
        if factor == 1:
            return self
        return replace(
            self,
            name=f"{self.name}-vox{factor}x",
            voxel_size=self.voxel_size * factor,
        )


def semantic_kitti_like() -> DatasetConfig:
    """64-beam close-range segmentation dataset, 5 cm voxels."""
    return DatasetConfig(
        name="semantic-kitti-like",
        lidar=LidarConfig(
            beams=64,
            azimuth_steps=2048,
            fov_up=3.0,
            fov_down=-25.0,
            max_range=80.0,
        ),
        voxel_size=0.05,
    )


def nuscenes_like(frames: int = 1) -> DatasetConfig:
    """32-beam sparser sweeps, 10 cm voxels, optional frame aggregation."""
    base = DatasetConfig(
        name="nuscenes-like",
        lidar=LidarConfig(
            beams=32,
            azimuth_steps=1090,
            fov_up=10.0,
            fov_down=-30.0,
            max_range=70.0,
        ),
        voxel_size=0.1,
    )
    return base if frames == 1 else base.with_frames(frames)


def waymo_like(frames: int = 1) -> DatasetConfig:
    """64-beam mid-range detection dataset, 10 cm voxels."""
    base = DatasetConfig(
        name="waymo-like",
        lidar=LidarConfig(
            beams=64,
            azimuth_steps=2650,
            fov_up=2.4,
            fov_down=-17.6,
            max_range=75.0,
        ),
        voxel_size=0.1,
    )
    return base if frames == 1 else base.with_frames(frames)


#: Registry used by benchmarks and examples.
DATASETS = {
    "semantic-kitti": semantic_kitti_like,
    "nuscenes": nuscenes_like,
    "waymo": waymo_like,
}


def tensor_stats(t: SparseTensor) -> dict:
    """Quick shape summary used in reports."""
    c = t.coords[:, 1:].astype(np.int64)
    extent = (c.max(axis=0) - c.min(axis=0) + 1) if t.num_points else np.zeros(3)
    return {
        "points": t.num_points,
        "channels": t.num_channels,
        "extent": tuple(int(e) for e in extent),
    }
