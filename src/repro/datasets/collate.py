"""Batching utilities.

Sparse tensors carry their batch index in the first coordinate column,
so batched inference is just a coordinate-space concatenation — the
engine's mapping step keeps batches separate for free (a property the
test suite verifies).
"""

from __future__ import annotations

import numpy as np

from repro.core.sparse_tensor import SparseTensor


def batch_collate(tensors: list[SparseTensor]) -> SparseTensor:
    """Merge single-sample tensors into one batched tensor.

    Each input must be a batch-0 tensor (the usual output of
    voxelization); sample ``i`` is assigned batch index ``i``.

    Raises:
        ValueError: (as :class:`~repro.robust.errors
            .InputValidationError`) on empty input, mismatched channel
            counts, feature dtypes, or strides, or inputs that already
            carry a nonzero batch index.  ``np.concatenate`` would
            otherwise silently upcast a mixed-dtype batch to the widest
            input, changing every member's numerics.
    """
    from repro.robust.errors import InputValidationError

    if not tensors:
        raise InputValidationError("need at least one tensor to collate")
    c = tensors[0].num_channels
    dtype = tensors[0].feats.dtype
    stride = tensors[0].stride
    coords_list = []
    feats_list = []
    for i, t in enumerate(tensors):
        if t.num_channels != c:
            raise InputValidationError(
                f"all tensors must share a channel count; tensor {i} has "
                f"{t.num_channels} channels, tensor 0 has {c}"
            )
        if t.feats.dtype != dtype:
            raise InputValidationError(
                f"all tensors must share a feature dtype; tensor {i} is "
                f"{t.feats.dtype}, tensor 0 is {dtype} — concatenation "
                "would silently upcast the batch"
            )
        if t.stride != stride:
            raise InputValidationError("all tensors must share a stride")
        if t.num_points and (t.coords[:, 0] != 0).any():
            raise InputValidationError(
                f"tensor {i} already carries batch indices"
            )
        coords = t.coords.copy()
        coords[:, 0] = i
        coords_list.append(coords)
        feats_list.append(t.feats)
    return SparseTensor(
        np.concatenate(coords_list, axis=0),
        np.concatenate(feats_list, axis=0),
        stride=stride,
    )


def batch_split(t: SparseTensor) -> list[SparseTensor]:
    """Invert :func:`batch_collate`: one zero-indexed tensor per batch."""
    out = []
    for b in range(t.batch_size):
        s = t.batch_slice(b)
        coords = s.coords.copy()
        coords[:, 0] = 0
        out.append(SparseTensor(coords, s.feats, stride=t.stride))
    return out
