"""Procedural outdoor driving scenes.

A scene is a small analytic world the LiDAR scanner can ray-cast:

* a ground plane with gentle height variation,
* axis-aligned boxes (buildings lining a street corridor, parked and
  moving vehicles),
* vertical cylinders (poles, tree trunks).

Every surface carries a semantic class id and a base reflectivity used
to synthesize intensities, so the same scenes also feed the
segmentation example end-to-end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Semantic classes used across examples/benchmarks.
CLASSES = ("ground", "building", "vehicle", "pole", "vegetation")
CLASS_IDS = {name: i for i, name in enumerate(CLASSES)}


@dataclass
class Scene:
    """Analytic scene geometry.

    Attributes:
        box_lo / box_hi: ``(M, 3)`` corners of axis-aligned boxes.
        box_class: ``(M,)`` semantic class per box.
        box_reflect: ``(M,)`` base reflectivity per box.
        cyl_xyrh: ``(P, 4)`` cylinders as ``(x, y, radius, height)``.
        cyl_class / cyl_reflect: per-cylinder class and reflectivity.
        ground_amp / ground_freq: ground undulation parameters; height is
            ``ground_amp * (sin(fx x) + cos(fy y))``.
    """

    box_lo: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))
    box_hi: np.ndarray = field(default_factory=lambda: np.zeros((0, 3)))
    box_class: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int32))
    box_reflect: np.ndarray = field(default_factory=lambda: np.zeros(0))
    cyl_xyrh: np.ndarray = field(default_factory=lambda: np.zeros((0, 4)))
    cyl_class: np.ndarray = field(default_factory=lambda: np.zeros(0, dtype=np.int32))
    cyl_reflect: np.ndarray = field(default_factory=lambda: np.zeros(0))
    ground_amp: float = 0.15
    ground_freq: tuple = (0.05, 0.08)

    def ground_height(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        fx, fy = self.ground_freq
        return self.ground_amp * (np.sin(fx * x) + np.cos(fy * y))

    @property
    def num_boxes(self) -> int:
        return int(self.box_lo.shape[0])

    @property
    def num_cylinders(self) -> int:
        return int(self.cyl_xyrh.shape[0])


def _add_box(boxes: list, center, size, cls: str, reflect: float) -> None:
    c = np.asarray(center, dtype=float)
    s = np.asarray(size, dtype=float) / 2.0
    boxes.append((c - s, c + s, CLASS_IDS[cls], reflect))


def make_outdoor_scene(
    seed: int = 0,
    extent: float = 100.0,
    num_buildings: int = 14,
    num_vehicles: int = 12,
    num_poles: int = 20,
) -> Scene:
    """Generate a street-corridor scene.

    Buildings line both sides of a street running along +x; vehicles sit
    on the road surface; poles and trunks stand on the sidewalks.  All
    placement is jittered by ``seed`` so a sequence of seeds yields the
    varied per-sample workloads the adaptive tuner trains on.
    """
    rng = np.random.default_rng(seed)
    boxes: list = []
    street_half = 8.0 + rng.uniform(-1, 1)

    for side in (-1, 1):
        x = -extent / 2
        n_side = max(1, num_buildings // 2)
        for _ in range(n_side):
            depth = rng.uniform(8, 20)
            width = rng.uniform(10, 25)
            height = rng.uniform(6, 25)
            gap = rng.uniform(2, 10)
            cy = side * (street_half + depth / 2 + rng.uniform(0, 4))
            _add_box(
                boxes,
                (x + width / 2, cy, height / 2),
                (width, depth, height),
                "building",
                0.35 + rng.uniform(-0.1, 0.1),
            )
            x += width + gap
            if x > extent / 2:
                break

    for _ in range(num_vehicles):
        cx = rng.uniform(-extent / 2, extent / 2)
        lane = rng.choice([-1, 1]) * rng.uniform(1.5, street_half - 1.5)
        length, width, height = rng.uniform(3.8, 5.2), 1.9, rng.uniform(1.4, 2.1)
        if rng.random() < 0.15:  # occasional truck
            length, height = rng.uniform(7, 12), rng.uniform(2.6, 3.6)
        _add_box(
            boxes,
            (cx, lane, height / 2),
            (length, width, height),
            "vehicle",
            0.55 + rng.uniform(-0.1, 0.2),
        )

    cyls = []
    for _ in range(num_poles):
        cx = rng.uniform(-extent / 2, extent / 2)
        cy = rng.choice([-1, 1]) * (street_half + rng.uniform(0.5, 3.0))
        if rng.random() < 0.5:
            cyls.append((cx, cy, rng.uniform(0.08, 0.2), rng.uniform(4, 8),
                         CLASS_IDS["pole"], 0.4))
        else:
            cyls.append((cx, cy, rng.uniform(0.2, 0.5), rng.uniform(3, 9),
                         CLASS_IDS["vegetation"], 0.25))

    lo = np.array([b[0] for b in boxes]) if boxes else np.zeros((0, 3))
    hi = np.array([b[1] for b in boxes]) if boxes else np.zeros((0, 3))
    return Scene(
        box_lo=lo,
        box_hi=hi,
        box_class=np.array([b[2] for b in boxes], dtype=np.int32),
        box_reflect=np.array([b[3] for b in boxes]),
        cyl_xyrh=np.array([c[:4] for c in cyls]) if cyls else np.zeros((0, 4)),
        cyl_class=np.array([c[4] for c in cyls], dtype=np.int32),
        cyl_reflect=np.array([c[5] for c in cyls]),
    )
