"""CenterPoint (Yin et al., 2021) 3D object detector.

Architecture, following the paper's evaluation setup:

1. **sparse 3D encoder** — a SECOND-style backbone: a submanifold stem
   then three strided stages, each one strided sparse conv plus two
   submanifold convs (all executed by the configured sparse engine);
2. **BEV projection** — the stride-8 sparse tensor is flattened along z
   into a dense bird's-eye-view feature map;
3. **dense head** — two shared 3x3 dense convs, a class *center
   heatmap* branch and a box regression branch
   ``(dx, dy, z, log w, log l, log h)``;
4. **decoding** — local-maximum peak picking on the sigmoid heatmap
   followed by axis-aligned BEV NMS.

Stages 2-4 run as conventional dense computation billed to the "other"
profile stage — the ~10% of detector runtime the paper excludes when
quoting sparse-conv speedups.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core.engine import ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.nn.dense import conv2d, relu2d, sigmoid


@dataclass(frozen=True)
class Detection:
    """One decoded box (BEV axis-aligned)."""

    x: float
    y: float
    z: float
    w: float
    l: float  # noqa: E741 - standard box naming
    h: float
    score: float
    label: int


def bev_iou(a: Detection, b: Detection) -> float:
    """Axis-aligned IoU of two boxes in the BEV plane."""
    ax1, ax2 = a.x - a.w / 2, a.x + a.w / 2
    ay1, ay2 = a.y - a.l / 2, a.y + a.l / 2
    bx1, bx2 = b.x - b.w / 2, b.x + b.w / 2
    by1, by2 = b.y - b.l / 2, b.y + b.l / 2
    ix = max(0.0, min(ax2, bx2) - max(ax1, bx1))
    iy = max(0.0, min(ay2, by2) - max(ay1, by1))
    inter = ix * iy
    union = a.w * a.l + b.w * b.l - inter
    return 0.0 if union <= 0 else inter / union


def nms(dets: list, iou_threshold: float = 0.5) -> list:
    """Greedy score-descending non-maximum suppression."""
    dets = sorted(dets, key=lambda d: d.score, reverse=True)
    kept: list = []
    for d in dets:
        if all(bev_iou(d, k) <= iou_threshold for k in kept):
            kept.append(d)
    return kept


class SparseEncoder(nn.Module):
    """SECOND-style sparse 3D backbone (stride 1 -> 8)."""

    def __init__(self, in_channels: int, rng: np.random.Generator):
        super().__init__()
        chans = (16, 32, 64, 128)
        self.stem = self.add_child(
            "stem",
            nn.Sequential(
                nn.Conv3d(in_channels, chans[0], 3, rng=rng),
                nn.BatchNorm(chans[0]),
                nn.ReLU(),
            ),
        )
        self.stages = []
        for i in range(3):
            stage = nn.Sequential(
                nn.Conv3d(chans[i], chans[i + 1], 3, stride=2, rng=rng),
                nn.BatchNorm(chans[i + 1]),
                nn.ReLU(),
                nn.Conv3d(chans[i + 1], chans[i + 1], 3, rng=rng),
                nn.BatchNorm(chans[i + 1]),
                nn.ReLU(),
                nn.Conv3d(chans[i + 1], chans[i + 1], 3, rng=rng),
                nn.BatchNorm(chans[i + 1]),
                nn.ReLU(),
            )
            self.stages.append(self.add_child(f"stage{i}", stage))
        self.out_channels = chans[-1]

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        x = self.stem(x, ctx)
        for stage in self.stages:
            x = stage(x, ctx)
        return x


class CenterPoint(nn.Module):
    """Full detector: sparse encoder + dense BEV center head.

    Args:
        in_channels: point feature width.
        num_classes: heatmap classes.
        head_channels: width of the shared dense head convs.
        seed: weight-initialization seed.
    """

    REG_DIMS = 6  # dx, dy, z, log w, log l, log h

    def __init__(
        self,
        in_channels: int = 4,
        num_classes: int = 3,
        head_channels: int = 128,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.num_classes = num_classes
        self.encoder = self.add_child("encoder", SparseEncoder(in_channels, rng))
        c = self.encoder.out_channels

        def w2d(k, ci, co):
            return (rng.standard_normal((k, k, ci, co)) * np.sqrt(2 / (k * k * ci))).astype(
                np.float32
            )

        self.head_w1 = w2d(3, c, head_channels)
        self.head_w2 = w2d(3, head_channels, head_channels)
        self.head_w3 = w2d(3, head_channels, head_channels)
        self.heat_w = w2d(1, head_channels, num_classes)
        self.reg_w = w2d(1, head_channels, self.REG_DIMS)
        self.params = [
            self.head_w1, self.head_w2, self.head_w3, self.heat_w, self.reg_w
        ]

    # -- BEV projection ------------------------------------------------------

    @staticmethod
    def to_bev(x: SparseTensor, ctx: ExecutionContext) -> tuple:
        """Flatten a sparse tensor along z into a dense (H, W, C) map.

        Co-located voxels (same x, y) are max-pooled.  Returns the map
        and its (x, y) origin in stride units.
        """
        c = x.coords.astype(np.int64)
        ox, oy = c[:, 1].min(), c[:, 2].min()
        h = int(c[:, 1].max() - ox) + 1
        w = int(c[:, 2].max() - oy) + 1
        bev = np.full((h, w, x.num_channels), -np.inf, dtype=np.float32)
        np.maximum.at(bev, (c[:, 1] - ox, c[:, 2] - oy), x.feats)
        bev[np.isneginf(bev)] = 0.0
        nbytes = x.num_points * x.num_channels * ctx.engine.config.dtype.nbytes * 2
        ctx.profile.log(
            "to_bev",
            "other",
            ctx.device.mem_time(nbytes) + ctx.device.launch_overhead,
            bytes_moved=nbytes,
        )
        return bev, (int(ox), int(oy))

    # -- head + decoding -----------------------------------------------------

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> dict:
        feat3d = self.encoder(x, ctx)
        bev, origin = self.to_bev(feat3d, ctx)
        h = relu2d(conv2d(bev, self.head_w1, ctx, name=f"{self.name}.head1"), ctx)
        h = relu2d(conv2d(h, self.head_w2, ctx, name=f"{self.name}.head2"), ctx)
        h = relu2d(conv2d(h, self.head_w3, ctx, name=f"{self.name}.head3"), ctx)
        heatmap = conv2d(h, self.heat_w, ctx, name=f"{self.name}.heatmap")
        reg = conv2d(h, self.reg_w, ctx, name=f"{self.name}.reg")
        return {
            "heatmap": heatmap,
            "regression": reg,
            "bev_origin": origin,
            "bev_stride": feat3d.stride,
            "sparse_features": feat3d,
        }

    def decode(
        self,
        outputs: dict,
        ctx: ExecutionContext,
        voxel_size: float = 0.1,
        score_threshold: float = 0.3,
        iou_threshold: float = 0.5,
        max_dets: int = 100,
    ) -> list:
        """Peak-pick the heatmap and run NMS; returns metric-space boxes."""
        heat = sigmoid(outputs["heatmap"])
        reg = outputs["regression"]
        ox, oy = outputs["bev_origin"]
        stride = outputs["bev_stride"]
        cell = voxel_size * stride

        # 3x3 local-maximum test per class
        hpad = np.pad(heat, ((1, 1), (1, 1), (0, 0)), constant_values=-1)
        neigh = np.stack(
            [
                hpad[1 + dy : hpad.shape[0] - 1 + dy, 1 + dx : hpad.shape[1] - 1 + dx]
                for dy in (-1, 0, 1)
                for dx in (-1, 0, 1)
                if (dy, dx) != (0, 0)
            ]
        ).max(axis=0)
        peaks = (heat >= neigh) & (heat >= score_threshold)

        dets: list = []
        ys, xs, cls = np.nonzero(peaks)
        order = np.argsort(heat[ys, xs, cls])[::-1][:max_dets]
        for i in order:
            yy, xx, cc = int(ys[i]), int(xs[i]), int(cls[i])
            r = reg[yy, xx]
            dets.append(
                Detection(
                    x=(yy + ox + float(np.tanh(r[0]))) * cell,
                    y=(xx + oy + float(np.tanh(r[1]))) * cell,
                    z=float(r[2]),
                    w=float(np.exp(np.clip(r[3], -3, 3))) * cell,
                    l=float(np.exp(np.clip(r[4], -3, 3))) * cell,
                    h=float(np.exp(np.clip(r[5], -3, 3))),
                    score=float(heat[yy, xx, cc]),
                    label=cc,
                )
            )
        nbytes = heat.size * 4 * 2
        ctx.profile.log(
            "nms",
            "other",
            ctx.device.mem_time(nbytes) + 10 * ctx.device.launch_overhead,
            bytes_moved=nbytes,
        )
        return nms(dets, iou_threshold)
