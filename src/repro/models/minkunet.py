"""MinkUNet (Choy et al., 2019) for semantic segmentation.

The standard 4-stage sparse U-Net used throughout the paper's
segmentation benchmarks: a two-conv stem, four strided encoder stages of
two residual blocks each, and four transposed-conv decoder stages with
skip concatenation, closed by a per-point linear classifier.  The
``width`` multiplier produces the 0.5x variant the paper profiles.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.engine import ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.nn.modules import concat_skip

#: Channel plan of the reference MinkUNet (stem + 4 down + 4 up).
BASE_CHANNELS = (32, 32, 64, 128, 256, 256, 128, 96, 96)


def _block(c_in: int, c_out: int, rng: np.random.Generator) -> nn.Residual:
    """ResNet basic block with an optional projection shortcut."""
    main = nn.Sequential(
        nn.Conv3d(c_in, c_out, 3, rng=rng),
        nn.BatchNorm(c_out),
        nn.ReLU(),
        nn.Conv3d(c_out, c_out, 3, rng=rng),
        nn.BatchNorm(c_out),
    )
    shortcut = None
    if c_in != c_out:
        shortcut = nn.Sequential(
            nn.Conv3d(c_in, c_out, 1, rng=rng), nn.BatchNorm(c_out)
        )
    return nn.Residual(main, shortcut)


class MinkUNet(nn.Module):
    """Sparse segmentation U-Net.

    Args:
        in_channels: input feature width (4 for ``x, y, z, intensity``).
        num_classes: classifier output width.
        width: channel multiplier (1.0 or 0.5 in the paper).
        seed: weight-initialization seed.
    """

    def __init__(
        self,
        in_channels: int = 4,
        num_classes: int = 19,
        width: float = 1.0,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        cs = [max(8, int(round(c * width))) for c in BASE_CHANNELS]
        self.width = width
        self.num_classes = num_classes

        self.stem = self.add_child(
            "stem",
            nn.Sequential(
                nn.Conv3d(in_channels, cs[0], 3, rng=rng),
                nn.BatchNorm(cs[0]),
                nn.ReLU(),
                nn.Conv3d(cs[0], cs[0], 3, rng=rng),
                nn.BatchNorm(cs[0]),
                nn.ReLU(),
            ),
        )

        enc_in = (cs[0], cs[1], cs[2], cs[3])
        enc_out = (cs[1], cs[2], cs[3], cs[4])
        self.down = []
        self.enc_blocks = []
        for i in range(4):
            down = nn.Sequential(
                nn.Conv3d(enc_in[i], enc_in[i], 2, stride=2, rng=rng),
                nn.BatchNorm(enc_in[i]),
                nn.ReLU(),
            )
            blocks = nn.Sequential(
                _block(enc_in[i], enc_out[i], rng), _block(enc_out[i], enc_out[i], rng)
            )
            self.down.append(self.add_child(f"down{i}", down))
            self.enc_blocks.append(self.add_child(f"enc{i}", blocks))

        # decoder: up-convs then blocks consuming [up, skip] concatenation
        dec_out = (cs[5], cs[6], cs[7], cs[8])
        skip_ch = (cs[3], cs[2], cs[1], cs[0])
        dec_in = (cs[4], *dec_out[:-1])
        self.up = []
        self.dec_blocks = []
        for i in range(4):
            up = nn.Sequential(
                nn.Conv3d(
                    dec_in[i], dec_out[i], 2, stride=2, transposed=True, rng=rng
                ),
                nn.BatchNorm(dec_out[i]),
                nn.ReLU(),
            )
            blocks = nn.Sequential(
                _block(dec_out[i] + skip_ch[i], dec_out[i], rng),
                _block(dec_out[i], dec_out[i], rng),
            )
            self.up.append(self.add_child(f"up{i}", up))
            self.dec_blocks.append(self.add_child(f"dec{i}", blocks))

        self.classifier = self.add_child(
            "classifier", nn.Linear(cs[8], num_classes, rng=rng)
        )

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        x = self.stem(x, ctx)
        skips = [x]
        for i in range(4):
            x = self.down[i](x, ctx)
            x = self.enc_blocks[i](x, ctx)
            skips.append(x)
        for i in range(4):
            x = self.up[i](x, ctx)
            x = concat_skip(x, skips[3 - i], ctx, name=f"{self.name}.skip{i}")
            x = self.dec_blocks[i](x, ctx)
        return self.classifier(x, ctx)
