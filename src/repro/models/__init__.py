"""The seven evaluated networks.

* :func:`repro.models.minkunet.MinkUNet` — segmentation U-Net at 0.5x /
  1.0x width (SemanticKITTI) and 1/3-frame variants (nuScenes-LiDARSeg);
* :class:`repro.models.centerpoint.CenterPoint` — sparse 3D encoder +
  dense BEV center-heatmap detection head (nuScenes / Waymo).

``model_zoo`` enumerates the paper's exact seven model/dataset pairs for
the end-to-end benchmarks (Figures 11/14).
"""

from repro.models.centerpoint import CenterPoint
from repro.models.minkunet import MinkUNet
from repro.models.spvcnn import SPVCNN
from repro.models.zoo import MODEL_ZOO, ZooEntry, model_zoo

__all__ = ["MinkUNet", "CenterPoint", "SPVCNN", "model_zoo", "MODEL_ZOO", "ZooEntry"]
