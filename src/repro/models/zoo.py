"""The paper's seven evaluated model/dataset pairs (Section 5.1).

=====  =======================  ===========================
 #     model                    dataset
=====  =======================  ===========================
 1     MinkUNet (0.5x)          SemanticKITTI
 2     MinkUNet (1.0x)          SemanticKITTI
 3     MinkUNet (1 frame)       nuScenes-LiDARSeg
 4     MinkUNet (3 frames)      nuScenes-LiDARSeg
 5     CenterPoint (10 frames)  nuScenes detection
 6     CenterPoint (1 frame)    Waymo Open Dataset
 7     CenterPoint (3 frames)   Waymo Open Dataset
=====  =======================  ===========================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets.configs import DatasetConfig, nuscenes_like, semantic_kitti_like, waymo_like
from repro.models.centerpoint import CenterPoint
from repro.models.minkunet import MinkUNet
from repro.nn.modules import Module


@dataclass(frozen=True)
class ZooEntry:
    """One benchmark row: how to build the model and its dataset."""

    key: str
    label: str
    task: str  # "segmentation" | "detection"
    make_model: Callable[[], Module]
    make_dataset: Callable[[], DatasetConfig]


MODEL_ZOO = (
    ZooEntry(
        key="minkunet_0.5x_kitti",
        label="MinkUNet (0.5x) / SemanticKITTI",
        task="segmentation",
        make_model=lambda: MinkUNet(width=0.5),
        make_dataset=semantic_kitti_like,
    ),
    ZooEntry(
        key="minkunet_1.0x_kitti",
        label="MinkUNet (1.0x) / SemanticKITTI",
        task="segmentation",
        make_model=lambda: MinkUNet(width=1.0),
        make_dataset=semantic_kitti_like,
    ),
    ZooEntry(
        key="minkunet_1f_nuscenes",
        label="MinkUNet (1 frame) / nuScenes-LiDARSeg",
        task="segmentation",
        make_model=lambda: MinkUNet(width=1.0, num_classes=16),
        make_dataset=lambda: nuscenes_like(frames=1),
    ),
    ZooEntry(
        key="minkunet_3f_nuscenes",
        label="MinkUNet (3 frames) / nuScenes-LiDARSeg",
        task="segmentation",
        make_model=lambda: MinkUNet(width=1.0, num_classes=16),
        make_dataset=lambda: nuscenes_like(frames=3),
    ),
    ZooEntry(
        key="centerpoint_10f_nuscenes",
        label="CenterPoint (10 frames) / nuScenes",
        task="detection",
        make_model=lambda: CenterPoint(num_classes=10),
        make_dataset=lambda: nuscenes_like(frames=10).cropped(-0.5, 6.0),
    ),
    ZooEntry(
        key="centerpoint_1f_waymo",
        label="CenterPoint (1 frame) / Waymo",
        task="detection",
        make_model=lambda: CenterPoint(num_classes=3),
        make_dataset=lambda: waymo_like(frames=1).cropped(-0.5, 6.0),
    ),
    ZooEntry(
        key="centerpoint_3f_waymo",
        label="CenterPoint (3 frames) / Waymo",
        task="detection",
        make_model=lambda: CenterPoint(num_classes=3),
        make_dataset=lambda: waymo_like(frames=3).cropped(-0.5, 6.0),
    ),
)


def model_zoo() -> tuple:
    """All seven entries, in the paper's order."""
    return MODEL_ZOO
