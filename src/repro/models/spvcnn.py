"""SPVCNN: Sparse Point-Voxel CNN (Tang et al., ECCV 2020).

An extension model beyond the paper's seven benchmarks: the
architecture the TorchSparse authors built the engine *for*.  A sparse
voxel U-Net runs next to a high-resolution point branch; the branches
exchange features through voxelize / trilinear-devoxelize ops, so fine
geometry survives aggressive voxel downsampling.

Compact 2-level variant used here::

    points --initial_voxelize--> stem(w) --down--> bottleneck(2w)
      |                                               |
      pmlp1(w)                                   up (transposed, w)
      |                                               |
      fused(w) = pmlp1 + pmlp2(voxel_to_point(up))    |
      |                                               |
      point_to_voxel(fused) ++ stem --refine(w)-------+
      |
      logits = classifier([voxel_to_point(refine), fused])
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.engine import ExecutionContext
from repro.gpu.gemm import mm_cost
from repro.nn.point import (
    PointTensor,
    initial_voxelize,
    point_to_voxel,
    voxel_to_point,
)


class PointMLP(nn.Module):
    """Per-point linear + ReLU (the point branch's transform)."""

    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.weight = (
            rng.standard_normal((in_features, out_features))
            * np.sqrt(2.0 / in_features)
        ).astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32)
        self.params = [self.weight, self.bias]

    def apply(self, feats: np.ndarray, ctx: ExecutionContext) -> np.ndarray:
        if feats.shape[1] != self.in_features:
            raise ValueError(
                f"{self.name}: expected {self.in_features} channels, "
                f"got {feats.shape[1]}"
            )
        out = np.maximum(feats @ self.weight + self.bias, 0)
        cost = mm_cost(
            feats.shape[0], self.weight.shape[0], self.weight.shape[1],
            ctx.engine.config.dtype, ctx.device,
        )
        ctx.profile.log(
            self.name, "matmul", cost.time,
            bytes_moved=cost.bytes_moved, flops=cost.flops,
        )
        return out.astype(np.float32)


class SPVCNN(nn.Module):
    """Compact sparse point-voxel segmentation network.

    Args:
        in_channels: point feature width.
        num_classes: classifier width.
        width: voxel-branch base channels.
    """

    def __init__(self, in_channels: int = 4, num_classes: int = 19,
                 width: int = 32, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.num_classes = num_classes
        self.width = w

        self.stem = self.add_child(
            "stem",
            nn.Sequential(
                nn.Conv3d(in_channels, w, 3, rng=rng),
                nn.BatchNorm(w),
                nn.ReLU(),
            ),
        )
        self.down = self.add_child(
            "down",
            nn.Sequential(
                nn.Conv3d(w, 2 * w, 2, stride=2, rng=rng),
                nn.BatchNorm(2 * w),
                nn.ReLU(),
                nn.Conv3d(2 * w, 2 * w, 3, rng=rng),
                nn.ReLU(),
            ),
        )
        self.up = self.add_child(
            "up",
            nn.Sequential(
                nn.Conv3d(2 * w, w, 2, stride=2, transposed=True, rng=rng),
                nn.BatchNorm(w),
                nn.ReLU(),
            ),
        )
        self.refine = self.add_child(
            "refine", nn.Sequential(nn.Conv3d(2 * w, w, 3, rng=rng), nn.ReLU())
        )
        self.point_mlp1 = self.add_child("pmlp1", PointMLP(in_channels, w, rng))
        self.point_mlp2 = self.add_child("pmlp2", PointMLP(w, w, rng))
        self.classifier = self.add_child(
            "classifier", PointMLP(2 * w, num_classes, rng)
        )

    def forward(self, pt: PointTensor, ctx: ExecutionContext) -> np.ndarray:
        """Segment a point tensor; returns per-point logits ``(N, K)``."""
        # voxel branch: stem at stride 1, bottleneck at stride 2, back up
        voxels, _ = initial_voxelize(pt, ctx)
        v0 = self.stem(voxels, ctx)
        v1 = self.down(v0, ctx)
        v_up = self.up(v1, ctx)  # back at stride 1 on v0's coordinates

        # point branch at full resolution, fused with devoxelized context
        p_feats = self.point_mlp1.apply(pt.feats, ctx)
        context = voxel_to_point(v_up, pt, ctx)
        fused = p_feats + self.point_mlp2.apply(context, ctx)

        # push fused point features back onto the voxel set and refine
        back = point_to_voxel(v0, pt.replace_feats(fused), ctx)
        merged = v0.replace_feats(
            np.concatenate([v0.feats, back.feats], axis=1)
        )
        refined = self.refine(merged, ctx)

        # final per-point logits from refined voxels + fused point feats
        voxels_at_points = voxel_to_point(refined, pt, ctx)
        final = np.concatenate([voxels_at_points, fused], axis=1)
        return self.classifier.apply(final, ctx)
