"""Benchmark snapshots and the perf-regression gate.

A *snapshot* is a plain JSON-able dict capturing one benchmark run:
modeled latency, per-stage times, and the flattened metrics view of a
:class:`~repro.obs.metrics.MetricsRegistry`.  ``repro-bench regress``
writes a snapshot as the baseline, then diffs later runs against it:
any gated value drifting past its tolerance fails the gate (nonzero
exit), which turns every optimization PR into a measurable change.

Tolerances are *relative*; per-key overrides accept ``fnmatch``
patterns, so ``--tol 'mem.*=0.10'`` loosens all memory counters at
once.  Keys present on only one side are reported but do not fail the
gate unless ``strict`` is set — adding a new metric must not break
every existing baseline.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from fnmatch import fnmatchcase

SNAPSHOT_SCHEMA = "repro-bench.snapshot/1"
#: machine-readable chaos-campaign summaries (``repro-bench chaos --json``)
CHAOS_SCHEMA = "repro-bench.chaos/1"

#: Relative drift allowed by default.  The engine's latency is modeled
#: (deterministic given model/input/device), so the default is tight;
#: loosen per key for anything intentionally noisy.
DEFAULT_TOLERANCE = 0.02


def snapshot(
    *,
    model: str,
    engine: str,
    device: str,
    latency: float,
    profile=None,
    registry=None,
    extra: dict | None = None,
) -> dict:
    """Build a snapshot dict for one benchmark run."""
    snap = {
        "schema": SNAPSHOT_SCHEMA,
        "model": model,
        "engine": engine,
        "device": device,
        "latency": float(latency),
        "stages": {},
        "metrics": {},
    }
    if profile is not None:
        snap["stages"] = {k: float(v) for k, v in profile.stage_times().items()}
        snap["kernels"] = len(profile.records)
    if registry is not None:
        snap["metrics"] = {
            k: float(v) for k, v in sorted(registry.scalars().items())
        }
    if extra:
        snap.update(extra)
    return snap


def write_snapshot(snap: dict, path: str) -> None:
    with open(path, "w") as f:
        json.dump(snap, f, indent=2, sort_keys=True)
        f.write("\n")


def load_snapshot(path: str, schema: str = SNAPSHOT_SCHEMA) -> dict:
    with open(path) as f:
        snap = json.load(f)
    if snap.get("schema") != schema:
        raise ValueError(
            f"{path}: not a repro-bench snapshot "
            f"(schema {snap.get('schema')!r}, expected {schema!r})"
        )
    return snap


@dataclass(frozen=True)
class Drift:
    """One gated value and how far it moved."""

    key: str
    baseline: float
    current: float
    tolerance: float

    @property
    def rel_change(self) -> float:
        """Relative drift (0 when both sides are zero)."""
        denom = max(abs(self.baseline), 1e-30)
        if self.baseline == 0 and self.current == 0:
            return 0.0
        return abs(self.current - self.baseline) / denom

    @property
    def failed(self) -> bool:
        return self.rel_change > self.tolerance

    def describe(self) -> str:
        sign = "+" if self.current >= self.baseline else "-"
        return (
            f"{self.key}: {self.baseline:.6g} -> {self.current:.6g} "
            f"({sign}{self.rel_change * 100:.2f}%, tol {self.tolerance * 100:.2f}%)"
        )


def _tolerance_for(key: str, default: float, overrides: dict) -> float:
    """Most specific match wins: exact key, then longest fnmatch pattern."""
    if key in overrides:
        return overrides[key]
    best = None
    for pattern, tol in overrides.items():
        if fnmatchcase(key, pattern):
            if best is None or len(pattern) > len(best[0]):
                best = (pattern, tol)
    return best[1] if best else default


def _gated_values(snap: dict) -> dict:
    values = {"latency": float(snap["latency"])}
    for stage, t in snap.get("stages", {}).items():
        values[f"stage.{stage}"] = float(t)
    for key, v in snap.get("metrics", {}).items():
        values[key] = float(v)
    return values


def compare_snapshots(
    baseline: dict,
    current: dict,
    tolerance: float = DEFAULT_TOLERANCE,
    tolerances: dict | None = None,
    keys: list | None = None,
    strict: bool = False,
) -> tuple:
    """Diff two snapshots.

    Args:
        tolerance: default relative tolerance.
        tolerances: per-key overrides (exact keys or fnmatch patterns).
        keys: restrict gating to keys matching any of these patterns.
        strict: treat keys present on only one side as failures.

    Returns:
        ``(drifts, failures, only_in_one)`` — every compared
        :class:`Drift`, the failing subset, and the sorted list of keys
        missing from one side.
    """
    overrides = tolerances or {}
    base_vals = _gated_values(baseline)
    cur_vals = _gated_values(current)
    shared = sorted(set(base_vals) & set(cur_vals))
    only = sorted(set(base_vals) ^ set(cur_vals))
    if keys:
        shared = [
            k for k in shared if any(fnmatchcase(k, pat) for pat in keys)
        ]
    drifts = [
        Drift(
            key=k,
            baseline=base_vals[k],
            current=cur_vals[k],
            tolerance=_tolerance_for(k, tolerance, overrides),
        )
        for k in shared
    ]
    failures = [d for d in drifts if d.failed]
    if strict and only:
        failures = failures + [
            Drift(key=k, baseline=float("nan"), current=float("nan"), tolerance=0.0)
            for k in only
        ]
    return drifts, failures, only


def format_report(drifts, failures, only) -> str:
    """Human-readable gate report."""
    lines = [f"compared {len(drifts)} gated values; {len(failures)} drifted"]
    for d in sorted(failures, key=lambda d: -d.rel_change if d.rel_change == d.rel_change else 0):
        lines.append(f"  FAIL {d.describe()}")
    worst = sorted(
        (d for d in drifts if not d.failed and d.rel_change > 0),
        key=lambda d: -d.rel_change,
    )[:5]
    for d in worst:
        lines.append(f"  ok   {d.describe()}")
    if only:
        lines.append(
            f"  note: {len(only)} keys present on one side only "
            f"(e.g. {', '.join(only[:3])})"
        )
    return "\n".join(lines)
