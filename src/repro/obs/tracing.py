"""Hierarchical span tracer.

A :class:`Tracer` maintains a stack of named spans.  Opening a span is a
context manager::

    with tracer.span("minkunet.enc1.conv", kind="conv", stride=2):
        with tracer.span("gather"):
            profile.log("gather", "gather", t)

Any :class:`~repro.gpu.timeline.KernelRecord` added to a
:class:`~repro.gpu.timeline.Profile` that carries this tracer is stamped
with the current span *path* (``("minkunet.enc1.conv", "gather")``
above).  The path is what nests the Chrome-trace export
(layer -> stage -> kernel) and what the per-layer report groups by.

The tracer is deliberately clock-free: the engine's time is *modeled*,
so span intervals are reconstructed from the records inside them when a
trace is exported, not sampled from the host clock.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from types import MappingProxyType


@dataclass(frozen=True)
class Span:
    """One opened span: its full path and the attributes it carries.

    ``attrs`` is frozen at open time: the dict is copied and wrapped in
    a read-only view, so post-hoc mutation through a kept reference (or
    the yielded span itself) cannot retroactively corrupt
    :meth:`Tracer.attrs_by_path` reports.
    """

    path: tuple
    attrs: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attrs", MappingProxyType(dict(self.attrs)))

    @property
    def name(self) -> str:
        return self.path[-1] if self.path else ""

    @property
    def depth(self) -> int:
        return len(self.path)


class Tracer:
    """A stack of nested spans plus a log of every span ever opened."""

    def __init__(self) -> None:
        self._stack: list[str] = []
        #: every span opened, in open order (attrs survive for reports)
        self.spans: list[Span] = []

    @property
    def current_path(self) -> tuple:
        """Path of the innermost open span (empty tuple at top level)."""
        return tuple(self._stack)

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a nested span; yields the :class:`Span`."""
        if not name:
            raise ValueError("span name must be non-empty")
        self._stack.append(str(name))
        info = Span(path=tuple(self._stack), attrs=attrs)
        self.spans.append(info)
        try:
            yield info
        finally:
            self._stack.pop()

    def attrs_by_path(self) -> dict:
        """Last-wins mapping of span path -> attributes."""
        return {s.path: s.attrs for s in self.spans}

    def reset(self) -> None:
        """Drop the span log (the stack must already be empty)."""
        if self._stack:
            raise RuntimeError("cannot reset a tracer with open spans")
        self.spans.clear()
