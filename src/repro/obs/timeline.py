"""The serve-campaign flight recorder: causal event journal + SLO windows.

Every request flowing through the serving layer leaves a *causal
timeline*: a sequence of typed, schema-versioned events
(``repro-bench.events/1``) stamped with the **simulated** clock, the
device label, the admission-queue depth, and the remaining deadline
slack at the instant the transition happened.  The journal is the
ground truth every serve-policy decision can be audited against —
where a request waited, which attempt crashed, what hedged what, and
how much slack was left when the scheduler acted.

Three pieces live here:

* :class:`TimelineRecorder` — an append-only event journal.  Events are
  plain dicts serialized as deterministic JSONL (compact separators,
  sorted keys), so two same-seed campaigns produce byte-for-bit
  identical journals.
* :func:`validate_journal` — the lifecycle checker: dense sequence
  numbers, monotonic sim timestamps, exactly one terminal event per
  request, no event before its request's arrival, every dispatch paired
  with an ``attempt_finish``, every retry/hedge dispatch causally
  linked to a parent attempt of the same request.
* :func:`windowed_slo` — the windowed SLO monitor: deadline-miss rate,
  **exact** nearest-rank latency percentiles (not
  :meth:`~repro.obs.metrics.Histogram.quantile` bucket bounds), and
  error-budget burn rate per sim-clock window.

The recorder is deliberately decoupled from :mod:`repro.serve`: it
records whatever lifecycle the emitter describes, and the validator
checks structural invariants only — so the journal format outlives any
one scheduler.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

EVENTS_SCHEMA = "repro-bench.events/1"

#: Request-scoped lifecycle transitions.
REQUEST_EVENT_KINDS = (
    "arrival",          # request entered the system
    "admit",            # accepted by the admission queue
    "dequeue",          # popped from the queue for dispatch
    "dispatch",         # attempt started on a device
    "attempt_finish",   # attempt left its device (ok/crash/... in attrs)
    "retry_scheduled",  # backoff timer armed after a failed attempt
    "retry_denied",     # storm defense refused a retry (attrs["reason"])
    "hedge_skip",       # hedge wanted but no eligible device
    "batch_formed",     # batching scheduler closed a batch (attrs:
                        #   batch, size, members, reason)
    "batch_dispatch",   # one member's slice of a batched attempt —
                        #   members of a batch share the attempt id
    "terminal",         # exactly-once terminal state (attrs["state"])
)

#: Device-scoped health transitions.
DEVICE_EVENT_KINDS = (
    "quarantine",       # breaker opened; device pulled from placement
    "readmit",          # probe succeeded; device rejoined the fleet
    "device_dead",      # probe budget exhausted; device never returns
    "device_replaced",  # spare admitted into a dead device's slot
    "store_warmstart",  # a worker primed its caches from the artifact store
)

#: Fleet-scoped control-plane transitions.
FLEET_EVENT_KINDS = (
    "qos_change",        # brownout controller stepped the fleet QoS level
    "domain_outage",     # a domain breaker opened (attrs["domain"])
    "domain_recovered",  # a member probe readmission closed the breaker
)

EVENT_KINDS = frozenset(
    REQUEST_EVENT_KINDS + DEVICE_EVENT_KINDS + FLEET_EVENT_KINDS
)

#: Attempt outcomes carried by ``attempt_finish`` events.
ATTEMPT_OUTCOMES = ("ok", "crash", "integrity_fail", "cancelled")

#: Terminal request states (mirrors ``repro.serve.request``; duplicated
#: so the journal layer never imports the serving layer).
TERMINAL_EVENT_STATES = ("completed", "shed", "deadline_exceeded", "failed")

#: Dispatch kinds whose events must carry a causal ``parent`` attempt.
LINKED_DISPATCH_KINDS = ("retry", "hedge")

#: Reasons a ``retry_denied`` event may carry: the fleet retry token
#: bucket ran dry, or the remaining deadline slack could not fit the
#: best healthy device's expected service time.
RETRY_DENIAL_REASONS = ("budget", "deadline")

#: Reasons a ``batch_formed`` event may carry: the batch hit
#: ``max_batch`` (``full``), the oldest member's slack minus the
#: modeled batch service time hit zero (``deadline``), or the same
#: close rule fired on a single member that no batch could absorb
#: (``solo`` — the member dispatches alone).
BATCH_CLOSE_REASONS = ("full", "deadline", "solo", "starved")


def _dumps(obj: dict) -> str:
    """Canonical JSON: compact separators + sorted keys, so a journal
    is byte-for-bit a function of its events."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


class TimelineRecorder:
    """Append-only journal of typed lifecycle events.

    Args:
        meta: campaign metadata stored in the header line (seed, device
            labels, preset, ...).  The header always carries the schema
            version.
    """

    def __init__(self, meta: dict | None = None) -> None:
        self.meta: dict = dict(meta or {})
        self.events: list = []

    def __len__(self) -> int:
        return len(self.events)

    def emit(
        self,
        kind: str,
        t: float,
        /,
        *,
        request: int | None = None,
        attempt: int | None = None,
        device: str | None = None,
        queue_depth: int = 0,
        slack: float | None = None,
        **attrs,
    ) -> dict:
        """Record one lifecycle transition; returns the event dict.

        ``t`` is the *simulated* clock.  ``slack`` is the request's
        remaining deadline budget (``deadline - t``) at this instant,
        ``None`` for events with no request (probes, device health).
        """
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; expected one of "
                f"{sorted(EVENT_KINDS)}"
            )
        event = {
            "seq": len(self.events),
            "t": float(t),
            "kind": kind,
            "request": request,
            "attempt": attempt,
            "device": device,
            "queue_depth": int(queue_depth),
            "slack": None if slack is None else float(slack),
            "attrs": attrs,
        }
        self.events.append(event)
        return event

    def header(self) -> dict:
        return {"schema": EVENTS_SCHEMA, **self.meta}

    def to_jsonl(self) -> str:
        """Header line + one line per event, deterministically encoded."""
        lines = [_dumps(self.header())]
        lines.extend(_dumps(e) for e in self.events)
        return "\n".join(lines) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w") as f:
            f.write(self.to_jsonl())


def load_journal(path: str) -> tuple[dict, list]:
    """Read a journal file back into ``(header, events)``.

    Raises ``ValueError`` on a missing/mismatched schema header or a
    line that is not valid JSON.
    """
    with open(path) as f:
        lines = [line for line in f.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"{path}: empty journal")
    try:
        header = json.loads(lines[0])
        events = [json.loads(line) for line in lines[1:]]
    except json.JSONDecodeError as e:
        raise ValueError(f"{path}: malformed journal line: {e}") from e
    if not isinstance(header, dict) or header.get("schema") != EVENTS_SCHEMA:
        raise ValueError(
            f"{path}: not an event journal (schema "
            f"{header.get('schema') if isinstance(header, dict) else None!r},"
            f" expected {EVENTS_SCHEMA!r})"
        )
    return header, events


def validate_journal(header: dict, events: list) -> list:
    """Check the journal's structural invariants; returns violations.

    An empty list means the journal is a valid flight record:

    * dense ``seq`` numbering and monotonic (non-decreasing) sim time;
    * every event kind known to the schema;
    * per request — the first event is ``arrival``, there is **exactly
      one** ``terminal`` event (with a known state), nothing happens
      after it, and no event precedes the arrival timestamp;
    * every ``dispatch`` opens a unique attempt on a device, and every
      attempt is closed by exactly one ``attempt_finish`` on the same
      device with a known outcome;
    * every retry/hedge dispatch carries a ``parent`` attempt id that
      belongs to an earlier dispatch of the same request (the causal
      link the trace renders as a flow arrow);
    * every ``batch_formed`` names a fresh batch id, a known close
      reason, and a member list matching its ``size`` — and every
      member was *admitted* before the batch formed (a batch can only
      coalesce requests the admission queue accepted) and is not yet
      terminal;
    * every ``batch_dispatch`` references a formed batch it is a member
      of; the members of one batched attempt share the attempt id (one
      slice per member, each on the same device) and each slice is
      closed by exactly one ``attempt_finish`` for that member on that
      device — one batched attempt fans back out to one terminal per
      member, which the per-request terminal rule then enforces;
    * every ``qos_change`` carries a valid level/rung/direction and
      steps the level by exactly one from the previous change (the
      brownout controller never jumps rungs);
    * every ``device_replaced`` names a replacement device and a
      ``slot`` for which a ``device_dead`` event was already journaled
      — a spare may only ever fill a slot the fleet actually lost —
      and no slot is filled twice;
    * every ``store_warmstart`` names its device and carries a
      non-negative integer ``frames`` count (how many cached frames
      the worker inherited from the artifact store);
    * every ``retry_denied`` carries a known reason (``budget`` /
      ``deadline``);
    * every ``domain_outage`` names a domain whose breaker is not
      already open, and every ``domain_recovered`` closes a breaker a
      prior ``domain_outage`` opened — outages and recoveries alternate
      per domain.
    """
    problems: list = []
    if header.get("schema") != EVENTS_SCHEMA:
        problems.append(
            f"header schema {header.get('schema')!r} != {EVENTS_SCHEMA!r}"
        )
    last_t = None
    qos_level = 0
    arrivals: dict = {}
    terminals: dict = {}
    attempt_open: dict = {}    # attempt id -> (request, device, seq)
    attempt_closed: set = set()
    attempts_of: dict = {}     # request id -> [attempt ids]
    admitted: set = set()      # request ids the queue accepted
    batch_members: dict = {}   # batch id -> set of member request ids
    batch_attempts: dict = {}  # attempt id -> (device, batch id)
    batch_slice_open: set = set()    # (attempt id, request id)
    batch_slice_closed: set = set()
    dead_slots: set = set()    # device labels with a journaled device_dead
    filled_slots: set = set()  # dead slots already taken by a replacement
    open_domains: set = set()  # domains with an unrecovered domain_outage
    for i, e in enumerate(events):
        seq, kind, t = e.get("seq"), e.get("kind"), e.get("t")
        if seq != i:
            problems.append(f"event {i}: seq {seq} not dense")
        if kind not in EVENT_KINDS:
            problems.append(f"event {i}: unknown kind {kind!r}")
            continue
        if last_t is not None and t < last_t:
            problems.append(
                f"event {i}: time {t} precedes previous event ({last_t})"
            )
        last_t = t
        req = e.get("request")
        if req is not None:
            if kind == "arrival":
                if req in arrivals:
                    problems.append(f"event {i}: duplicate arrival for "
                                    f"request {req}")
                arrivals[req] = t
            elif req not in arrivals:
                problems.append(
                    f"event {i}: {kind} for request {req} before its arrival"
                )
            elif t < arrivals[req]:
                problems.append(
                    f"event {i}: {kind} at {t} precedes request {req}'s "
                    f"arrival ({arrivals[req]})"
                )
            if req in terminals:
                problems.append(
                    f"event {i}: {kind} for request {req} after its "
                    f"terminal event (seq {terminals[req]})"
                )
            if kind == "terminal":
                state = e.get("attrs", {}).get("state")
                if state not in TERMINAL_EVENT_STATES:
                    problems.append(
                        f"event {i}: terminal with unknown state {state!r}"
                    )
                terminals[req] = i
        if kind == "admit" and req is not None:
            admitted.add(req)
        if kind == "dispatch":
            attempt = e.get("attempt")
            device = e.get("device")
            if attempt is None or device is None:
                problems.append(f"event {i}: dispatch without attempt/device")
                continue
            if attempt in attempt_open or attempt in batch_attempts:
                problems.append(f"event {i}: attempt {attempt} dispatched "
                                "twice")
            attempt_open[attempt] = (req, device, i)
            if req is not None:
                attempts_of.setdefault(req, []).append(attempt)
            dkind = e.get("attrs", {}).get("kind")
            if dkind in LINKED_DISPATCH_KINDS:
                parent = e.get("attrs", {}).get("parent")
                if parent is None:
                    problems.append(
                        f"event {i}: {dkind} dispatch without parent attempt"
                    )
                elif parent not in (attempts_of.get(req) or [])[:-1]:
                    problems.append(
                        f"event {i}: {dkind} parent {parent} is not an "
                        f"earlier attempt of request {req}"
                    )
        elif kind == "batch_formed":
            attrs = e.get("attrs", {})
            batch = attrs.get("batch")
            members = attrs.get("members")
            if not isinstance(batch, int) or isinstance(batch, bool):
                problems.append(
                    f"event {i}: batch_formed with invalid batch id "
                    f"{batch!r}"
                )
                continue
            if batch in batch_members:
                problems.append(
                    f"event {i}: batch {batch} formed twice"
                )
            if not isinstance(members, list) or not members:
                problems.append(
                    f"event {i}: batch_formed without a member list"
                )
                continue
            if attrs.get("size") != len(members):
                problems.append(
                    f"event {i}: batch_formed size {attrs.get('size')!r} "
                    f"!= {len(members)} members"
                )
            if attrs.get("reason") not in BATCH_CLOSE_REASONS:
                problems.append(
                    f"event {i}: batch_formed with unknown reason "
                    f"{attrs.get('reason')!r}"
                )
            for m in members:
                if m not in admitted:
                    problems.append(
                        f"event {i}: batch {batch} member {m} was never "
                        f"admitted before formation"
                    )
                if m in terminals:
                    problems.append(
                        f"event {i}: batch {batch} member {m} is already "
                        f"terminal"
                    )
            batch_members[batch] = set(members)
        elif kind == "batch_dispatch":
            attempt = e.get("attempt")
            device = e.get("device")
            attrs = e.get("attrs", {})
            batch = attrs.get("batch")
            if attempt is None or device is None:
                problems.append(
                    f"event {i}: batch_dispatch without attempt/device"
                )
                continue
            if batch not in batch_members:
                problems.append(
                    f"event {i}: batch_dispatch for unformed batch "
                    f"{batch!r}"
                )
            elif req not in batch_members[batch]:
                problems.append(
                    f"event {i}: request {req} is not a member of batch "
                    f"{batch}"
                )
            if attempt in attempt_open:
                problems.append(
                    f"event {i}: attempt {attempt} dispatched twice"
                )
            prior = batch_attempts.get(attempt)
            if prior is not None and prior != (device, batch):
                problems.append(
                    f"event {i}: attempt {attempt} slices disagree on "
                    f"device/batch ({prior} vs {(device, batch)})"
                )
            batch_attempts[attempt] = (device, batch)
            if (attempt, req) in batch_slice_open:
                problems.append(
                    f"event {i}: request {req} dispatched twice in "
                    f"attempt {attempt}"
                )
            batch_slice_open.add((attempt, req))
            if req is not None:
                attempts_of.setdefault(req, []).append(attempt)
            dkind = attrs.get("kind")
            if dkind in LINKED_DISPATCH_KINDS:
                parent = attrs.get("parent")
                if parent is None:
                    problems.append(
                        f"event {i}: {dkind} batch_dispatch without parent "
                        f"attempt"
                    )
                elif parent not in (attempts_of.get(req) or [])[:-1]:
                    problems.append(
                        f"event {i}: {dkind} parent {parent} is not an "
                        f"earlier attempt of request {req}"
                    )
        elif kind == "qos_change":
            attrs = e.get("attrs", {})
            level = attrs.get("level")
            direction = attrs.get("direction")
            if not isinstance(level, int) or level < 0:
                problems.append(
                    f"event {i}: qos_change with invalid level {level!r}"
                )
            elif direction not in ("up", "down"):
                problems.append(
                    f"event {i}: qos_change with unknown direction "
                    f"{direction!r}"
                )
            else:
                expected = qos_level + (1 if direction == "down" else -1)
                if level != expected:
                    problems.append(
                        f"event {i}: qos_change to level {level} skips "
                        f"rungs (previous level {qos_level}, {direction})"
                    )
                qos_level = level
            if not attrs.get("rung"):
                problems.append(f"event {i}: qos_change without a rung name")
        elif kind == "device_dead":
            if e.get("device") is not None:
                dead_slots.add(e["device"])
        elif kind == "device_replaced":
            attrs = e.get("attrs", {})
            slot = attrs.get("slot")
            if e.get("device") is None:
                problems.append(
                    f"event {i}: device_replaced without a replacement device"
                )
            if slot is None:
                problems.append(
                    f"event {i}: device_replaced without a slot"
                )
            elif slot not in dead_slots:
                problems.append(
                    f"event {i}: device_replaced for slot {slot!r} with no "
                    f"prior device_dead event"
                )
            elif slot in filled_slots:
                problems.append(
                    f"event {i}: slot {slot!r} replaced twice"
                )
            else:
                filled_slots.add(slot)
        elif kind == "store_warmstart":
            frames = e.get("attrs", {}).get("frames")
            if e.get("device") is None:
                problems.append(
                    f"event {i}: store_warmstart without a device"
                )
            if (
                not isinstance(frames, int)
                or isinstance(frames, bool)
                or frames < 0
            ):
                problems.append(
                    f"event {i}: store_warmstart with invalid frames "
                    f"{frames!r}"
                )
        elif kind == "retry_denied":
            reason = e.get("attrs", {}).get("reason")
            if reason not in RETRY_DENIAL_REASONS:
                problems.append(
                    f"event {i}: retry_denied with unknown reason "
                    f"{reason!r}"
                )
        elif kind == "domain_outage":
            domain = e.get("attrs", {}).get("domain")
            if not domain:
                problems.append(
                    f"event {i}: domain_outage without a domain"
                )
            elif domain in open_domains:
                problems.append(
                    f"event {i}: domain_outage for {domain!r} while its "
                    f"breaker is already open"
                )
            else:
                open_domains.add(domain)
        elif kind == "domain_recovered":
            domain = e.get("attrs", {}).get("domain")
            if domain not in open_domains:
                problems.append(
                    f"event {i}: domain_recovered for {domain!r} with no "
                    f"open domain_outage"
                )
            else:
                open_domains.discard(domain)
        elif kind == "attempt_finish":
            attempt = e.get("attempt")
            if attempt in batch_attempts:
                # a batched attempt fans out to one finish per member
                dev, _ = batch_attempts[attempt]
                if e.get("device") != dev:
                    problems.append(
                        f"event {i}: attempt {attempt} finished on "
                        f"{e.get('device')!r}, dispatched on {dev!r}"
                    )
                if (attempt, req) not in batch_slice_open:
                    problems.append(
                        f"event {i}: attempt_finish for request {req} "
                        f"never dispatched in attempt {attempt}"
                    )
                elif (attempt, req) in batch_slice_closed:
                    problems.append(
                        f"event {i}: attempt {attempt} finished twice for "
                        f"request {req}"
                    )
                else:
                    batch_slice_closed.add((attempt, req))
                outcome = e.get("attrs", {}).get("outcome")
                if outcome not in ATTEMPT_OUTCOMES:
                    problems.append(
                        f"event {i}: attempt_finish with unknown outcome "
                        f"{outcome!r}"
                    )
                continue
            if attempt not in attempt_open:
                problems.append(
                    f"event {i}: attempt_finish for undispatched attempt "
                    f"{attempt}"
                )
            else:
                opened_req, opened_dev, _ = attempt_open[attempt]
                if e.get("device") != opened_dev:
                    problems.append(
                        f"event {i}: attempt {attempt} finished on "
                        f"{e.get('device')!r}, dispatched on {opened_dev!r}"
                    )
                if attempt in attempt_closed:
                    problems.append(
                        f"event {i}: attempt {attempt} finished twice"
                    )
                attempt_closed.add(attempt)
            outcome = e.get("attrs", {}).get("outcome")
            if outcome not in ATTEMPT_OUTCOMES:
                problems.append(
                    f"event {i}: attempt_finish with unknown outcome "
                    f"{outcome!r}"
                )
    for req in arrivals:
        if req not in terminals:
            problems.append(f"request {req}: no terminal event")
    for attempt, (req, _, seq) in attempt_open.items():
        if attempt not in attempt_closed:
            problems.append(
                f"attempt {attempt} (request {req}, seq {seq}) never finished"
            )
    for attempt, req in batch_slice_open:
        if (attempt, req) not in batch_slice_closed:
            problems.append(
                f"batched attempt {attempt} never finished for request {req}"
            )
    return problems


def request_timeline(events: list, request: int) -> list:
    """Every event of one request, in journal order."""
    return [e for e in events if e.get("request") == request]


def replay_qos_mix(events: list) -> dict:
    """Reconstruct the served QoS mix purely from the journal.

    Walks the events in order, tracking the fleet QoS rung through
    ``qos_change`` events, and credits every dispatched request to the
    rung of its *last* dispatch (a retry or hedge restamps — the final
    result is what was served at).  Dispatch events that carry an
    explicit ``qos`` attr use it directly; older journals fall back to
    the tracked fleet rung.  The result must equal the campaign
    report's ``qos_mix`` for the served requests — the replay check the
    brownout acceptance gate runs.
    """
    current = "full"
    served: dict = {}
    for e in events:
        kind = e.get("kind")
        if kind == "qos_change":
            current = e.get("attrs", {}).get("rung") or current
        elif (
            kind in ("dispatch", "batch_dispatch")
            and e.get("request") is not None
        ):
            served[e["request"]] = e.get("attrs", {}).get("qos", current)
    mix: dict = {}
    for rung in served.values():
        mix[rung] = mix.get(rung, 0) + 1
    return mix


# -- windowed SLO monitor --------------------------------------------------


@dataclass(frozen=True)
class SLOWindow:
    """One sim-clock window of the SLO monitor.

    ``miss_rate`` is the fraction of requests *finishing* in the window
    that did not complete within their deadline (late, failed, and shed
    all burn error budget).  ``burn_rate`` is that miss rate divided by
    the error budget ``1 - target``: a burn of 1.0 consumes budget
    exactly as fast as the SLO allows, anything above eats into it.
    Percentiles are **exact** nearest-rank values over the window's
    finished-latency samples, not histogram bucket bounds.
    """

    start: float
    end: float
    total: int
    misses: int
    miss_rate: float
    p50: float
    p99: float
    burn_rate: float

    def to_json(self) -> dict:
        return {
            "start": self.start,
            "end": self.end,
            "total": self.total,
            "misses": self.misses,
            "miss_rate": self.miss_rate,
            "p50": self.p50,
            "p99": self.p99,
            "burn_rate": self.burn_rate,
        }


def windowed_slo(
    samples,
    width: float,
    *,
    target: float = 0.99,
    end: float | None = None,
) -> list:
    """Tile ``[0, end]`` with ``width``-second windows of SLO health.

    Args:
        samples: iterable of ``(t, ok, latency)`` — finish time on the
            sim clock, whether the request met its SLO, and its
            end-to-end latency (``None`` if it never ran).
        width: window width in sim seconds.
        target: SLO objective (e.g. ``0.99`` = 1% error budget).
        end: campaign end time; defaults to the latest sample.

    Returns:
        One :class:`SLOWindow` per window, empty windows included, so
        the series has no gaps for a monitor to misread.
    """
    from repro.profiling.report import percentile

    if width <= 0:
        raise ValueError("window width must be positive")
    if not 0.0 < target < 1.0:
        raise ValueError("slo target must be in (0, 1)")
    samples = list(samples)
    horizon = max(
        [end or 0.0] + [t for t, _, _ in samples]
    )
    # integer-nanosecond ceiling avoids float-division edge cases at
    # exact window boundaries
    n_windows = max(1, -(-int(round(horizon * 1e9)) //
                         int(round(width * 1e9))))
    budget = 1.0 - target
    buckets: list = [[] for _ in range(n_windows)]
    for t, ok, latency in samples:
        i = min(int(t / width), n_windows - 1)
        buckets[i].append((ok, latency))
    windows = []
    for i, bucket in enumerate(buckets):
        total = len(bucket)
        misses = sum(not ok for ok, _ in bucket)
        lats = [lat for _, lat in bucket if lat is not None]
        miss_rate = 0.0 if total == 0 else misses / total
        windows.append(
            SLOWindow(
                start=i * width,
                end=(i + 1) * width,
                total=total,
                misses=misses,
                miss_rate=miss_rate,
                p50=percentile(lats, 50.0),
                p99=percentile(lats, 99.0),
                burn_rate=miss_rate / budget,
            )
        )
    return windows


def worst_burn(windows) -> float:
    """The worst window's error-budget burn rate (0.0 on no windows)."""
    return max((w.burn_rate for w in windows), default=0.0)
