"""Observability: hierarchical tracing, metrics, and regression gating.

The engine's argument — like the paper's — is made through measurement.
This package supplies the three measurement primitives every other
subsystem hooks into:

* :mod:`repro.obs.tracing` — a hierarchical span tracer carried on
  :class:`~repro.core.engine.ExecutionContext`; every
  :class:`~repro.gpu.timeline.KernelRecord` logged inside a span is
  stamped with the span path (layer -> stage -> kernel), which drives
  the nested Chrome-trace export and the per-layer report.
* :mod:`repro.obs.metrics` — a process-wide registry of counters,
  gauges and histograms.  Instrumentation points live in the cache
  simulator, the GEMM/memory cost models, the hash/grid tables and the
  grouping planner; everything exports to JSONL.
* :mod:`repro.obs.regress` — snapshot a benchmark run (modeled latency,
  stage times, flattened metrics) to JSON and diff a later run against
  it with configurable tolerances; backs ``repro-bench regress``.
* :mod:`repro.obs.timeline` — the serve-campaign flight recorder: a
  typed, schema-versioned causal event journal
  (``repro-bench.events/1``) stamped with the simulated clock, plus
  journal validation and the windowed SLO monitor (exact percentiles,
  error-budget burn rate); backs ``repro-bench timeline``.
* :mod:`repro.obs.exposition` — Prometheus text exposition of the
  metrics registry.
"""

from repro.obs.exposition import to_prometheus, write_prometheus
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_metrics,
    set_registry,
    use_registry,
)
from repro.obs.regress import Drift, compare_snapshots, snapshot
from repro.obs.timeline import (
    EVENTS_SCHEMA,
    SLOWindow,
    TimelineRecorder,
    load_journal,
    replay_qos_mix,
    validate_journal,
    windowed_slo,
    worst_burn,
)
from repro.obs.tracing import Span, Tracer

__all__ = [
    "EVENTS_SCHEMA",
    "SLOWindow",
    "TimelineRecorder",
    "load_journal",
    "replay_qos_mix",
    "validate_journal",
    "windowed_slo",
    "worst_burn",
    "to_prometheus",
    "write_prometheus",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "reset_metrics",
    "Span",
    "Tracer",
    "Drift",
    "snapshot",
    "compare_snapshots",
]
