"""Process-wide metrics registry: counters, gauges, histograms.

Instrumentation points across the engine (cache simulator, GEMM and
memory cost models, hash/grid tables, grouping planner, the engine's
coordinate/map caches) emit into the *current* registry, reachable via
:func:`get_registry`.  Benchmark runs swap in a fresh registry with
:func:`use_registry` so each run's metrics are isolated::

    with use_registry(MetricsRegistry()) as reg:
        run_model(model, xs, engine, device)
    reg.dump_jsonl("metrics.jsonl")

Exports:

* :meth:`MetricsRegistry.collect` — one dict per metric (JSONL lines);
* :meth:`MetricsRegistry.scalars` — a flat ``name{labels} -> float``
  view (histograms contribute ``.count``/``.mean``/``.max``) consumed
  by the regression gate.
"""

from __future__ import annotations

import json
from contextlib import contextmanager

#: Default histogram buckets: geometric, suited to counts (probe
#: lengths, group sizes, row counts).
GEOMETRIC_BUCKETS = tuple(2**i for i in range(17))  # 1 .. 65536

#: Buckets for quantities in [0, 1] (utilization, efficiency, waste).
FRACTION_BUCKETS = tuple(round(0.1 * i, 1) for i in range(1, 11))


class Counter:
    """Monotonically increasing value."""

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def data(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-written value."""

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def data(self) -> dict:
        return {"value": self.value}


class Histogram:
    """Bucketed distribution with exact count/sum/min/max.

    Buckets are upper bounds (``le``); one implicit overflow bucket
    catches everything past the last bound.
    """

    kind = "histogram"

    def __init__(self, buckets=None) -> None:
        bounds = tuple(sorted(buckets)) if buckets else GEOMETRIC_BUCKETS
        if not bounds:
            raise ValueError("need at least one bucket bound")
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = None
        self.max = None

    def observe(self, value: float, count: int = 1) -> None:
        if count <= 0:
            return
        value = float(value)
        i = len(self.bounds)
        for j, b in enumerate(self.bounds):
            if value <= b:
                i = j
                break
        self.counts[i] += count
        self.count += count
        self.total += value * count
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return 0.0 if self.count == 0 else self.total / self.count

    def quantile(self, q: float) -> float:
        """Approximate quantile: upper bound of the bucket holding it.

        The extremes are exact: ``q=0`` returns the observed minimum
        (not the first nonempty bucket's upper bound) and ``q=1``
        resolves to the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return float(self.min)
        target = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= target and c:
                if i < len(self.bounds):
                    return float(self.bounds[i])
                return float(self.max)
        return float(self.max)

    def data(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "buckets": [
                {"le": float(b), "count": c}
                for b, c in zip(self.bounds, self.counts)
            ]
            + [{"le": None, "count": self.counts[-1]}],
        }


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_name(name: str, labels: dict) -> str:
    """Flat display key: ``name{k=v,...}`` (plain name if unlabeled)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return f"{name}{{{inner}}}"


class MetricsRegistry:
    """Keyed store of metrics; one instance per benchmark run."""

    def __init__(self) -> None:
        self._metrics: dict = {}

    def _get(self, cls, name: str, labels: dict, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(**kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=None, **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    def __len__(self) -> int:
        return len(self._metrics)

    def reset(self) -> None:
        self._metrics.clear()

    # -- export -----------------------------------------------------------

    def collect(self) -> list:
        """One plain dict per metric, sorted by name (JSONL lines)."""
        out = []
        for (name, labels), metric in sorted(self._metrics.items()):
            out.append(
                {
                    "name": name,
                    "type": metric.kind,
                    "labels": dict(labels),
                    **metric.data(),
                }
            )
        return out

    def to_jsonl(self) -> str:
        return "\n".join(json.dumps(m, sort_keys=True) for m in self.collect())

    def dump_jsonl(self, path: str) -> None:
        with open(path, "w") as f:
            text = self.to_jsonl()
            f.write(text + ("\n" if text else ""))

    def scalars(self) -> dict:
        """Flat ``name{labels} -> float`` view, with derived hit rates.

        Histograms contribute ``.count``, ``.mean`` and ``.max``
        sub-keys.  For every counter pair ``X.hits`` / ``X.misses``
        sharing labels, a derived ``X.hit_rate`` is added — this is how
        the cache hit rate reaches the regression gate.
        """
        flat: dict = {}
        pairs: dict = {}
        for (name, labels), metric in self._metrics.items():
            key = format_metric_name(name, dict(labels))
            if isinstance(metric, Histogram):
                flat[f"{key}.count"] = float(metric.count)
                flat[f"{key}.mean"] = float(metric.mean)
                flat[f"{key}.max"] = float(metric.max or 0.0)
            else:
                flat[key] = float(metric.value)
                for suffix in ("hits", "misses"):
                    if name.endswith("." + suffix):
                        base = (name[: -len(suffix) - 1], _label_key(dict(labels)))
                        pairs.setdefault(base, {})[suffix] = float(metric.value)
        for (base, labels), hm in pairs.items():
            total = hm.get("hits", 0.0) + hm.get("misses", 0.0)
            if total > 0:
                key = format_metric_name(f"{base}.hit_rate", dict(labels))
                flat[key] = hm.get("hits", 0.0) / total
        return flat


# -- the process-wide current registry ------------------------------------

_DEFAULT = MetricsRegistry()
_CURRENT = _DEFAULT


def get_registry() -> MetricsRegistry:
    """The registry instrumentation points are currently writing to."""
    return _CURRENT


def set_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install ``registry`` as current (``None`` restores the default)."""
    global _CURRENT
    _CURRENT = registry if registry is not None else _DEFAULT
    return _CURRENT


@contextmanager
def use_registry(registry: MetricsRegistry | None = None):
    """Temporarily route metrics to ``registry`` (fresh one if omitted)."""
    registry = registry if registry is not None else MetricsRegistry()
    previous = get_registry()
    set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


def reset_metrics() -> None:
    """Clear the current registry in place."""
    _CURRENT.reset()
