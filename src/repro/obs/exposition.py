"""Prometheus-style text exposition of a :class:`MetricsRegistry`.

Renders the process-wide metrics registry in the Prometheus text
format (version 0.0.4): counters as ``*_total``, gauges verbatim, and
histograms as cumulative ``*_bucket{le=...}`` series plus ``*_sum`` /
``*_count`` — so a campaign's metrics can be scraped, diffed, or
pushed to any Prometheus-compatible stack without bespoke tooling::

    from repro.obs.exposition import to_prometheus
    text = to_prometheus(get_registry())

Output is deterministic: metric families sorted by name, label sets
sorted within a family, stable number formatting.  Metric names are
sanitized to the Prometheus grammar (dots and other invalid characters
become underscores) and prefixed with a namespace (default ``repro``).
"""

from __future__ import annotations

import re

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a dotted metric name into the Prometheus grammar."""
    flat = _NAME_BAD.sub("_", name)
    if namespace:
        flat = f"{namespace}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _label_name(name: str) -> str:
    flat = _LABEL_BAD.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat or "_"


def _escape(value: str) -> str:
    """Escape a label value per the 0.0.4 text format.

    Backslash first — escaping it last would re-escape the backslashes
    introduced for ``\\n`` and ``\\"``.  Covers domain-style labels
    like ``rack/0`` (no-op) and hostile ones carrying quotes, literal
    backslashes, or newlines (each of which would otherwise break the
    line-oriented exposition).
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _fmt(value: float) -> str:
    """Stable sample formatting: integers bare, floats via repr.

    Non-finite samples use the canonical 0.0.4 spellings (``NaN``,
    ``+Inf``, ``-Inf``) — ``repr`` would produce ``nan``/``inf``, which
    Prometheus parsers reject, and ``int()`` on them raises.
    """
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _labels(labels: dict, extra: dict | None = None) -> str:
    merged = {**{_label_name(k): v for k, v in labels.items()},
              **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in sorted(merged.items())
    )
    return "{" + inner + "}"


def to_prometheus(
    registry: MetricsRegistry, namespace: str = "repro"
) -> str:
    """Render ``registry`` in the Prometheus text exposition format."""
    # family name -> (prom type, [(sorted label key, lines)])
    families: dict = {}
    for (name, label_key), metric in registry._metrics.items():
        labels = dict(label_key)
        if isinstance(metric, Counter):
            fam = prometheus_name(name, namespace) + "_total"
            lines = [f"{fam}{_labels(labels)} {_fmt(metric.value)}"]
            kind = "counter"
        elif isinstance(metric, Gauge):
            fam = prometheus_name(name, namespace)
            lines = [f"{fam}{_labels(labels)} {_fmt(metric.value)}"]
            kind = "gauge"
        elif isinstance(metric, Histogram):
            fam = prometheus_name(name, namespace)
            lines = []
            cumulative = 0
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                lines.append(
                    f"{fam}_bucket"
                    f"{_labels(labels, {'le': _fmt(bound)})} {cumulative}"
                )
            lines.append(
                f"{fam}_bucket{_labels(labels, {'le': '+Inf'})} "
                f"{metric.count}"
            )
            lines.append(f"{fam}_sum{_labels(labels)} {_fmt(metric.total)}")
            lines.append(f"{fam}_count{_labels(labels)} {metric.count}")
            kind = "histogram"
        else:  # pragma: no cover — registry only holds the three kinds
            continue
        entry = families.setdefault(fam, (kind, []))
        if entry[0] != kind:
            raise ValueError(
                f"metric family {fam!r} rendered as both {entry[0]} and "
                f"{kind}"
            )
        entry[1].append((tuple(sorted(labels.items())), lines))
    out: list = []
    for fam in sorted(families):
        kind, series = families[fam]
        out.append(f"# TYPE {fam} {kind}")
        for _, lines in sorted(series):
            out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def write_prometheus(
    registry: MetricsRegistry, path: str, namespace: str = "repro"
) -> None:
    """Serialize :func:`to_prometheus` to a file."""
    with open(path, "w") as f:
        f.write(to_prometheus(registry, namespace))
