"""The resilient serving layer: deadline-aware admission, retry and
hedging, and fleet health over sharded inference.

PR 2 hardened the *single-request* path (fault detection, the
degradation ladder, per-layer circuit breakers); this package extends
robustness to the *fleet and traffic* level.  A seeded, simulated-clock
discrete-event loop serves open-loop Poisson traffic (zoo models) over
a :class:`~repro.gpu.device.GPUSpec` fleet with:

* a bounded admission queue with backpressure and load shedding
  (:mod:`repro.serve.queue`);
* per-request deadlines, retry with exponential backoff + jitter, and
  straggler hedging with first-result-wins duplicate cancellation
  (:mod:`repro.serve.server`);
* per-device health — crash-fed circuit breakers, quarantine, and
  probed re-admission (:mod:`repro.serve.health`), reusing the breaker
  machinery from :mod:`repro.robust.degrade`;
* failure-domain awareness — correlated outage/degrade fault windows,
  domain breakers with mass quarantine, domain-diverse retry/hedge
  placement, and the metastable-failure defense (retry token bucket,
  deadline-aware retry admission, hedge suppression) configured via
  :class:`~repro.robust.domains.StormConfig`;
* fleet-level fault sites (``device_crash``, ``device_stall``,
  ``queue_spike``, ``domain_outage``, ``domain_degrade``) from
  :mod:`repro.robust.faults`.

Every request ends in exactly one terminal state (completed / shed /
deadline_exceeded / failed), surfaced as ``serve.*`` metrics and spans
through :mod:`repro.obs`.  ``repro-bench serve`` runs campaigns from
the command line.
"""

from repro.serve.batching import BatchingConfig, FormingBatch, batch_close_time
from repro.serve.cluster import DeviceWorker, LatencyOracle
from repro.serve.health import (
    DEAD,
    HEALTHY,
    PROBING,
    QUARANTINED,
    DeviceHealth,
    FleetHealth,
)
from repro.serve.queue import AdmissionQueue
from repro.serve.report import SERVE_SCHEMA, ServeReport, format_serve_summary
from repro.serve.request import (
    COMPLETED,
    DEADLINE_EXCEEDED,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    TERMINAL_STATES,
    HedgePolicy,
    Request,
    RetryPolicy,
)
from repro.robust.domains import DomainTopology, RetryBudget, StormConfig
from repro.serve.server import (
    Attempt,
    ServeConfig,
    Server,
    run_serve_campaign,
)
from repro.serve.traffic import TRAFFIC_SHAPES, TrafficConfig, generate_arrivals

__all__ = [
    "AdmissionQueue",
    "Attempt",
    "BatchingConfig",
    "COMPLETED",
    "DEAD",
    "DEADLINE_EXCEEDED",
    "DeviceHealth",
    "DeviceWorker",
    "DomainTopology",
    "FAILED",
    "FleetHealth",
    "FormingBatch",
    "HEALTHY",
    "HedgePolicy",
    "LatencyOracle",
    "PROBING",
    "QUARANTINED",
    "QUEUED",
    "RUNNING",
    "Request",
    "RetryBudget",
    "RetryPolicy",
    "SERVE_SCHEMA",
    "SHED",
    "TRAFFIC_SHAPES",
    "ServeConfig",
    "ServeReport",
    "Server",
    "StormConfig",
    "TERMINAL_STATES",
    "TrafficConfig",
    "batch_close_time",
    "format_serve_summary",
    "generate_arrivals",
    "run_serve_campaign",
]
