"""Bounded admission queue with backpressure and load shedding.

Two shedding rules, both surfaced as ``serve.shed{reason=...}``:

* **reject-on-full** — an arrival finding the queue at capacity is shed
  immediately (after first evicting any already-expired entries to make
  room, so a burst doesn't reject live requests while dead ones hold
  slots);
* **oldest-first expiry** — whenever the queue is inspected, entries
  whose deadline has passed are shed front-to-back before anything is
  dispatched; a request that cannot possibly meet its SLO must not
  occupy a device.
"""

from __future__ import annotations

from collections import deque

from repro.obs.metrics import get_registry
from repro.serve.request import QUEUED, SHED, Request


class AdmissionQueue:
    """FIFO of admitted-but-not-yet-dispatched requests.

    ``on_shed`` is an optional observer called as
    ``on_shed(request, reason, now)`` *after* a request is shed — the
    server's flight recorder hooks in here so queue-internal terminal
    transitions (``queue_full``, ``expired``) reach the event journal
    without the queue knowing about journals.
    """

    def __init__(self, capacity: int, on_shed=None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.on_shed = on_shed
        self._q: deque = deque()
        #: requests shed by this queue, in shed order
        self.shed: list = []

    def __len__(self) -> int:
        return len(self._q)

    @property
    def depth(self) -> int:
        return len(self._q)

    def _shed(self, req: Request, reason: str, now: float) -> None:
        req.shed_reason = reason
        req.resolve(SHED, now)
        self.shed.append(req)
        get_registry().counter("serve.shed", reason=reason).inc()
        if self.on_shed is not None:
            self.on_shed(req, reason, now)

    def shed_expired(self, now: float) -> list:
        """Drop queued requests past their deadline, oldest first."""
        kept: deque = deque()
        dropped = []
        while self._q:
            req = self._q.popleft()
            if req.deadline <= now:
                self._shed(req, "expired", now)
                dropped.append(req)
            else:
                kept.append(req)
        self._q = kept
        return dropped

    def offer(self, req: Request, now: float) -> bool:
        """Admit ``req`` or shed it (reject-on-full); True if admitted."""
        if req.state != QUEUED:
            raise ValueError(
                f"request {req.id} is {req.state!r}, cannot enqueue"
            )
        if len(self._q) >= self.capacity:
            self.shed_expired(now)
        if len(self._q) >= self.capacity:
            self._shed(req, "queue_full", now)
            return False
        self._q.append(req)
        reg = get_registry()
        reg.counter("serve.admitted").inc()
        reg.histogram("serve.queue_depth").observe(len(self._q))
        return True

    def pop(self, now: float) -> Request | None:
        """Next live request (expired entries are shed on the way)."""
        self.shed_expired(now)
        return self._q.popleft() if self._q else None

    def peek(self, now: float) -> Request | None:
        """The request ``pop`` would return, without removing it."""
        self.shed_expired(now)
        return self._q[0] if self._q else None

    def take_matching(self, predicate, limit: int, now: float) -> list:
        """Remove up to ``limit`` queued requests accepted by
        ``predicate``, scanning front to back.

        The batching scheduler's coalescing primitive: expired entries
        are shed first (batch formation must not bypass the queue's
        shedding rules), then live entries are offered to ``predicate``
        oldest-first; rejected entries keep their relative FIFO order.
        ``predicate`` may be stateful — the scheduler's deadline-fit
        closure tightens as the batch it is building grows.
        """
        self.shed_expired(now)
        taken: list = []
        kept: deque = deque()
        while self._q:
            req = self._q.popleft()
            if len(taken) < limit and predicate(req):
                taken.append(req)
            else:
                kept.append(req)
        self._q = kept
        return taken

    def drain(self) -> list:
        """Remove and return everything still queued (campaign teardown)."""
        out = list(self._q)
        self._q.clear()
        return out
