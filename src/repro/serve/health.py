"""Per-device health tracking: quarantine and probed re-admission.

Reuses the :class:`~repro.robust.degrade.CircuitBreaker` machinery that
pins per-layer fallbacks in the single-request path — here a breaker
counts *device* failures (crashes, failed probes) and, once open,
quarantines the device: placement skips it until a health probe
succeeds and the breaker is reset.

A device that keeps failing probes is eventually declared **dead**
(``max_probes`` exhausted) so a sticky crash fault cannot spin the
probe loop forever; dead devices never rejoin the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.robust.degrade import CircuitBreaker

HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBING = "probing"
DEAD = "dead"


@dataclass
class DeviceHealth:
    """Health record of one fleet device."""

    label: str
    breaker: CircuitBreaker
    state: str = HEALTHY
    quarantined_at: float = 0.0
    crashes: int = 0
    probes: int = 0
    quarantines: int = 0

    @property
    def available(self) -> bool:
        """May placement send work here?"""
        return self.state == HEALTHY


class FleetHealth:
    """Health state of every device, keyed by label.

    Args:
        labels: fleet device labels (see
            :func:`repro.profiling.parallel.device_labels`).
        threshold: breaker failures before quarantine.
        max_probes: failed probes before a device is declared dead.
    """

    def __init__(
        self, labels, threshold: int = 2, max_probes: int = 8
    ) -> None:
        if threshold < 1 or max_probes < 1:
            raise ValueError("threshold >= 1 and max_probes >= 1 required")
        self.threshold = threshold
        self.max_probes = max_probes
        self.devices = {
            label: DeviceHealth(
                label=label, breaker=CircuitBreaker(threshold=threshold)
            )
            for label in labels
        }

    def add_device(self, label: str) -> DeviceHealth:
        """Admit a replacement device to the fleet, healthy.

        Used by the serve layer's spare pool when a DEAD device is
        replaced: the spare gets a fresh breaker (same threshold as the
        rest of the fleet), not the dead device's exhausted one.
        """
        if label in self.devices:
            raise ValueError(f"device {label!r} already tracked")
        dev = DeviceHealth(
            label=label, breaker=CircuitBreaker(threshold=self.threshold)
        )
        self.devices[label] = dev
        return dev

    def __getitem__(self, label: str) -> DeviceHealth:
        return self.devices[label]

    def mask(self, labels) -> list:
        """Availability mask aligned with ``labels`` (placement input)."""
        return [self.devices[label].available for label in labels]

    def record_failure(self, label: str, now: float) -> bool:
        """Count a device failure; True when this one quarantined it."""
        dev = self.devices[label]
        dev.crashes += 1
        dev.breaker.record_failure(recovered_level=1)
        if dev.breaker.open and dev.state == HEALTHY:
            dev.state = QUARANTINED
            dev.quarantined_at = now
            dev.quarantines += 1
            get_registry().counter("serve.quarantines", device=label).inc()
            return True
        return False

    def record_success(self, label: str) -> None:
        dev = self.devices[label]
        if dev.state == HEALTHY:
            dev.breaker.record_success(0)

    def begin_probe(self, label: str) -> None:
        dev = self.devices[label]
        if dev.state not in (QUARANTINED, PROBING):
            raise RuntimeError(
                f"probe on {label!r} in state {dev.state!r}"
            )
        dev.state = PROBING
        dev.probes += 1

    def probe_result(self, label: str, ok: bool, now: float) -> bool:
        """Apply a probe outcome; True when the device was readmitted."""
        dev = self.devices[label]
        reg = get_registry()
        reg.counter(
            "serve.probes", device=label, result="ok" if ok else "fail"
        ).inc()
        if ok:
            dev.state = HEALTHY
            # reset the breaker: a probed device starts with a clean slate
            dev.breaker.failures = 0
            dev.breaker.pinned = 0
            reg.counter("serve.readmissions", device=label).inc()
            return True
        if dev.probes >= self.max_probes:
            dev.state = DEAD
            reg.counter("serve.dead_devices", device=label).inc()
        else:
            dev.state = QUARANTINED
            dev.quarantined_at = now
        return False

    @property
    def any_available(self) -> bool:
        return any(d.available for d in self.devices.values())

    @property
    def all_dead(self) -> bool:
        return all(d.state == DEAD for d in self.devices.values())

    def summary(self) -> dict:
        """label -> health summary (for reports)."""
        return {
            label: {
                "state": d.state,
                "crashes": d.crashes,
                "probes": d.probes,
                "quarantines": d.quarantines,
            }
            for label, d in self.devices.items()
        }
