"""Per-device health tracking: quarantine and probed re-admission.

Reuses the :class:`~repro.robust.degrade.CircuitBreaker` machinery that
pins per-layer fallbacks in the single-request path — here a breaker
counts *device* failures (crashes, failed probes) and, once open,
quarantines the device: placement skips it until a health probe
succeeds and the breaker is reset.

A device that keeps failing probes is eventually declared **dead**
(``max_probes`` exhausted) so a sticky crash fault cannot spin the
probe loop forever; dead devices never rejoin the fleet.

With a non-trivial :class:`~repro.robust.domains.DomainTopology` the
fleet additionally tracks **domain breakers**: when at least
``domain_threshold`` of a domain's members fail within
``domain_window`` sim-seconds, the whole domain is declared out — the
remaining healthy members are *mass-quarantined* in one step instead
of being discovered one crash (and one wasted dispatch) at a time.
The breaker closes when any member passes a readmission probe.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import get_registry
from repro.robust.degrade import CircuitBreaker

HEALTHY = "healthy"
QUARANTINED = "quarantined"
PROBING = "probing"
DEAD = "dead"


@dataclass
class DeviceHealth:
    """Health record of one fleet device."""

    label: str
    breaker: CircuitBreaker
    state: str = HEALTHY
    quarantined_at: float = 0.0
    crashes: int = 0
    probes: int = 0
    quarantines: int = 0

    @property
    def available(self) -> bool:
        """May placement send work here?"""
        return self.state == HEALTHY


class FleetHealth:
    """Health state of every device, keyed by label.

    Args:
        labels: fleet device labels (see
            :func:`repro.profiling.parallel.device_labels`).
        threshold: breaker failures before quarantine.
        max_probes: failed probes before a device is declared dead.
        topology: failure-domain assignment
            (:class:`~repro.robust.domains.DomainTopology`); ``None``
            or a trivial topology disables all domain-level state.
        domain_threshold: fraction of a domain's members that must fail
            within ``domain_window`` for its breaker to open.
        domain_window: the correlation window, sim seconds (the serve
            loop resolves its scale-invariant default before running).
    """

    def __init__(
        self,
        labels,
        threshold: int = 2,
        max_probes: int = 8,
        topology=None,
        domain_threshold: float = 0.5,
        domain_window: float = 1.0,
    ) -> None:
        if threshold < 1 or max_probes < 1:
            raise ValueError("threshold >= 1 and max_probes >= 1 required")
        self.threshold = threshold
        self.max_probes = max_probes
        self.topology = topology
        self.domain_threshold = domain_threshold
        self.domain_window = domain_window
        self.devices = {
            label: DeviceHealth(
                label=label, breaker=CircuitBreaker(threshold=threshold)
            )
            for label in labels
        }
        #: domain -> {label: last failure time} inside the window
        self._domain_failures: dict = {}
        #: domain -> breaker state (only for correlated, 2+ -member
        #: domains — singletons are already covered by device breakers)
        self.domain_state: dict = {}
        if topology is not None and not topology.trivial:
            for name in topology.names:
                if len(topology.members(name)) > 1:
                    self.domain_state[name] = {
                        "open": False,
                        "opened_at": 0.0,
                        "outages": 0,
                        "mass_quarantined": 0,
                        "down_time": 0.0,
                    }

    def add_device(self, label: str) -> DeviceHealth:
        """Admit a replacement device to the fleet, healthy.

        Used by the serve layer's spare pool when a DEAD device is
        replaced: the spare gets a fresh breaker (same threshold as the
        rest of the fleet), not the dead device's exhausted one.
        """
        if label in self.devices:
            raise ValueError(f"device {label!r} already tracked")
        dev = DeviceHealth(
            label=label, breaker=CircuitBreaker(threshold=self.threshold)
        )
        self.devices[label] = dev
        return dev

    def __getitem__(self, label: str) -> DeviceHealth:
        return self.devices[label]

    def mask(self, labels) -> list:
        """Availability mask aligned with ``labels`` (placement input)."""
        return [self.devices[label].available for label in labels]

    def record_failure(self, label: str, now: float) -> bool:
        """Count a device failure; True when this one quarantined it."""
        dev = self.devices[label]
        dev.crashes += 1
        dev.breaker.record_failure(recovered_level=1)
        if dev.breaker.open and dev.state == HEALTHY:
            dev.state = QUARANTINED
            dev.quarantined_at = now
            dev.quarantines += 1
            get_registry().counter("serve.quarantines", device=label).inc()
            return True
        return False

    def record_domain_failure(self, label: str, now: float):
        """Feed a device failure to its domain breaker.

        Prunes failure stamps older than ``domain_window``, then — when
        at least ``domain_threshold`` of the domain's members have
        failed inside the window (or are already out of service) —
        opens the domain breaker and mass-quarantines the remaining
        HEALTHY members in one step.

        Returns ``(domain, mass_quarantined_labels)`` when this failure
        opened the breaker, ``None`` otherwise (including every call on
        a trivial topology or a singleton domain).
        """
        if self.topology is None:
            return None
        domain = self.topology.domain_of(label)
        state = self.domain_state.get(domain)
        if state is None or state["open"]:
            return None
        stamps = self._domain_failures.setdefault(domain, {})
        stamps[label] = now
        cutoff = now - self.domain_window
        for other in [k for k, t in stamps.items() if t < cutoff]:
            del stamps[other]
        members = self.topology.members(domain)
        failing = sum(
            1
            for m in members
            if m in stamps or self.devices[m].state != HEALTHY
        )
        if failing / len(members) < self.domain_threshold:
            return None
        state["open"] = True
        state["opened_at"] = now
        state["outages"] += 1
        reg = get_registry()
        reg.counter("serve.domain_outages", domain=domain).inc()
        swept = []
        for m in members:
            dev = self.devices[m]
            if dev.state == HEALTHY:
                dev.state = QUARANTINED
                dev.quarantined_at = now
                dev.quarantines += 1
                state["mass_quarantined"] += 1
                reg.counter("serve.quarantines", device=m).inc()
                reg.counter(
                    "serve.mass_quarantines", domain=domain
                ).inc()
                swept.append(m)
        return domain, swept

    def maybe_close_domain(self, label: str, now: float):
        """Close ``label``'s domain breaker after a readmission.

        A member passing its health probe is the evidence the domain's
        fault has cleared.  Returns the domain name when this readmit
        closed an open breaker, ``None`` otherwise.
        """
        if self.topology is None:
            return None
        domain = self.topology.domain_of(label)
        state = self.domain_state.get(domain)
        if state is None or not state["open"]:
            return None
        state["open"] = False
        state["down_time"] += now - state["opened_at"]
        self._domain_failures.pop(domain, None)
        get_registry().counter(
            "serve.domain_recoveries", domain=domain
        ).inc()
        return domain

    @property
    def any_domain_open(self) -> bool:
        return any(s["open"] for s in self.domain_state.values())

    def domain_open(self, label: str) -> bool:
        """Is ``label``'s domain breaker currently open?"""
        if self.topology is None:
            return False
        state = self.domain_state.get(self.topology.domain_of(label))
        return bool(state and state["open"])

    def domain_summary(self, end_time: float) -> dict:
        """domain -> outage/availability summary (for reports).

        Open breakers are closed out at ``end_time`` so availability
        reflects the full campaign horizon.
        """
        out = {}
        for domain, state in self.domain_state.items():
            down = state["down_time"]
            if state["open"]:
                down += end_time - state["opened_at"]
            out[domain] = {
                "members": len(self.topology.members(domain)),
                "outages": state["outages"],
                "mass_quarantined": state["mass_quarantined"],
                "down_time": down,
                "availability": (
                    1.0 - down / end_time if end_time > 0 else 1.0
                ),
            }
        return out

    def record_success(self, label: str) -> None:
        dev = self.devices[label]
        if dev.state == HEALTHY:
            dev.breaker.record_success(0)

    def begin_probe(self, label: str) -> None:
        dev = self.devices[label]
        if dev.state not in (QUARANTINED, PROBING):
            raise RuntimeError(
                f"probe on {label!r} in state {dev.state!r}"
            )
        dev.state = PROBING
        dev.probes += 1

    def probe_result(
        self, label: str, ok: bool, now: float, forgive: bool = False
    ) -> bool:
        """Apply a probe outcome; True when the device was readmitted.

        With ``forgive`` a *failed* probe does not count toward the
        ``max_probes`` death sentence: the serve loop sets it while the
        device's domain breaker is open, where the probe is expected to
        fail for the domain-wide reason — a correlated outage must not
        probe its victims to death one by one.
        """
        dev = self.devices[label]
        reg = get_registry()
        reg.counter(
            "serve.probes", device=label, result="ok" if ok else "fail"
        ).inc()
        if ok:
            dev.state = HEALTHY
            # reset the breaker: a probed device starts with a clean slate
            dev.breaker.failures = 0
            dev.breaker.pinned = 0
            reg.counter("serve.readmissions", device=label).inc()
            return True
        if forgive:
            dev.probes -= 1
            dev.state = QUARANTINED
            dev.quarantined_at = now
            return False
        if dev.probes >= self.max_probes:
            dev.state = DEAD
            reg.counter("serve.dead_devices", device=label).inc()
        else:
            dev.state = QUARANTINED
            dev.quarantined_at = now
        return False

    @property
    def any_available(self) -> bool:
        return any(d.available for d in self.devices.values())

    @property
    def all_dead(self) -> bool:
        return all(d.state == DEAD for d in self.devices.values())

    def summary(self) -> dict:
        """label -> health summary (for reports)."""
        return {
            label: {
                "state": d.state,
                "crashes": d.crashes,
                "probes": d.probes,
                "quarantines": d.quarantines,
            }
            for label, d in self.devices.items()
        }
