"""The simulated-clock serving loop.

A :class:`Server` drives a seeded, fully deterministic discrete-event
simulation over the fleet:

* arrivals land on the bounded :class:`~repro.serve.queue.AdmissionQueue`
  (reject-on-full, oldest-first expiry);
* queued requests dispatch to the least-loaded healthy idle device
  (via :func:`repro.profiling.parallel.least_loaded` — the same
  placement primitive the batch sharding path uses);
* a crashed attempt retries with exponential backoff + jitter while the
  deadline allows, and the crash feeds the device's circuit breaker:
  past the threshold the device is quarantined and periodically probed
  until readmission (or declared dead);
* an attempt running past the observed service-time percentile is
  *hedged*: a duplicate dispatches to the least-loaded healthy idle
  device, first result wins, and the loser is cancelled with its device
  reclaimed immediately.

Determinism: one seeded RNG drawn in event order, a heap ordered by
``(time, seq)``, and modeled (not wall-clock) service times — the same
seed reproduces every per-request outcome bit for bit.
"""

from __future__ import annotations

import heapq
from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.engine import BaseEngine, EngineConfig
from repro.gpu.device import GPUSpec
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer
from repro.profiling.parallel import device_labels, least_loaded
from repro.robust.brownout import BrownoutConfig, BrownoutController
from repro.robust.domains import DomainTopology, RetryBudget, StormConfig
from repro.robust.errors import ConfigError
from repro.robust.faults import (
    FaultInjector,
    domain_degrade_factor,
    draw_domain_windows,
    inject_faults,
    maybe_crash_device,
    maybe_silent_corruption,
    stall_factor,
)
from repro.serve.batching import BatchingConfig, FormingBatch, batch_close_time
from repro.serve.cluster import DeviceWorker, LatencyOracle
from repro.serve.health import DEAD, HEALTHY, QUARANTINED, FleetHealth
from repro.serve.queue import AdmissionQueue
from repro.serve.report import ServeReport
from repro.serve.request import (
    COMPLETED,
    DEADLINE_EXCEEDED,
    FAILED,
    QUEUED,
    RUNNING,
    SHED,
    HedgePolicy,
    Request,
    RetryPolicy,
)
from repro.serve.traffic import TrafficConfig, generate_arrivals

PRESET_FACTORIES = {
    "torchsparse": EngineConfig.torchsparse,
    "baseline": EngineConfig.baseline,
}


@dataclass(frozen=True)
class ServeConfig:
    """Fleet and policy knobs of one serving campaign.

    ``None`` time constants resolve against the traffic mix's mean base
    latency so campaigns stay meaningful across input scales:
    ``backoff_base`` to 0.5x, ``probe_cooldown`` to 4x.
    """

    devices: tuple
    preset: str = "torchsparse"
    queue_capacity: int = 64
    #: deadline = arrival + factor x (model's base latency on the
    #: slowest card) — the per-request SLO
    deadline_factor: float = 10.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    hedge: HedgePolicy = field(default_factory=HedgePolicy)
    breaker_threshold: int = 2
    probe_cooldown: float | None = None
    max_probes: int = 8
    #: run ABFT integrity verification on every finished attempt: a
    #: corrupted result is detected at completion and handled exactly
    #: like a crash (device breaker + retry budget), so it can never
    #: resolve ``completed``.  Off models the pre-ABFT fleet, where
    #: corruption ships silently (reported as ``corrupted`` requests).
    verify_integrity: bool = True
    #: sigma of the log-normal service-time noise (0 disables)
    noise_sigma: float = 0.15
    #: dataset sample scale for the latency oracle
    scale: float = 0.15
    seed: int = 0
    #: model key -> seconds, bypassing the engine (tests/synthetic runs)
    latency_overrides: dict | None = None
    #: sim-clock window (seconds) of the SLO monitor; ``None`` disables
    #: the per-window deadline-miss / burn-rate series in the report
    slo_window: float | None = None
    #: SLO objective the burn rate is measured against (0.99 = 1%
    #: error budget)
    slo_target: float = 0.99
    #: per-device persistent mapping reuse: a device that already
    #: served a (model, scene) pair serves repeats at the *warm* base
    #: latency (mapping stage collapsed by the content-addressed
    #: :class:`~repro.mapping.cache.MappingCache`).  Off (default)
    #: keeps every dispatch cold — bit-exact with pre-cache campaigns.
    steady_state: bool = False
    #: load-adaptive brownout: a hysteresis controller stepping the
    #: fleet's QoS level (INT8 compute, coarser voxels) on queue depth
    #: and error-budget burn (:class:`~repro.robust.brownout
    #: .BrownoutConfig`).  ``None`` (default) serves everything at full
    #: quality — bit-exact with pre-brownout campaigns.
    brownout: BrownoutConfig | None = None
    #: spare-device pool: when a device is declared DEAD, up to this
    #: many replacements are admitted (same GPU spec as the dead slot,
    #: fresh breaker).  0 (default) keeps the pre-spares fleet: a dead
    #: device just shrinks capacity.
    spares: int = 0
    #: path of a shared :class:`~repro.persist.store.ArtifactStore`.
    #: With ``steady_state`` on, dispatched (model, scene) frames are
    #: persisted as durable markers and a replacement device
    #: *warm-starts* from them instead of re-mapping the whole world
    #: cold.  ``None`` (default) keeps everything process-local.
    store_dir: str | None = None
    #: explicit device labels aligned with ``devices`` (``None`` derives
    #: them from the GPU specs).  Must be unique: labels key health
    #: state, fault sites, and domain membership.
    labels: tuple | None = None
    #: failure-domain label per device (rack / power / driver zone),
    #: aligned with ``devices``.  ``None`` (default) gives every device
    #: its own singleton domain — the trivial topology — so all
    #: domain-aware machinery stays dormant and campaigns are bit-exact
    #: with pre-domain behavior.
    domains: tuple | None = None
    #: metastability defense (fleet-wide retry token bucket,
    #: deadline-aware retry admission, hedge suppression while a domain
    #: breaker is open).  ``None`` (default) grants every retry and
    #: hedge unconditionally — the pre-storm fleet.
    storm: StormConfig | None = None
    #: fraction of a domain's members that must fail within
    #: ``domain_window`` for the domain breaker to open
    domain_threshold: float = 0.5
    #: the domain breaker's correlation window, sim seconds; ``None``
    #: resolves to 4x the traffic mix's mean base latency
    domain_window: float | None = None
    #: deadline-aware cross-request dynamic batching
    #: (:class:`~repro.serve.batching.BatchingConfig`): an idle device
    #: may coalesce up to ``max_batch`` queued same-model (and, in
    #: steady-state mode, same-scene) requests into one batched attempt
    #: priced by the oracle's sublinear
    #: :meth:`~repro.serve.cluster.LatencyOracle.batch_latency`.
    #: ``None`` (default) keeps the one-request-per-device pump —
    #: bit-exact with pre-batching campaigns.
    batching: BatchingConfig | None = None
    #: master switch of the domain-aware defense: domain breakers with
    #: mass quarantine, probe forgiveness during an open breaker, and
    #: domain-diverse retry/hedge/spare placement.  ``False`` keeps the
    #: correlated fault *surface* — ``domain_outage``/``domain_degrade``
    #: windows still fire over the configured topology — but the fleet
    #: reacts with only the flat per-device machinery.  This is the
    #: undefended arm of the storm ablation.
    domain_defense: bool = True

    def __post_init__(self) -> None:
        if not self.devices:
            raise ConfigError("need at least one device")
        if self.spares < 0:
            raise ConfigError(
                f"spares must be >= 0, got {self.spares}"
            )
        if self.queue_capacity < 1:
            raise ConfigError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.preset not in PRESET_FACTORIES:
            raise ConfigError(
                f"unknown preset {self.preset!r}; expected one of "
                f"{tuple(PRESET_FACTORIES)}"
            )
        if self.deadline_factor <= 0:
            raise ConfigError("deadline_factor must be positive")
        if self.noise_sigma < 0:
            raise ConfigError("noise_sigma must be >= 0")
        if self.slo_window is not None and self.slo_window <= 0:
            raise ConfigError("slo_window must be positive")
        if not 0.0 < self.slo_target < 1.0:
            raise ConfigError("slo_target must be in (0, 1)")
        if self.labels is not None:
            if len(self.labels) != len(self.devices):
                raise ConfigError(
                    f"labels ({len(self.labels)}) must align with "
                    f"devices ({len(self.devices)})"
                )
            seen = set()
            for label in self.labels:
                if label in seen:
                    raise ConfigError(f"duplicate device label {label!r}")
                seen.add(label)
        if self.domains is not None and len(self.domains) != len(
            self.devices
        ):
            raise ConfigError(
                f"domains ({len(self.domains)}) must align with "
                f"devices ({len(self.devices)})"
            )
        if not 0.0 < self.domain_threshold <= 1.0:
            raise ConfigError("domain_threshold must be in (0, 1]")
        if self.domain_window is not None and self.domain_window <= 0:
            raise ConfigError("domain_window must be positive")


@dataclass
class Attempt:
    """One dispatch of a request (or a health probe) onto a device."""

    id: int
    request: Request | None  # None for probes; the lead member for batches
    device: int
    kind: str  # "primary" | "retry" | "hedge" | "probe" | "batch"
    start: float
    finish: float
    will_fail: bool = False
    #: finishes on time but its result is silently corrupted (SDC)
    will_corrupt: bool = False
    cancelled: bool = False
    done: bool = False
    #: every request riding this attempt (batching scheduler); ``None``
    #: for the legacy one-request path and probes.  One batched attempt
    #: fans back out to one terminal state per member.
    members: tuple | None = None
    #: id of the batch this attempt carries (hedge duplicates reuse the
    #: primary's batch id)
    batch_id: int | None = None


class Server:
    """Event loop over one fleet; see the module docstring.

    Pass a :class:`~repro.obs.timeline.TimelineRecorder` to flight-
    record the campaign: every lifecycle transition (arrival, admit,
    shed, dequeue, dispatch, crash, integrity failure, retry, hedge,
    probe, quarantine, terminal state) is journaled as a typed event
    stamped with the sim clock, device label, queue depth, and the
    request's remaining deadline slack at that instant.
    """

    def __init__(
        self,
        config: ServeConfig,
        oracle: LatencyOracle,
        recorder=None,
    ) -> None:
        self.config = config
        self.oracle = oracle
        self.labels = (
            list(config.labels)
            if config.labels is not None
            else device_labels(config.devices)
        )
        self.workers = [
            DeviceWorker(index=i, label=label, spec=spec)
            for i, (label, spec) in enumerate(zip(self.labels, config.devices))
        ]
        self._index_of = {w.label: w.index for w in self.workers}
        self.topology = DomainTopology(
            self.labels,
            list(config.domains) if config.domains is not None else None,
        )
        #: domain-aware placement and health engage only when the
        #: topology is real AND the defense is on; the correlated fault
        #: windows fire over the topology either way
        self._defended = config.domain_defense and not self.topology.trivial
        self.health = FleetHealth(
            self.labels,
            threshold=config.breaker_threshold,
            max_probes=config.max_probes,
            topology=self.topology if config.domain_defense else None,
            domain_threshold=config.domain_threshold,
        )
        self.storm = config.storm
        self.retry_budget = (
            RetryBudget(config.storm) if config.storm is not None else None
        )
        #: correlated fault windows drawn in run() (pre-event-loop)
        self._domain_windows: list = []
        self.store = None
        if config.store_dir is not None:
            from repro.persist import ArtifactStore

            self.store = ArtifactStore(config.store_dir)
        self._spares_left = config.spares
        #: replacement records: {"slot", "device", "t", "warm_start",
        #: "inherited_frames"} per admitted spare
        self.replacements: list = []
        #: (model, scene) frames durably persisted this campaign (plus
        #: those recovered from the store on startup) — what a
        #: replacement device inherits instead of an empty cache
        self._fleet_seen: set = set()
        self.recorder = recorder
        if recorder is not None:
            recorder.meta.update(
                seed=config.seed,
                preset=config.preset,
                devices=list(self.labels),
                verify_integrity=config.verify_integrity,
                steady_state=config.steady_state,
                brownout=config.brownout is not None,
                spares=config.spares,
                store=config.store_dir is not None,
                domains=(
                    self.topology.to_json()
                    if not self.topology.trivial
                    else None
                ),
                storm=config.storm is not None,
                domain_defense=config.domain_defense,
            )
            if config.batching is not None:
                # added only when batching is on: batching=None journal
                # headers stay byte-exact with pre-batching campaigns
                recorder.meta.update(
                    batching=True, max_batch=config.batching.max_batch
                )
        self.queue = AdmissionQueue(
            config.queue_capacity, on_shed=self._on_queue_shed
        )
        self.rng = np.random.default_rng(config.seed + 1)
        self.tracer = Tracer()
        self.now = 0.0
        self._heap: list = []
        self._seq = 0
        self._attempts: dict = {}
        #: request id -> in-flight attempt ids
        self._live: dict = {}
        #: request id -> id of its most recently failed attempt (the
        #: causal parent a later retry dispatch links back to)
        self._last_failed: dict = {}
        self._service_samples: list = []
        self._requests: list = []
        self._probe_model = ""
        # time constants resolved in run()
        self._backoff_base = 0.0
        self._probe_cooldown = 0.0
        #: the brownout controller (built in run(), where the tick
        #: interval resolves against the traffic mix's mean latency)
        self.brownout: BrownoutController | None = None
        self._qos_interval = 0.0
        #: cumulative QualityConfig per ladder level (index 0 = full)
        self._qualities: list = []
        # terminal tallies of the current controller window
        self._qos_finished = 0
        self._qos_misses = 0
        #: per-device (model, scene) pairs already dispatched — a
        #: repeat on the same device is a warm frame for its mapping
        #: cache.  Marked at dispatch: the mapping stage runs first, so
        #: even an attempt that later crashes leaves the cache primed.
        self._seen: list = [set() for _ in self.workers]
        # report tallies
        self.retries = 0
        self.hedges_launched = 0
        self.hedges_won = 0
        self.hedges_cancelled = 0
        self.hedges_suppressed = 0
        self.integrity_failures = 0
        self.warm_dispatches = 0
        self.cold_dispatches = 0
        #: request attempts dispatched (primary + retry + hedge, not
        #: probes) — the numerator of the storm amplification factor.
        #: A batched attempt counts once: coalescing is the point.
        self.attempts_dispatched = 0
        self.retry_denied = {"budget": 0, "deadline": 0}
        # -- batching scheduler state (dormant when batching is None) --
        self.batching = config.batching
        #: device index -> FormingBatch holding that (reserved) device
        self._forming: dict = {}
        self._batch_count = 0
        #: monotonically increasing token invalidating stale
        #: ``batch_close`` heap events after a forming batch grows
        self._close_token = 0
        #: batch size -> batched attempts dispatched at that size
        self.batch_mix: dict = {}

    # -- event plumbing ------------------------------------------------------

    def _push(self, when: float, kind: str, ref) -> None:
        heapq.heappush(self._heap, (when, self._seq, kind, ref))
        self._seq += 1

    def _emit(
        self,
        kind: str,
        req: Request | None = None,
        /,
        *,
        attempt: int | None = None,
        device: str | None = None,
        **attrs,
    ) -> None:
        """Journal one lifecycle event (no-op without a recorder).

        Queue depth is sampled at emission time; slack is the request's
        remaining deadline budget at this instant.
        """
        if self.recorder is None:
            return
        self.recorder.emit(
            kind,
            self.now,
            request=None if req is None else req.id,
            attempt=attempt,
            device=device,
            queue_depth=self.queue.depth,
            slack=None if req is None else req.deadline - self.now,
            **attrs,
        )

    def _on_queue_shed(self, req: Request, reason: str, now: float) -> None:
        """Queue-internal shed (reject-on-full / expiry) -> terminal."""
        self._note_terminal(completed=False)
        self._emit("terminal", req, state=SHED, reason=reason)

    def _note_terminal(self, completed: bool) -> None:
        """Tally a terminal outcome into the brownout signal window."""
        self._qos_finished += 1
        if not completed:
            self._qos_misses += 1

    def _noise(self) -> float:
        sigma = self.config.noise_sigma
        if sigma == 0:
            return 1.0
        return float(np.exp(self.rng.normal(0.0, sigma)))

    def _service_time(
        self,
        model: str,
        worker: DeviceWorker,
        warm: bool = False,
        quality=None,
    ) -> float:
        base = self.oracle.base_latency(
            model, worker.spec, warm=warm, quality=quality
        )
        return base * stall_factor(worker.label) * self._noise()

    def deadline_for(self, model: str) -> float:
        """SLO budget: factor x base latency on the slowest card."""
        worst = max(
            self.oracle.base_latency(model, w.spec) for w in self.workers
        )
        return self.config.deadline_factor * worst

    def _hedge_delay(self, model: str, spec: GPUSpec) -> float:
        from repro.profiling.report import percentile

        hedge = self.config.hedge
        if len(self._service_samples) >= hedge.min_samples:
            return percentile(self._service_samples, hedge.quantile)
        return hedge.bootstrap_factor * self.oracle.base_latency(model, spec)

    # -- campaign entry ------------------------------------------------------

    def run(self, requests: list) -> ServeReport:
        """Serve ``requests`` to completion; returns the campaign report."""
        cfg = self.config
        self._requests = requests
        models = sorted({r.model for r in requests}) or ["minkunet_0.5x_kitti"]
        self._probe_model = models[0]
        mean = self.oracle.mean_latency(models, [w.spec for w in self.workers])
        self._backoff_base = (
            cfg.retry.backoff_base
            if cfg.retry.backoff_base is not None
            else 0.5 * mean
        )
        self._probe_cooldown = (
            cfg.probe_cooldown if cfg.probe_cooldown is not None else 4.0 * mean
        )
        self.health.domain_window = (
            cfg.domain_window if cfg.domain_window is not None else 4.0 * mean
        )
        if cfg.brownout is not None:
            b = cfg.brownout
            self._qos_interval = (
                b.interval
                if b.interval is not None
                else (cfg.slo_window if cfg.slo_window is not None else 8.0 * mean)
            )
            dwell = b.dwell if b.dwell is not None else 4.0 * self._qos_interval
            self.brownout = BrownoutController(
                b, target=cfg.slo_target, dwell=dwell
            )
            self._qualities = [
                b.ladder.quality_at(level) for level in range(b.ladder.floor + 1)
            ]
            get_registry().gauge("serve.qos_level").set(0)
        self._warmstart_fleet()
        # correlated fault windows are drawn once, pre-event-loop, from
        # the injector's RNG — zero draws when no domain kind is armed,
        # so unfaulted campaigns keep their exact event-order RNG stream
        horizon = max((r.arrival for r in requests), default=0.0)
        self._domain_windows = draw_domain_windows(
            self.topology.names, horizon
        )
        with self.tracer.span("serve.campaign", requests=len(requests)):
            for req in requests:
                self._push(req.arrival, "arrival", req.id)
            for win in self._domain_windows:
                if win["kind"] == "domain_outage":
                    self._push(win["start"], "domain_down", win)
            if self.brownout is not None and requests:
                self._push(self._qos_interval, "qos", None)
            handlers = {
                "arrival": self._on_arrival,
                "complete": self._on_complete,
                "retry": self._on_retry,
                "hedge": self._on_hedge,
                "probe": self._on_probe,
                "qos": self._on_qos_tick,
                "domain_down": self._on_domain_down,
                "batch_close": self._on_batch_close,
            }
            while self._heap:
                when, _, kind, ref = heapq.heappop(self._heap)
                self.now = when
                handlers[kind](ref)
            self._final_sweep()
        return self._report()

    def _req(self, req_id: int) -> Request:
        return self._requests[req_id]

    # -- handlers ------------------------------------------------------------

    def _on_arrival(self, req_id: int) -> None:
        req = self._req(req_id)
        get_registry().counter("serve.arrivals").inc()
        if self.recorder is not None and not req.trace_id:
            req.trace_id = f"{self.config.seed & 0xFFFFFFFF:08x}-{req.id:06d}"
        self._emit(
            "arrival", req,
            model=req.model, scene=req.scene, deadline=req.deadline,
            trace=req.trace_id,
        )
        if self.queue.offer(req, self.now):
            self._emit("admit", req, retries=req.retries)
            self._pump()

    def _pump(self) -> None:
        """Dispatch queued requests while idle healthy devices exist.

        With batching enabled the batched pump runs instead; the legacy
        one-request-per-device loop below is kept verbatim so
        ``batching=None`` campaigns replay bit for bit against
        pre-batching builds.
        """
        if self.batching is not None:
            self._pump_batched()
            return
        while True:
            eligible = [
                not w.busy and self.health[w.label].available
                for w in self.workers
            ]
            if not any(eligible):
                return
            req = self.queue.pop(self.now)
            if req is None:
                return
            self._emit("dequeue", req, wait=self.now - req.arrival)
            kind = "retry" if req.retries else "primary"
            parent = (
                self._last_failed.get(req.id) if kind == "retry" else None
            )
            d = self._place(eligible, parent)
            self._dispatch(req, d, kind, parent=parent)

    # -- the batching scheduler ----------------------------------------------

    def _pump_batched(self) -> None:
        """The coalescing pump: feed held batches, then open new ones.

        Queued requests first top up any batch still forming (a new
        arrival joining a held batch is the whole point of holding);
        then, while an idle healthy *unreserved* device exists, the
        oldest queued request leads a new batch on the least-loaded
        such device.  Devices reserved by a forming batch are invisible
        to placement — the hold is the reservation.
        """
        self._feed_forming()
        while True:
            eligible = [
                not w.busy
                and self.health[w.label].available
                and w.index not in self._forming
                for w in self.workers
            ]
            if not any(eligible):
                if self._starve_close():
                    continue
                return
            req = self.queue.pop(self.now)
            if req is None:
                return
            self._emit("dequeue", req, wait=self.now - req.arrival)
            parent = (
                self._last_failed.get(req.id) if req.retries else None
            )
            d = self._place(eligible, parent)
            self._open_batch(req, d)

    def _batch_estimate(self, model: str, w: DeviceWorker, n: int) -> float:
        """Deterministic modeled service time of an ``n``-frame batch.

        Formation decisions price the *plan* — oracle batch latency
        only, no stall factor and no noise draw (drawing here would
        perturb the RNG stream with scheduling lookahead).  The
        dispatch prices the reality.
        """
        return self.oracle.batch_latency(model, w.spec, n)

    def _open_batch(self, lead: Request, d: int) -> None:
        """Start forming a batch led by ``lead`` on (reserved) device ``d``."""
        self._batch_count += 1
        fb = FormingBatch(
            id=self._batch_count,
            device=d,
            model=lead.model,
            # steady-state batches are scene-pure so the whole attempt
            # has one mapping-cache temperature; otherwise scenes mix
            scene=lead.scene if self.config.steady_state else None,
            members=[lead],
            opened=self.now,
        )
        self._forming[d] = fb
        self._scoop(fb)
        self._settle(fb)

    def _scoop(self, fb: FormingBatch) -> None:
        """Coalesce queued requests into ``fb`` (deadline-aware).

        A candidate joins only if the batch *including it* could still
        dispatch right now without pushing any member — itself
        included — past its deadline at the grown batch's modeled
        service time.  A request too tight to survive the larger batch
        stays queued and will lead its own (likely solo) batch.
        """
        limit = self.batching.max_batch - len(fb.members)
        if limit <= 0:
            return
        w = self.workers[fb.device]

        def fits(req: Request) -> bool:
            if req.model != fb.model:
                return False
            if fb.scene is not None and req.scene != fb.scene:
                return False
            est = self._batch_estimate(fb.model, w, len(fb.members) + 1)
            worst = min(m.deadline for m in fb.members)
            if min(worst, req.deadline) - est < self.now:
                return False
            fb.members.append(req)
            return True

        for req in self.queue.take_matching(fits, limit, self.now):
            self._emit("dequeue", req, wait=self.now - req.arrival)

    def _settle(self, fb: FormingBatch) -> None:
        """Close ``fb`` now, or arm its deadline-driven close timer.

        The batch closes the instant the oldest member's slack minus
        the modeled batch service time hits zero — dispatch any later
        and that member misses.  Until then the device stays reserved,
        waiting for joiners; every growth re-arms the timer (a bigger
        batch is slower, so the close time only moves earlier).
        """
        n = len(fb.members)
        if n >= self.batching.max_batch:
            self._close_batch(fb, "full")
            return
        est = self._batch_estimate(fb.model, self.workers[fb.device], n)
        close_at = batch_close_time(fb.members, est)
        if close_at <= self.now:
            self._close_batch(fb, "deadline" if n > 1 else "solo")
            return
        fb.close_at = close_at
        self._close_token += 1
        fb.token = self._close_token
        self._push(close_at, "batch_close", (fb.device, fb.token))

    def _would_fit(self, fb: FormingBatch, req: Request) -> bool:
        """Whether ``req`` could join ``fb`` right now (no mutation)."""
        if len(fb.members) >= self.batching.max_batch:
            return False
        if req.model != fb.model:
            return False
        if fb.scene is not None and req.scene != fb.scene:
            return False
        w = self.workers[fb.device]
        est = self._batch_estimate(fb.model, w, len(fb.members) + 1)
        worst = min(m.deadline for m in fb.members)
        return min(worst, req.deadline) - est >= self.now

    def _starve_close(self) -> bool:
        """Work-conserving escape hatch: never idle-hold past a backlog.

        The hold is worth it only while the next queued request could
        still join a forming batch.  When the queue's head fits no held
        batch (wrong model, wrong scene, or too tight) and every device
        is busy or reserved, waiting buys nothing — the head is starved
        behind an idle reservation.  Close the earliest-closing held
        batch immediately so its device starts real work and frees up a
        full hold earlier.  Returns True if a batch was closed.
        """
        if not self._forming:
            return False
        head = self.queue.peek(self.now)
        if head is None:
            return False
        if any(self._would_fit(fb, head) for fb in self._forming.values()):
            return False
        d = min(self._forming, key=lambda i: (self._forming[i].close_at, i))
        self._close_batch(self._forming[d], "starved")
        return True

    def _feed_forming(self) -> None:
        """Offer queued requests to every batch still forming."""
        for d in sorted(self._forming):
            fb = self._forming.get(d)
            if fb is None:
                continue
            before = len(fb.members)
            self._scoop(fb)
            if len(fb.members) != before:
                self._settle(fb)

    def _on_batch_close(self, ref: tuple) -> None:
        """The hold expired: dispatch at the last viable instant.

        Stale timers — the batch grew (token bumped) or already closed
        (device released) — are ignored.
        """
        d, token = ref
        fb = self._forming.get(d)
        if fb is None or fb.token != token:
            return
        self._close_batch(fb, "deadline" if len(fb.members) > 1 else "solo")

    def _close_batch(self, fb: FormingBatch, reason: str) -> None:
        """Release the reservation and dispatch ``fb`` as one attempt."""
        self._forming.pop(fb.device, None)
        members = list(fb.members)
        self._emit(
            "batch_formed", members[0],
            device=self.workers[fb.device].label,
            batch=fb.id,
            size=len(members),
            model=fb.model,
            members=[m.id for m in members],
            reason=reason,
            held=self.now - fb.opened,
        )
        get_registry().counter("serve.batches", reason=reason).inc()
        self._dispatch_batch(members, fb.device, fb.id, "batch")

    def _dispatch_batch(
        self,
        members: list,
        d: int,
        batch_id: int,
        kind: str,
        parent: int | None = None,
    ) -> None:
        """Start one batched attempt carrying ``members`` on device ``d``.

        One attempt, one service draw, one crash/corruption draw — the
        batch lives and dies together on this device.  ``kind`` is
        ``"batch"`` for a scheduler close and ``"hedge"`` for a
        straggler duplicate of the whole member set (``parent`` = the
        hedged attempt).  Every member gets its own ``batch_dispatch``
        journal slice sharing the attempt id.
        """
        w = self.workers[d]
        reg = get_registry()
        n = len(members)
        if kind != "hedge":
            for m in members:
                if not m.retries:
                    reg.histogram("serve.wait_ms").observe(
                        (self.now - m.arrival) * 1e3
                    )
        warm = False
        if self.config.steady_state:
            # scene-pure by construction, so one frame keys the batch
            frame = (members[0].model, members[0].scene)
            warm = frame in self._seen[d]
            self._seen[d].add(frame)
            if warm:
                self.warm_dispatches += 1
            else:
                self.cold_dispatches += 1
            reg.counter(
                "serve.mapcache", result="warm" if warm else "cold"
            ).inc()
            if self.store is not None and frame not in self._fleet_seen:
                self._fleet_seen.add(frame)
                self._persist_frame(frame)
        quality = None
        if self.brownout is not None:
            quality = self._qualities[self.brownout.level]
            for m in members:
                m.qos_level = self.brownout.level
                m.qos_rung = self.brownout.rung
            reg.counter(
                "serve.qos_dispatches", rung=self.brownout.rung
            ).inc(n)
        base = self.oracle.batch_latency(
            members[0].model, w.spec, n, warm=warm, quality=quality
        )
        service = base * stall_factor(w.label) * self._noise()
        degrade = self._domain_fault(w.label, "domain_degrade")
        if degrade is not None:
            service *= domain_degrade_factor(degrade["severity"])
        will_fail = maybe_crash_device(w.label)
        if not will_fail and self._domain_fault(w.label, "domain_outage"):
            will_fail = True
        will_corrupt = not will_fail and maybe_silent_corruption(w.label)
        dur = 0.5 * service if will_fail else service
        attempt = Attempt(
            id=len(self._attempts),
            request=members[0],
            device=d,
            kind=kind,
            start=self.now,
            finish=self.now + dur,
            will_fail=will_fail,
            will_corrupt=will_corrupt,
            members=tuple(members),
            batch_id=batch_id,
        )
        self._attempts[attempt.id] = attempt
        for m in members:
            m.state = RUNNING
            m.in_flight += 1
            m.devices.append(w.label)
            m.batches.append(batch_id)
            self._live.setdefault(m.id, []).append(attempt.id)
        w.start(attempt.id)
        self.attempts_dispatched += 1
        self.batch_mix[n] = self.batch_mix.get(n, 0) + 1
        reg.counter("serve.dispatches", kind=kind).inc()
        reg.histogram("serve.batch_size").observe(n)
        for m in members:
            attrs = {
                "batch": batch_id,
                "size": n,
                "kind": (
                    "hedge" if kind == "hedge"
                    else ("retry" if m.retries else "primary")
                ),
                "model": m.model,
                "scene": m.scene,
            }
            if self.config.steady_state:
                attrs["warm"] = warm
            if self.brownout is not None:
                attrs["qos"] = m.qos_rung
            mparent = (
                parent
                if kind == "hedge"
                else (self._last_failed.get(m.id) if m.retries else None)
            )
            if mparent is not None:
                attrs["parent"] = mparent
            self._emit(
                "batch_dispatch", m,
                attempt=attempt.id, device=w.label, **attrs,
            )
        with self.tracer.span(
            "serve.batch_dispatch",
            batch=batch_id, size=n, device=w.label, kind=kind,
        ):
            pass
        self._push(attempt.finish, "complete", attempt.id)
        if self.config.hedge.enabled and kind != "hedge":
            self._push(
                self.now + self._hedge_delay(members[0].model, w.spec),
                "hedge",
                attempt.id,
            )

    def _place(self, eligible: list, parent: int | None) -> int:
        """Least-loaded eligible device, domain-diverse after a failure.

        A retry whose causal parent crashed in domain D prefers any
        eligible device *outside* D — a correlated fault should not eat
        the retry too.  Falls back to the flat choice when no other
        domain has capacity (or the topology is trivial, where "another
        domain" would just mean "another device", which placement
        cannot always honor).
        """
        busy = [w.busy_time for w in self.workers]
        if parent is not None and self._defended:
            failed = self.topology.domain_of(
                self.workers[self._attempts[parent].device].label
            )
            diverse = [
                e and self.topology.domain_of(w.label) != failed
                for e, w in zip(eligible, self.workers)
            ]
            if any(diverse):
                return least_loaded(busy, diverse)
        return least_loaded(busy, eligible)

    def _domain_fault(self, label: str, kind: str):
        """The active correlated fault window covering ``label``."""
        if not self._domain_windows:
            return None
        domain = self.topology.domain_of(label)
        for win in self._domain_windows:
            if (
                win["kind"] == kind
                and win["domain"] == domain
                and win["start"] <= self.now < win["end"]
            ):
                return win
        return None

    def _on_domain_down(self, win: dict) -> None:
        """A correlated outage window opens: crash-fail the domain.

        Every in-flight attempt on a member device fails *now* (its
        original completion event later no-ops via the ``done`` guard);
        dispatches and probes landing inside the window crash-fail at
        dispatch time via :meth:`_domain_fault`.  Recovery is organic:
        probes keep failing (forgiven while the domain breaker is open,
        so members cannot be probed to death by the shared fault) until
        the window closes, and the first readmission closes the breaker.
        """
        members = set(self.topology.members(win["domain"]))
        for a in list(self._attempts.values()):
            if a.done or a.cancelled:
                continue
            if self.workers[a.device].label not in members:
                continue
            a.will_fail = True
            a.will_corrupt = False
            a.finish = self.now
            self._push(self.now, "complete", a.id)

    def _dispatch(
        self, req: Request, d: int, kind: str, parent: int | None = None
    ) -> None:
        w = self.workers[d]
        reg = get_registry()
        if kind == "primary":
            reg.histogram("serve.wait_ms").observe(
                (self.now - req.arrival) * 1e3
            )
        warm = False
        if self.config.steady_state:
            frame = (req.model, req.scene)
            warm = frame in self._seen[d]
            self._seen[d].add(frame)
            if warm:
                self.warm_dispatches += 1
            else:
                self.cold_dispatches += 1
            reg.counter(
                "serve.mapcache", result="warm" if warm else "cold"
            ).inc()
            if self.store is not None and frame not in self._fleet_seen:
                self._fleet_seen.add(frame)
                self._persist_frame(frame)
        quality = None
        if self.brownout is not None:
            # the fleet's current rung; restamped per dispatch so the
            # request reports the level that produced its final result
            quality = self._qualities[self.brownout.level]
            req.qos_level = self.brownout.level
            req.qos_rung = self.brownout.rung
            reg.counter("serve.qos_dispatches", rung=req.qos_rung).inc()
        service = self._service_time(req.model, w, warm=warm, quality=quality)
        degrade = self._domain_fault(w.label, "domain_degrade")
        if degrade is not None:
            service *= domain_degrade_factor(degrade["severity"])
        will_fail = maybe_crash_device(w.label)
        if not will_fail and self._domain_fault(w.label, "domain_outage"):
            will_fail = True
        # an SDC attempt runs its *full* service time: nothing crashes,
        # the corruption is only discoverable once the result exists
        will_corrupt = not will_fail and maybe_silent_corruption(w.label)
        dur = 0.5 * service if will_fail else service
        req.state = RUNNING
        req.in_flight += 1
        req.devices.append(w.label)
        attempt = Attempt(
            id=len(self._attempts),
            request=req,
            device=d,
            kind=kind,
            start=self.now,
            finish=self.now + dur,
            will_fail=will_fail,
            will_corrupt=will_corrupt,
        )
        self._attempts[attempt.id] = attempt
        self._live.setdefault(req.id, []).append(attempt.id)
        w.start(attempt.id)
        self.attempts_dispatched += 1
        reg.counter("serve.dispatches", kind=kind).inc()
        dispatch_attrs = {"kind": kind, "model": req.model, "scene": req.scene}
        if self.config.steady_state:
            dispatch_attrs["warm"] = warm
        if self.brownout is not None:
            dispatch_attrs["qos"] = req.qos_rung
        if parent is not None:
            dispatch_attrs["parent"] = parent
        self._emit(
            "dispatch", req,
            attempt=attempt.id, device=w.label, **dispatch_attrs,
        )
        with self.tracer.span(
            "serve.dispatch", request=req.id, device=w.label, kind=kind
        ):
            pass
        self._push(attempt.finish, "complete", attempt.id)
        if self.config.hedge.enabled and kind != "hedge":
            self._push(
                self.now + self._hedge_delay(req.model, w.spec),
                "hedge",
                attempt.id,
            )

    def _on_hedge(self, attempt_id: int) -> None:
        a = self._attempts[attempt_id]
        if a.members is not None:
            self._on_batch_hedge(a)
            return
        req = a.request
        reg = get_registry()
        if a.done or a.cancelled or req.terminal or req.hedged:
            return
        if (
            self.storm is not None
            and self.storm.suppress_hedges
            and self.health.any_domain_open
        ):
            # a mass outage makes p95-triggered duplicates pure load
            # amplification onto the surviving domains
            self.hedges_suppressed += 1
            reg.counter("serve.hedges", outcome="suppressed").inc()
            self._emit("hedge_skip", req, reason="domain_breaker")
            return
        eligible = [
            not w.busy
            and self.health[w.label].available
            and w.index != a.device
            for w in self.workers
        ]
        if not any(eligible):
            reg.counter("serve.hedges", outcome="skipped").inc()
            self._emit("hedge_skip", req, reason="no_device")
            return
        if self._defended:
            primary = self.topology.domain_of(self.workers[a.device].label)
            diverse = [
                e and self.topology.domain_of(w.label) != primary
                for e, w in zip(eligible, self.workers)
            ]
            if not any(diverse):
                # a same-domain hedge shares the primary's failure
                # domain — it hedges nothing worth hedging
                reg.counter("serve.hedges", outcome="skipped").inc()
                self._emit("hedge_skip", req, reason="no_cross_domain")
                return
            eligible = diverse
        d = least_loaded([w.busy_time for w in self.workers], eligible)
        req.hedged = True
        self.hedges_launched += 1
        reg.counter("serve.hedges", outcome="launched").inc()
        with self.tracer.span(
            "serve.hedge", request=req.id, device=self.labels[d]
        ):
            pass
        self._dispatch(req, d, "hedge", parent=a.id)

    def _on_batch_hedge(self, a: Attempt) -> None:
        """Hedge a straggling batched attempt: duplicate the whole set.

        Same policy as the single-request hedge — p95 trigger, storm
        suppression, domain-diverse placement — but the duplicate
        carries the exact member set under the same batch id, so
        first-result-wins cancellation stays attempt-level.  Devices
        reserved by a forming batch are not stolen for hedges.
        """
        lead = a.request
        reg = get_registry()
        if a.done or a.cancelled or lead.terminal or lead.hedged:
            return
        if (
            self.storm is not None
            and self.storm.suppress_hedges
            and self.health.any_domain_open
        ):
            self.hedges_suppressed += 1
            reg.counter("serve.hedges", outcome="suppressed").inc()
            self._emit("hedge_skip", lead, reason="domain_breaker")
            return
        eligible = [
            not w.busy
            and self.health[w.label].available
            and w.index != a.device
            and w.index not in self._forming
            for w in self.workers
        ]
        if not any(eligible):
            reg.counter("serve.hedges", outcome="skipped").inc()
            self._emit("hedge_skip", lead, reason="no_device")
            return
        if self._defended:
            primary = self.topology.domain_of(self.workers[a.device].label)
            diverse = [
                e and self.topology.domain_of(w.label) != primary
                for e, w in zip(eligible, self.workers)
            ]
            if not any(diverse):
                reg.counter("serve.hedges", outcome="skipped").inc()
                self._emit("hedge_skip", lead, reason="no_cross_domain")
                return
            eligible = diverse
        d = least_loaded([w.busy_time for w in self.workers], eligible)
        for m in a.members:
            m.hedged = True
        self.hedges_launched += 1
        reg.counter("serve.hedges", outcome="launched").inc()
        with self.tracer.span(
            "serve.hedge", request=lead.id, device=self.labels[d]
        ):
            pass
        self._dispatch_batch(
            list(a.members), d, a.batch_id, "hedge", parent=a.id
        )

    def _on_complete(self, attempt_id: int) -> None:
        a = self._attempts[attempt_id]
        if a.done:
            return
        a.done = True
        if a.cancelled:
            # device was reclaimed when the sibling won
            return
        w = self.workers[a.device]
        w.release(self.now - a.start)
        if a.kind == "probe":
            self._finish_probe(a)
            return
        if a.members is not None:
            self._complete_batch(a, w)
            self._pump()
            return
        req = a.request
        req.in_flight -= 1
        self._live[req.id].remove(a.id)
        if a.will_fail:
            self._attempt_crashed(a, req, w)
        elif a.will_corrupt and self.config.verify_integrity:
            self._attempt_corrupted(a, req, w)
        else:
            self._attempt_succeeded(a, req, w)
        self._pump()

    def _attempt_crashed(self, a: Attempt, req: Request, w: DeviceWorker) -> None:
        reg = get_registry()
        reg.counter("serve.crashes", device=w.label).inc()
        with self.tracer.span("serve.crash", request=req.id, device=w.label):
            pass
        self._last_failed[req.id] = a.id
        self._emit(
            "attempt_finish", req,
            attempt=a.id, device=w.label, outcome="crash",
        )
        self._fail_attempt(req, w, "every attempt crashed")

    def _attempt_corrupted(
        self, a: Attempt, req: Request, w: DeviceWorker
    ) -> None:
        """A finished attempt failed ABFT verification.

        Same consequences as a crash — the breaker hears about it (a
        device producing corrupted results is as unhealthy as one that
        dies) and the retry budget is spent — the only difference being
        that the full service time was already burned.
        """
        reg = get_registry()
        self.integrity_failures += 1
        req.integrity_failures += 1
        reg.counter("serve.integrity_failures", device=w.label).inc()
        with self.tracer.span(
            "serve.integrity_failure", request=req.id, device=w.label
        ):
            pass
        self._last_failed[req.id] = a.id
        self._emit(
            "attempt_finish", req,
            attempt=a.id, device=w.label, outcome="integrity_fail",
        )
        self._fail_attempt(req, w, "result failed integrity verification")

    def _complete_batch(self, a: Attempt, w: DeviceWorker) -> None:
        """A batched attempt left its device: fan out to every member."""
        members = list(a.members)
        for m in members:
            m.in_flight -= 1
            self._live[m.id].remove(a.id)
        if a.will_fail:
            self._batch_failed(a, members, w, "crash")
        elif a.will_corrupt and self.config.verify_integrity:
            self._batch_failed(a, members, w, "integrity_fail")
        else:
            self._batch_succeeded(a, members, w)

    def _batch_failed(
        self, a: Attempt, members: list, w: DeviceWorker, outcome: str
    ) -> None:
        """One batched attempt crashed/corrupted: everyone rode it down.

        The device breaker hears about *one* failure (one attempt, one
        fault), but every member's retry/terminal verdict runs
        independently in member order — each backoff draw comes from
        the shared RNG in that deterministic order.
        """
        reg = get_registry()
        if outcome == "crash":
            reg.counter("serve.crashes", device=w.label).inc()
            with self.tracer.span(
                "serve.crash", request=members[0].id, device=w.label
            ):
                pass
            reason = "every attempt crashed"
        else:
            self.integrity_failures += 1
            reg.counter("serve.integrity_failures", device=w.label).inc()
            with self.tracer.span(
                "serve.integrity_failure",
                request=members[0].id,
                device=w.label,
            ):
                pass
            reason = "result failed integrity verification"
        for m in members:
            if outcome == "integrity_fail":
                m.integrity_failures += 1
            self._last_failed[m.id] = a.id
            self._emit(
                "attempt_finish", m,
                attempt=a.id, device=w.label, outcome=outcome,
            )
        self._record_device_failure(w)
        for m in members:
            self._member_verdict(m, reason)

    def _batch_succeeded(
        self, a: Attempt, members: list, w: DeviceWorker
    ) -> None:
        """One batched attempt finished: every member gets its verdict."""
        reg = get_registry()
        self.health.record_success(w.label)
        if self.retry_budget is not None:
            # n requests of goodput refill n tokens
            for _ in members:
                self.retry_budget.credit()
            reg.gauge("serve.retry_budget_tokens").set(
                self.retry_budget.tokens
            )
        w.completed += len(members)
        service = self.now - a.start
        self._service_samples.append(service)
        reg.histogram("serve.service_ms").observe(service * 1e3)
        for m in members:
            self._emit(
                "attempt_finish", m,
                attempt=a.id, device=w.label, outcome="ok",
                corrupted=bool(a.will_corrupt),
            )
        # first result wins at the attempt level: a hedge twin carries
        # the same member set, so it is cancelled once, its device
        # reclaimed once, and every member slice closed
        twin_ids: set = set()
        for m in members:
            twin_ids.update(self._live[m.id])
        for tid in sorted(twin_ids):
            twin = self._attempts[tid]
            twin.cancelled = True
            self.workers[twin.device].release(self.now - twin.start)
            self.hedges_cancelled += 1
            reg.counter("serve.hedges", outcome="cancelled").inc()
            for m in twin.members:
                self._live[m.id].remove(tid)
                m.in_flight -= 1
                self._emit(
                    "attempt_finish", m,
                    attempt=tid,
                    device=self.workers[twin.device].label,
                    outcome="cancelled",
                )
        if a.kind == "hedge":
            self.hedges_won += 1
            reg.counter("serve.hedges", outcome="won").inc()
        for m in members:
            if a.kind == "hedge":
                m.hedge_won = True
            if a.will_corrupt:
                # verification off: the SDC hole ships to every member
                m.corrupted = True
                reg.counter(
                    "serve.corrupted_completions", device=w.label
                ).inc()
            if self.now <= m.deadline:
                m.resolve(COMPLETED, self.now)
                reg.counter("serve.completed").inc()
                self._note_terminal(completed=True)
                self._emit("terminal", m, state=COMPLETED,
                           latency=m.latency, corrupted=m.corrupted)
            else:
                m.resolve(DEADLINE_EXCEEDED, self.now)
                reg.counter("serve.deadline_exceeded").inc()
                self._note_terminal(completed=False)
                self._emit("terminal", m, state=DEADLINE_EXCEEDED,
                           latency=m.latency)
            reg.histogram("serve.latency_ms").observe(m.latency * 1e3)

    def _fail_attempt(self, req: Request, w: DeviceWorker, reason: str) -> None:
        """Shared crash/corruption tail: breaker, retry budget, verdict."""
        self._record_device_failure(w)
        self._member_verdict(req, reason)

    def _record_device_failure(self, w: DeviceWorker) -> None:
        """Feed one attempt failure to the device (and domain) breaker."""
        if self.health.record_failure(w.label, self.now):
            self._emit("quarantine", device=w.label)
            self._push(self.now + self._probe_cooldown, "probe", w.index)
        opened = self.health.record_domain_failure(w.label, self.now)
        if opened is not None:
            domain, swept = opened
            self._emit("domain_outage", domain=domain, swept=len(swept))
            with self.tracer.span(
                "serve.domain_outage", domain=domain, swept=len(swept)
            ):
                pass
            for label in swept:
                self._emit("quarantine", device=label)
                self._push(
                    self.now + self._probe_cooldown,
                    "probe",
                    self._index_of[label],
                )

    def _member_verdict(self, req: Request, reason: str) -> None:
        """Retry-or-terminal decision for one request whose attempt failed."""
        reg = get_registry()
        if req.terminal:
            return
        if req.in_flight > 0:
            # a hedge twin is still running; it will decide the outcome
            return
        retry = self.config.retry
        if req.retries < retry.max_retries:
            # the backoff draw happens *before* storm gating, so the RNG
            # stream stays aligned between defended and undefended arms
            # of a same-seed ablation
            delay = retry.delay(req.retries, self._backoff_base, self.rng)
            if self.now + delay < req.deadline:
                denial = self._storm_denies_retry(req, delay)
                if denial is None:
                    req.retries += 1
                    req.state = QUEUED
                    self.retries += 1
                    reg.counter("serve.retries").inc()
                    self._emit("retry_scheduled", req, retry=req.retries,
                               delay=delay)
                    self._push(self.now + delay, "retry", req.id)
                    return
                self.retry_denied[denial] += 1
                reg.counter("serve.retry_denied", reason=denial).inc()
                self._emit("retry_denied", req, reason=denial)
                if denial == "deadline":
                    # a doomed retry is a deadline miss we already know
                    # about — resolve it now instead of burning a slot
                    req.error = "retry denied: insufficient deadline slack"
                    req.resolve(DEADLINE_EXCEEDED, self.now)
                    reg.counter("serve.deadline_exceeded").inc()
                    self._note_terminal(completed=False)
                    self._emit("terminal", req, state=DEADLINE_EXCEEDED,
                               error=req.error)
                    return
                # budget denial falls through to FAILED
        req.error = reason
        req.resolve(FAILED, self.now)
        reg.counter("serve.failed").inc()
        self._note_terminal(completed=False)
        self._emit("terminal", req, state=FAILED, error=reason)

    def _storm_denies_retry(self, req: Request, delay: float):
        """``None`` to admit the retry, else the denial reason.

        Deadline admission runs first — a retry that cannot finish in
        time should not spend a budget token on the way to missing.
        """
        if self.storm is None:
            return None
        if self.storm.deadline_aware:
            best = self._best_healthy_service(req.model)
            if best is not None and self.now + delay + best > req.deadline:
                return "deadline"
        if not self.retry_budget.take():
            return "budget"
        get_registry().gauge("serve.retry_budget_tokens").set(
            self.retry_budget.tokens
        )
        return None

    def _best_healthy_service(self, model: str):
        """Expected service time on the best available device."""
        times = [
            self.oracle.base_latency(model, w.spec)
            for w in self.workers
            if self.health[w.label].available
        ]
        return min(times) if times else None

    def _attempt_succeeded(
        self, a: Attempt, req: Request, w: DeviceWorker
    ) -> None:
        reg = get_registry()
        self.health.record_success(w.label)
        if self.retry_budget is not None:
            # goodput refills the storm budget: retry traffic stays a
            # bounded fraction of what actually succeeds
            self.retry_budget.credit()
            reg.gauge("serve.retry_budget_tokens").set(
                self.retry_budget.tokens
            )
        w.completed += 1
        service = self.now - a.start
        self._service_samples.append(service)
        reg.histogram("serve.service_ms").observe(service * 1e3)
        self._emit(
            "attempt_finish", req,
            attempt=a.id, device=w.label, outcome="ok",
            corrupted=bool(a.will_corrupt),
        )
        # first result wins: cancel any twin and reclaim its device now
        for sid in list(self._live[req.id]):
            twin = self._attempts[sid]
            twin.cancelled = True
            self.workers[twin.device].release(self.now - twin.start)
            self._live[req.id].remove(sid)
            req.in_flight -= 1
            self.hedges_cancelled += 1
            reg.counter("serve.hedges", outcome="cancelled").inc()
            self._emit(
                "attempt_finish", req,
                attempt=twin.id, device=self.workers[twin.device].label,
                outcome="cancelled",
            )
        if a.kind == "hedge":
            req.hedge_won = True
            self.hedges_won += 1
            reg.counter("serve.hedges", outcome="won").inc()
        if a.will_corrupt:
            # verification off: the SDC hole — garbage ships as a result
            req.corrupted = True
            reg.counter("serve.corrupted_completions", device=w.label).inc()
        if self.now <= req.deadline:
            req.resolve(COMPLETED, self.now)
            reg.counter("serve.completed").inc()
            self._note_terminal(completed=True)
            self._emit("terminal", req, state=COMPLETED,
                       latency=req.latency, corrupted=req.corrupted)
        else:
            req.resolve(DEADLINE_EXCEEDED, self.now)
            reg.counter("serve.deadline_exceeded").inc()
            self._note_terminal(completed=False)
            self._emit("terminal", req, state=DEADLINE_EXCEEDED,
                       latency=req.latency)
        reg.histogram("serve.latency_ms").observe(req.latency * 1e3)

    def _on_qos_tick(self, _ref) -> None:
        """One brownout-controller tick: observe the window, maybe step.

        The next tick is scheduled only while other events remain — a
        tick never keeps the heap alive on its own, so a campaign still
        terminates the instant its last request resolves.
        """
        ctl = self.brownout
        misses, finished = self._qos_misses, self._qos_finished
        self._qos_misses = 0
        self._qos_finished = 0
        change = ctl.observe(
            self.now,
            queue_depth=self.queue.depth,
            misses=misses,
            finished=finished,
        )
        if change is not None:
            reg = get_registry()
            reg.gauge("serve.qos_level").set(ctl.level)
            reg.counter("serve.qos_changes", direction=change["direction"]).inc()
            with self.tracer.span(
                "serve.qos_change", level=ctl.level, rung=ctl.rung
            ):
                pass
            self._emit(
                "qos_change",
                level=change["level"],
                rung=change["rung"],
                direction=change["direction"],
                burn=change["burn"],
            )
        if self._heap:
            self._push(self.now + self._qos_interval, "qos", None)

    def _on_retry(self, req_id: int) -> None:
        req = self._req(req_id)
        if req.terminal:
            return
        if self.queue.offer(req, self.now):
            self._emit("admit", req, retries=req.retries)
            self._pump()

    def _on_probe(self, d: int) -> None:
        w = self.workers[d]
        dev = self.health[w.label]
        if dev.state in (HEALTHY, DEAD):
            return
        if w.busy:
            # mass quarantine can catch a device mid-attempt; probe it
            # once the in-flight work drains instead of dropping the
            # probe (and the device) forever
            self._push(self.now + self._probe_cooldown, "probe", d)
            return
        self.health.begin_probe(w.label)
        service = self._service_time(self._probe_model, w)
        degrade = self._domain_fault(w.label, "domain_degrade")
        if degrade is not None:
            service *= domain_degrade_factor(degrade["severity"])
        will_fail = maybe_crash_device(w.label)
        if not will_fail and self._domain_fault(w.label, "domain_outage"):
            will_fail = True
        will_corrupt = not will_fail and maybe_silent_corruption(w.label)
        dur = 0.5 * service if will_fail else service
        attempt = Attempt(
            id=len(self._attempts),
            request=None,
            device=d,
            kind="probe",
            start=self.now,
            finish=self.now + dur,
            will_fail=will_fail,
            will_corrupt=will_corrupt,
        )
        self._attempts[attempt.id] = attempt
        w.start(attempt.id)
        with self.tracer.span("serve.probe", device=w.label):
            pass
        self._emit(
            "dispatch", attempt=attempt.id, device=w.label, kind="probe"
        )
        self._push(attempt.finish, "complete", attempt.id)

    # -- the durable tier ----------------------------------------------------

    def _persist_frame(self, frame: tuple) -> None:
        """Durably record that the fleet has mapped ``frame``."""
        from repro.persist import encode_artifact, frame_key

        model, scene = frame
        value = {"model": model, "scene": scene}
        self.store.save(
            frame_key(model, scene), "frame", encode_artifact("frame", value)
        )

    def _warmstart_fleet(self) -> None:
        """Prime every worker's seen-set from the shared store.

        Every stored frame marker is loaded through the verified path
        (checksum + structural decode — a corrupt marker quarantines
        and is simply not inherited).  The recovered frames seed both
        the fleet-wide set replacements inherit *and* each initial
        worker, so a second same-store campaign starts warm.
        """
        if self.store is None or not self.config.steady_state:
            return
        from repro.persist import decode_artifact
        from repro.robust.errors import StoreCorruptionError

        for key in sorted(self.store.entries):
            if self.store.entries[key]["kind"] != "frame":
                continue
            data = self.store.load(key)
            if data is None:
                continue
            try:
                kind, value = decode_artifact(data)
            except StoreCorruptionError:
                self.store.quarantine(key, reason="decode")
                continue
            if kind != "frame":
                self.store.quarantine(key, reason="kind_mismatch")
                continue
            self._fleet_seen.add((value["model"], value["scene"]))
        if not self._fleet_seen:
            return
        frames = len(self._fleet_seen)
        reg = get_registry()
        for w in self.workers:
            self._seen[w.index] |= self._fleet_seen
            reg.counter("persist.warmstarts").inc()
            reg.counter("persist.warmstart_frames").inc(frames)
            self._emit("store_warmstart", device=w.label, frames=frames)

    def _replace_device(self, dead: DeviceWorker) -> None:
        """Admit a spare into a dead device's slot.

        The spare shares the dead slot's GPU spec but gets its own
        label (``spare<n>`` — deliberately *not* derived from the dead
        label, so a sticky fault pinned to the dead device by substring
        site-matching cannot follow the replacement in), a fresh
        breaker, and — when the durable store is on — a seen-set
        warm-started from every frame the fleet has persisted, instead
        of an empty cache that re-maps the whole world cold.
        """
        if self._spares_left <= 0:
            return
        self._spares_left -= 1
        label = f"spare{len(self.replacements) + 1}"
        spare = DeviceWorker(
            index=len(self.workers), label=label, spec=dead.spec
        )
        self.workers.append(spare)
        self.labels.append(label)
        self._index_of[label] = spare.index
        # the spare joins the least-impacted domain (fewest unavailable
        # members; ties break in topology order) — backfilling the
        # outage's own domain would stack the replacement under the
        # same correlated fault.  Trivial topologies keep the spare a
        # singleton so they stay trivial.
        domain = label
        if self._defended:
            domain = min(
                self.topology.names,
                key=lambda name: sum(
                    not self.health[m].available
                    for m in self.topology.members(name)
                ),
            )
        self.topology.assign(label, domain)
        self.health.add_device(label)
        warm_start = self.store is not None and self.config.steady_state
        inherited = set(self._fleet_seen) if warm_start else set()
        self._seen.append(inherited)
        reg = get_registry()
        reg.counter("serve.replacements", device=dead.label).inc()
        self._emit(
            "device_replaced",
            device=label,
            slot=dead.label,
            spec=dead.spec.name,
            domain=domain,
        )
        if warm_start:
            reg.counter("persist.warmstarts").inc()
            reg.counter("persist.warmstart_frames").inc(len(inherited))
            self._emit("store_warmstart", device=label, frames=len(inherited))
        self.replacements.append(
            {
                "slot": dead.label,
                "device": label,
                "t": self.now,
                "warm_start": warm_start,
                "inherited_frames": len(inherited),
                "domain": domain,
            }
        )
        with self.tracer.span(
            "serve.device_replaced", slot=dead.label, device=label
        ):
            pass
        self._pump()

    def _finish_probe(self, a: Attempt) -> None:
        w = self.workers[a.device]
        ok = not a.will_fail and not (
            a.will_corrupt and self.config.verify_integrity
        )
        if a.will_fail:
            outcome = "crash"
        elif a.will_corrupt and self.config.verify_integrity:
            outcome = "integrity_fail"
        else:
            outcome = "ok"
        self._emit(
            "attempt_finish", attempt=a.id, device=w.label, outcome=outcome
        )
        forgive = not ok and self.health.domain_open(w.label)
        if self.health.probe_result(w.label, ok, self.now, forgive=forgive):
            self._emit("readmit", device=w.label)
            closed = self.health.maybe_close_domain(w.label, self.now)
            if closed is not None:
                # one member passing its probe is the evidence the
                # domain-wide fault has cleared
                self._emit("domain_recovered", domain=closed)
                with self.tracer.span(
                    "serve.domain_recovered", domain=closed
                ):
                    pass
            self._pump()
        elif self.health[w.label].state == QUARANTINED:
            self._push(self.now + self._probe_cooldown, "probe", w.index)
        elif self.health[w.label].state == DEAD:
            self._emit("device_dead", device=w.label)
            self._replace_device(w)

    def _final_sweep(self) -> None:
        """Force every survivor into a terminal state (liveness)."""
        reg = get_registry()
        for req in self.queue.drain():
            req.shed_reason = "no_capacity"
            req.resolve(SHED, self.now)
            reg.counter("serve.shed", reason="no_capacity").inc()
            self._emit("terminal", req, state=SHED, reason="no_capacity")
        for req in self._requests:
            if not req.terminal:
                req.error = req.error or "stranded at campaign end"
                req.resolve(FAILED, self.now)
                reg.counter("serve.failed").inc()
                self._emit("terminal", req, state=FAILED, error=req.error)

    # -- report --------------------------------------------------------------

    def _report(self) -> ServeReport:
        return ServeReport(
            requests=list(self._requests),
            fleet=self.health.summary(),
            utilization={
                w.label: {
                    "busy_time": w.busy_time,
                    "completed": w.completed,
                }
                for w in self.workers
            },
            hedges_launched=self.hedges_launched,
            hedges_won=self.hedges_won,
            hedges_cancelled=self.hedges_cancelled,
            hedges_suppressed=self.hedges_suppressed,
            retries=self.retries,
            attempts=self.attempts_dispatched,
            retry_denied=dict(self.retry_denied),
            batching=self.batching is not None,
            max_batch=(
                self.batching.max_batch if self.batching is not None else 1
            ),
            batch_mix={
                int(k): int(v) for k, v in sorted(self.batch_mix.items())
            },
            storm=self.storm is not None,
            domains=(
                self.topology.to_json()
                if not self.topology.trivial
                else {}
            ),
            domain_summary=self.health.domain_summary(self.now),
            integrity_failures=self.integrity_failures,
            verify_integrity=self.config.verify_integrity,
            steady_state=self.config.steady_state,
            warm_dispatches=self.warm_dispatches,
            cold_dispatches=self.cold_dispatches,
            spares=self.config.spares,
            store_enabled=self.store is not None,
            replacements=list(self.replacements),
            seed=self.config.seed,
            end_time=self.now,
            slo_window=self.config.slo_window,
            slo_target=self.config.slo_target,
            brownout=self.brownout is not None,
            qos_rungs=(
                self.brownout.config.ladder.rung_names()
                if self.brownout is not None
                else ("full",)
            ),
            qos_changes=(
                list(self.brownout.changes)
                if self.brownout is not None
                else []
            ),
        )


def run_serve_campaign(
    config: ServeConfig,
    traffic: TrafficConfig,
    injector: FaultInjector | None = None,
    recorder=None,
) -> ServeReport:
    """Generate traffic, serve it, and report — one deterministic run.

    Base latencies are warmed *before* the injector is installed so the
    oracle's engine runs can never trip pipeline fault sites; serve
    campaigns exercise exactly the fleet-level kinds.

    Pass a :class:`~repro.obs.timeline.TimelineRecorder` as
    ``recorder`` to journal every lifecycle transition (the flight
    recorder backing ``repro-bench serve --events``).
    """
    engine = BaseEngine(config=PRESET_FACTORIES[config.preset]())
    oracle = LatencyOracle(
        engine,
        scale=config.scale,
        seed=config.seed,
        overrides=config.latency_overrides,
    )
    server = Server(config, oracle, recorder=recorder)
    if recorder is not None:
        recorder.meta.update(
            rate=traffic.rate,
            duration=traffic.duration,
            models=list(traffic.models),
            coherence=traffic.coherence,
        )
    qualities = []
    if config.brownout is not None:
        ladder = config.brownout.ladder
        qualities = [
            ladder.quality_at(level) for level in range(1, ladder.floor + 1)
        ]
    for model in traffic.models:
        for w in server.workers:
            oracle.base_latency(model, w.spec)
            if config.steady_state:
                oracle.base_latency(model, w.spec, warm=True)
            for q in qualities:
                oracle.base_latency(model, w.spec, quality=q)
                if config.steady_state:
                    oracle.base_latency(model, w.spec, warm=True, quality=q)
    if config.batching is not None:
        # warm every batch size the scheduler may price, so formation
        # estimates and batched dispatches never run the engine inside
        # the injector context either
        for model in traffic.models:
            for w in server.workers:
                for n in range(2, config.batching.max_batch + 1):
                    oracle.batch_latency(model, w.spec, n)
                    if config.steady_state:
                        oracle.batch_latency(model, w.spec, n, warm=True)
                    for q in qualities:
                        oracle.batch_latency(model, w.spec, n, quality=q)
                        if config.steady_state:
                            oracle.batch_latency(
                                model, w.spec, n, warm=True, quality=q
                            )
    ctx = inject_faults(injector) if injector is not None else nullcontext()
    with ctx:
        requests = generate_arrivals(traffic, server.deadline_for)
        report = server.run(requests)
    report.duration = traffic.duration
    return report
