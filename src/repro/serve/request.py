"""Requests, terminal states, and retry/hedge policies.

Every request admitted to the serving layer ends in **exactly one** of
four terminal states:

==================  =====================================================
state               meaning
==================  =====================================================
``completed``       finished within its deadline
``shed``            dropped by admission control — the queue was full on
                    arrival (``queue_full``) or the request expired while
                    still queued (``expired``, shed oldest-first)
``deadline_exceeded``  finished, but after its deadline
``failed``          every attempt crashed *or failed integrity
                    verification* and retries/deadline ran out — a
                    corrupted-but-finished attempt is never allowed to
                    resolve ``completed`` while verification is on
==================  =====================================================

``queued`` and ``running`` are the only transient states; the server's
final sweep guarantees nothing is left in them when a campaign ends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.robust.errors import ConfigError

# transient
QUEUED = "queued"
RUNNING = "running"
# terminal
COMPLETED = "completed"
SHED = "shed"
DEADLINE_EXCEEDED = "deadline_exceeded"
FAILED = "failed"

TERMINAL_STATES = (COMPLETED, SHED, DEADLINE_EXCEEDED, FAILED)


@dataclass
class Request:
    """One inference request flowing through the serving layer."""

    id: int
    model: str
    arrival: float
    deadline: float
    #: scene id within the model's stream — requests sharing a scene
    #: voxelize to the same coordinates (temporal coherence), so a
    #: device that already served the scene has its mapping cached
    scene: int = 0
    #: campaign-unique causal-trace id, assigned by the server's flight
    #: recorder at arrival (``{seed:08x}-{id:06d}``); empty when the
    #: campaign runs without a recorder
    trace_id: str = ""
    state: str = QUEUED
    #: retries consumed (primary dispatch not counted)
    retries: int = 0
    #: attempts currently on a device (1 normally, 2 while hedged)
    in_flight: int = 0
    hedged: bool = False
    #: the hedge duplicate, not the primary, produced the result
    hedge_won: bool = False
    finish: float | None = None
    shed_reason: str = ""
    error: str = ""
    #: device labels in dispatch order (probes excluded)
    devices: list = field(default_factory=list)
    #: batch id per dispatched attempt, aligned with ``devices`` — the
    #: batching scheduler stamps every attempt (hedge duplicates reuse
    #: the primary's batch id); empty when batching is off
    batches: list = field(default_factory=list)
    #: attempts that finished but failed ABFT verification (each counts
    #: toward the device breaker and this request's retry budget)
    integrity_failures: int = 0
    #: a corrupted result was *delivered* — only possible with fleet
    #: verification off (the silent-data-corruption hole)
    corrupted: bool = False
    #: QoS level/rung this request was served at (stamped from the
    #: brownout controller at its final dispatch); 0/"full" when the
    #: campaign runs without brownout
    qos_level: int = 0
    qos_rung: str = "full"

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def fault_rung(self) -> str:
        """Fault-ladder rung that produced the delivered result.

        In the serve simulation the only per-request fault degradation
        is the integrity path: a caught corruption recomputes at the
        numeric rung (``fp32-scalar``), everything else serves at full.
        Reported next to ``qos_rung`` so the fault-degradation mix and
        the brownout QoS mix sit side by side.
        """
        return "fp32-scalar" if self.integrity_failures else "full"

    @property
    def latency(self) -> float | None:
        """End-to-end seconds from arrival to finish (None if unfinished)."""
        return None if self.finish is None else self.finish - self.arrival

    def resolve(self, state: str, now: float | None = None) -> None:
        """Move to a terminal state exactly once."""
        if state not in TERMINAL_STATES:
            raise ValueError(f"{state!r} is not a terminal state")
        if self.terminal:
            raise RuntimeError(
                f"request {self.id} already terminal ({self.state})"
            )
        self.state = state
        if now is not None:
            self.finish = now

    def to_json(self) -> dict:
        out = {
            "id": self.id,
            "model": self.model,
            "arrival": self.arrival,
            "deadline": self.deadline,
            "scene": self.scene,
            "trace_id": self.trace_id,
            "state": self.state,
            "retries": self.retries,
            "hedged": self.hedged,
            "hedge_won": self.hedge_won,
            "finish": self.finish,
            "latency": self.latency,
            "shed_reason": self.shed_reason,
            "error": self.error,
            "devices": list(self.devices),
            "integrity_failures": self.integrity_failures,
            "corrupted": self.corrupted,
            "qos_level": self.qos_level,
            "qos_rung": self.qos_rung,
            "fault_rung": self.fault_rung,
        }
        # present only for batched campaigns: batching=None reports
        # stay byte-exact with pre-batching runs
        if self.batches:
            out["batches"] = list(self.batches)
        return out


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter.

    ``backoff_base=None`` is resolved by the server to half the mean
    base latency of the traffic mix, keeping campaigns scale-invariant.
    """

    max_retries: int = 2
    backoff_base: float | None = None
    backoff_mult: float = 2.0
    #: +/- fraction of the delay drawn uniformly (0 disables jitter)
    jitter: float = 0.25

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base is not None and self.backoff_base <= 0:
            raise ConfigError("backoff_base must be positive")
        if self.backoff_mult < 1.0:
            raise ConfigError("backoff_mult must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigError("jitter must be in [0, 1]")

    def delay(self, retry: int, base: float, rng) -> float:
        """Backoff before retry number ``retry`` (0-indexed).

        The jitter draw comes from ``rng`` — the *server's* seeded
        stream, consumed in event order — never module-level
        ``random``, so same-seed campaigns replay bit for bit.
        """
        d = base * self.backoff_mult**retry
        if self.jitter:
            d *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return d


@dataclass(frozen=True)
class HedgePolicy:
    """Straggler hedging: duplicate a slow attempt, first result wins.

    A hedge fires once an attempt has been running longer than the
    ``quantile`` of observed service times (bootstrapped from
    ``bootstrap_factor`` x the model's base latency until
    ``min_samples`` completions exist), provided a healthy idle device
    is available.  The loser is cancelled and its device reclaimed.
    """

    enabled: bool = True
    quantile: float = 95.0
    min_samples: int = 16
    bootstrap_factor: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile <= 100.0:
            raise ConfigError(
                f"quantile must be in (0, 100], got {self.quantile}"
            )
        if self.min_samples < 1 or self.bootstrap_factor <= 0:
            raise ConfigError("min_samples >= 1 and bootstrap_factor > 0")
