"""Seeded open-loop traffic generation (Poisson arrivals).

The generator is *open-loop*: arrival times are drawn up front from a
seeded exponential inter-arrival process, independent of how the fleet
keeps up — overload therefore manifests as queue growth and shedding,
exactly the regime admission control exists for.

The ``queue_spike`` fault site lives here: when armed, a burst of extra
requests lands at a single arrival instant, modeling a traffic spike.
Because generation is seeded, the full arrival schedule (bursts
included) is reproducible bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.robust.faults import queue_spike_burst
from repro.serve.request import Request


@dataclass(frozen=True)
class TrafficConfig:
    """Open-loop Poisson traffic over a zoo model mix.

    Attributes:
        rate: mean arrivals per sim second.
        duration: arrival window in sim seconds (service may run past
            it; nothing *arrives* after).
        models: zoo model keys in the mix.
        weights: per-model probabilities (uniform when None).
        seed: drives arrival times, model choices, and burst contents.
        coherence: probability that a request repeats its model's
            current scene instead of opening a new one — the streaming
            LiDAR regime, where consecutive (ego-motion-compensated)
            frames voxelize to the same sparsity pattern.  ``0``
            (default) keeps every request a fresh scene and draws
            nothing extra from the RNG, so existing seeded arrival
            schedules stay bit-exact.
    """

    rate: float
    duration: float
    models: tuple = ("minkunet_0.5x_kitti",)
    weights: tuple | None = None
    seed: int = 0
    coherence: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if not self.models:
            raise ValueError("need at least one model in the mix")
        if self.weights is not None and len(self.weights) != len(self.models):
            raise ValueError("weights must match models")
        if not 0.0 <= self.coherence < 1.0:
            raise ValueError("coherence must be in [0, 1)")


def generate_arrivals(cfg: TrafficConfig, deadline_for) -> list:
    """Materialize the arrival schedule.

    Args:
        cfg: traffic parameters.
        deadline_for: ``model_key -> seconds`` SLO budget; a request
            arriving at ``t`` gets deadline ``t + deadline_for(model)``.

    Returns:
        Requests sorted by arrival time, ids dense from 0.
    """
    rng = np.random.default_rng(cfg.seed)
    weights = None
    if cfg.weights is not None:
        total = float(sum(cfg.weights))
        weights = [w / total for w in cfg.weights]

    def pick_model() -> str:
        i = int(rng.choice(len(cfg.models), p=weights))
        return cfg.models[i]

    # per-model scene process: with probability ``coherence`` a request
    # rides the model's current scene (same coordinates, fresh features
    # — a warm frame for the mapping cache), otherwise the scene
    # changes.  The RNG is only consulted when coherence > 0 so the
    # default arrival stream is byte-identical to pre-coherence runs.
    next_scene: dict = {}
    current_scene: dict = {}

    def pick_scene(model: str) -> int:
        coherent = (
            cfg.coherence > 0.0
            and model in current_scene
            and float(rng.random()) < cfg.coherence
        )
        if not coherent:
            current_scene[model] = next_scene.get(model, 0)
            next_scene[model] = current_scene[model] + 1
        return current_scene[model]

    requests: list = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / cfg.rate))
        if t >= cfg.duration:
            break
        burst = 1 + queue_spike_burst(site=f"traffic.t{len(requests)}")
        for _ in range(burst):
            model = pick_model()
            requests.append(
                Request(
                    id=len(requests),
                    model=model,
                    arrival=t,
                    deadline=t + float(deadline_for(model)),
                    scene=pick_scene(model),
                )
            )
    return requests
