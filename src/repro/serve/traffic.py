"""Seeded open-loop traffic generation (Poisson arrivals).

The generator is *open-loop*: arrival times are drawn up front from a
seeded exponential inter-arrival process, independent of how the fleet
keeps up — overload therefore manifests as queue growth and shedding,
exactly the regime admission control exists for.

Beyond the homogeneous ``"poisson"`` default, three non-stationary
shapes exercise the brownout controller:

==============  ==========================================================
shape           arrival process
==============  ==========================================================
``"poisson"``   homogeneous rate (bit-exact with pre-shape campaigns)
``"diurnal"``   sinusoidal ramp over the duration — quiet at the edges,
                ``(1 + amplitude)x`` the mean at the midpoint
``"flash"``     flash crowd: ``peak_factor``x the base rate inside the
                ``[flash_start, flash_start + flash_width)`` fraction of
                the duration, base rate outside
``"tenants"``   homogeneous rate, but the *model mix* drifts — each
                tenant's weight swings sinusoidally with a per-tenant
                phase offset, so load composition changes over time
==============  ==========================================================

Non-homogeneous shapes are sampled by thinning (candidates drawn at the
peak rate, accepted with probability ``rate_at(t) / peak``), which keeps
the whole schedule a deterministic function of the seed.

The ``queue_spike`` fault site lives here: when armed, a burst of extra
requests lands at a single arrival instant, modeling a traffic spike.
Because generation is seeded, the full arrival schedule (bursts
included) is reproducible bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.robust.errors import ConfigError
from repro.robust.faults import queue_spike_burst
from repro.serve.request import Request

#: The supported arrival shapes (see the module docstring).
TRAFFIC_SHAPES = ("poisson", "diurnal", "flash", "tenants")


@dataclass(frozen=True)
class TrafficConfig:
    """Open-loop Poisson traffic over a zoo model mix.

    Attributes:
        rate: mean arrivals per sim second.
        duration: arrival window in sim seconds (service may run past
            it; nothing *arrives* after).
        models: zoo model keys in the mix.
        weights: per-model probabilities (uniform when None).
        seed: drives arrival times, model choices, and burst contents.
        coherence: probability that a request repeats its model's
            current scene instead of opening a new one — the streaming
            LiDAR regime, where consecutive (ego-motion-compensated)
            frames voxelize to the same sparsity pattern.  ``0``
            (default) keeps every request a fresh scene and draws
            nothing extra from the RNG, so existing seeded arrival
            schedules stay bit-exact; ``1`` is a fully scene-coherent
            stream (every request after the first rides the same scene
            — the warm-cache limit).
        shape: arrival shape (see the module docstring);
            ``"poisson"`` keeps the exact pre-shape RNG draw sequence.
        peak_factor: flash-crowd rate multiplier (``"flash"``).
        flash_start: flash onset as a fraction of the duration.
        flash_width: flash length as a fraction of the duration.
        amplitude: swing fraction — the diurnal rate swing around the
            mean (``"diurnal"``) or each tenant's weight swing
            (``"tenants"``).
    """

    rate: float
    duration: float
    models: tuple = ("minkunet_0.5x_kitti",)
    weights: tuple | None = None
    seed: int = 0
    coherence: float = 0.0
    shape: str = "poisson"
    peak_factor: float = 4.0
    flash_start: float = 0.4
    flash_width: float = 0.2
    amplitude: float = 0.8

    def __post_init__(self) -> None:
        if self.rate <= 0 or self.duration <= 0:
            raise ValueError("rate and duration must be positive")
        if not self.models:
            raise ValueError("need at least one model in the mix")
        if self.weights is not None:
            if len(self.weights) != len(self.models):
                raise ValueError("weights must match models")
            # a zero-sum or negative mix used to pass construction and
            # blow up deep inside generate_arrivals (ZeroDivisionError
            # in the weights_at normalization / np.random.choice
            # p-error); fail at the boundary like ServeConfig does
            if any(
                not math.isfinite(float(w)) or w < 0 for w in self.weights
            ):
                raise ConfigError(
                    f"weights must be finite and >= 0, got {self.weights}"
                )
            if sum(self.weights) <= 0:
                raise ConfigError(
                    f"weights must sum to > 0, got {self.weights}"
                )
        if not 0.0 <= self.coherence <= 1.0:
            raise ValueError("coherence must be in [0, 1]")
        if self.shape not in TRAFFIC_SHAPES:
            raise ValueError(
                f"unknown shape {self.shape!r}; expected one of {TRAFFIC_SHAPES}"
            )
        if self.peak_factor < 1.0:
            raise ValueError("peak_factor must be >= 1")
        if not 0.0 <= self.flash_start < 1.0 or not 0.0 < self.flash_width <= 1.0:
            raise ValueError(
                "flash_start must be in [0, 1) and flash_width in (0, 1]"
            )
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")

    # -- the arrival intensity ----------------------------------------------

    @property
    def peak_rate(self) -> float:
        """The thinning envelope: max of ``rate_at`` over the duration."""
        if self.shape == "flash":
            return self.rate * self.peak_factor
        if self.shape == "diurnal":
            return self.rate * (1.0 + self.amplitude)
        return self.rate

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at sim time ``t``."""
        if self.shape == "diurnal":
            # quiet at the edges, (1 + amplitude)x at the midpoint;
            # integrates to rate * duration, so the mean load is shape-
            # independent and campaigns stay comparable across shapes
            phase = 2.0 * math.pi * t / self.duration
            return self.rate * (1.0 - self.amplitude * math.cos(phase))
        if self.shape == "flash":
            frac = t / self.duration
            lo = self.flash_start
            if lo <= frac < lo + self.flash_width:
                return self.rate * self.peak_factor
            return self.rate
        return self.rate

    def weights_at(self, t: float) -> list | None:
        """Per-model pick probabilities at ``t`` (the tenant drift)."""
        base = (
            [1.0 / len(self.models)] * len(self.models)
            if self.weights is None
            else [w / float(sum(self.weights)) for w in self.weights]
        )
        if self.shape != "tenants" or len(self.models) < 2:
            return None if self.weights is None else base
        phase = 2.0 * math.pi * t / self.duration
        offset = 2.0 * math.pi / len(self.models)
        drifted = [
            b * (1.0 + self.amplitude * math.sin(phase + i * offset))
            for i, b in enumerate(base)
        ]
        total = sum(drifted)
        return [d / total for d in drifted]


def generate_arrivals(cfg: TrafficConfig, deadline_for) -> list:
    """Materialize the arrival schedule.

    Args:
        cfg: traffic parameters.
        deadline_for: ``model_key -> seconds`` SLO budget; a request
            arriving at ``t`` gets deadline ``t + deadline_for(model)``.

    Returns:
        Requests sorted by arrival time, ids dense from 0.
    """
    rng = np.random.default_rng(cfg.seed)

    def pick_model(t: float) -> str:
        i = int(rng.choice(len(cfg.models), p=cfg.weights_at(t)))
        return cfg.models[i]

    # per-model scene process: with probability ``coherence`` a request
    # rides the model's current scene (same coordinates, fresh features
    # — a warm frame for the mapping cache), otherwise the scene
    # changes.  The RNG is only consulted when coherence > 0 so the
    # default arrival stream is byte-identical to pre-coherence runs.
    next_scene: dict = {}
    current_scene: dict = {}

    def pick_scene(model: str) -> int:
        coherent = (
            cfg.coherence > 0.0
            and model in current_scene
            and float(rng.random()) < cfg.coherence
        )
        if not coherent:
            current_scene[model] = next_scene.get(model, 0)
            next_scene[model] = current_scene[model] + 1
        return current_scene[model]

    # non-homogeneous shapes sample by thinning: candidates at the peak
    # rate, accepted with probability rate_at(t)/peak.  The homogeneous
    # "poisson" shape takes the exact pre-shape draw sequence (peak ==
    # rate, no acceptance draw), keeping seeded schedules bit-exact.
    thinned = cfg.shape in ("diurnal", "flash")
    peak = cfg.peak_rate
    requests: list = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / peak))
        if t >= cfg.duration:
            break
        if thinned and float(rng.random()) * peak >= cfg.rate_at(t):
            continue
        burst = 1 + queue_spike_burst(site=f"traffic.t{len(requests)}")
        for _ in range(burst):
            model = pick_model(t)
            requests.append(
                Request(
                    id=len(requests),
                    model=model,
                    arrival=t,
                    deadline=t + float(deadline_for(model)),
                    scene=pick_scene(model),
                )
            )
    return requests
