"""Deadline-aware cross-request dynamic batching policy.

The serve loop's one-request-per-device dispatch caps fleet throughput
at per-request latency; the source paper's amortization result (batched
gather-bmm-scatter with adaptive grouping) says a collated pass over
``n`` frames costs far less than ``n`` single passes.  The batching
scheduler exploits exactly that: when a device frees up it may coalesce
up to ``max_batch`` queued requests for the same model (and, in
steady-state mode, the same scene) into **one** batched attempt priced
by :meth:`~repro.serve.cluster.LatencyOracle.batch_latency`.

Batch formation is *deadline-aware, not timer-based*:

* a batch under ``max_batch`` holds its (reserved, idle) device open
  for late joiners, but only while every member's deadline still
  absorbs the modeled batch service time — the batch closes at
  :func:`batch_close_time`, the instant the oldest member's slack minus
  the modeled batch service time hits zero;
* a queued request whose deadline cannot survive the *larger* batch is
  never coalesced — left at the queue head it becomes the next batch's
  lead, where the same close rule fires immediately and it dispatches
  solo (a batch of one).

``ServeConfig.batching=None`` (the default) keeps the scheduler
entirely dormant: the legacy one-request pump runs, no extra RNG is
drawn, no batch events are journaled, and same-seed campaigns stay
bit-exact with pre-batching runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.robust.errors import ConfigError


@dataclass(frozen=True)
class BatchingConfig:
    """Knobs of the cross-request batching scheduler.

    Attributes:
        max_batch: largest number of requests one batched attempt may
            carry.  ``1`` degenerates to per-request dispatch through
            the batched code path (useful as an ablation baseline with
            identical event kinds).
    """

    max_batch: int = 4

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ConfigError(
                f"max_batch must be >= 1, got {self.max_batch}"
            )


@dataclass
class FormingBatch:
    """A batch still accreting members on a reserved idle device."""

    id: int
    device: int
    model: str
    #: scene every member must share (steady-state mode only; ``None``
    #: means any scene may join — there is no warm frame to protect)
    scene: int | None
    members: list
    #: sim time the batch opened (the lead's dequeue instant)
    opened: float
    close_at: float = 0.0
    #: invalidation token: a stale ``batch_close`` heap event whose
    #: token no longer matches is a no-op
    token: int = 0


def batch_close_time(members, service: float) -> float:
    """Latest instant the batch can dispatch without the modeled batch
    service time pushing any member past its deadline.

    Holding past this point would convert waiting — which exists to buy
    throughput — into a deadline miss for the tightest member, so the
    scheduler arms a ``batch_close`` event here and dispatches no later.
    """
    return min(m.deadline for m in members) - service
