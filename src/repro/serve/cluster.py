"""Device workers and the memoized base-latency oracle.

A :class:`DeviceWorker` is one fleet slot: a :class:`GPUSpec` plus the
minimal serving state (busy flag, accumulated busy time, completion
count).  Service times come from the :class:`LatencyOracle`, which runs
each (zoo model, device spec) pair through the engine **once** and
memoizes the modeled latency — the simulation then reuses that base
latency for every request, perturbed per attempt by stall faults and
log-normal noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.engine import BaseEngine, ExecutionContext
from repro.datasets.collate import batch_collate
from repro.datasets.voxelize import coarsen_sparse_tensor
from repro.gpu.device import GPUSpec
from repro.mapping.cache import MappingCache
from repro.models import MODEL_ZOO
from repro.robust.degrade import FULL_QUALITY, QualityConfig

#: Modeled fixed-overhead fraction of a batched frame on the overrides
#: path (no engine to measure): a batch of ``n`` costs
#: ``override * (alpha + (1 - alpha) * n)`` — per-frame cost strictly
#: decreasing in ``n``, mirroring the launch/padding amortization the
#: engine path measures for real models.
OVERRIDE_BATCH_ALPHA = 0.5


@dataclass
class DeviceWorker:
    """One serving slot in the fleet."""

    index: int
    label: str
    spec: GPUSpec
    busy: bool = False
    #: attempt id currently running (None when idle)
    current: int | None = None
    #: sim seconds spent serving (the placement load signal)
    busy_time: float = 0.0
    completed: int = 0

    def start(self, attempt_id: int) -> None:
        if self.busy:
            raise RuntimeError(f"device {self.label} already busy")
        self.busy = True
        self.current = attempt_id

    def release(self, elapsed: float) -> None:
        if not self.busy:
            raise RuntimeError(f"device {self.label} is not busy")
        self.busy = False
        self.current = None
        self.busy_time += elapsed


class LatencyOracle:
    """Modeled base latency per (zoo model key, device spec), memoized.

    Args:
        engine: engine whose config prices the latency.
        scale: dataset sample scale fed to ``sample_tensor``.
        seed: sample seed (one fixed input per model keeps the oracle
            deterministic and cheap).
        overrides: optional ``model_key -> seconds`` map bypassing the
            engine entirely (unit tests, synthetic campaigns).
    """

    def __init__(
        self,
        engine: BaseEngine,
        scale: float = 0.15,
        seed: int = 0,
        overrides: dict | None = None,
    ) -> None:
        self.engine = engine
        self.scale = scale
        self.seed = seed
        self.overrides = dict(overrides or {})
        self._latency: dict = {}
        #: (model_key, spec, n, warm, quality) -> batched attempt time
        self._batch_latency: dict = {}
        self._models: dict = {}
        self._inputs: dict = {}
        #: (model_key, voxel_scale) -> requantized coarse input
        self._coarse_inputs: dict = {}
        #: dtype -> engine repriced at that storage dtype (QoS rungs)
        self._engines: dict = {}
        #: spec -> MappingCache — the per-device persistent mapping
        #: cache of the steady-state serving path
        self._mapcaches: dict = {}

    def _entry(self, key: str):
        for e in MODEL_ZOO:
            if e.key == key:
                return e
        raise ValueError(f"unknown zoo model {key!r}")

    def mapcache(self, spec: GPUSpec) -> MappingCache:
        """The device's persistent mapping cache (one per spec)."""
        cache = self._mapcaches.get(spec)
        if cache is None:
            cache = self._mapcaches[spec] = MappingCache()
        return cache

    def _engine_for(self, quality: QualityConfig) -> BaseEngine:
        """The engine repriced at the rung's storage dtype (memoized)."""
        if quality.dtype is None:
            return self.engine
        engine = self._engines.get(quality.dtype)
        if engine is None:
            engine = self._engines[quality.dtype] = BaseEngine(
                config=replace(self.engine.config, dtype=quality.dtype)
            )
        return engine

    def _input_for(self, model_key: str, quality: QualityConfig):
        """The model's fixed sample input at the rung's voxel scale."""
        if quality.voxel_scale == 1:
            return self._inputs[model_key]
        key = (model_key, quality.voxel_scale)
        x = self._coarse_inputs.get(key)
        if x is None:
            x = self._coarse_inputs[key] = coarsen_sparse_tensor(
                self._inputs[model_key], quality.voxel_scale
            )
        return x

    def base_latency(
        self,
        model_key: str,
        spec: GPUSpec,
        warm: bool = False,
        quality: QualityConfig | None = None,
    ) -> float:
        """Modeled latency of one frame.

        ``warm=True`` prices a *warm* frame: the device already served
        this scene, so every mapping-stage artifact (coordinate tables,
        downsampled coordinates, kernel maps) comes out of the device's
        persistent :class:`~repro.mapping.cache.MappingCache` and the
        mapping stage collapses to (modeled) zero.  Latency overrides
        bypass the engine for both temperatures.

        ``quality`` prices a browned-out frame
        (:class:`~repro.robust.degrade.QualityConfig`): the engine runs
        at the rung's storage dtype over the input requantized at the
        rung's voxel scale, so the QoS speedup comes out of the same
        cost model as everything else.  On the overrides path (no
        engine) the rung's modeled ``speedup`` divides the override.
        """
        quality = FULL_QUALITY if quality is None else quality
        if model_key in self.overrides:
            return float(self.overrides[model_key]) / quality.speedup
        memo_key = (model_key, spec, bool(warm), quality)
        if memo_key not in self._latency:
            entry = self._entry(model_key)
            if model_key not in self._models:
                self._models[model_key] = entry.make_model()
                self._inputs[model_key] = entry.make_dataset().sample_tensor(
                    seed=self.seed, scale=self.scale
                )
            model = self._models[model_key]
            x = self._input_for(model_key, quality)
            engine = self._engine_for(quality)
            if warm:
                # populate the device cache (the cold frame), then price
                # a second frame of the same scene through it
                cache = self.mapcache(spec)
                warmup = ExecutionContext(
                    engine=engine, device=spec, mapcache=cache
                )
                model(x, warmup)
                ctx = ExecutionContext(
                    engine=engine, device=spec, mapcache=cache
                )
            else:
                ctx = ExecutionContext(engine=engine, device=spec)
            model(x, ctx)
            self._latency[memo_key] = ctx.profile.total_time
        return self._latency[memo_key]

    def batch_latency(
        self,
        model_key: str,
        spec: GPUSpec,
        n: int,
        warm: bool = False,
        quality: QualityConfig | None = None,
    ) -> float:
        """Modeled latency of **one** batched attempt over ``n`` frames.

        The engine path collates ``n`` copies of the model's fixed
        sample input (:func:`~repro.datasets.collate.batch_collate`)
        and runs the batch through the engine once per
        ``(model, spec, n, warm, quality)``, memoized — so the
        sublinear batch cost (kernel-launch and bmm-padding
        amortization under adaptive grouping) comes out of the same
        cost model as everything else.  ``n=1`` delegates to
        :meth:`base_latency`, keeping single dispatches priced
        identically whether or not batching is enabled.

        On the overrides path (no engine) a batch of ``n`` is priced
        ``override * (OVERRIDE_BATCH_ALPHA + (1 - alpha) * n)``:
        per-frame cost strictly decreasing in ``n``, divided by the
        QoS rung's modeled speedup like :meth:`base_latency`.
        """
        if n < 1:
            raise ValueError(f"batch size must be >= 1, got {n}")
        if n == 1:
            return self.base_latency(model_key, spec, warm=warm, quality=quality)
        quality = FULL_QUALITY if quality is None else quality
        if model_key in self.overrides:
            base = float(self.overrides[model_key]) / quality.speedup
            return base * (
                OVERRIDE_BATCH_ALPHA + (1.0 - OVERRIDE_BATCH_ALPHA) * n
            )
        memo_key = (model_key, spec, int(n), bool(warm), quality)
        if memo_key not in self._batch_latency:
            # ensure the model and its fixed sample input exist (and
            # price the n=1 anchor while we are at it)
            self.base_latency(model_key, spec, warm=warm, quality=quality)
            model = self._models[model_key]
            x = self._input_for(model_key, quality)
            xb = batch_collate([x] * n)
            engine = self._engine_for(quality)
            if warm:
                cache = self.mapcache(spec)
                warmup = ExecutionContext(
                    engine=engine, device=spec, mapcache=cache
                )
                model(xb, warmup)
                ctx = ExecutionContext(
                    engine=engine, device=spec, mapcache=cache
                )
            else:
                ctx = ExecutionContext(engine=engine, device=spec)
            model(xb, ctx)
            self._batch_latency[memo_key] = ctx.profile.total_time
        return self._batch_latency[memo_key]

    def mean_latency(self, model_keys, specs) -> float:
        """Mean base latency over a traffic mix x fleet (scale anchor
        for backoff and probe cadence).

        Unique specs are taken in first-seen order, not via ``set``:
        summation order must not depend on string hashing, or two
        processes would disagree on the last float bit and break the
        campaign's bit-for-bit reproducibility.
        """
        uniq: list = []
        for s in specs:
            if s not in uniq:
                uniq.append(s)
        lats = [self.base_latency(m, s) for m in model_keys for s in uniq]
        return sum(lats) / len(lats) if lats else 0.0
