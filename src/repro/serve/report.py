"""Campaign aggregates: latency percentiles, SLO attainment, hedging.

Percentiles use the same nearest-rank
:func:`repro.profiling.report.percentile` as the batch sharding path,
so ``repro-bench serve`` and ``ShardResult.p99`` quote comparable
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.timeline import windowed_slo, worst_burn
from repro.profiling.report import percentile
from repro.serve.request import (
    COMPLETED,
    DEADLINE_EXCEEDED,
    FAILED,
    SHED,
    TERMINAL_STATES,
)

SERVE_SCHEMA = "repro-bench.serve/1"


@dataclass
class ServeReport:
    """Everything a finished campaign produced."""

    requests: list = field(default_factory=list)
    #: label -> {state, crashes, probes, quarantines}
    fleet: dict = field(default_factory=dict)
    #: label -> {busy_time, completed}
    utilization: dict = field(default_factory=dict)
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    #: hedges withheld while a domain breaker was open (storm defense)
    hedges_suppressed: int = 0
    retries: int = 0
    #: request attempts dispatched (primary + retry + hedge) — the
    #: numerator of :attr:`amplification`
    attempts: int = 0
    #: denial reason -> retries the storm defense refused
    retry_denied: dict = field(default_factory=dict)
    #: whether the deadline-aware batching scheduler was engaged
    batching: bool = False
    #: the scheduler's coalescing ceiling (1 when batching is off)
    max_batch: int = 1
    #: batch size -> batched attempts dispatched at that size
    batch_mix: dict = field(default_factory=dict)
    #: whether the metastability defense was engaged
    storm: bool = False
    #: device label -> failure domain (empty for trivial topologies)
    domains: dict = field(default_factory=dict)
    #: domain -> {members, outages, mass_quarantined, down_time,
    #: availability} for every correlated (2+ member) domain
    domain_summary: dict = field(default_factory=dict)
    #: finished attempts that failed ABFT verification (each handled
    #: like a crash: breaker + retry budget)
    integrity_failures: int = 0
    #: whether the fleet ran with integrity verification enabled
    verify_integrity: bool = True
    #: whether per-device persistent mapping reuse was on
    steady_state: bool = False
    #: dispatches served at the warm base latency (mapping cached on
    #: the device) vs. cold — both zero when ``steady_state`` is off
    warm_dispatches: int = 0
    cold_dispatches: int = 0
    #: size of the spare-device pool the campaign ran with
    spares: int = 0
    #: whether a durable artifact store backed the fleet
    store_enabled: bool = False
    #: one record per admitted spare: {slot, device, t, warm_start,
    #: inherited_frames}
    replacements: list = field(default_factory=list)
    seed: int = 0
    duration: float = 0.0
    #: sim time the last event fired at
    end_time: float = 0.0
    #: sim-clock window (seconds) of the SLO monitor; ``None`` disables
    #: the windowed series
    slo_window: float | None = None
    #: SLO objective the error-budget burn rate is measured against
    slo_target: float = 0.99
    #: whether the load-adaptive brownout controller was engaged
    brownout: bool = False
    #: QoS rung name per level, index 0 = full quality
    qos_rungs: tuple = ("full",)
    #: the controller's level-change records, in sim-time order
    qos_changes: list = field(default_factory=list)

    # -- terminal-state taxonomy -------------------------------------------

    def count(self, state: str) -> int:
        return sum(r.state == state for r in self.requests)

    @property
    def total(self) -> int:
        return len(self.requests)

    @property
    def outcomes(self) -> dict:
        """state -> count over the whole taxonomy."""
        return {s: self.count(s) for s in TERMINAL_STATES}

    @property
    def all_terminal(self) -> bool:
        """The core liveness invariant: nothing stuck queued/running."""
        return all(r.terminal for r in self.requests)

    # -- SLO metrics ---------------------------------------------------------

    @property
    def slo_attainment(self) -> float:
        """Fraction of *all* arrivals completed within deadline."""
        return 1.0 if not self.requests else self.count(COMPLETED) / self.total

    @property
    def shed_rate(self) -> float:
        return 0.0 if not self.requests else self.count(SHED) / self.total

    def _latencies(self) -> list:
        return [
            r.latency
            for r in self.requests
            if r.state in (COMPLETED, DEADLINE_EXCEEDED)
            and r.latency is not None
        ]

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank percentile of end-to-end finished latencies."""
        return percentile(self._latencies(), q)

    @property
    def p50(self) -> float:
        return self.latency_percentile(50.0)

    @property
    def p99(self) -> float:
        return self.latency_percentile(99.0)

    # -- hedging -------------------------------------------------------------

    # -- windowed SLO monitor ------------------------------------------------

    def slo_series(self, window: float | None = None) -> list:
        """Per-window deadline-miss / burn-rate series over the sim
        clock (see :func:`repro.obs.timeline.windowed_slo`).

        Every terminal request contributes one sample at its finish
        time; anything that did not resolve ``completed`` (late,
        failed, shed) burns error budget.  Percentiles are exact
        nearest-rank values over each window's finished latencies.
        """
        width = window if window is not None else self.slo_window
        if width is None:
            return []
        samples = [
            (r.finish, r.state == COMPLETED, r.latency)
            for r in self.requests
            if r.finish is not None
        ]
        return windowed_slo(
            samples, width, target=self.slo_target, end=self.end_time
        )

    @property
    def worst_window_burn(self) -> float:
        """The worst window's error-budget burn rate (0.0 when the
        monitor is disabled or the campaign is empty)."""
        return worst_burn(self.slo_series())

    # -- quality of service ---------------------------------------------------

    def _served(self) -> list:
        """Requests that reached a device at least once (sheds never
        carry a quality level — they were refused, not degraded)."""
        return [r for r in self.requests if r.devices]

    @property
    def qos_mix(self) -> dict:
        """rung name -> requests served at that quality rung."""
        mix = {name: 0 for name in self.qos_rungs}
        for r in self._served():
            mix[r.qos_rung] = mix.get(r.qos_rung, 0) + 1
        return mix

    @property
    def fault_mix(self) -> dict:
        """fault rung name -> served requests recovered at it (the
        integrity path's fp32-scalar recompute vs. full)."""
        mix: dict = {}
        for r in self._served():
            mix[r.fault_rung] = mix.get(r.fault_rung, 0) + 1
        return mix

    @property
    def degraded_fraction(self) -> float:
        """Fraction of served requests browned out below full quality."""
        served = self._served()
        if not served:
            return 0.0
        return sum(r.qos_level > 0 for r in served) / len(served)

    def qos_series(self, window: float | None = None) -> list:
        """Per-window QoS mix of served requests (finish-stamped), on
        the same tumbling sim-clock windows as :meth:`slo_series`."""
        width = window if window is not None else self.slo_window
        if width is None:
            return []
        import math

        n = (
            max(1, int(math.ceil(self.end_time / width)))
            if self.end_time > 0
            else 1
        )
        series = []
        for i in range(n):
            lo, hi = i * width, (i + 1) * width
            mix = {name: 0 for name in self.qos_rungs}
            for r in self._served():
                if r.finish is None:
                    continue
                if lo <= r.finish < hi or (i == n - 1 and r.finish == hi):
                    mix[r.qos_rung] = mix.get(r.qos_rung, 0) + 1
            series.append({"start": lo, "end": hi, "mix": mix})
        return series

    @property
    def amplification(self) -> float:
        """Storm amplification factor: dispatched attempts / arrivals.

        1.0 means every arrival cost exactly one attempt; a correlated
        outage drives it up through retries and hedges — the quantity
        the metastability defense exists to bound.
        """
        return 0.0 if not self.requests else self.attempts / self.total

    @property
    def retries_denied(self) -> int:
        return sum(self.retry_denied.values())

    # -- batching ------------------------------------------------------------

    @property
    def batches_dispatched(self) -> int:
        """Batched attempts launched (all sizes, hedges included)."""
        return sum(self.batch_mix.values())

    @property
    def batched_members(self) -> int:
        """Request-slices carried by batched attempts."""
        return sum(n * c for n, c in self.batch_mix.items())

    @property
    def mean_batch_size(self) -> float:
        """Members per batched attempt (0.0 when batching never fired)."""
        total = self.batches_dispatched
        return 0.0 if total == 0 else self.batched_members / total

    @property
    def batch_occupancy(self) -> float:
        """Mean batch size as a fraction of ``max_batch`` — how full
        the coalescing window ran (1.0 = every batch closed full)."""
        if self.max_batch <= 1:
            return 0.0 if self.mean_batch_size == 0.0 else 1.0
        return self.mean_batch_size / self.max_batch

    @property
    def hedge_effectiveness(self) -> float:
        """Fraction of launched hedges whose duplicate produced the
        result (0.0 when hedging never fired)."""
        return (
            0.0
            if self.hedges_launched == 0
            else self.hedges_won / self.hedges_launched
        )

    @property
    def warm_fraction(self) -> float:
        """Fraction of dispatches served from a warm mapping cache."""
        total = self.warm_dispatches + self.cold_dispatches
        return 0.0 if total == 0 else self.warm_dispatches / total

    # -- replacements --------------------------------------------------------

    def _replacement_latencies(self) -> list:
        """Finished latencies of requests resolved on a spare device —
        the cold-start population the store warm-start is measured on."""
        labels = {rec["device"] for rec in self.replacements}
        if not labels:
            return []
        return [
            r.latency
            for r in self.requests
            if r.state in (COMPLETED, DEADLINE_EXCEEDED)
            and r.latency is not None
            and r.devices
            and r.devices[-1] in labels
        ]

    def replacement_percentile(self, q: float) -> float:
        return percentile(self._replacement_latencies(), q)

    @property
    def replacement_p50(self) -> float:
        return self.replacement_percentile(50.0)

    @property
    def replacement_p99(self) -> float:
        return self.replacement_percentile(99.0)

    @property
    def corrupted_completions(self) -> int:
        """Requests that *delivered* a corrupted result — the silent-
        data-corruption hole.  Structurally zero with verification on
        (a corrupted attempt is failed like a crash, never completed)."""
        return sum(
            r.corrupted and r.state == COMPLETED for r in self.requests
        )

    @property
    def passed(self) -> bool:
        """Liveness plus integrity: nothing stuck transient, and no
        corrupted result ever shipped as ``completed``."""
        return self.all_terminal and self.corrupted_completions == 0

    def to_json(self) -> dict:
        out = {
            "schema": SERVE_SCHEMA,
            "seed": self.seed,
            "duration": self.duration,
            "end_time": self.end_time,
            "total": self.total,
            "outcomes": self.outcomes,
            "all_terminal": self.all_terminal,
            "slo_attainment": self.slo_attainment,
            "shed_rate": self.shed_rate,
            "p50": self.p50,
            "p99": self.p99,
            "retries": self.retries,
            "integrity": {
                "verify": self.verify_integrity,
                "failures": self.integrity_failures,
                "corrupted_completions": self.corrupted_completions,
            },
            "slo": {
                "enabled": self.slo_window is not None,
                "window": self.slo_window,
                "target": self.slo_target,
                "series": [w.to_json() for w in self.slo_series()],
                "worst_window_burn": self.worst_window_burn,
            },
            "steady_state": {
                "enabled": self.steady_state,
                "warm_dispatches": self.warm_dispatches,
                "cold_dispatches": self.cold_dispatches,
                "warm_fraction": self.warm_fraction,
            },
            "replacements": {
                "spares": self.spares,
                "store": self.store_enabled,
                "count": len(self.replacements),
                "records": list(self.replacements),
                "served": len(self._replacement_latencies()),
                "p50": self.replacement_p50,
                "p99": self.replacement_p99,
            },
            "qos": {
                "enabled": self.brownout,
                "rungs": list(self.qos_rungs),
                "mix": self.qos_mix,
                "degraded_fraction": self.degraded_fraction,
                "changes": list(self.qos_changes),
                "series": self.qos_series(),
            },
            "degradation": {
                "mix": self.fault_mix,
            },
            "hedges": {
                "launched": self.hedges_launched,
                "won": self.hedges_won,
                "cancelled": self.hedges_cancelled,
                "suppressed": self.hedges_suppressed,
                "effectiveness": self.hedge_effectiveness,
            },
            "storm": {
                "enabled": self.storm,
                "attempts": self.attempts,
                "amplification": self.amplification,
                "retry_denied": dict(self.retry_denied),
                "hedges_suppressed": self.hedges_suppressed,
            },
            "domains": {
                "enabled": bool(self.domains),
                "assignment": dict(self.domains),
                "summary": {
                    d: dict(s) for d, s in self.domain_summary.items()
                },
            },
            "fleet": dict(self.fleet),
            "utilization": dict(self.utilization),
            "requests": [r.to_json() for r in self.requests],
        }
        # present only for batched campaigns: batching=None reports
        # stay byte-exact with pre-batching runs
        if self.batching:
            out["batching"] = {
                "enabled": True,
                "max_batch": self.max_batch,
                "mix": {str(n): c for n, c in sorted(self.batch_mix.items())},
                "batches": self.batches_dispatched,
                "batched_members": self.batched_members,
                "mean_batch_size": self.mean_batch_size,
                "occupancy": self.batch_occupancy,
            }
        return out


def format_serve_summary(report: ServeReport) -> str:
    """One-paragraph human summary (the CLI's footer line)."""
    o = report.outcomes
    text = (
        f"{report.total} requests: {o[COMPLETED]} completed, "
        f"{o[SHED]} shed, {o[DEADLINE_EXCEEDED]} late, "
        f"{o[FAILED]} failed | "
        f"SLO {report.slo_attainment:.1%} | shed {report.shed_rate:.1%} | "
        f"p50 {report.p50 * 1e3:.2f} ms, p99 {report.p99 * 1e3:.2f} ms | "
        f"hedges {report.hedges_launched} launched / "
        f"{report.hedges_won} won / {report.hedges_cancelled} cancelled | "
        f"retries {report.retries} | "
        f"integrity {report.integrity_failures} caught / "
        f"{report.corrupted_completions} shipped"
    )
    if report.batching:
        mix = " ".join(f"x{n}:{c}" for n, c in sorted(report.batch_mix.items()))
        text += (
            f" | batching <= {report.max_batch} "
            f"({report.batches_dispatched} batches, "
            f"mean {report.mean_batch_size:.2f}, "
            f"occupancy {report.batch_occupancy:.1%}"
            + (f", mix {mix}" if mix else "")
            + ")"
        )
    if report.brownout:
        mix = " ".join(f"{k}:{v}" for k, v in report.qos_mix.items())
        text += (
            f" | qos {mix} "
            f"({len(report.qos_changes)} changes, "
            f"{report.degraded_fraction:.1%} degraded)"
        )
    if report.replacements:
        warm = sum(rec["warm_start"] for rec in report.replacements)
        text += (
            f" | replacements {len(report.replacements)} "
            f"({warm} warm-started, "
            f"spare p99 {report.replacement_p99 * 1e3:.2f} ms)"
        )
    if report.domains:
        worst = (
            min(
                s["availability"] for s in report.domain_summary.values()
            )
            if report.domain_summary
            else 1.0
        )
        outages = sum(
            s["outages"] for s in report.domain_summary.values()
        )
        text += (
            f" | domains {len(set(report.domains.values()))} "
            f"({outages} outages, worst availability {worst:.1%})"
        )
    if report.storm:
        text += (
            f" | storm amp {report.amplification:.2f}x "
            f"({report.retries_denied} retries denied, "
            f"{report.hedges_suppressed} hedges suppressed)"
        )
    return text
