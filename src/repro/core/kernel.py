"""Kernel offset enumeration.

The weight tensor of a sparse convolution with kernel size ``K`` in
``D=3`` dimensions splits into ``K^3`` matrices, one per offset in
``Delta^3(K)`` (Section 2).  Offsets are enumerated lexicographically,
which gives the symmetry the paper exploits for free: for odd ``K`` the
offset at index ``n`` is the negation of the offset at index
``K^3 - 1 - n``, and the center ``(0,0,0)`` sits at index
``(K^3 - 1) // 2``.

Odd kernel axes use centered offsets ``{-(K-1)/2, ..., (K-1)/2}``; even
axes (the classic ``K=2, s=2`` downsampler) use ``{0, ..., K-1}``.

Kernel sizes and strides may be **anisotropic**: anywhere an ``int`` is
accepted, a length-``ndim`` tuple works too (e.g. the ``(3, 3, 1)``
kernels and ``(1, 1, 2)`` z-only strides of detection backbones).  The
symmetry identities require every axis to be odd.
"""

from __future__ import annotations

import math

import numpy as np


def to_tuple(value, ndim: int = 3, name: str = "kernel_size") -> tuple:
    """Normalize an int-or-sequence size/stride to a length-ndim tuple."""
    if isinstance(value, (int, np.integer)):
        return (int(value),) * ndim
    out = tuple(int(v) for v in value)
    if len(out) != ndim:
        raise ValueError(f"{name} must have {ndim} entries, got {out}")
    return out


def normalize(value, ndim: int = 3):
    """Collapse an isotropic tuple back to an int (canonical form for
    cache keys and equality with plain-int call sites)."""
    t = to_tuple(value, ndim)
    return t[0] if all(v == t[0] for v in t) else t


def kernel_range(kernel_size: int) -> np.ndarray:
    """Per-axis offset values for one axis size."""
    if kernel_size < 1:
        raise ValueError("kernel_size must be >= 1")
    if kernel_size % 2:
        half = kernel_size // 2
        return np.arange(-half, half + 1, dtype=np.int32)
    return np.arange(kernel_size, dtype=np.int32)


def kernel_offsets(kernel_size, ndim: int = 3) -> np.ndarray:
    """All ``prod(K)`` offsets, shape ``(prod(K), ndim)``.

    Lexicographic order over the per-axis ranges (first axis slowest),
    matching the weight-index order used throughout the engine.
    """
    sizes = to_tuple(kernel_size, ndim)
    grids = np.meshgrid(*[kernel_range(k) for k in sizes], indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1).astype(np.int32)


def kernel_volume(kernel_size, ndim: int = 3) -> int:
    """``prod(kernel_size)`` over the axes."""
    return int(math.prod(to_tuple(kernel_size, ndim)))


def is_all_odd(kernel_size, ndim: int = 3) -> bool:
    """Every axis odd — the precondition for the symmetry identities."""
    return all(k % 2 == 1 for k in to_tuple(kernel_size, ndim))


def center_offset_index(kernel_size, ndim: int = 3) -> int | None:
    """Index of the ``(0, ..., 0)`` offset, or ``None`` unless every
    axis is odd."""
    if not is_all_odd(kernel_size, ndim):
        return None
    return (kernel_volume(kernel_size, ndim) - 1) // 2


def opposite_offset_index(n: int, kernel_size, ndim: int = 3) -> int:
    """Index of the negated offset (all-odd kernels only).

    Each axis range is symmetric, so reversing the flattened
    lexicographic index negates every coordinate: the opposite of ``n``
    is ``prod(K) - 1 - n`` — the identity behind symmetric grouping
    (Section 4.2.1).
    """
    if not is_all_odd(kernel_size, ndim):
        raise ValueError("kernels with an even axis have no symmetric offsets")
    return kernel_volume(kernel_size, ndim) - 1 - n


def is_symmetric_enumeration(kernel_size, ndim: int = 3) -> bool:
    """True when offset ``n`` negates offset ``prod(K) - 1 - n``.

    Verified property used by tests; holds whenever every axis is odd.
    """
    if not is_all_odd(kernel_size, ndim):
        return False
    offs = kernel_offsets(kernel_size, ndim)
    return bool(np.array_equal(offs, -offs[::-1]))
