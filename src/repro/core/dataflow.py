"""Dataflow execution: gather-matmul-scatter and fetch-on-demand.

Numerics here are exact NumPy; latency comes from the transaction model
(:mod:`repro.gpu.memory`) and the GEMM model (:mod:`repro.gpu.gemm`).

Access-order modeling (Figure 9).  Each movement kernel has a *point
side* (rows of the feature tensors, indexed by the map) and a *buffer
side* (the staging matrices fed to GEMM):

* **weight-stationary** (baseline): the point side is visited in map
  order — every index is unique within one offset, so there is no reuse
  and the row accesses are random (``RANDOM_ROW_EFF``); the buffer side
  streams.
* **locality-aware** (TorchSparse): gather walks inputs in
  input-stationary order (each input row read from DRAM exactly once,
  fanned out from registers) and scatter walks outputs in
  output-stationary order (partials reduced in registers, each output
  row written once).  The point side becomes streaming; the buffer side
  becomes random.

The row *counts* therefore change from ``|M|`` to ``N`` on the point
side — that, plus which side eats the random-access penalty, reproduces
the paper's Table 3 ladder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.grouping import GroupingPlan
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import bmm_cost, mm_cost, record_gemm_cost, sequential_cost
from repro.gpu.memory import (
    DType,
    MemoryAccessPattern,
    movement_time,
    record_traffic,
    traffic,
)
from repro.gpu.timeline import KernelRecord, Profile
from repro.mapping.kmap import KernelMap
from repro.obs.metrics import get_registry
from repro.robust.faults import (
    get_injector,
    maybe_bitflip_features,
    maybe_bitflip_weights,
    maybe_inject_matmul_nan,
)

#: Transaction efficiency of row-granular random access (rows usually
#: shorter than / unaligned to 128-byte transactions).
RANDOM_ROW_EFF = 0.75

#: Efficiency penalty on the scatter buffer when gathers/scatters are
#: interleaved per offset (unfused): the cache keeps evicting the buffer
#: type it is about to need (Figure 9a discussion).
UNFUSED_BUFFER_EFF = 0.92

#: Compute efficiency of the fetch-on-demand dataflow *relative to a
#: tiled GEMM at the same occupancy*: the multiply runs as per-entry dot
#: products on CUDA cores with no staging/tiling reuse and no
#: tensor-core path.  The occupancy factor itself is applied separately,
#: which is what produces the small/large-workload crossover: at tiny
#: sizes both paths are occupancy-bound and skipping the staging
#: buffers wins; at scale the tiled GEMM pulls ahead.
FETCH_ON_DEMAND_EFF = 0.45


@dataclass(frozen=True)
class MovementConfig:
    """Data-movement optimization switches (Table 3's four columns)."""

    dtype: DType = DType.FP32
    vectorized: bool = False
    fused: bool = False
    locality_aware: bool = False

    @property
    def pattern(self) -> MemoryAccessPattern:
        if self.vectorized and self.dtype is not DType.FP32:
            return MemoryAccessPattern.VECTORIZED
        return MemoryAccessPattern.SCALAR


def _non_center_offsets(kmap: KernelMap, skip_center: bool) -> list:
    center = kmap.center_index if skip_center else None
    return [
        n
        for n in range(kmap.volume)
        if n != center and len(kmap.in_indices[n]) > 0
    ]


def gather_record(
    kmap: KernelMap,
    c_in: int,
    cfg: MovementConfig,
    device: GPUSpec,
    skip_center: bool,
    emit: bool = False,
) -> KernelRecord:
    """Price the gather stage of one layer.

    ``emit`` publishes the traffic to the metrics registry; execution
    paths set it, cost probes (dispatch comparisons) leave it off.
    """
    offsets = _non_center_offsets(kmap, skip_center)
    total = int(sum(len(kmap.in_indices[n]) for n in offsets))
    dtype = _movement_dtype(cfg.dtype, "gather")
    if cfg.locality_aware:
        # input-stationary: each input row read once (streaming), buffer
        # writes land at neighbor positions (random)
        reads = traffic(kmap.n_in, c_in, dtype, cfg.pattern)
        writes = traffic(total, c_in, dtype, cfg.pattern)
        t = movement_time(reads, device.dram_bandwidth) + movement_time(
            writes, device.dram_bandwidth
        ) / RANDOM_ROW_EFF
    else:
        # weight-stationary: random point-side reads, streaming buffer writes
        reads = traffic(total, c_in, dtype, cfg.pattern)
        writes = traffic(total, c_in, dtype, cfg.pattern)
        t = (
            movement_time(reads, device.dram_bandwidth) / RANDOM_ROW_EFF
            + movement_time(writes, device.dram_bandwidth)
        )
    launches = 1 if cfg.fused else max(1, len(offsets))
    t += launches * device.launch_overhead
    if emit:
        record_traffic(reads, "gather")
        record_traffic(writes, "gather")
    return KernelRecord(
        name="gather",
        stage="gather",
        time=t,
        bytes_moved=reads.bytes_moved + writes.bytes_moved,
        launches=launches,
    )


def scatter_record(
    kmap: KernelMap,
    c_out: int,
    cfg: MovementConfig,
    device: GPUSpec,
    skip_center: bool,
    emit: bool = False,
) -> KernelRecord:
    """Price the scatter-accumulate stage of one layer (``emit`` as in
    :func:`gather_record`)."""
    offsets = _non_center_offsets(kmap, skip_center)
    total = int(sum(len(kmap.out_indices[n]) for n in offsets))
    dtype = _movement_dtype(cfg.dtype, "scatter")
    if cfg.locality_aware:
        # output-stationary: random buffer reads, each output row written once
        reads = traffic(total, c_out, dtype, cfg.pattern)
        writes = traffic(kmap.n_out, c_out, dtype, cfg.pattern)
        t = movement_time(reads, device.dram_bandwidth) / RANDOM_ROW_EFF + (
            movement_time(writes, device.dram_bandwidth)
        )
    else:
        # weight-stationary: streaming buffer reads (cache-polluted when
        # unfused), random accumulating writes to the output rows
        reads = traffic(total, c_out, dtype, cfg.pattern)
        writes = traffic(total, c_out, dtype, cfg.pattern)
        buffer_eff = 1.0 if cfg.fused else UNFUSED_BUFFER_EFF
        t = (
            movement_time(reads, device.dram_bandwidth) / buffer_eff
            + movement_time(writes, device.dram_bandwidth) / RANDOM_ROW_EFF
        )
    launches = 1 if cfg.fused else max(1, len(offsets))
    t += launches * device.launch_overhead
    if emit:
        record_traffic(reads, "scatter")
        record_traffic(writes, "scatter")
    return KernelRecord(
        name="scatter",
        stage="scatter",
        time=t,
        bytes_moved=reads.bytes_moved + writes.bytes_moved,
        launches=launches,
    )


def _cast(feats: np.ndarray, dtype: DType) -> np.ndarray:
    """Apply the storage dtype's precision to the features.

    FP16 values are round-tripped through half precision so quantization
    error is observable (as on real hardware), but the array is returned
    as float32 so GEMMs take NumPy's BLAS path — half-precision matmul
    has no BLAS kernel and is orders of magnitude slower.  INT8 uses
    symmetric per-tensor quantization (round-tripped the same way); the
    scatter side still runs at 16 bits as the paper requires
    (Section 4.3.1), which is handled by the cost model, not here.
    """
    if dtype is DType.FP32:
        # The bit-flip fault sites mutate the cast buffer in place.  An
        # aliased return would let them corrupt the caller's tensor —
        # the model's weights — so the detect->recompute loop would
        # re-take its golden checksum from the corrupted buffer, verify
        # clean, and ship the corruption as a recovery.  Copy whenever
        # an injector is armed; the production path stays zero-copy.
        return feats.astype(np.float32, copy=get_injector() is not None)
    if dtype is DType.INT8:
        scale = max(1e-12, float(np.abs(feats).max()) / 127.0)
        q = np.clip(np.round(feats / scale), -127, 127)
        return (q * scale).astype(np.float32)
    return feats.astype(np.float16).astype(np.float32)


def _movement_dtype(dtype: DType, side: str) -> DType:
    """Storage dtype actually moved by one side of the pipeline.

    INT8 only applies to gather: the multi-way reduction in scatter
    needs more than 8 bits and CUDA requires aligned access, so all
    scatter traffic stays at 16 bits (Section 4.3.1) — the reason INT8
    offers diminishing returns end to end.
    """
    if dtype is DType.INT8 and side == "scatter":
        return DType.FP16
    return dtype


def execute_gather_matmul_scatter(
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    plan: GroupingPlan,
    cfg: MovementConfig,
    device: GPUSpec,
    profile: Profile,
    skip_center: bool = True,
    exact_bmm: bool = False,
    integrity=None,
) -> np.ndarray:
    """Run one sparse convolution via Algorithm 2 with a grouping plan.

    Args:
        feats: ``(N_in, C_in)`` input features.
        weights: ``(K^3, C_in, C_out)`` weight matrices.
        kmap: the layer's kernel map.
        plan: matmul grouping plan over the non-center offsets.
        cfg: data-movement configuration.
        device: GPU model that prices every stage.
        profile: records are appended here.
        skip_center: process the stride-1 center offset as a direct
            ``mm`` without data movement (always true in the engines;
            exposed for tests).
        exact_bmm: materialize the padded batched matmul exactly as the
            GPU would.  Zero-padding makes it numerically identical to
            the default per-member path (a property the tests assert),
            so by default only the *cost* reflects bmm and the numerics
            take the faster per-member route.
        integrity: optional
            :class:`~repro.robust.integrity.IntegrityChecker` verifying
            each stage with ABFT checksums (observation only — never
            changes numerics; raises
            :class:`~repro.robust.errors.IntegrityError` on mismatch).

    Returns:
        ``(N_out, C_out)`` output features (float32).
    """
    if weights.ndim != 3 or weights.shape[0] != kmap.volume:
        raise ValueError(
            f"weights must be (K^3={kmap.volume}, C_in, C_out), got {weights.shape}"
        )
    c_in, c_out = weights.shape[1], weights.shape[2]
    if feats.shape != (kmap.n_in, c_in):
        raise ValueError(
            f"feats shape {feats.shape} does not match (n_in={kmap.n_in}, c_in={c_in})"
        )
    plan.validate(kmap.volume, kmap.center_index if skip_center else None)

    x = _cast(feats, cfg.dtype)
    w = _cast(weights, cfg.dtype)
    if integrity is not None:
        # golden checksums right after the cast: the model of load-time
        # ABFT — anything that corrupts the buffers later is visible
        integrity.begin(x, w)
    # fault-injection site: weight buffer flips *after* the golden
    # checksum (GEMM checksums agree with it; only the sentinel sees it)
    maybe_bitflip_weights(w, site=f"weights.v{kmap.volume}")
    acc = np.zeros((kmap.n_out, c_out), dtype=np.float32)

    # -- center offset: direct mm, no data movement -------------------------
    center = kmap.center_index
    if skip_center and center is not None and len(kmap.in_indices[center]):
        ci, co = kmap.in_indices[center], kmap.out_indices[center]
        partial = (x[ci] @ w[center]).astype(np.float32)
        if integrity is not None:
            src = integrity.source_checksum(x, ci)
            integrity.check_matmul(partial, src, w[center], len(ci), "matmul.center")
            integrity.absorb(partial)
        # within one offset each output index appears at most once
        # (p = s*q + delta is injective in q), so plain indexed add is safe
        acc[co] += partial
        cost = mm_cost(len(ci), c_in, c_out, cfg.dtype, device)
        record_gemm_cost(cost, "mm")
        with profile.span("matmul"):
            profile.log(
                "matmul.center",
                "matmul",
                cost.time,
                bytes_moved=cost.bytes_moved,
                flops=cost.flops,
                launches=cost.launches,
            )

    # -- movement pricing (numerics below do the actual indexing) -----------
    with profile.span("gather"):
        profile.add(gather_record(kmap, c_in, cfg, device, skip_center, emit=True))

    # -- grouped matmul ------------------------------------------------------
    with profile.span("matmul"):
        for gi, group in enumerate(plan.groups):
            sizes = [len(kmap.in_indices[n]) for n in group.members]
            if group.use_bmm and exact_bmm:
                # materialize the padded batch exactly as the GPU kernel would
                m_pad = max(sizes)
                batch = np.zeros((len(group.members), m_pad, c_in), dtype=x.dtype)
                for bi, n in enumerate(group.members):
                    batch[bi, : sizes[bi]] = x[kmap.in_indices[n]]
                    # fault-injection site: flips in the staged batch,
                    # restricted to the unpadded rows — a hit in a
                    # zero-padding row is sliced off before scatter and
                    # would make the shot undetectable by construction
                    maybe_bitflip_features(
                        batch[bi, : sizes[bi]], site=f"gather.o{n}"
                    )
                stacked = np.stack([w[n] for n in group.members])
                partial = np.matmul(batch, stacked).astype(np.float32)
                for bi, n in enumerate(group.members):
                    pm = partial[bi, : sizes[bi]]
                    if integrity is not None:
                        idx = kmap.in_indices[n]
                        src = integrity.source_checksum(x, idx)
                        integrity.check_buffer(
                            batch[bi, : sizes[bi]], src, f"gather.o{n}"
                        )
                        integrity.check_matmul(
                            pm, src, w[n], sizes[bi], f"matmul.o{n}"
                        )
                        integrity.absorb(pm)
                    acc[kmap.out_indices[n]] += pm
            else:
                # zero-padding cannot change the products, so the per-member
                # path is numerically identical to bmm and much faster here
                for n in group.members:
                    idx = kmap.in_indices[n]
                    gathered = x[idx]
                    # fault-injection site: flips in the staged gather rows
                    maybe_bitflip_features(gathered, site=f"gather.o{n}")
                    if integrity is not None:
                        src = integrity.source_checksum(x, idx)
                        integrity.check_buffer(gathered, src, f"gather.o{n}")
                    partial = (gathered @ w[n]).astype(np.float32)
                    if integrity is not None:
                        integrity.check_matmul(
                            partial, src, w[n], len(idx), f"matmul.o{n}"
                        )
                        integrity.absorb(partial)
                    acc[kmap.out_indices[n]] += partial
            if group.use_bmm:
                cost = bmm_cost(sizes, c_in, c_out, cfg.dtype, device)
                record_gemm_cost(cost, "bmm")
            else:
                cost = sequential_cost(sizes, c_in, c_out, cfg.dtype, device)
                record_gemm_cost(cost, "mm")
            profile.log(
                f"matmul.group{gi}",
                "matmul",
                cost.time,
                bytes_moved=cost.bytes_moved,
                flops=cost.flops,
                launches=cost.launches,
            )

    # fault-injection site: reduced-precision accumulator overflow
    # (no-op at FP32 — the ladder's fp32 rung is a genuine fix)
    maybe_inject_matmul_nan(acc, cfg.dtype)
    # fault-injection site: flips in the scatter accumulator
    maybe_bitflip_features(acc, site="scatter.out")

    with profile.span("scatter"):
        profile.add(
            scatter_record(kmap, c_out, cfg, device, skip_center, emit=True)
        )
    if integrity is not None:
        integrity.check_output(acc, "scatter.out")
        integrity.verify_weights(w, "weights")
        integrity.finish(profile)
    return acc


def fetch_on_demand_offset_cost(
    m: int, c_in: int, c_out: int, dtype: DType, device: GPUSpec
) -> tuple:
    """(seconds, bytes, flops) of one offset's fetch-on-demand kernel.

    Math runs on CUDA cores (FP32 rate regardless of storage dtype) at
    ``occupancy * FETCH_ON_DEMAND_EFF``; all row accesses are random.
    """
    if m <= 0:
        return 0.0, 0, 0.0
    pattern = MemoryAccessPattern.SCALAR
    reads = traffic(m, c_in, dtype, pattern)
    writes = traffic(m, c_out, dtype, pattern)
    t_mem = (
        movement_time(reads, device.dram_bandwidth)
        + movement_time(writes, device.dram_bandwidth)
    ) / RANDOM_ROW_EFF
    flops = 2.0 * m * c_in * c_out
    blocks = -(-m // 64) * (-(-c_out // 64))
    util = device.occupancy(blocks) * FETCH_ON_DEMAND_EFF
    t_math = device.compute_time(flops, DType.FP32, utilization=util)
    t = max(t_mem, t_math) + device.launch_overhead
    return t, reads.bytes_moved + writes.bytes_moved, flops


def fetch_on_demand_cost(
    kmap: KernelMap, c_in: int, c_out: int, dtype: DType, device: GPUSpec
) -> float:
    """Total modeled latency of running a layer fetch-on-demand."""
    return sum(
        fetch_on_demand_offset_cost(len(idx), c_in, c_out, dtype, device)[0]
        for idx in kmap.in_indices
    )


def execute_fetch_on_demand(
    feats: np.ndarray,
    weights: np.ndarray,
    kmap: KernelMap,
    device: GPUSpec,
    profile: Profile,
    dtype: DType = DType.FP32,
    integrity=None,
) -> np.ndarray:
    """MinkowskiEngine's fetch-on-demand dataflow (Lin et al., 2021).

    No staging buffers: each offset's kernel reads its input rows, does
    the multiply, and atomically accumulates outputs in one pass.  This
    halves the point-side traffic relative to gather-matmul-scatter (no
    buffer round-trip) but runs the math as fragmented matrix-vector
    work — so it wins on *small* workloads (where the tiled GEMM is
    occupancy-bound anyway) and loses on large ones, exactly the
    Section 5.2 observation about 1-frame nuScenes models.
    """
    c_in, c_out = weights.shape[1], weights.shape[2]
    x = _cast(feats, dtype)
    w = _cast(weights, dtype)
    if integrity is not None:
        integrity.begin(x, w)
    # fault-injection site: post-checksum weight-buffer flips
    maybe_bitflip_weights(w, site="fetch_on_demand.weights")
    acc = np.zeros((kmap.n_out, c_out), dtype=np.float32)
    reg = get_registry()
    with profile.span("matmul", dataflow="fetch_on_demand"):
        for n in range(kmap.volume):
            idx = kmap.in_indices[n]
            if not len(idx):
                continue
            partial = (x[idx] @ w[n]).astype(np.float32)
            if integrity is not None:
                src = integrity.source_checksum(x, idx)
                integrity.check_matmul(
                    partial, src, w[n], len(idx), f"fetch_on_demand.o{n}"
                )
                integrity.absorb(partial)
            acc[kmap.out_indices[n]] += partial
            t, nbytes, flops = fetch_on_demand_offset_cost(
                len(idx), c_in, c_out, dtype, device
            )
            reg.counter("dataflow.fetch_on_demand.launches").inc()
            reg.counter("dataflow.fetch_on_demand.flops").inc(flops)
            profile.log(
                f"fetch_on_demand.{n}",
                "matmul",
                t,
                bytes_moved=nbytes,
                flops=flops,
            )
    # fault-injection site: flips in the atomic accumulator
    maybe_bitflip_features(acc, site="fetch_on_demand.out")
    if integrity is not None:
        integrity.check_output(acc, "fetch_on_demand.out")
        integrity.verify_weights(w, "fetch_on_demand.weights")
        integrity.finish(profile)
    return acc
