"""TorchSparse core: sparse tensors, mapping, grouping, dataflow, engine.

This subpackage is the paper's primary contribution.  The execution of
one sparse convolution decomposes exactly as Figure 2 does:

1. **mapping** — build/lookup coordinate tables and construct the
   kernel maps (:mod:`repro.mapping`),
2. **gather** — stage input rows per kernel offset,
3. **matmul** — grouped matrix multiplication
   (:mod:`repro.core.grouping`, :mod:`repro.core.tuner`),
4. **scatter** — accumulate partial sums into output rows
   (:mod:`repro.core.dataflow`).

:mod:`repro.core.engine` wires the stages together under a configuration
that switches each paper optimization on or off, and prices every stage
with the :mod:`repro.gpu` device model.
"""

from repro.core.engine import EngineConfig, ExecutionContext, TorchSparseEngine
from repro.core.kernel import kernel_offsets, kernel_volume, opposite_offset_index
from repro.core.sparse_tensor import SparseTensor

__all__ = [
    "SparseTensor",
    "kernel_offsets",
    "kernel_volume",
    "opposite_offset_index",
    "EngineConfig",
    "ExecutionContext",
    "TorchSparseEngine",
]
