"""The sparse tensor container.

A :class:`SparseTensor` pairs integer voxel coordinates with per-voxel
feature rows, mirroring ``torchsparse.SparseTensor``.  Unlike SpConv or
MinkowskiEngine, users never supply ``indice_key`` / ``spatial_shape`` /
``coordinate_manager`` arguments (a usability point Section 4.1 makes);
stride bookkeeping and map caching live in the execution context.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashmap.coords import pack_coords


@dataclass
class SparseTensor:
    """Coordinates + features of an active-voxel set.

    Attributes:
        coords: ``(N, 4)`` ``int32`` rows of ``(batch, x, y, z)``; rows
            must be unique (one feature row per active voxel).
        feats: ``(N, C)`` float features.
        stride: the tensor's voxel stride relative to the original
            voxelization (doubles at every downsampling convolution);
            an int when isotropic, a per-axis tuple otherwise.
    """

    coords: np.ndarray
    feats: np.ndarray
    stride: object = 1
    _validated: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.coords = self._checked_coords(self.coords)
        self.feats = np.ascontiguousarray(np.asarray(self.feats))
        if self.feats.dtype not in (np.float32, np.float16, np.float64):
            self.feats = self.feats.astype(np.float32)
        if self.coords.ndim != 2 or self.coords.shape[1] != 4:
            raise ValueError(f"coords must be (N, 4), got {self.coords.shape}")
        if self.feats.ndim != 2:
            raise ValueError(f"feats must be (N, C), got {self.feats.shape}")
        if self.coords.shape[0] != self.feats.shape[0]:
            raise ValueError(
                f"coords ({self.coords.shape[0]}) and feats "
                f"({self.feats.shape[0]}) disagree on N"
            )
        from repro.core.kernel import normalize, to_tuple

        self.stride = normalize(self.stride)
        if any(s < 1 for s in to_tuple(self.stride, name="stride")):
            raise ValueError("stride must be >= 1")

    @staticmethod
    def _checked_coords(coords) -> np.ndarray:
        """Cast coordinates to ``int32``, rejecting silent corruption.

        ``ascontiguousarray(..., dtype=int32)`` happily truncates
        fractional floats, turns NaN into ``INT_MIN`` and wraps
        out-of-range integers — each of which used to surface much
        later as a wrong kernel map.  Fail at the boundary instead
        (mirroring the voxelizer's checks); errors are
        :class:`~repro.robust.errors.InputValidationError`, still a
        ``ValueError`` for existing callers.
        """
        from repro.robust.errors import InputValidationError

        coords = np.asarray(coords)
        if coords.dtype == object:
            raise InputValidationError("coords must be a numeric array")
        if coords.dtype == np.int32:
            return np.ascontiguousarray(coords)
        if np.issubdtype(coords.dtype, np.floating):
            if coords.size and not np.isfinite(coords).all():
                raise InputValidationError(
                    "coords contain NaN/Inf values; sanitize first "
                    "(SparseTensor.sanitized or repro.robust.validate)"
                )
            if coords.size and np.any(coords != np.round(coords)):
                raise InputValidationError(
                    "coords have fractional values; voxelize before "
                    "constructing a SparseTensor"
                )
            coords = coords.astype(np.int64)
        elif not np.issubdtype(coords.dtype, np.integer):
            raise InputValidationError(
                f"coords dtype {coords.dtype} is not integer or float"
            )
        info = np.iinfo(np.int32)
        if coords.size and (
            coords.min() < info.min or coords.max() > info.max
        ):
            raise InputValidationError(
                "coords exceed the int32 range; they would wrap silently"
            )
        return np.ascontiguousarray(coords, dtype=np.int32)

    @classmethod
    def sanitized(
        cls, coords, feats, stride: object = 1, policy: str = "repair"
    ) -> "SparseTensor":
        """Construct through the robust validation layer.

        Runs :func:`repro.robust.validate.validate_cloud` under
        ``policy`` (``repair`` fixes what it can — drops unpackable
        rows, zeroes non-finite features, merges duplicates) before
        constructing the tensor.
        """
        from repro.robust.validate import validate_cloud

        c, f, _ = validate_cloud(coords, feats, policy=policy)
        return cls(c, f, stride=stride)

    def validate_unique(self) -> None:
        """Assert coordinate rows are unique (O(N log N); opt-in)."""
        if self._validated or self.num_points == 0:
            return
        keys = pack_coords(self.coords)
        if np.unique(keys).shape[0] != keys.shape[0]:
            raise ValueError("SparseTensor coordinates contain duplicates")
        self._validated = True

    # -- shape accessors -------------------------------------------------

    @property
    def num_points(self) -> int:
        return int(self.coords.shape[0])

    @property
    def num_channels(self) -> int:
        return int(self.feats.shape[1])

    @property
    def batch_size(self) -> int:
        if self.num_points == 0:
            return 0
        return int(self.coords[:, 0].max()) + 1

    # -- functional helpers ------------------------------------------------

    def replace_feats(self, feats: np.ndarray) -> "SparseTensor":
        """Same coordinates, new features (pointwise ops use this)."""
        return SparseTensor(self.coords, feats, stride=self.stride)

    def batch_slice(self, b: int) -> "SparseTensor":
        """Extract one batch element (stride preserved)."""
        mask = self.coords[:, 0] == b
        return SparseTensor(self.coords[mask], self.feats[mask], stride=self.stride)

    def dense(
        self, origin: np.ndarray | None = None, shape: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Materialize a dense ``(B, X, Y, Z, C)`` volume.

        Returns ``(volume, origin)`` where ``origin`` is the spatial
        lower bound used.  Only suitable for tests and BEV projection
        of already-coarse tensors — it is exponential in extent.
        """
        if self.num_points == 0:
            raise ValueError("cannot densify an empty tensor")
        c = self.coords.astype(np.int64)
        if origin is None:
            origin = np.array([0, *c[:, 1:].min(axis=0)], dtype=np.int64)
        origin = np.asarray(origin, dtype=np.int64)
        rel = c - origin
        if shape is None:
            shape = rel.max(axis=0) + 1
            shape[0] = self.batch_size
        shape = np.asarray(shape, dtype=np.int64)
        vol = np.zeros((*shape, self.num_channels), dtype=self.feats.dtype)
        vol[rel[:, 0], rel[:, 1], rel[:, 2], rel[:, 3]] = self.feats
        return vol, origin

    def __repr__(self) -> str:
        return (
            f"SparseTensor(n={self.num_points}, c={self.num_channels}, "
            f"stride={self.stride})"
        )


def cat(tensors: list[SparseTensor]) -> SparseTensor:
    """Concatenate feature channels of tensors sharing coordinates.

    Used for U-Net skip connections.  Coordinates must match row-for-row
    (the engine guarantees this when the decoder upsamples back onto a
    cached coordinate set).
    """
    if not tensors:
        raise ValueError("need at least one tensor")
    first = tensors[0]
    for t in tensors[1:]:
        if t.stride != first.stride:
            raise ValueError("cannot cat tensors with different strides")
        if t.coords.shape != first.coords.shape or not np.array_equal(
            t.coords, first.coords
        ):
            raise ValueError("cat requires identical coordinate rows")
    feats = np.concatenate([t.feats for t in tensors], axis=1)
    return SparseTensor(first.coords, feats, stride=first.stride)
