"""Matrix-multiplication grouping strategies (Section 4.2, Figure 6).

The per-offset kernel maps of one layer have wildly different sizes, so
running one GEMM per offset ("separate") under-utilizes the device.
The strategies here partition the offsets into groups; each group is
either batched into one padded ``bmm`` (regular, but pays padding FLOPs)
or executed as per-member ``mm`` calls:

* ``separate``  — one group per offset, always ``mm`` (Figure 6b);
* ``symmetric`` — stride-1 odd kernels pair offset ``delta`` with
  ``-delta`` (their maps provably have equal size), batch size 2;
* ``fixed``     — the handcrafted 3-group split (Figure 6c);
* ``adaptive``  — Algorithm 4: scan offsets, open a new group whenever
  the padding-waste ratio ``1 - n_min/n_max`` would exceed ``epsilon``,
  then pick ``bmm`` vs ``mm`` per group with the workload threshold
  ``S``.

The stride-1 center offset never appears in any group: it needs no data
movement and is executed as one dense ``mm`` over all points.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.kernel import (
    center_offset_index,
    is_all_odd,
    normalize,
    opposite_offset_index,
)
from repro.gpu.device import GPUSpec
from repro.gpu.gemm import GemmCost, bmm_cost, sequential_cost
from repro.gpu.memory import DType
from repro.obs.metrics import FRACTION_BUCKETS, get_registry

STRATEGIES = ("separate", "symmetric", "fixed", "adaptive")


@dataclass(frozen=True)
class Group:
    """One matmul group: the offset indices batched together."""

    members: tuple
    use_bmm: bool


@dataclass(frozen=True)
class GroupingPlan:
    """A full partition of a layer's non-center offsets."""

    groups: tuple
    strategy: str

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def member_offsets(self) -> list:
        out: list = []
        for g in self.groups:
            out.extend(g.members)
        return out

    def validate(self, volume: int, center: int | None) -> None:
        """Each non-center, non-empty offset appears exactly once."""
        seen = self.member_offsets()
        if len(seen) != len(set(seen)):
            raise ValueError("an offset appears in more than one group")
        for n in seen:
            if n == center or not (0 <= n < volume):
                raise ValueError(f"invalid offset {n} in plan")


def _active(sizes: np.ndarray, center: int | None) -> list:
    """Offsets with non-empty maps, excluding the stride-1 center."""
    return [
        n for n, s in enumerate(sizes) if s > 0 and n != center
    ]


def plan_separate(sizes: np.ndarray, center: int | None) -> GroupingPlan:
    """One ``mm`` per offset — the existing-library baseline."""
    groups = tuple(Group((n,), use_bmm=False) for n in _active(sizes, center))
    return GroupingPlan(groups=groups, strategy="separate")


def plan_symmetric(
    sizes: np.ndarray, center: int | None, kernel_size
) -> GroupingPlan:
    """Pair each offset with its negation (batch size 2).

    Only valid at stride 1 with all-odd kernels, where ``|M[delta]| ==
    |M[-delta]|`` (Section 4.2.1) so the pair pads nothing.
    """
    if not is_all_odd(kernel_size):
        raise ValueError("symmetric grouping needs an all-odd kernel")
    active = set(_active(sizes, center))
    groups = []
    done = set()
    for n in sorted(active):
        if n in done:
            continue
        opp = opposite_offset_index(n, kernel_size)
        if opp in active and opp != n:
            groups.append(Group((n, opp), use_bmm=True))
            done.update((n, opp))
        else:
            groups.append(Group((n,), use_bmm=False))
            done.add(n)
    return GroupingPlan(groups=tuple(groups), strategy="symmetric")


def plan_fixed(
    sizes: np.ndarray, center: int | None, kernel_size, downsample: bool
) -> GroupingPlan:
    """The handcrafted 3-group strategy (Figure 6c).

    Submanifold layers: ``{W_0..W_3}`` + their symmetric partners in one
    group, all remaining non-center offsets in a second.  Downsampling
    layers: everything in a single batch (their maps are near-uniform).
    """
    active = _active(sizes, center)
    if not active:
        return GroupingPlan(groups=(), strategy="fixed")
    if downsample or not is_all_odd(kernel_size):
        return GroupingPlan(
            groups=(Group(tuple(active), use_bmm=True),), strategy="fixed"
        )
    vol = len(sizes)
    first = {n for n in range(min(4, vol))}
    first |= {opposite_offset_index(n, kernel_size) for n in range(min(4, vol))}
    g1 = tuple(n for n in active if n in first)
    g2 = tuple(n for n in active if n not in first)
    groups = tuple(
        Group(g, use_bmm=True) for g in (g1, g2) if g
    )
    return GroupingPlan(groups=groups, strategy="fixed")


def partition_adaptive(
    sizes: np.ndarray,
    epsilon: float,
    center: int | None,
    kernel_size,
    symmetric: bool,
) -> list:
    """Algorithm 4's scan: contiguous groups bounded by padding waste.

    Scans offsets in index order (pairs of symmetric offsets move as one
    item when ``symmetric``), tracking the running ``n_min``/``n_max``;
    a new group opens when ``1 - n_min/n_max > epsilon``.
    Empty-map offsets are skipped entirely.
    """
    if not 0.0 <= epsilon <= 1.0:
        raise ValueError("epsilon must be in [0, 1]")
    vol = len(sizes)
    if symmetric and is_all_odd(kernel_size):
        half = [n for n in range(vol // 2)]
        items = [
            (n, opposite_offset_index(n, kernel_size)) for n in half
        ]
    else:
        items = [(n,) for n in range(vol) if n != center]

    items = [
        it for it in items if any(sizes[m] > 0 and m != center for m in it)
    ]
    groups: list = []
    cur: list = []
    n_min = n_max = 0
    for it in items:
        size = max(int(sizes[m]) for m in it)
        if not cur:
            cur = [it]
            n_min = n_max = size
            continue
        lo, hi = min(n_min, size), max(n_max, size)
        if hi and 1 - lo / hi <= epsilon:
            cur.append(it)
            n_min, n_max = lo, hi
        else:
            groups.append(cur)
            cur = [it]
            n_min = n_max = size
    if cur:
        groups.append(cur)

    flat_groups = []
    for g in groups:
        members = tuple(
            m for it in g for m in it if sizes[m] > 0 and m != center
        )
        if members:
            flat_groups.append(members)
    return flat_groups


def plan_adaptive(
    sizes: np.ndarray,
    center: int | None,
    kernel_size,
    symmetric: bool,
    epsilon: float,
    s_threshold: float,
) -> GroupingPlan:
    """Algorithm 4 in full: partition by ``epsilon``, decide ``bmm`` vs
    ``mm`` per group by the workload threshold ``S``."""
    partitions = partition_adaptive(sizes, epsilon, center, kernel_size, symmetric)
    groups = []
    for members in partitions:
        n_max = max(int(sizes[m]) for m in members)
        use_bmm = len(members) > 1 and n_max < s_threshold
        groups.append(Group(members, use_bmm=use_bmm))
    return GroupingPlan(groups=tuple(groups), strategy="adaptive")


def make_plan(
    strategy: str,
    sizes: np.ndarray,
    kernel_size,
    stride,
    epsilon: float = 0.5,
    s_threshold: float = math.inf,
) -> GroupingPlan:
    """Build a plan for one layer's map sizes under a named strategy.

    ``kernel_size`` and ``stride`` accept ints or per-axis tuples.
    """
    stride = normalize(stride)
    submanifold = stride == 1 and is_all_odd(kernel_size)
    center = center_offset_index(kernel_size) if submanifold else None
    symmetric_ok = submanifold
    if strategy == "separate":
        return plan_separate(sizes, center)
    if strategy == "symmetric":
        if not symmetric_ok:
            return plan_separate(sizes, center)
        return plan_symmetric(sizes, center, kernel_size)
    if strategy == "fixed":
        return plan_fixed(sizes, center, kernel_size, downsample=not submanifold)
    if strategy == "adaptive":
        return plan_adaptive(
            sizes, center, kernel_size, symmetric_ok, epsilon, s_threshold
        )
    raise ValueError(f"unknown strategy {strategy!r}; expected one of {STRATEGIES}")


def record_plan(plan: GroupingPlan, sizes: Sequence[int]) -> None:
    """Publish one *executed* plan's shape to the metrics registry.

    Counts groups, group widths and row counts, and — for each batched
    group — the padding-waste fraction ``1 - n_min/n_max`` (the quantity
    the adaptive grouper's epsilon bounds) plus the padded rows it
    implies.  Called by the engine at execution time only, never by the
    tuner's offline search.
    """
    reg = get_registry()
    reg.counter("grouping.plans", strategy=plan.strategy).inc()
    reg.counter("grouping.groups", strategy=plan.strategy).inc(plan.num_groups)
    members_hist = reg.histogram("grouping.group_members")
    rows_hist = reg.histogram("grouping.group_rows")
    waste_hist = reg.histogram("grouping.padding_waste", buckets=FRACTION_BUCKETS)
    for g in plan.groups:
        ms = [int(sizes[m]) for m in g.members]
        if not ms or max(ms) == 0:
            continue
        members_hist.observe(len(ms))
        rows_hist.observe(max(ms))
        if g.use_bmm:
            waste_hist.observe(1.0 - min(ms) / max(ms))
            reg.counter("grouping.padded_rows").inc(
                len(ms) * max(ms) - sum(ms)
            )


def plan_matmul_cost(
    plan: GroupingPlan,
    sizes: Sequence[int],
    c_in: int,
    c_out: int,
    dtype: DType,
    device: GPUSpec,
) -> GemmCost:
    """Total GEMM cost of executing a plan on given map sizes.

    This is the cost function ``f`` of Algorithm 5 for the matmul stage;
    the tuner minimizes it over ``(epsilon, S)``.
    """
    total_t = total_f = total_useful = total_b = 0.0
    launches = 0
    for g in plan.groups:
        member_sizes = [int(sizes[m]) for m in g.members]
        if g.use_bmm:
            c = bmm_cost(member_sizes, c_in, c_out, dtype, device)
        else:
            c = sequential_cost(member_sizes, c_in, c_out, dtype, device)
        total_t += c.time
        total_f += c.flops
        total_useful += c.useful_flops
        total_b += c.bytes_moved
        launches += c.launches
    peak = device.math_throughput(dtype)
    return GemmCost(
        time=total_t,
        flops=total_f,
        useful_flops=total_useful,
        bytes_moved=total_b,
        launches=launches,
        utilization=total_f / total_t / peak if total_t else 0.0,
    )
