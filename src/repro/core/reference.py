"""Slow, obviously-correct reference implementations.

These are the gold standards the optimized engine is validated against
(the pattern the scikit-learn performance guide recommends: keep the
easy-to-debug Python version around and test the fast path against it).

* :func:`sparse_conv_reference` — literal Equation 1 with a Python dict.
* :func:`dense_conv3d_reference` — materialize a dense volume, run a
  dense 3D convolution, and read results back at the output coordinates.
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel import kernel_offsets


def sparse_conv_reference(
    in_coords: np.ndarray,
    feats: np.ndarray,
    weights: np.ndarray,
    out_coords: np.ndarray,
    kernel_size: int,
    stride: int = 1,
) -> np.ndarray:
    """Equation 1, literally: for every output q and offset delta, look
    up the input at ``s*q + delta`` and accumulate ``x @ W_delta``."""
    offsets = kernel_offsets(kernel_size)
    table = {
        tuple(int(v) for v in c): j
        for j, c in enumerate(np.asarray(in_coords, dtype=np.int64))
    }
    c_out = weights.shape[2]
    out = np.zeros((len(out_coords), c_out), dtype=np.float64)
    for k, q in enumerate(np.asarray(out_coords, dtype=np.int64)):
        for n, d in enumerate(offsets):
            r = (int(q[0]), int(q[1] * stride + d[0]), int(q[2] * stride + d[1]),
                 int(q[3] * stride + d[2]))
            j = table.get(r)
            if j is not None:
                out[k] += feats[j].astype(np.float64) @ weights[n].astype(np.float64)
    return out.astype(np.float32)


def dense_conv3d_reference(
    in_coords: np.ndarray,
    feats: np.ndarray,
    weights: np.ndarray,
    out_coords: np.ndarray,
    kernel_size: int,
    stride: int = 1,
) -> np.ndarray:
    """Dense-volume cross-check for small extents.

    Scatters features into a dense ``(X, Y, Z, C)`` grid, evaluates the
    convolution sum directly with array slicing, and samples the result
    at the requested output coordinates.  Only batch 0 is supported
    (tests slice batches beforehand).
    """
    in_coords = np.asarray(in_coords, dtype=np.int64)
    out_coords = np.asarray(out_coords, dtype=np.int64)
    if in_coords.size and in_coords[:, 0].max() > 0:
        raise ValueError("dense reference supports a single batch element")
    offsets = kernel_offsets(kernel_size)
    c_in, c_out = weights.shape[1], weights.shape[2]

    lo = in_coords[:, 1:].min(axis=0)
    hi = in_coords[:, 1:].max(axis=0)
    shape = hi - lo + 1
    vol = np.zeros((*shape, c_in), dtype=np.float64)
    rel = in_coords[:, 1:] - lo
    vol[rel[:, 0], rel[:, 1], rel[:, 2]] = feats

    out = np.zeros((len(out_coords), c_out), dtype=np.float64)
    for n, d in enumerate(offsets):
        # input position probed for each output: s*q + d (in grid units)
        probe = out_coords[:, 1:] * stride + d - lo
        ok = ((probe >= 0) & (probe < shape)).all(axis=1)
        if not ok.any():
            continue
        p = probe[ok]
        out[ok] += vol[p[:, 0], p[:, 1], p[:, 2]] @ weights[n].astype(np.float64)
    return out.astype(np.float32)
