"""Execution engines and per-pass context.

An :class:`EngineConfig` switches every paper optimization on or off;
:class:`BaseEngine.convolution` runs the four-stage pipeline under that
configuration, logging priced :class:`~repro.gpu.timeline.KernelRecord`
entries.  The provided presets mirror the systems evaluated in Figure
11:

* :meth:`EngineConfig.torchsparse` — everything on (adaptive grouping,
  FP16 vectorized fused locality-aware movement, auto grid/hash maps,
  fused downsampling, simplified logic, map symmetry);
* :meth:`EngineConfig.baseline` — the paper's unoptimized FP32 design;
* baselines modeled after MinkowskiEngine and SpConv live in
  :mod:`repro.baselines`.

The :class:`ExecutionContext` owns the per-input caches (coordinates,
coordinate tables and kernel maps per stride level) that real engines
keep in their coordinate managers — built once on the way down the
U-Net, reused by every later layer, including transposed convolutions
on the way up.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.dataflow import (
    MovementConfig,
    execute_fetch_on_demand,
    execute_gather_matmul_scatter,
)
from repro.core.grouping import make_plan, record_plan
from repro.core.sparse_tensor import SparseTensor
from repro.core.kernel import is_all_odd, normalize, to_tuple
from repro.core.tuner import StrategyBook
from repro.gpu.device import GPUSpec, RTX_2080TI
from repro.gpu.memory import DType
from repro.gpu.timeline import Profile
from repro.mapping.cache import (
    MappingCache,
    coords_fingerprint,
    coords_key,
    coords_nbytes,
    index_key,
    index_nbytes,
    kmap_key,
    kmap_nbytes,
)
from repro.mapping.downsample import downsample_coords
from repro.mapping.kmap import CoordIndex, KernelMap, build_kmap
from repro.obs.metrics import get_registry
from repro.obs.tracing import Tracer
from repro.robust.degrade import DEFAULT_LADDER, CircuitBreaker, RobustConfig
from repro.robust.integrity import IntegrityChecker
from repro.robust.errors import (
    FAULT_ERRORS,
    DegradationExhaustedError,
    InputValidationError,
    KernelMapCorruptionError,
    NumericFaultError,
)
from repro.robust.faults import (
    get_injector,
    maybe_corrupt_kmap,
    maybe_drop_strategy,
    maybe_grid_oom,
)

#: Seconds of instruction work per table access in the map-search kernels.
#: The baseline figure reflects un-specialized control flow; TorchSparse's
#: simplified + unrolled kernels cut it ~4x (Section 6.3).
MAPPING_INSTR_BASELINE = 0.22e-9
MAPPING_INSTR_SIMPLIFIED = MAPPING_INSTR_BASELINE / 4.0

#: Slot sizes priced per table access (key+value vs. value-only).
HASH_SLOT_BYTES = 16
GRID_SLOT_BYTES = 8

#: Grid tables (even explicitly requested ones) fall back to hashmaps
#: past this memory budget — mirroring the range-cropped spatial shapes
#: real grid-based engines require.
MAX_GRID_BYTES = 2 * 1024 * 1024 * 1024


@dataclass(frozen=True)
class EngineConfig:
    """Every optimization knob of the engine.

    Attributes:
        name: label used in reports.
        dtype: feature storage dtype (matmul runs in the same precision).
        vectorized: vectorized (4-byte-per-thread) scatter/gather.
        fused: fuse all gathers before matmul / scatters after.
        locality_aware: input-/output-stationary movement order.
        grouping: matmul strategy (``separate``/``symmetric``/``fixed``/
            ``adaptive``).
        epsilon, s_threshold: adaptive-grouping parameters used when no
            tuned strategy book entry exists for a layer.
        strategy_book: per-layer tuned ``(epsilon, S)`` (Algorithm 5).
        map_backend: ``hash``, ``grid`` or ``auto`` (grid while affordable).
        fused_downsample: fuse the 5-stage output-coordinate pipeline.
        simplified_logic: simplified/unrolled map-search control flow.
        use_map_symmetry: probe only half the offsets at stride 1.
        fetch_on_demand_threshold: run the fetch-on-demand dataflow when
            the layer's mean map size falls below this (MinkowskiEngine's
            small-workload specialization); 0 disables it.
        robustness: fault detection / graceful degradation knobs
            (:class:`~repro.robust.degrade.RobustConfig`); ``None``
            disables the robustness layer entirely (seed behavior).
    """

    name: str = "torchsparse"
    dtype: DType = DType.FP16
    vectorized: bool = True
    fused: bool = True
    locality_aware: bool = True
    grouping: str = "adaptive"
    epsilon: float = 0.4
    s_threshold: float = 65536.0
    strategy_book: StrategyBook | None = None
    map_backend: str = "auto"
    fused_downsample: bool = True
    simplified_logic: bool = True
    use_map_symmetry: bool = True
    fetch_on_demand_threshold: int = 0
    robustness: RobustConfig | None = None

    # -- presets -----------------------------------------------------------

    @classmethod
    def torchsparse(cls, **overrides) -> "EngineConfig":
        """The full TorchSparse system (all Section 4 optimizations)."""
        return replace(cls(), **overrides) if overrides else cls()

    @classmethod
    def hardened(cls, base: "EngineConfig | None" = None, **robust_overrides):
        """A preset with the robustness layer enabled (detection +
        graceful degradation down the ladder)."""
        cfg = base if base is not None else cls()
        return replace(cfg, robustness=RobustConfig(**robust_overrides))

    @classmethod
    def baseline(cls, **overrides) -> "EngineConfig":
        """The paper's unoptimized FP32 reference design."""
        cfg = cls(
            name="baseline-fp32",
            dtype=DType.FP32,
            vectorized=False,
            fused=False,
            locality_aware=False,
            grouping="separate",
            map_backend="hash",
            fused_downsample=False,
            simplified_logic=False,
            use_map_symmetry=False,
        )
        return replace(cfg, **overrides) if overrides else cfg

    @property
    def movement(self) -> MovementConfig:
        return MovementConfig(
            dtype=self.dtype,
            vectorized=self.vectorized,
            fused=self.fused,
            locality_aware=self.locality_aware,
        )


class ExecutionContext:
    """Per-input state: device, profile and the coordinate/map caches.

    Create one context per point cloud (or reuse after :meth:`reset`).
    Passing a :class:`~repro.mapping.cache.MappingCache` turns on
    persistent, content-addressed reuse of coordinate tables and kernel
    maps across contexts (steady-state serving of temporally coherent
    streams); without one, every context builds its maps from scratch
    (the seed-exact cold path).
    """

    def __init__(
        self,
        engine: "BaseEngine | None" = None,
        device: GPUSpec = RTX_2080TI,
        profile: Profile | None = None,
        mapcache: MappingCache | None = None,
    ):
        self.engine = engine or TorchSparseEngine()
        self.device = device
        self.profile = profile if profile is not None else Profile()
        if self.profile.tracer is None:
            self.profile.tracer = Tracer()
        #: hierarchical span tracer; records logged under an open span
        #: carry its path (layer -> stage) for trace export and reports
        self.trace = self.profile.tracer
        #: metrics registry active when this context was created
        self.metrics = get_registry()
        #: persistent content-addressed cache (None = cold path)
        self.mapcache = mapcache
        self.coords_at_stride: dict[int, np.ndarray] = {}
        self.index_at_stride: dict[int, CoordIndex] = {}
        self.kmap_cache: dict[object, KernelMap] = {}
        #: (layer_name, kernel_size, stride, c_in, c_out, map sizes) per
        #: executed convolution — the tuner's training signal.
        self.layer_workloads: list[tuple] = []

    def reset(self) -> None:
        """Drop caches and profiling for a fresh input.

        The persistent :attr:`mapcache` (if any) survives — its entries
        are content-addressed, so a new input can only ever hit entries
        whose coordinates match exactly.
        """
        self.profile.clear()
        self.coords_at_stride.clear()
        self.index_at_stride.clear()
        self.kmap_cache.clear()
        self.layer_workloads.clear()

    def register_coords(self, stride: int, coords: np.ndarray) -> None:
        """Pin ``coords`` as *the* coordinate set of ``stride``.

        Re-registering the same content (by fingerprint) is a no-op.
        Re-registering *different* content — a new input flowing through
        a reused context without :meth:`reset` — drops every cached
        coordinate set, table and kernel map before registering, so
        nothing derived from the old input can be served against the
        new one.  (The old ``setdefault`` silently kept the stale
        entries, which made the stride-only cache keys serve one
        input's maps against another input's features.)
        """
        cached = self.coords_at_stride.get(stride)
        if cached is None:
            self.coords_at_stride[stride] = coords
            return
        if cached is coords or coords_fingerprint(cached) == coords_fingerprint(
            coords
        ):
            return
        self.metrics.counter("engine.ctx_rebuilds").inc()
        self.coords_at_stride.clear()
        self.index_at_stride.clear()
        self.kmap_cache.clear()
        self.coords_at_stride[stride] = coords


@dataclass
class BaseEngine:
    """Configurable four-stage sparse convolution executor.

    When ``config.robustness`` is set, every convolution runs under the
    fault-detection + graceful-degradation protocol: detected faults
    retry the layer down the ladder (``bmm -> mm``, ``FP16 vectorized ->
    FP32 scalar``, ``grid -> hashmap``) with per-layer circuit breakers
    (``self.breakers``) pinning the fallback after repeated failures.
    The per-attempt engine configuration is threaded explicitly (the
    ``cfg`` parameters below); ``cfg=None`` means ``self.config``.
    """

    config: EngineConfig = field(default_factory=EngineConfig)
    #: per-layer circuit breakers (populated only under robustness)
    breakers: dict = field(default_factory=dict, repr=False, compare=False)

    # -- mapping helpers -----------------------------------------------------

    def _choose_backend(
        self, coords: np.ndarray, cfg: EngineConfig | None = None
    ) -> str:
        cfg = cfg or self.config
        backend = cfg.map_backend
        if backend == "hash":
            return backend
        if backend not in ("grid", "auto"):
            raise ValueError(f"unknown map_backend {backend!r}")
        c = coords.astype(np.int64)
        if c.shape[0] == 0:
            return "hash"
        extent = c.max(axis=0) - c.min(axis=0) + 1
        extent[1:] += 2  # probe margin
        volume = int(np.prod(extent))
        # Even a forced "grid" falls back to hash past the memory budget —
        # the paper notes SpConv itself needed such changes "to avoid OOM
        # in large-scale scenes" (Section 5.1).
        return "grid" if volume * GRID_SLOT_BYTES <= MAX_GRID_BYTES else "hash"

    def _mapping_instr(self, cfg: EngineConfig | None = None) -> float:
        cfg = cfg or self.config
        return (
            MAPPING_INSTR_SIMPLIFIED
            if cfg.simplified_logic
            else MAPPING_INSTR_BASELINE
        )

    def _price_table(
        self,
        index: CoordIndex,
        ctx: ExecutionContext,
        label: str,
        cfg: EngineConfig | None = None,
    ):
        """Convert a table's access counters into mapping-stage records."""
        stats = index.stats
        slot = (
            GRID_SLOT_BYTES
            if index.table.__class__.__name__ == "GridTable"
            else HASH_SLOT_BYTES
        )
        accesses = stats.build_accesses + stats.query_accesses
        t_mem = ctx.device.mem_time(accesses * slot, efficiency=0.5)
        t_instr = accesses * self._mapping_instr(cfg)
        ctx.profile.log(
            label,
            "mapping",
            max(t_mem, t_instr) + ctx.device.launch_overhead,
            bytes_moved=accesses * slot,
        )
        # reset so later reuse of the same table is not double-billed
        stats.build_accesses = 0
        stats.query_accesses = 0

    def _get_index(
        self,
        stride: int,
        coords: np.ndarray,
        ctx: ExecutionContext,
        cfg: EngineConfig | None = None,
    ) -> CoordIndex:
        index = ctx.index_at_stride.get(stride)
        if index is not None:
            ctx.metrics.counter("engine.cache.hits", cache="index").inc()
            return index
        ctx.metrics.counter("engine.cache.misses", cache="index").inc()
        backend = self._choose_backend(coords, cfg)
        cache = ctx.mapcache
        key = index_key(coords, backend) if cache is not None else None
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                ctx.index_at_stride[stride] = cached
                ctx.profile.log(f"mapcache.hit.index.s{stride}", "mapping", 0.0)
                return cached
        if backend == "grid":
            # fault-injection site: simulated grid allocation failure
            maybe_grid_oom(f"table.build.s{stride}.grid")
        index = CoordIndex.build(
            coords, backend=backend, margin=2, max_grid_bytes=MAX_GRID_BYTES
        )
        ctx.index_at_stride[stride] = index
        self._price_table(index, ctx, f"table.build.s{stride}.{backend}", cfg)
        if cache is not None:
            cache.put(key, index, index_nbytes(index))
        return index

    def _get_kmap(
        self,
        x: SparseTensor,
        out_coords: np.ndarray,
        out_stride: int,
        kernel_size: int,
        stride: int,
        ctx: ExecutionContext,
        cfg: EngineConfig | None = None,
    ) -> KernelMap:
        cfg = cfg or self.config
        return self._lookup_kmap(
            x.coords,
            x.stride,
            out_coords,
            out_stride,
            kernel_size,
            stride,
            ctx,
            cfg,
            use_symmetry=cfg.use_map_symmetry,
            label=f"k{kernel_size}.s{stride}",
        )

    def _lookup_kmap(
        self,
        in_coords: np.ndarray,
        in_stride,
        out_coords: np.ndarray,
        out_stride,
        kernel_size,
        stride,
        ctx: ExecutionContext,
        cfg: EngineConfig,
        use_symmetry: bool,
        label: str,
    ) -> KernelMap:
        """Kernel-map lookup through both cache tiers, building on miss.

        The key is fully content-addressed (coordinate fingerprints plus
        every map-shaping parameter — the old per-context key omitted
        symmetry and coordinate identity, so per-context and persistent
        tiers could never have diverged even before the keying fix).
        A persistent hit skips table build, map search and map write
        entirely; it is logged as a zero-cost ``mapcache.hit`` mapping
        record so traces still attribute the stage.
        """
        key = kmap_key(
            in_coords,
            out_coords,
            in_stride,
            out_stride,
            kernel_size,
            stride,
            use_symmetry,
        )
        kmap = ctx.kmap_cache.get(key)
        if kmap is not None:
            ctx.metrics.counter("engine.cache.hits", cache="kmap").inc()
            return kmap
        ctx.metrics.counter("engine.cache.misses", cache="kmap").inc()
        cache = ctx.mapcache
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                if get_injector() is not None:
                    # in-place fault injection must not reach the shared entry
                    cached = cached.clone()
                ctx.kmap_cache[key] = cached
                with ctx.profile.span("mapping"):
                    ctx.profile.log(f"mapcache.hit.kmap.{label}", "mapping", 0.0)
                return cached
        with ctx.profile.span("mapping"):
            index = self._get_index(in_stride, in_coords, ctx, cfg)
            kmap = build_kmap(
                in_coords,
                index,
                out_coords,
                kernel_size,
                stride=stride,
                use_symmetry=use_symmetry,
            )
            self._price_table(index, ctx, f"kmap.search.{label}", cfg)
            self._price_map_write(kmap, ctx, f"kmap.write.{label}", cfg)
        ctx.kmap_cache[key] = kmap
        if cache is not None:
            cache.put(
                key,
                kmap.clone() if get_injector() is not None else kmap,
                kmap_nbytes(kmap),
            )
        return kmap

    def _price_map_write(
        self,
        kmap: KernelMap,
        ctx: ExecutionContext,
        label: str,
        cfg: EngineConfig | None = None,
    ):
        """Writing the searched map entries to DRAM.

        Every entry is an (input index, output index) pair written once;
        mirrored entries (symmetry path) additionally re-read their
        source entry.  This cost does not shrink with symmetry, which is
        what bounds the paper's symmetry gain to ~1.1x.
        """
        entry_bytes = kmap.total * 8 + kmap.mirrored_entries * 8
        instr = (kmap.total + kmap.mirrored_entries) * self._mapping_instr(cfg)
        ctx.profile.log(
            label,
            "mapping",
            max(ctx.device.mem_time(entry_bytes, efficiency=0.7), instr),
            bytes_moved=entry_bytes,
        )

    def _output_coords(
        self,
        x: SparseTensor,
        kernel_size,
        stride,
        out_stride,
        ctx: ExecutionContext,
        fused: bool,
        label: str,
    ) -> np.ndarray:
        """Downsampled output coordinates through both cache tiers.

        Per-context first (one build per stride level per input), then
        the persistent cache keyed by the parent coordinates' content —
        a warm frame re-registers the exact cached array, which keeps
        every downstream fingerprint identical and lets the kernel-map
        lookups hit as well.
        """
        cached = ctx.coords_at_stride.get(out_stride)
        if cached is not None:
            ctx.metrics.counter("engine.cache.hits", cache="coords").inc()
            return cached
        ctx.metrics.counter("engine.cache.misses", cache="coords").inc()
        cache = ctx.mapcache
        key = coords_key(x.coords, kernel_size, stride) if cache is not None else None
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                with ctx.profile.span("mapping"):
                    ctx.profile.log(
                        f"mapcache.hit.coords.s{stride}", "mapping", 0.0
                    )
                ctx.register_coords(out_stride, hit)
                return hit
        out_coords, ds_cost = downsample_coords(x.coords, kernel_size, stride)
        with ctx.profile.span("mapping"):
            ctx.profile.log(
                f"{label}.s{stride}",
                "mapping",
                ctx.device.mem_time(ds_cost.total_bytes(fused), efficiency=0.7)
                + ds_cost.launches(fused) * ctx.device.launch_overhead,
                bytes_moved=ds_cost.total_bytes(fused),
                launches=ds_cost.launches(fused),
            )
        ctx.register_coords(out_stride, out_coords)
        if cache is not None:
            cache.put(key, out_coords, coords_nbytes(out_coords))
        return out_coords

    # -- fault detection / recovery helpers ----------------------------------

    def _detect_kmap_fault(self, kmap: KernelMap, label: str) -> None:
        """Range-check a kernel map, converting defects to typed faults.

        Active only under ``robustness.detect`` + ``verify_kmap``; the
        unprotected engine runs maps unchecked (seed behavior).
        """
        robust = self.config.robustness
        if robust is None or not (robust.detect and robust.verify_kmap):
            return
        try:
            kmap.validate()
        except ValueError as e:
            raise KernelMapCorruptionError(f"{label}: {e}") from e

    def _detect_numeric_fault(self, feats: np.ndarray, label: str) -> None:
        """Raise on NaN/Inf layer outputs when numeric detection is on."""
        robust = self.config.robustness
        if robust is None or not (robust.detect and robust.verify_numerics):
            return
        if not np.isfinite(feats).all():
            n_bad = int((~np.isfinite(feats)).sum())
            raise NumericFaultError(
                f"{label}: {n_bad} non-finite values in layer output"
            )

    def _check_input(
        self, x: SparseTensor, ctx: ExecutionContext, robust: RobustConfig, label: str
    ) -> SparseTensor:
        """Boundary check on input features (repair or raise per policy)."""
        if not robust.verify_numerics:
            return x
        finite = np.isfinite(x.feats)
        if finite.all():
            return x
        n_bad = int((~finite).sum())
        ctx.metrics.counter("robust.input_faults", layer=label).inc()
        if robust.input_policy == "strict":
            raise InputValidationError(
                f"{label}: {n_bad} non-finite input feature values"
            )
        ctx.metrics.counter("robust.inputs", action="repaired").inc()
        return x.replace_feats(np.where(finite, x.feats, np.float32(0.0)))

    def _record_fault(
        self, err: Exception, ctx: ExecutionContext, label: str, level: int
    ) -> None:
        """Make a detected fault visible as a counter and a span."""
        kind = getattr(err, "kind", "fault")
        ctx.metrics.counter("robust.faults", kind=kind, layer=label).inc()
        with ctx.profile.span(
            f"fault.{kind}", kind="fault", layer=label, level=level, error=str(err)
        ):
            ctx.profile.log(f"fault.{kind}", "other", 0.0)

    def _purge_mapping_caches(self, ctx: ExecutionContext, x: SparseTensor) -> None:
        """Drop cached tables/maps touching the input's stride level.

        A corrupted kernel map or overflowed table may already have been
        cached before detection; a retry must rebuild from scratch.
        Persistent entries built from the same coordinates are purged
        too — a chaos-corrupted map must never survive into another
        request as a "warm hit".
        """
        s = x.stride
        for key in [
            k for k in ctx.kmap_cache if s in (k.in_stride, k.out_stride)
        ]:
            ctx.kmap_cache.pop(key, None)
        ctx.index_at_stride.pop(s, None)
        if ctx.mapcache is not None:
            fps = {coords_fingerprint(x.coords)}
            cached = ctx.coords_at_stride.get(s)
            if cached is not None and cached is not x.coords:
                fps.add(coords_fingerprint(cached))
            ctx.mapcache.purge(fps)

    # -- the public op -------------------------------------------------------

    def convolution(
        self,
        x: SparseTensor,
        weights: np.ndarray,
        ctx: ExecutionContext,
        kernel_size: int = 3,
        stride: int = 1,
        transposed: bool = False,
        bias: np.ndarray | None = None,
        layer_name: str = "",
    ) -> SparseTensor:
        """One sparse convolution under this engine's configuration.

        ``stride > 1`` with ``transposed=False`` downsamples (output
        stride multiplies); ``transposed=True`` upsamples back onto the
        cached coordinates of the finer level, reusing the cached kernel
        map of the corresponding downsampling convolution.

        With ``config.robustness`` set, detected faults retry the layer
        down the degradation ladder (see :mod:`repro.robust.degrade`);
        with ``degrade=False`` they surface as typed
        :class:`~repro.robust.errors.RobustnessError` subclasses.
        """
        if x.num_points == 0:
            raise InputValidationError("cannot convolve an empty tensor")
        ctx.register_coords(x.stride, x.coords)

        stride = normalize(stride)
        kernel_size = normalize(kernel_size)
        robust = self.config.robustness
        if robust is None:
            return self._convolve(
                x,
                weights,
                ctx,
                kernel_size,
                stride,
                transposed,
                bias,
                layer_name,
                self.config,
            )
        return self._convolve_robust(
            x, weights, ctx, kernel_size, stride, transposed, bias, layer_name, robust
        )

    def _convolve_robust(
        self,
        x: SparseTensor,
        weights: np.ndarray,
        ctx: ExecutionContext,
        kernel_size: int,
        stride: int,
        transposed: bool,
        bias: np.ndarray | None,
        layer_name: str,
        robust: RobustConfig,
    ) -> SparseTensor:
        """The retry protocol around :meth:`_convolve`.

        Each attempt runs under the engine config degraded to the
        current ladder level; a detected fault advances to the first
        rung addressing its stage, purges mapping caches the fault may
        have poisoned, and retries.  The layer's circuit breaker pins
        the recovery level after repeated failures so later inputs skip
        the known-bad fast path.
        """
        label = layer_name or (
            f"conv{'T' if transposed else ''}.k{kernel_size}.s{stride}"
        )
        breaker = self.breakers.get(label)
        if breaker is None:
            breaker = CircuitBreaker(threshold=robust.breaker_threshold)
            self.breakers[label] = breaker
        if robust.detect:
            x = self._check_input(x, ctx, robust, label)
        level = breaker.pinned
        attempts = 0
        recovered = False
        while True:
            cfg = DEFAULT_LADDER.config_at(self.config, level)
            try:
                out = self._convolve(
                    x,
                    weights,
                    ctx,
                    kernel_size,
                    stride,
                    transposed,
                    bias,
                    layer_name,
                    cfg,
                )
            except FAULT_ERRORS as err:
                self._record_fault(err, ctx, label, level)
                if not robust.degrade:
                    raise
                if err.stage == "mapping":
                    self._purge_mapping_caches(ctx, x)
                attempts += 1
                nxt = DEFAULT_LADDER.next_level(level, err.stage)
                if nxt is None or attempts > robust.max_retries:
                    breaker.record_failure(DEFAULT_LADDER.floor)
                    raise DegradationExhaustedError(
                        f"{label}: fault persists at ladder level "
                        f"{level} ({DEFAULT_LADDER.rung_name(level)}) after "
                        f"{attempts} attempts: {err}"
                    ) from err
                if breaker.record_failure(nxt):
                    ctx.metrics.counter(
                        "robust.breaker_pinned",
                        layer=label,
                        rung=DEFAULT_LADDER.rung_name(nxt),
                    ).inc()
                level = nxt
                recovered = True
                continue
            if level > 0:
                rung = DEFAULT_LADDER.rung_name(level)
                ctx.metrics.counter(
                    "robust.degraded_runs", layer=label, rung=rung
                ).inc()
                if recovered:
                    with ctx.profile.span(
                        f"recovered.{label}", kind="recovery", level=level, rung=rung
                    ):
                        ctx.profile.log(f"recovered.{rung}", "other", 0.0)
            breaker.record_success(level)
            return out

    def _convolve(
        self,
        x: SparseTensor,
        weights: np.ndarray,
        ctx: ExecutionContext,
        kernel_size: int,
        stride: int,
        transposed: bool,
        bias: np.ndarray | None,
        layer_name: str,
        cfg: EngineConfig,
    ) -> SparseTensor:
        """One attempt of the four-stage pipeline under ``cfg``."""
        if transposed:
            return self._transposed(
                x, weights, ctx, kernel_size, stride, bias, layer_name, cfg
            )

        span_name = layer_name or f"conv.k{kernel_size}.s{stride}"
        with ctx.profile.span(
            span_name,
            kind="conv",
            kernel_size=kernel_size,
            stride=stride,
            in_stride=x.stride,
            c_in=int(weights.shape[1]),
            c_out=int(weights.shape[2]),
        ):
            if stride == 1:
                out_coords, out_stride = x.coords, x.stride
            else:
                out_stride = normalize(
                    tuple(
                        a * b
                        for a, b in zip(to_tuple(x.stride), to_tuple(stride))
                    )
                )
                out_coords = self._output_coords(
                    x,
                    kernel_size,
                    stride,
                    out_stride,
                    ctx,
                    cfg.fused_downsample,
                    "downsample.coords",
                )

            kmap = self._get_kmap(
                x, out_coords, out_stride, kernel_size, stride, ctx, cfg
            )
            # fault-injection site: corrupt searched map entries in place
            maybe_corrupt_kmap(kmap, site=f"kmap.k{kernel_size}.s{stride}")
            self._detect_kmap_fault(kmap, span_name)
            feats = self._run_dataflow(x.feats, weights, kmap, ctx, layer_name, cfg)
            self._detect_numeric_fault(feats, span_name)
            if bias is not None:
                feats = feats + bias.astype(np.float32)
            return SparseTensor(out_coords, feats, stride=out_stride)

    def _transposed(
        self,
        x: SparseTensor,
        weights: np.ndarray,
        ctx: ExecutionContext,
        kernel_size: int,
        stride: int,
        bias: np.ndarray | None,
        layer_name: str,
        cfg: EngineConfig,
    ) -> SparseTensor:
        s3 = to_tuple(stride, name="stride")
        if all(si == 1 for si in s3) or any(si < 1 for si in s3):
            raise ValueError("transposed convolution requires stride > 1")
        x3 = to_tuple(x.stride, name="stride")
        if any(a % b for a, b in zip(x3, s3)):
            raise ValueError(
                f"cannot upsample stride {x.stride} by factor {stride}"
            )
        fine_stride = normalize(tuple(a // b for a, b in zip(x3, s3)))
        fine_coords = ctx.coords_at_stride.get(fine_stride)
        if fine_coords is None:
            raise ValueError(
                f"no cached coordinates at stride {fine_stride}; transposed "
                "convolutions must mirror an earlier downsampling layer"
            )
        span_name = layer_name or f"convT.k{kernel_size}.s{stride}"
        with ctx.profile.span(
            span_name,
            kind="conv",
            kernel_size=kernel_size,
            stride=stride,
            in_stride=x.stride,
            c_in=int(weights.shape[1]),
            c_out=int(weights.shape[2]),
            transposed=True,
        ):
            # the forward map of the mirrored downsampling layer; the
            # canonical (effective-symmetry) key makes it shareable with
            # that layer's own cache entry, per-context and persistent
            fwd = self._lookup_kmap(
                fine_coords,
                fine_stride,
                x.coords,
                x.stride,
                kernel_size,
                stride,
                ctx,
                cfg,
                use_symmetry=False,
                label=f"T.k{kernel_size}.s{stride}",
            )
            kmap = fwd.transposed()
            # fault-injection site: corrupt the (shared) transposed map
            maybe_corrupt_kmap(kmap, site=f"kmap.T.k{kernel_size}.s{stride}")
            self._detect_kmap_fault(kmap, span_name)
            feats = self._run_dataflow(x.feats, weights, kmap, ctx, layer_name, cfg)
            self._detect_numeric_fault(feats, span_name)
            if bias is not None:
                feats = feats + bias.astype(np.float32)
            return SparseTensor(fine_coords, feats, stride=fine_stride)

    # -- dataflow dispatch -----------------------------------------------------

    def _run_dataflow(
        self,
        feats: np.ndarray,
        weights: np.ndarray,
        kmap: KernelMap,
        ctx: ExecutionContext,
        layer_name: str,
        cfg: EngineConfig | None = None,
    ) -> np.ndarray:
        cfg = cfg or self.config
        ctx.layer_workloads.append(
            (
                layer_name,
                kmap.kernel_size,
                kmap.stride,
                weights.shape[1],
                weights.shape[2],
                tuple(int(s) for s in kmap.sizes),
            )
        )
        integrity = self._make_integrity(ctx, layer_name, cfg)
        mean_map = kmap.total / max(1, kmap.volume)
        if (
            cfg.fetch_on_demand_threshold > 0
            and mean_map < cfg.fetch_on_demand_threshold
            and self._fetch_on_demand_wins(kmap, weights, ctx.device, cfg)
        ):
            ctx.metrics.counter("engine.dispatch", dataflow="fetch_on_demand").inc()
            return execute_fetch_on_demand(
                feats,
                weights,
                kmap,
                ctx.device,
                ctx.profile,
                dtype=cfg.dtype,
                integrity=integrity,
            )
        ctx.metrics.counter("engine.dispatch", dataflow="gather_matmul_scatter").inc()

        eps, s_thr = cfg.epsilon, cfg.s_threshold
        if cfg.strategy_book is not None and layer_name:
            # fault-injection site: the tuned entry for this layer vanishes;
            # the engine falls back to the config's default parameters.
            if maybe_drop_strategy(layer_name):
                ctx.metrics.counter(
                    "robust.strategy_fallback", layer=layer_name
                ).inc()
            else:
                tuned = cfg.strategy_book.get(layer_name)
                if tuned is not None:
                    eps, s_thr = tuned.epsilon, tuned.s_threshold
        skip_center = kmap.is_submanifold
        plan = make_plan(
            cfg.grouping,
            kmap.sizes,
            kmap.kernel_size,
            kmap.stride,
            epsilon=eps,
            s_threshold=s_thr if not math.isnan(s_thr) else math.inf,
        )
        record_plan(plan, kmap.sizes)
        return execute_gather_matmul_scatter(
            feats,
            weights,
            kmap,
            plan,
            cfg.movement,
            ctx.device,
            ctx.profile,
            skip_center=skip_center,
            integrity=integrity,
        )

    def _make_integrity(
        self, ctx: ExecutionContext, layer_name: str, cfg: EngineConfig
    ) -> IntegrityChecker | None:
        """Fresh ABFT checker for one dataflow attempt, or ``None``.

        The checker's *settings* come from the engine's own robustness
        config (verification never degrades down the ladder); the
        verified dtype is the attempt's ``cfg.dtype``, so a layer
        retried at the FP32 rung is checked against the FP32 envelope.
        """
        robust = self.config.robustness
        if robust is None or not robust.detect or robust.integrity is None:
            return None
        return IntegrityChecker(
            robust.integrity,
            cfg.dtype,
            ctx.device,
            metrics=ctx.metrics,
            label=layer_name or "conv",
        )

    def pooling(
        self,
        x: SparseTensor,
        ctx: ExecutionContext,
        kernel_size=2,
        stride=2,
        mode: str = "max",
    ) -> SparseTensor:
        """Sparse pooling: reduce each output's kernel window.

        Shares the convolution's mapping machinery (output coordinates,
        kernel maps, caches); data movement is priced like a gather +
        scatter with no matmul.

        Args:
            mode: ``"max"`` or ``"avg"`` over the *present* inputs of
                each window (absent voxels are skipped, not zero-filled).
        """
        if mode not in ("max", "avg"):
            raise ValueError(f"unknown pooling mode {mode!r}")
        if x.num_points == 0:
            raise ValueError("cannot pool an empty tensor")
        stride = normalize(stride)
        kernel_size = normalize(kernel_size)
        ctx.register_coords(x.stride, x.coords)
        with ctx.profile.span(
            f"pool.{mode}.k{kernel_size}.s{stride}",
            kind="pool",
            kernel_size=kernel_size,
            stride=stride,
            in_stride=x.stride,
        ):
            if stride == 1:
                out_coords, out_stride = x.coords, x.stride
            else:
                out_stride = normalize(
                    tuple(
                        a * b
                        for a, b in zip(to_tuple(x.stride), to_tuple(stride))
                    )
                )
                out_coords = self._output_coords(
                    x,
                    kernel_size,
                    stride,
                    out_stride,
                    ctx,
                    self.config.fused_downsample,
                    "pool.downsample.coords",
                )
            kmap = self._get_kmap(
                x, out_coords, out_stride, kernel_size, stride, ctx
            )

            c = x.num_channels
            if mode == "max":
                acc = np.full((kmap.n_out, c), -np.inf, dtype=np.float32)
            else:
                acc = np.zeros((kmap.n_out, c), dtype=np.float32)
                counts = np.zeros(kmap.n_out, dtype=np.int64)
            for n in range(kmap.volume):
                i, o = kmap.in_indices[n], kmap.out_indices[n]
                if not len(i):
                    continue
                if mode == "max":
                    np.maximum.at(acc, o, x.feats[i])
                else:
                    acc[o] += x.feats[i]
                    counts[o] += 1
            if mode == "max":
                acc[np.isneginf(acc)] = 0.0
            else:
                acc[counts > 0] /= counts[counts > 0, None]

            from repro.core.dataflow import gather_record, scatter_record

            with ctx.profile.span("gather"):
                ctx.profile.add(
                    gather_record(
                        kmap, c, self.config.movement, ctx.device, False, emit=True
                    )
                )
            with ctx.profile.span("scatter"):
                ctx.profile.add(
                    scatter_record(
                        kmap, c, self.config.movement, ctx.device, False, emit=True
                    )
                )
            return SparseTensor(out_coords, acc, stride=out_stride)

    def _fetch_on_demand_wins(
        self,
        kmap: KernelMap,
        weights: np.ndarray,
        device: GPUSpec,
        cfg: EngineConfig | None = None,
    ) -> bool:
        """Cost comparison backing the small-workload dispatch.

        Fetch-on-demand skips the staging buffers but runs its math as
        unbatched dot products; whether that trade wins depends on both
        map sizes and channel widths, so the dispatch estimates both
        paths with the same models used for pricing.
        """
        from repro.core.dataflow import (
            fetch_on_demand_cost,
            gather_record,
            scatter_record,
        )
        from repro.gpu.gemm import sequential_cost

        c_in, c_out = weights.shape[1], weights.shape[2]
        cfg = cfg or self.config
        fod = fetch_on_demand_cost(kmap, c_in, c_out, cfg.dtype, device)
        skip = kmap.is_submanifold
        active = [s for s in kmap.sizes if s > 0]
        gms = (
            gather_record(kmap, c_in, cfg.movement, device, skip).time
            + scatter_record(kmap, c_out, cfg.movement, device, skip).time
            + sequential_cost(active, c_in, c_out, cfg.dtype, device).time
        )
        return fod < gms

    # -- pointwise pricing helper ---------------------------------------------

    def pointwise(
        self,
        x: SparseTensor,
        feats: np.ndarray,
        ctx: ExecutionContext,
        name: str,
        reads: int = 1,
        writes: int = 1,
    ) -> SparseTensor:
        """Wrap an elementwise feature transform with an 'other'-stage cost."""
        nbytes = (reads + writes) * x.num_points * x.num_channels * self.config.dtype.nbytes
        with ctx.profile.span(name or "pointwise", kind="pointwise"):
            ctx.profile.log(
                name,
                "other",
                ctx.device.mem_time(nbytes) + ctx.device.launch_overhead,
                bytes_moved=nbytes,
            )
        return x.replace_feats(feats)


class TorchSparseEngine(BaseEngine):
    """The paper's system: all optimizations enabled by default."""

    def __init__(self, config: EngineConfig | None = None):
        super().__init__(config=config or EngineConfig.torchsparse())


class BaselineEngine(BaseEngine):
    """The unoptimized FP32 design TorchSparse is ablated against."""

    def __init__(self, config: EngineConfig | None = None):
        super().__init__(config=config or EngineConfig.baseline())
