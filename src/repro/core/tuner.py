"""Adaptive group search (Algorithm 5).

For every layer the tuner grid-searches the redundant-computation
tolerance ``epsilon`` and the ``mm``/``bmm`` workload threshold ``S``
over a sample of real workloads (map-size vectors collected from ~100
inputs in the paper; configurable here), minimizing the modeled matmul
latency.  The resulting per-layer :class:`LayerStrategy` is stored in a
:class:`StrategyBook`, keyed by layer name — this is the artifact that
the paper's Table 1 shows is dataset-, model- and hardware-specific.

Even with ``(epsilon, S)`` fixed, the emitted *plan* is still
input-adaptive: group boundaries are recomputed from each sample's map
sizes (Section 4.2.3).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.core.grouping import make_plan, plan_matmul_cost
from repro.gpu.device import GPUSpec
from repro.gpu.memory import DType
from repro.robust.errors import StrategyBookError

#: Default search space: ~11 epsilon values x 8 thresholds < 1000 configs,
#: matching the paper's "around 1,000 configurations" note.  The space
#: covers the degenerate corners Section 4.2.3 lists: separate (S = 0),
#: symmetric (eps = 0, S = inf) and dense-like (eps = 1, S = inf).
DEFAULT_EPSILONS = tuple(round(float(e), 2) for e in np.linspace(0.0, 1.0, 11))
DEFAULT_THRESHOLDS = (0.0, 5e3, 1e4, 2e4, 5e4, 1e5, 2e5, math.inf)


@dataclass(frozen=True)
class LayerWorkload:
    """One layer's matmul shape plus sampled map-size vectors."""

    name: str
    kernel_size: int
    stride: int
    c_in: int
    c_out: int
    samples: tuple  # tuple of per-offset size tuples


@dataclass(frozen=True)
class LayerStrategy:
    """Tuned ``(epsilon, S)`` for one layer."""

    epsilon: float
    s_threshold: float
    expected_time: float = 0.0

    def to_json(self) -> dict:
        s = self.s_threshold
        return {
            "epsilon": self.epsilon,
            "s_threshold": "inf" if math.isinf(s) else s,
            "expected_time": self.expected_time,
        }

    @classmethod
    def from_json(cls, d: dict) -> "LayerStrategy":
        s = d["s_threshold"]
        strategy = cls(
            epsilon=float(d["epsilon"]),
            s_threshold=math.inf if s == "inf" else float(s),
            expected_time=float(d.get("expected_time", 0.0)),
        )
        if not 0.0 <= strategy.epsilon <= 1.0:
            raise ValueError(
                f"epsilon must be in [0, 1], got {strategy.epsilon}"
            )
        if math.isnan(strategy.s_threshold) or strategy.s_threshold < 0:
            raise ValueError(
                f"s_threshold must be >= 0 or inf, got {strategy.s_threshold}"
            )
        return strategy


@dataclass
class StrategyBook:
    """Per-layer tuned strategies for one (model, dataset, device) triple."""

    device_name: str = ""
    layers: dict = field(default_factory=dict)

    def get(self, layer_name: str) -> LayerStrategy | None:
        return self.layers.get(layer_name)

    def set(self, layer_name: str, strategy: LayerStrategy) -> None:
        self.layers[layer_name] = strategy

    def dumps(self) -> str:
        return json.dumps(
            {
                "device": self.device_name,
                "layers": {k: v.to_json() for k, v in self.layers.items()},
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def loads(cls, text: str) -> "StrategyBook":
        """Parse a serialized book.

        Raises:
            StrategyBookError: on malformed/truncated JSON, missing
                fields, or out-of-range values — one typed error (still
                a ``ValueError``) instead of whichever of
                ``JSONDecodeError``/``KeyError``/``TypeError`` the
                corruption happened to hit first.
        """
        try:
            d = json.loads(text)
        except json.JSONDecodeError as e:
            raise StrategyBookError(
                f"strategy book is not valid JSON (truncated file?): {e}"
            ) from e
        if not isinstance(d, dict):
            raise StrategyBookError(
                f"strategy book must be a JSON object, got {type(d).__name__}"
            )
        book = cls(device_name=d.get("device", ""))
        layers = d.get("layers", {})
        if not isinstance(layers, dict):
            raise StrategyBookError("'layers' must map layer names to entries")
        for k, v in layers.items():
            try:
                book.set(k, LayerStrategy.from_json(v))
            except StrategyBookError:
                raise
            except (KeyError, TypeError, ValueError) as e:
                raise StrategyBookError(
                    f"strategy book entry for layer {k!r} is invalid: {e}"
                ) from e
        return book

    def save_to_store(self, store, name: str) -> str:
        """Persist this book into an artifact store under ``name``.

        Books are keyed by ``(name, device_name)`` — the tuned
        ``(epsilon, S)`` grid is hardware-specific (Table 1), so two
        devices' books for the same model must not collide.  Returns
        the store key so callers can journal it.
        """
        from repro.persist import book_key, encode_artifact

        key = book_key(name, self.device_name)
        store.save(key, "book", encode_artifact("book", self))
        return key

    @classmethod
    def load_from_store(
        cls, store, name: str, device_name: str = "", fallback: bool = False
    ) -> "StrategyBook | None":
        """Load a book from an artifact store (verified + decoded).

        With ``fallback=True`` a missing or unverifiable entry returns
        ``None`` — mirroring :func:`load_strategy_book` — so warm-start
        paths degrade to the default strategy instead of failing.
        """
        from repro.persist import book_key, decode_artifact
        from repro.robust.errors import StoreCorruptionError

        key = book_key(name, device_name)
        data = store.load(key)
        if data is not None:
            try:
                kind, book = decode_artifact(data)
                if kind == "book":
                    return book
                store.quarantine(key, reason="kind_mismatch")
            except StoreCorruptionError:
                store.quarantine(key, reason="decode")
        if fallback:
            return None
        raise StrategyBookError(
            f"strategy book {name!r} for device {device_name!r} is not in "
            f"the store (or failed verification)"
        )


def load_strategy_book(path, fallback: bool = False) -> StrategyBook | None:
    """Load a strategy book from ``path``.

    With ``fallback=True`` a missing or corrupt file returns ``None``
    (callers then run the engine's default per-layer strategy) instead
    of raising — the graceful path used by ``repro-bench --strategies``.
    """
    try:
        with open(path) as f:
            return StrategyBook.loads(f.read())
    except (OSError, StrategyBookError):
        if fallback:
            return None
        raise


def evaluate_config(
    workload: LayerWorkload,
    epsilon: float,
    s_threshold: float,
    dtype: DType,
    device: GPUSpec,
) -> float:
    """Mean modeled matmul latency of one ``(epsilon, S)`` over samples."""
    total = 0.0
    for sizes in workload.samples:
        plan = make_plan(
            "adaptive",
            np.asarray(sizes),
            workload.kernel_size,
            workload.stride,
            epsilon=epsilon,
            s_threshold=s_threshold,
        )
        total += plan_matmul_cost(
            plan, sizes, workload.c_in, workload.c_out, dtype, device
        ).time
    return total / max(1, len(workload.samples))


def tune_layer(
    workload: LayerWorkload,
    dtype: DType,
    device: GPUSpec,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> LayerStrategy:
    """Algorithm 5: exhaustive grid search for one layer."""
    if not workload.samples:
        raise ValueError(f"layer {workload.name!r} has no sampled workloads")
    best: LayerStrategy | None = None
    for eps in epsilons:
        for s in thresholds:
            t = evaluate_config(workload, eps, s, dtype, device)
            if best is None or t < best.expected_time:
                best = LayerStrategy(epsilon=eps, s_threshold=s, expected_time=t)
    assert best is not None
    return best


def tune_workloads(
    workloads: Iterable[LayerWorkload],
    dtype: DType,
    device: GPUSpec,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
) -> StrategyBook:
    """Tune every layer of a model; returns the strategy book."""
    book = StrategyBook(device_name=device.name)
    for w in workloads:
        book.set(w.name, tune_layer(w, dtype, device, epsilons, thresholds))
    return book
