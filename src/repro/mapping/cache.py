"""Persistent, content-addressed mapping cache.

The paper's own breakdown (Fig. 4, Fig. 13) puts the mapping stage at
up to ~50% of end-to-end runtime, yet every caller builds a fresh
:class:`~repro.core.engine.ExecutionContext` per input, so coordinate
tables and kernel maps are rebuilt from scratch on every request.  For
streaming LiDAR traffic — where consecutive (ego-motion-compensated)
frames voxelize to the same sparsity pattern far more often than not —
that work is pure waste.

A :class:`MappingCache` outlives any single context.  Entries are keyed
by *content*: a blake2 fingerprint of the coordinate array plus every
parameter that changes the entry (stride levels, kernel size, conv
stride, effective symmetry, table backend).  Content addressing is what
makes cross-request reuse *safe* — the old per-context caches were
keyed only by stride, so a reused context silently served one input's
tables against another input's features.  With content keys a stale hit
is structurally impossible: different coordinates hash to different
keys.

Three entry kinds are cached (the whole mapping stage of a warm frame):

``coords``  downsampled output coordinates, keyed by the parent
            coordinate fingerprint + (kernel_size, stride);
``index``   :class:`~repro.mapping.kmap.CoordIndex` tables, keyed by
            coordinate fingerprint + backend;
``kmap``    :class:`~repro.mapping.kmap.KernelMap` entries, keyed by
            input/output fingerprints + (in_stride, out_stride,
            kernel_size, stride, effective symmetry).

Eviction is byte-budget LRU, accounted the same way the engine's
``MAX_GRID_BYTES`` budget prices tables: actual backing-array bytes.
Hits, misses, evictions, purges and the resident byte/entry gauges are
emitted to the current :mod:`repro.obs.metrics` registry.

Invalidation: the engine's fault-recovery path
(``BaseEngine._purge_mapping_caches``) calls :meth:`MappingCache.purge`
with the fingerprints of the coordinates a detected fault may have
poisoned, so chaos-injected kernel-map corruption or hash-table
overflow can never be "recovered" from a stale persistent entry.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import get_registry

#: Default byte budget — same accounting style as the engine's
#: ``MAX_GRID_BYTES`` grid-table budget, sized for a few hundred
#: cached frames of kernel maps at typical scene sizes.
MAX_MAPCACHE_BYTES = 256 * 1024 * 1024

#: Fixed per-entry overhead charged on top of backing-array bytes
#: (key, dict slot, object headers).
ENTRY_OVERHEAD_BYTES = 128


# -- content fingerprints ---------------------------------------------------

#: ``id(arr) -> (weakref, fingerprint)`` memo so re-fingerprinting the
#: same coordinate array (every layer of a U-Net re-registers it) costs
#: a dict lookup, not a re-hash.  The weakref guards against id reuse
#: after the original array is garbage collected.
_FP_MEMO: dict = {}
_FP_MEMO_MAX = 4096


def coords_fingerprint(coords: np.ndarray) -> str:
    """Stable content hash of a coordinate array.

    Two arrays with equal dtype-canonicalized content (int64) produce
    the same fingerprint regardless of object identity; any differing
    row produces a different one.  Shape is folded into the digest so a
    reshape cannot collide.
    """
    key = id(coords)
    memo = _FP_MEMO.get(key)
    if memo is not None:
        ref, fp = memo
        if ref() is coords:
            return fp
    c = np.ascontiguousarray(np.asarray(coords, dtype=np.int64))
    h = hashlib.blake2b(digest_size=16)
    h.update(repr(c.shape).encode())
    h.update(c.tobytes())
    fp = h.hexdigest()
    try:
        if len(_FP_MEMO) >= _FP_MEMO_MAX:
            dead = [k for k, (r, _) in _FP_MEMO.items() if r() is None]
            for k in dead:
                _FP_MEMO.pop(k, None)
            if len(_FP_MEMO) >= _FP_MEMO_MAX:
                _FP_MEMO.clear()
        _FP_MEMO[key] = (weakref.ref(coords), fp)
    except TypeError:
        pass  # non-weakref-able input (e.g. a list); just skip the memo
    return fp


# -- keys -------------------------------------------------------------------


@dataclass(frozen=True)
class CoordsKey:
    """Downsampled output coordinates of one (parent, kernel, stride)."""

    parent_fp: str
    kernel_size: object
    stride: object

    kind = "coords"

    @property
    def fingerprints(self) -> tuple:
        return (self.parent_fp,)


@dataclass(frozen=True)
class IndexKey:
    """One coordinate table; the backend changes the table's content
    (grid origin/shape vs. hash slots), so it is part of the key."""

    fp: str
    backend: str

    kind = "index"

    @property
    def fingerprints(self) -> tuple:
        return (self.fp,)


@dataclass(frozen=True)
class KmapKey:
    """One kernel map.

    ``symmetric`` is the *effective* symmetry
    (``use_map_symmetry and stride == 1 and all-odd kernel``), not the
    raw config flag: a stride-2 downsampling map has identical content
    whether or not symmetry was requested, and canonicalizing keeps the
    forward map shareable with its mirrored transposed convolution.
    The table backend is deliberately absent — map content is
    backend-invariant (the backend lives in :class:`IndexKey`).
    """

    in_fp: str
    out_fp: str
    in_stride: object
    out_stride: object
    kernel_size: object
    stride: object
    symmetric: bool

    kind = "kmap"

    @property
    def fingerprints(self) -> tuple:
        return (self.in_fp, self.out_fp)


def coords_key(parent_coords: np.ndarray, kernel_size, stride) -> CoordsKey:
    return CoordsKey(coords_fingerprint(parent_coords), kernel_size, stride)


def index_key(coords: np.ndarray, backend: str) -> IndexKey:
    return IndexKey(coords_fingerprint(coords), backend)


def kmap_key(
    in_coords: np.ndarray,
    out_coords: np.ndarray,
    in_stride,
    out_stride,
    kernel_size,
    stride,
    use_symmetry: bool,
) -> KmapKey:
    from repro.core.kernel import is_all_odd

    effective = bool(use_symmetry and stride == 1 and is_all_odd(kernel_size))
    return KmapKey(
        in_fp=coords_fingerprint(in_coords),
        out_fp=coords_fingerprint(out_coords),
        in_stride=in_stride,
        out_stride=out_stride,
        kernel_size=kernel_size,
        stride=stride,
        symmetric=effective,
    )


# -- byte accounting --------------------------------------------------------


def kmap_nbytes(kmap) -> int:
    """Resident bytes of one kernel map (per-offset index arrays)."""
    total = ENTRY_OVERHEAD_BYTES
    for arr in list(kmap.in_indices) + list(kmap.out_indices):
        total += int(getattr(arr, "nbytes", 0))
    return total


def index_nbytes(index) -> int:
    """Resident bytes of one coordinate table (slot arrays)."""
    return ENTRY_OVERHEAD_BYTES + int(index.stats.table_bytes)


def coords_nbytes(coords: np.ndarray) -> int:
    return ENTRY_OVERHEAD_BYTES + int(coords.nbytes)


# -- the cache --------------------------------------------------------------


class MappingCache:
    """Process-level LRU cache of mapping-stage artifacts.

    Thread-safe for the simple get/put/purge protocol (a lock guards
    the ordered dict); values themselves are shared, so callers that
    may mutate an entry in place (fault injection) must copy first —
    the engine does this whenever an injector is armed.
    """

    def __init__(self, max_bytes: int = MAX_MAPCACHE_BYTES):
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        self.max_bytes = int(max_bytes)
        self._entries: OrderedDict = OrderedDict()  # key -> (value, nbytes)
        self._bytes = 0
        self._lock = threading.Lock()

    # -- introspection ------------------------------------------------------

    @property
    def bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> dict:
        """Resident snapshot (counters live in the metrics registry)."""
        with self._lock:
            kinds: dict = {}
            for key in self._entries:
                kinds[key.kind] = kinds.get(key.kind, 0) + 1
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "by_kind": kinds,
            }

    def _gauges(self) -> None:
        reg = get_registry()
        reg.gauge("mapcache.bytes").set(float(self._bytes))
        reg.gauge("mapcache.entries").set(float(len(self._entries)))

    # -- the protocol -------------------------------------------------------

    def get(self, key):
        """The cached value for ``key`` (LRU-touched), or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                get_registry().counter("mapcache.misses", kind=key.kind).inc()
                return None
            self._entries.move_to_end(key)
            get_registry().counter("mapcache.hits", kind=key.kind).inc()
            return entry[0]

    def put(self, key, value, nbytes: int) -> bool:
        """Insert ``value`` under ``key``; returns False if it cannot fit.

        An entry larger than the whole budget is rejected (counted as an
        ``oversize`` eviction) rather than flushing everything else.
        """
        nbytes = max(int(nbytes), ENTRY_OVERHEAD_BYTES)
        reg = get_registry()
        with self._lock:
            if nbytes > self.max_bytes:
                reg.counter("mapcache.evictions", reason="oversize").inc()
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes:
                _, (_, victim_bytes) = self._entries.popitem(last=False)
                self._bytes -= victim_bytes
                reg.counter("mapcache.evictions", reason="lru").inc()
            self._gauges()
            return True

    def purge(self, fingerprints) -> int:
        """Drop every entry referencing any of ``fingerprints``.

        The robustness layer calls this when a detected fault may have
        poisoned entries built from the given coordinates (in-place
        kernel-map corruption, hash-table overflow): stale persistent
        state must never serve a "recovered" retry.
        """
        fps = set(fingerprints)
        if not fps:
            return 0
        with self._lock:
            victims = [
                key
                for key in self._entries
                if any(fp in fps for fp in key.fingerprints)
            ]
            for key in victims:
                _, nbytes = self._entries.pop(key)
                self._bytes -= nbytes
            if victims:
                get_registry().counter("mapcache.purged").inc(len(victims))
                self._gauges()
            return len(victims)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self._gauges()


# -- the process-level default ---------------------------------------------

_DEFAULT: MappingCache | None = None


def get_mapping_cache() -> MappingCache:
    """The process-level cache (created on first use).

    Persistent reuse is *opt-in* per context — callers that want
    steady-state behavior pass this (or their own instance) as
    ``ExecutionContext(mapcache=...)``; everything else keeps the
    seed-exact cold path.
    """
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MappingCache()
    return _DEFAULT


def reset_mapping_cache() -> None:
    """Discard the process-level cache (test isolation).

    The default cache is process-global and was never reset, so test
    suites could order-depend on another test's warm entries.  Clearing
    before dropping the reference also zeroes the ``mapcache.*`` gauges
    in whatever registry is current, so a fresh test does not inherit a
    stale resident-bytes reading either.
    """
    global _DEFAULT
    if _DEFAULT is not None:
        _DEFAULT.clear()
    _DEFAULT = None
