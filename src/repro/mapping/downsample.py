"""Output-coordinate calculation for strided convolution (Algorithm 3).

For stride ``s > 1`` every input point dilates through the kernel
window; candidates that pass the modular check (and an optional boundary
check) become output coordinates after deduplication.

The baseline GPU implementation runs this as **five kernels** with DRAM
round-trips between them (Section 4.4 / Figure 10):

1. ``broadcast_add`` — candidates ``u = p - delta``,
2. modular check ``u % s == 0``,
3. boundary check / mask,
4. 1-D key conversion,
5. ``unique``.

TorchSparse fuses stages 1-4 into one kernel holding intermediates in
registers.  Numerically both paths are identical here; they differ in
the :class:`DownsampleCost` the engine prices (intermediate traffic
eliminated, kernel launches 5 -> 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.kernel import kernel_offsets
from repro.hashmap.coords import pack_coords, unpack_coords

#: bytes of one coordinate record in the candidate streams (4 x int32)
_COORD_BYTES = 16
#: bytes of one packed 1-D key
_KEY_BYTES = 8


@dataclass(frozen=True)
class DownsampleCost:
    """DRAM accounting of one output-coordinate calculation.

    ``stage_bytes`` lists the traffic of the five unfused kernels; the
    fused path pays ``fused_bytes`` instead of the sum of stages 1-4.
    ``unique_bytes`` (stage 5) is paid either way.
    """

    n_in: int
    n_candidates: int
    n_out: int
    stage_bytes: tuple
    fused_bytes: int
    unique_bytes: int

    def total_bytes(self, fused: bool) -> int:
        if fused:
            return self.fused_bytes + self.unique_bytes
        return sum(self.stage_bytes) + self.unique_bytes

    def launches(self, fused: bool) -> int:
        return 2 if fused else 5


def downsample_coords_reference(
    coords: np.ndarray, kernel_size, stride
) -> np.ndarray:
    """Slow oracle: literal Algorithm 3 with Python dict deduplication."""
    from repro.core.kernel import to_tuple

    s = np.array(to_tuple(stride, name="stride"), dtype=np.int64)
    offsets = kernel_offsets(kernel_size)
    seen: dict = {}
    for p in np.asarray(coords, dtype=np.int64):
        for d in offsets:
            u = p[1:] - d
            if (u % s == 0).all():
                q = (int(p[0]), *(u // s))
                seen.setdefault(q, None)
    if not seen:
        return np.empty((0, 4), dtype=np.int32)
    out = np.array(sorted(seen.keys()), dtype=np.int32)
    return out


def downsample_coords(
    coords: np.ndarray,
    kernel_size,
    stride,
    boundary: np.ndarray | None = None,
) -> tuple[np.ndarray, DownsampleCost]:
    """Vectorized Algorithm 3; returns sorted unique output coordinates.

    Args:
        coords: ``(N, 4)`` input coordinates.
        kernel_size: kernel extent ``K`` (int or per-axis tuple).
        stride: downsampling stride (int or per-axis tuple); at least
            one axis must exceed 1, and axes at stride 1 pass through.
        boundary: optional per-axis exclusive upper bound ``b`` on output
            coordinates (the paper's ``u < s * b`` check); ``None``
            disables trimming (matching SpConv's dilate-everything
            convention our dense oracle also uses).
    """
    from repro.core.kernel import to_tuple

    s = np.array(to_tuple(stride, name="stride"), dtype=np.int64)
    if (s < 1).any() or (s == 1).all():
        raise ValueError("downsample_coords requires stride > 1 on some axis")
    c = np.asarray(coords, dtype=np.int64)
    n_in = c.shape[0]
    offsets = kernel_offsets(kernel_size).astype(np.int64)
    vol = offsets.shape[0]

    # stage 1: broadcast_add — all candidates u = p - delta
    cand = c[:, None, 1:] - offsets[None, :, :]  # (N, K^3, 3)
    batch = np.broadcast_to(c[:, None, 0], cand.shape[:2])

    # stage 2: modular check
    mod_ok = (cand % s == 0).all(axis=2)

    # stage 3: boundary check
    if boundary is not None:
        b = np.asarray(boundary, dtype=np.int64)
        bound_ok = ((cand >= 0) & (cand < s * b)).all(axis=2)
    else:
        bound_ok = np.ones_like(mod_ok)
    keep = mod_ok & bound_ok

    kept_xyz = cand[keep] // s
    kept_b = batch[keep]
    kept = np.concatenate([kept_b[:, None], kept_xyz], axis=1)
    n_candidates = int(kept.shape[0])

    # stage 4: 1-D key conversion
    keys = pack_coords(kept) if n_candidates else np.empty(0, dtype=np.int64)

    # stage 5: unique
    uniq = np.unique(keys)
    out = unpack_coords(uniq)
    n_out = int(out.shape[0])

    # --- cost accounting (bytes written + read across stage boundaries) ---
    cand_records = n_in * vol
    stage_bytes = (
        # 1: read N coords, write N*K^3 candidate records
        n_in * _COORD_BYTES + cand_records * _COORD_BYTES,
        # 2: read candidates, write mask + compacted survivors
        cand_records * _COORD_BYTES + cand_records + n_candidates * _COORD_BYTES,
        # 3: read survivors, write mask + survivors
        n_candidates * _COORD_BYTES + n_candidates + n_candidates * _COORD_BYTES,
        # 4: read survivors, write 1-D keys
        n_candidates * _COORD_BYTES + n_candidates * _KEY_BYTES,
        # 5 priced separately in unique_bytes
    )
    # fused 1-4: read inputs once, write final keys once
    fused_bytes = n_in * _COORD_BYTES + n_candidates * _KEY_BYTES
    # unique: radix-sort style, ~2 passes over the keys + output write
    unique_bytes = 2 * 2 * n_candidates * _KEY_BYTES + n_out * _COORD_BYTES

    cost = DownsampleCost(
        n_in=n_in,
        n_candidates=n_candidates,
        n_out=n_out,
        stage_bytes=stage_bytes,
        fused_bytes=fused_bytes,
        unique_bytes=unique_bytes,
    )
    return out, cost
