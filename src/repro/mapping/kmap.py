"""Kernel map construction (Algorithm 1).

A :class:`KernelMap` stores, for every kernel offset ``delta``, the
matched ``(input index, output index)`` pairs.  Map search iterates over
output coordinates, probes ``s * q + delta`` in the input coordinate
table, and records hits — here vectorized over all outputs per offset.

Two search refinements from the paper are implemented:

* **symmetry** (Section 4.4 / 4.2.1): for stride-1 odd kernels, the map
  for offset ``-delta`` is the transposed map for ``delta``, so only
  half the offsets are probed;
* pluggable **table backends** (grid vs. hashmap) behind the small
  :class:`CoordIndex` adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.kernel import (
    center_offset_index,
    is_all_odd,
    kernel_offsets,
    kernel_volume,
    normalize,
    opposite_offset_index,
    to_tuple,
)
from repro.hashmap.coords import pack_coords
from repro.hashmap.grid_table import GridTable
from repro.hashmap.hash_table import HashTable


class CoordIndex:
    """Uniform ``coords -> row index`` adapter over both table backends."""

    def __init__(self, table: HashTable | GridTable):
        self.table = table

    @classmethod
    def build(
        cls,
        coords: np.ndarray,
        backend: str = "hash",
        margin: int = 0,
        max_grid_bytes: int | None = None,
    ) -> "CoordIndex":
        """Index ``coords`` rows by position using the chosen backend.

        Args:
            backend: ``"hash"`` or ``"grid"``.
            margin: spatial slack for grid tables so neighbor probes at
                kernel offsets stay inside the box.
            max_grid_bytes: grid-table memory budget; a grid build past
                it raises :class:`~repro.robust.errors.GridMemoryError`.
        """
        if backend == "hash":
            return cls(HashTable.from_keys(pack_coords(coords)))
        if backend == "grid":
            return cls(
                GridTable.from_coords(coords, margin=margin, max_bytes=max_grid_bytes)
            )
        raise ValueError(f"unknown coordinate table backend {backend!r}")

    def lookup(self, coords: np.ndarray) -> np.ndarray:
        """Row index per coordinate, ``-1`` where absent."""
        if isinstance(self.table, HashTable):
            # probes beyond the packable range cannot be present
            c = np.asarray(coords, dtype=np.int64)
            return self.table.lookup(pack_coords_clipped(c))
        return self.table.lookup(coords)

    @property
    def stats(self):
        return self.table.stats


def pack_coords_clipped(coords: np.ndarray) -> np.ndarray:
    """Pack coordinates, mapping out-of-range rows to an absent key.

    Neighbor probes ``s*q + delta`` can step just past the packable
    range; those coordinates are by construction not in the table, so we
    redirect them to a reserved never-inserted key instead of raising.
    """
    from repro.hashmap.coords import COORD_MAX, COORD_MIN

    c = np.asarray(coords, dtype=np.int64)
    bad = (
        (c[:, 1:] < COORD_MIN).any(axis=1)
        | (c[:, 1:] > COORD_MAX).any(axis=1)
        | (c[:, 0] < 0)
        | (c[:, 0] >= (1 << 15))
    )
    if bad.any():
        c = c.copy()
        c[bad] = 0
        keys = pack_coords(c)
        keys[bad] = np.int64(-2)  # never inserted (insert forbids only -1)
        return keys
    return pack_coords(c)


@dataclass
class KernelMap:
    """Per-offset input/output index pairs of one convolution layer.

    ``kernel_size`` and ``stride`` are canonical (int when isotropic,
    per-axis tuple otherwise).
    """

    kernel_size: object
    stride: object
    n_in: int
    n_out: int
    in_indices: list = field(default_factory=list)
    out_indices: list = field(default_factory=list)
    #: probes issued during construction (for mapping-cost pricing)
    queries_issued: int = 0
    #: entries produced by mirroring instead of probing (symmetry path);
    #: they still cost a map read + write, which is why the paper's
    #: symmetry optimization only buys ~1.1x end to end (Section 6.3)
    mirrored_entries: int = 0

    def __post_init__(self) -> None:
        self.kernel_size = normalize(self.kernel_size)
        self.stride = normalize(self.stride)
        vol = kernel_volume(self.kernel_size)
        if len(self.in_indices) != vol or len(self.out_indices) != vol:
            raise ValueError(
                f"expected {vol} per-offset index arrays, got "
                f"{len(self.in_indices)}/{len(self.out_indices)}"
            )

    @property
    def volume(self) -> int:
        return kernel_volume(self.kernel_size)

    @property
    def sizes(self) -> np.ndarray:
        """Map size per offset — the irregular workload of Figure 12."""
        return np.array([len(i) for i in self.in_indices], dtype=np.int64)

    @property
    def total(self) -> int:
        """``|M|``: total matched pairs across offsets."""
        return int(self.sizes.sum())

    @property
    def center_index(self) -> int | None:
        return center_offset_index(self.kernel_size)

    @property
    def is_submanifold(self) -> bool:
        """Stride 1 on every axis with an all-odd kernel: the center
        offset is an identity and needs no data movement."""
        return self.stride == 1 and is_all_odd(self.kernel_size)

    def clone(self) -> "KernelMap":
        """Deep copy (fresh index arrays).

        Used by the persistent mapping cache whenever a fault injector
        is armed: in-place corruption of the working copy must never
        reach the shared cached entry (or another request through it).
        """
        return KernelMap(
            kernel_size=self.kernel_size,
            stride=self.stride,
            n_in=self.n_in,
            n_out=self.n_out,
            in_indices=[a.copy() for a in self.in_indices],
            out_indices=[a.copy() for a in self.out_indices],
            queries_issued=self.queries_issued,
            mirrored_entries=self.mirrored_entries,
        )

    def transposed(self) -> "KernelMap":
        """Swap input/output roles (drives inverse/transposed conv)."""
        return KernelMap(
            kernel_size=self.kernel_size,
            stride=self.stride,
            n_in=self.n_out,
            n_out=self.n_in,
            in_indices=[a.copy() for a in self.out_indices],
            out_indices=[a.copy() for a in self.in_indices],
            queries_issued=0,
        )

    def validate(self) -> None:
        """Check index ranges; used by tests and paranoid callers."""
        for n in range(self.volume):
            i, o = self.in_indices[n], self.out_indices[n]
            if len(i) != len(o):
                raise ValueError(f"offset {n}: in/out lengths differ")
            if len(i) and (i.min() < 0 or i.max() >= self.n_in):
                raise ValueError(f"offset {n}: input index out of range")
            if len(o) and (o.min() < 0 or o.max() >= self.n_out):
                raise ValueError(f"offset {n}: output index out of range")


def identity_kmap(kernel_size: int, n: int) -> KernelMap:
    """Map of a pure center (1x1x1-like) connection: every point to itself."""
    vol = kernel_volume(kernel_size)
    center = center_offset_index(kernel_size)
    ins = [np.empty(0, dtype=np.int64) for _ in range(vol)]
    outs = [np.empty(0, dtype=np.int64) for _ in range(vol)]
    if center is not None:
        ins[center] = np.arange(n, dtype=np.int64)
        outs[center] = np.arange(n, dtype=np.int64)
    return KernelMap(kernel_size, 1, n, n, ins, outs)


def build_kmap(
    in_coords: np.ndarray,
    index: CoordIndex,
    out_coords: np.ndarray,
    kernel_size,
    stride=1,
    use_symmetry: bool = False,
) -> KernelMap:
    """Search kernel maps (Algorithm 1), vectorized per offset.

    Args:
        in_coords: ``(N_in, 4)`` input coordinates (only sizes used here;
            membership comes from ``index``).
        index: coordinate table over ``in_coords``.
        out_coords: ``(N_out, 4)`` output coordinates.
        kernel_size: kernel extent ``K`` (int or per-axis tuple).
        stride: convolution stride (int or per-axis tuple); probes are
            ``s*q + delta``.
        use_symmetry: exploit the stride-1 odd-kernel symmetry to probe
            only half the offsets (requires ``in_coords is out_coords``
            semantically, which stride-1 guarantees).
    """
    kernel_size = normalize(kernel_size)
    stride = normalize(stride)
    s_arr = np.array(to_tuple(stride, name="stride"), dtype=np.int64)
    offsets = kernel_offsets(kernel_size)
    vol = offsets.shape[0]
    n_in = int(np.asarray(in_coords).shape[0])
    n_out = int(np.asarray(out_coords).shape[0])
    out64 = np.asarray(out_coords, dtype=np.int64)

    ins: list = [None] * vol
    outs: list = [None] * vol
    queries = 0
    mirrored = 0

    symmetric_ok = use_symmetry and stride == 1 and is_all_odd(kernel_size)
    center = center_offset_index(kernel_size)

    for n in range(vol):
        if ins[n] is not None:
            continue
        if symmetric_ok and n == center:
            # stride-1 center: every point maps to itself, no probing
            ins[n] = np.arange(n_out, dtype=np.int64)
            outs[n] = np.arange(n_out, dtype=np.int64)
            continue
        probe = out64.copy()
        probe[:, 1:] = probe[:, 1:] * s_arr + offsets[n]
        hit_vals = index.lookup(probe)
        queries += n_out
        hits = hit_vals >= 0
        j = hit_vals[hits].astype(np.int64)
        k = np.nonzero(hits)[0].astype(np.int64)
        ins[n], outs[n] = j, k
        if symmetric_ok:
            opp = opposite_offset_index(n, kernel_size)
            if opp != n and ins[opp] is None:
                # (q, p, W_{-delta}) is a valid entry iff (p, q, W_delta) is
                ins[opp], outs[opp] = k.copy(), j.copy()
                mirrored += len(k)

    kmap = KernelMap(
        kernel_size=kernel_size,
        stride=stride,
        n_in=n_in,
        n_out=n_out,
        in_indices=ins,
        out_indices=outs,
        queries_issued=queries,
        mirrored_entries=mirrored,
    )
    return kmap
