"""Mapping operations: output-coordinate calculation and map search.

These are the coordinate-only computations of sparse convolution
(Section 2.1): given input coordinates, produce output coordinates and
the kernel maps ``M = {(p_j, q_k, W_delta)}`` that drive data movement
and matmul.  The paper's mapping optimizations (Section 4.4) all live
here: grid vs. hashmap backends, fused downsampling kernels, simplified
control logic and map symmetry.
"""

from repro.mapping.cache import (
    MappingCache,
    coords_fingerprint,
    get_mapping_cache,
)
from repro.mapping.downsample import (
    DownsampleCost,
    downsample_coords,
    downsample_coords_reference,
)
from repro.mapping.kmap import CoordIndex, KernelMap, build_kmap, identity_kmap

__all__ = [
    "KernelMap",
    "CoordIndex",
    "MappingCache",
    "build_kmap",
    "identity_kmap",
    "downsample_coords",
    "downsample_coords_reference",
    "DownsampleCost",
    "coords_fingerprint",
    "get_mapping_cache",
]
