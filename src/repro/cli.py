"""Command-line interface.

Subcommands::

    repro-bench info                      # list models, engines, devices
    repro-bench bench --model minkunet_1.0x_kitti --engine torchsparse
    repro-bench compare --model centerpoint_3f_waymo --device 3090
    repro-bench tune --model minkunet_0.5x_kitti --out strategies.json
    repro-bench regress --model minkunet_0.5x_kitti --baseline base.json
    repro-bench chaos --seeds 3 --json chaos.json
    repro-bench serve --faults device_crash,device_stall --json serve.json
    repro-bench integrity --seeds 3 --json integrity.json
    repro-bench store stats --dir fleet-store
    repro-bench store scrub --dir fleet-store

``bench`` can export observability artifacts: ``--trace`` writes a
nested-span Chrome trace (open in Perfetto), ``--metrics`` a JSONL
metrics dump, ``--json`` a machine-readable snapshot, ``--report`` a
per-layer breakdown.  ``regress`` snapshots a baseline on first run and
on later runs exits nonzero when modeled latency, stage times, or any
gated metric drifts past tolerance.  ``chaos`` runs seeded
fault-injection campaigns end to end (see :mod:`repro.robust.chaos`)
and exits nonzero unless every trial survives with bit-exact recovery.
``serve`` drives a simulated-clock serving campaign — Poisson traffic
over a device fleet with deadlines, retry/hedging, and fleet health
(see :mod:`repro.serve`) — and exits nonzero on any non-terminal
request or SLO attainment below ``--slo-floor``.  ``integrity`` runs
the seeded silent-data-corruption campaign against the ABFT verifier
(:mod:`repro.robust.integrity`): bit flips in feature/weight buffers
crossed with storage dtypes, measuring detection recall and
false-positive rate, plus clean control runs asserting that verified
output is bit-exact with the unverified engine.  ``store`` manages a
durable artifact store (:mod:`repro.persist`): ``stats`` snapshots it,
``verify`` re-checksums every entry (exit 1 on corruption), ``scrub``
evicts anything unverifiable and compacts the manifest, ``purge``
empties it; ``serve --store DIR --spares N`` runs a fleet whose DEAD
devices are replaced by spares warm-started from the shared store.

All latencies are modeled on the selected device spec (see
``repro.gpu``); wall-clock on the host is reported separately.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace

from repro.baselines import MinkowskiEngineLike, SpConvLike
from repro.core.engine import BaseEngine, BaselineEngine, TorchSparseEngine
from repro.core.tuner import load_strategy_book
from repro.gpu.device import CPU_16C, GPU_REGISTRY, GPUSpec
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.regress import (
    CHAOS_SCHEMA,
    DEFAULT_TOLERANCE,
    compare_snapshots,
    format_report,
    load_snapshot,
    snapshot,
    write_snapshot,
)
from repro.models import MODEL_ZOO
from repro.profiling import format_table, run_model, tune_model
from repro.profiling.breakdown import format_breakdown
from repro.profiling.report import format_layer_report
from repro.profiling.runner import tuned_engine_config
from repro.profiling.trace import write_chrome_trace

ENGINE_FACTORIES = {
    "torchsparse": TorchSparseEngine,
    "minkowski": MinkowskiEngineLike,
    "spconv": SpConvLike,
    "spconv-fp32": lambda: SpConvLike(fp16=False),
    "baseline": BaselineEngine,
}

DEVICES: dict[str, GPUSpec] = {**GPU_REGISTRY, "cpu": CPU_16C}


def _zoo_entry(key: str):
    for e in MODEL_ZOO:
        if e.key == key:
            return e
    raise SystemExit(
        f"unknown model {key!r}; run 'repro-bench info' for the list"
    )


def _inputs(entry, scale: float, samples: int, seed: int):
    ds = entry.make_dataset()
    return [ds.sample_tensor(seed=seed + i, scale=scale) for i in range(samples)]


def cmd_info(_args) -> int:
    print("models:")
    for e in MODEL_ZOO:
        print(f"  {e.key:26s} {e.label}")
    print("engines: " + ", ".join(ENGINE_FACTORIES))
    print("devices: " + ", ".join(DEVICES))
    return 0


def _bench_once(args):
    """Run one bench under a fresh metrics registry.

    Returns ``(result, registry)``; every engine/kernel metric emitted
    during the run lands in the returned registry, isolated from any
    other run in the same process.
    """
    entry = _zoo_entry(args.model)
    device = DEVICES[args.device]
    engine = ENGINE_FACTORIES[args.engine]()
    if getattr(args, "strategies", None):
        book = load_strategy_book(args.strategies, fallback=True)
        if book is None:
            print(
                f"warning: could not load strategy book {args.strategies!r} "
                "(missing or corrupt); using the default per-layer strategy",
                file=sys.stderr,
            )
        else:
            engine.config = replace(engine.config, strategy_book=book)
    xs = _inputs(entry, args.scale, args.samples, args.seed)
    with use_registry(MetricsRegistry()) as reg:
        result = run_model(entry.make_model(), xs, engine, device)
    return entry, result, reg


STEADY_SCHEMA = "repro-bench.steady/1"


def cmd_bench_steady(args) -> int:
    """Temporal-coherence stream: one cold frame, then warm frames
    through the persistent content-addressed mapping cache."""
    from repro.profiling.runner import run_steady_state

    t0 = time.time()
    entry = _zoo_entry(args.model)
    device = DEVICES[args.device]
    engine = ENGINE_FACTORIES[args.engine]()
    x = entry.make_dataset().sample_tensor(seed=args.seed, scale=args.scale)
    with use_registry(MetricsRegistry()) as reg:
        result = run_steady_state(
            entry.make_model(), x, engine, device,
            frames=args.frames, seed=args.seed,
        )
    print(
        f"{entry.label} | {result.engine} on {result.device} "
        f"(scale {args.scale}, {result.frames} frames, seed {args.seed})"
    )
    print(
        f"cold frame {result.cold_latency * 1e3:.3f} ms "
        f"(mapping {result.cold_mapping * 1e3:.3f} ms) | "
        f"warm frames {result.warm_latency * 1e3:.3f} ms "
        f"(mapping {result.warm_mapping * 1e3:.3f} ms)"
    )
    print(
        f"warm reduction: end-to-end {result.latency_reduction:.1%}, "
        f"mapping {result.mapping_reduction:.1%} | "
        f"cache {result.cache_stats['entries']} entries, "
        f"{result.cache_stats['bytes'] / 1e6:.1f} MB | "
        f"host wall {time.time() - t0:.1f}s"
    )
    if args.metrics:
        reg.dump_jsonl(args.metrics)
        print(f"metrics JSONL written to {args.metrics}")
    if args.json:
        scalars = reg.scalars()
        write_snapshot(
            {
                "schema": STEADY_SCHEMA,
                "scale": args.scale,
                "seed": args.seed,
                **result.to_json(),
                "mapcache_metrics": {
                    k: v for k, v in sorted(scalars.items())
                    if k.startswith("mapcache.")
                },
            },
            args.json,
        )
        print(f"steady-state snapshot written to {args.json}")
    return 0


def cmd_bench(args) -> int:
    if args.steady_state:
        return cmd_bench_steady(args)
    t0 = time.time()
    entry, result, reg = _bench_once(args)
    print(
        f"{entry.label} | {result.engine} on {result.device} "
        f"(scale {args.scale}, {args.samples} samples)"
    )
    print(
        f"modeled latency {result.latency * 1e3:.3f} ms "
        f"({result.fps:.1f} FPS); host wall {time.time() - t0:.1f}s"
    )
    print(format_breakdown(result.profile))
    if args.report:
        print()
        print(format_layer_report(result.profile, title="per-layer breakdown"))
    if args.trace:
        write_chrome_trace(result.profile, args.trace)
        print(f"chrome trace written to {args.trace} (open in Perfetto)")
    if args.metrics:
        reg.dump_jsonl(args.metrics)
        print(f"metrics JSONL written to {args.metrics}")
    if args.json:
        snap = snapshot(
            model=args.model,
            engine=args.engine,
            device=args.device,
            latency=result.latency,
            profile=result.profile,
            registry=reg,
            extra={"scale": args.scale, "samples": args.samples,
                   "seed": args.seed},
        )
        write_snapshot(snap, args.json)
        print(f"snapshot written to {args.json}")
    return 0


def cmd_regress(args) -> int:
    _, result, reg = _bench_once(args)
    current = snapshot(
        model=args.model,
        engine=args.engine,
        device=args.device,
        latency=result.latency,
        profile=result.profile,
        registry=reg,
        extra={"scale": args.scale, "samples": args.samples,
               "seed": args.seed},
    )
    if args.update or not os.path.exists(args.baseline):
        write_snapshot(current, args.baseline)
        print(f"baseline written to {args.baseline}")
        return 0
    try:
        baseline = load_snapshot(args.baseline)
    except ValueError as e:
        raise SystemExit(str(e))
    tolerances = {}
    for spec in args.tol:
        key, _, tol = spec.rpartition("=")
        try:
            tolerances[key] = float(tol)
        except ValueError:
            key = ""
        if not key:
            raise SystemExit(f"--tol expects NAME=REL, got {spec!r}")
    drifts, failures, only = compare_snapshots(
        baseline, current, tolerance=args.tolerance, tolerances=tolerances
    )
    print(format_report(drifts, failures, only))
    return 1 if failures else 0


def cmd_compare(args) -> int:
    entry = _zoo_entry(args.model)
    device = DEVICES[args.device]
    xs = _inputs(entry, args.scale, args.samples, args.seed)
    model = entry.make_model()
    rows = []
    base_fps = None
    for name, factory in ENGINE_FACTORIES.items():
        r = run_model(model, xs, factory(), device)
        if base_fps is None:
            base_fps = r.fps
        rows.append(
            [name, f"{r.latency * 1e3:.3f}", f"{r.fps:.1f}",
             f"{r.fps / base_fps:.2f}"]
        )
    print(
        format_table(
            ["engine", "latency (ms)", "FPS", "vs torchsparse"],
            rows,
            title=f"{entry.label} on {device.name}",
        )
    )
    return 0


def cmd_tune(args) -> int:
    entry = _zoo_entry(args.model)
    device = DEVICES[args.device]
    xs = _inputs(entry, args.scale, args.samples, args.seed)
    model = entry.make_model()
    book = tune_model(model, xs, device)
    with open(args.out, "w") as f:
        f.write(book.dumps())
    print(f"tuned {len(book.layers)} layers; strategies written to {args.out}")
    if getattr(args, "store", None):
        from repro.persist import ArtifactStore

        store = ArtifactStore(args.store)
        key = book.save_to_store(store, args.model)
        print(
            f"strategy book persisted to store {args.store} "
            f"(key {key}, device {book.device_name!r})"
        )
    tuned = run_model(model, xs, BaseEngine(tuned_engine_config(book)), device)
    plain = run_model(model, xs, TorchSparseEngine(), device)
    print(
        f"modeled latency: tuned {tuned.latency * 1e3:.3f} ms vs "
        f"default {plain.latency * 1e3:.3f} ms"
    )
    return 0


def cmd_chaos(args) -> int:
    from repro.robust.chaos import PRESETS, run_campaign
    from repro.robust.faults import PIPELINE_FAULT_KINDS

    kinds = (
        [k.strip() for k in args.kinds.split(",") if k.strip()]
        if args.kinds
        else list(PIPELINE_FAULT_KINDS)
    )
    presets = (
        [p.strip() for p in args.presets.split(",") if p.strip()]
        if args.presets
        else list(PRESETS)
    )
    seeds = [args.seed + i for i in range(args.seeds)]
    t0 = time.time()
    try:
        report = run_campaign(
            kinds=kinds, presets=presets, seeds=seeds,
            degrade=not args.no_degrade,
        )
    except ValueError as e:
        raise SystemExit(str(e))
    mark = {True: "yes", False: "NO", None: "-"}
    rows = [
        [
            t.kind,
            t.preset,
            str(t.seed),
            str(t.shots),
            mark[t.survived],
            ",".join(sorted(set(t.degraded_layers.values()))) or "-",
            mark[t.bitexact],
            "ok" if t.ok else ("typed" if t.error_kind else "FAIL"),
        ]
        for t in report.trials
    ]
    mode = "detect-only" if args.no_degrade else "graceful degradation"
    print(
        format_table(
            ["fault", "preset", "seed", "shots", "survived", "rungs",
             "bitexact", "status"],
            rows,
            title=f"chaos campaign ({mode})",
        )
    )
    mix = (
        ", ".join(f"{k} x{v}" for k, v in sorted(report.degradation_mix.items()))
        or "none"
    )
    probes = ", ".join(
        f"{k}={'ok' if v else 'FAIL'}" for k, v in report.reference_ok.items()
    )
    print(
        f"survival {report.survival_rate:.0%} | ok {report.ok_rate:.0%} | "
        f"degradation mix: {mix} | reference probes: {probes} | "
        f"host wall {time.time() - t0:.1f}s"
    )
    if args.json:
        write_snapshot({"schema": CHAOS_SCHEMA, **report.to_json()}, args.json)
        print(f"chaos report written to {args.json}")
    return 0 if report.passed else 1


def cmd_integrity(args) -> int:
    from repro.robust.integrity import (
        DTYPE_PRESET_KEYS,
        INTEGRITY_SCHEMA,
        run_integrity_campaign,
    )
    from repro.robust.faults import SDC_FAULT_KINDS

    kinds = (
        [k.strip() for k in args.kinds.split(",") if k.strip()]
        if args.kinds
        else list(SDC_FAULT_KINDS)
    )
    dtypes = (
        [d.strip() for d in args.dtypes.split(",") if d.strip()]
        if args.dtypes
        else list(DTYPE_PRESET_KEYS)
    )
    seeds = [args.seed + i for i in range(args.seeds)]
    t0 = time.time()
    try:
        report = run_integrity_campaign(
            kinds=kinds, dtypes=dtypes, seeds=seeds, severity=args.severity
        )
    except ValueError as e:
        raise SystemExit(str(e))
    mark = {True: "yes", False: "NO"}
    rows = [
        [
            t.kind,
            t.dtype,
            str(t.seed),
            str(t.shots),
            str(t.detected),
            mark[t.caught],
            mark[t.survived],
            ",".join(sorted(set(t.recovered_layers.values()))) or "-",
            "ok" if t.ok else "FAIL",
        ]
        for t in report.trials
    ]
    print(
        format_table(
            ["fault", "dtype", "seed", "shots", "detected", "caught",
             "survived", "rungs", "status"],
            rows,
            title="integrity campaign (ABFT verification)",
        )
    )
    clean = ", ".join(
        f"{p.dtype}: {p.false_positives}/{p.checks} FP, "
        f"bitexact={'yes' if p.bitexact else 'NO'}, "
        f"ref={'ok' if p.reference_ok else 'FAIL'}"
        for p in report.clean
    )
    recall = ", ".join(
        f"{k}={v:.0%}" for k, v in sorted(report.recall_by_kind.items())
    )
    print(f"clean probes: {clean}")
    print(
        f"recall {report.recall:.0%} ({recall or 'no shots'}) | "
        f"fp32 false positives {report.fp32_false_positives} | "
        f"host wall {time.time() - t0:.1f}s"
    )
    # one verdict for both the JSON report and the exit status — a
    # custom --recall-floor must never make them disagree
    ok = report.gate(recall_floor=args.recall_floor)
    if args.json:
        write_snapshot(
            report.to_json(recall_floor=args.recall_floor), args.json
        )
        print(f"integrity report written to {args.json} "
              f"(schema {INTEGRITY_SCHEMA})")
    if not ok:
        print(
            f"FAIL: recall {report.recall:.3f} < floor {args.recall_floor:.3f}"
            if report.recall < args.recall_floor
            else "FAIL: clean-run false positive, non-bit-exact verified "
            "output, or unrecovered trial"
        )
    return 0 if ok else 1


def cmd_serve(args) -> int:
    from repro.gpu.device import GPU_REGISTRY
    from repro.robust.faults import (
        DOMAIN_FAULT_KINDS,
        SDC_FAULT_KINDS,
        SERVE_FAULT_KINDS,
        FaultInjector,
        FaultSpec,
    )
    from repro.serve import (
        ServeConfig,
        TrafficConfig,
        format_serve_summary,
        run_serve_campaign,
    )
    from repro.serve.request import HedgePolicy, RetryPolicy

    models = [m.strip() for m in args.models.split(",") if m.strip()]
    for m in models:
        _zoo_entry(m)  # fail fast on typos
    devices = []
    for key in (d.strip() for d in args.devices.split(",") if d.strip()):
        if key not in DEVICES:
            raise SystemExit(
                f"unknown device {key!r}; expected one of {list(DEVICES)}"
            )
        devices.append(DEVICES[key])
    from repro.profiling.parallel import device_labels

    # the SDC bit-flip kinds are valid fleet faults too: a device starts
    # returning corrupted-but-finished results (checksum_mismatch has no
    # serving-layer site — it lives inside the pipeline verifier)
    serve_kinds = SERVE_FAULT_KINDS + SDC_FAULT_KINDS[:2] + DOMAIN_FAULT_KINDS
    kinds = [k.strip() for k in args.faults.split(",") if k.strip()]
    specs = []
    for kind in kinds:
        if kind not in serve_kinds:
            raise SystemExit(
                f"unknown serve fault {kind!r}; expected one of "
                f"{serve_kinds}"
            )
        if kind in DOMAIN_FAULT_KINDS:
            specs.append(
                FaultSpec(
                    kind=kind, site=args.outage_domain, count=1,
                    severity=args.outage_severity,
                )
            )
        elif kind in SDC_FAULT_KINDS:
            specs.append(FaultSpec(kind=kind, count=args.crashes))
        elif kind == "device_crash":
            specs.append(
                FaultSpec(
                    kind=kind, site=args.crash_site, count=args.crashes
                )
            )
        elif kind == "device_stall":
            # pin the sticky stall to the last fleet slot: one genuine
            # straggler card, not a uniform fleet-wide slowdown
            straggler = device_labels(devices)[-1]
            specs.append(
                FaultSpec(kind=kind, site=straggler, count=-1, severity=0.1)
            )
        else:  # queue_spike
            specs.append(FaultSpec(kind=kind, count=max(1, args.crashes // 2)))
    injector = FaultInjector(seed=args.seed, specs=specs) if specs else None

    brownout = None
    if args.brownout and not args.no_brownout:
        from repro.robust.brownout import BrownoutConfig

        brownout = BrownoutConfig(
            interval=args.brownout_interval,
            max_level=args.brownout_max_level,
        )
    domains = tuple(
        d.strip() for d in args.domains.split(",") if d.strip()
    ) or None
    storm = None
    if args.storm:
        from repro.robust.domains import StormConfig

        storm = StormConfig(
            retry_budget=args.retry_budget,
            retry_refill=args.retry_refill,
        )
    batching = None
    if args.batching:
        from repro.serve import BatchingConfig

        try:
            batching = BatchingConfig(max_batch=args.max_batch)
        except ValueError as e:
            raise SystemExit(str(e))
    try:
        config = ServeConfig(
            devices=tuple(devices),
            preset=args.preset,
            queue_capacity=args.queue_capacity,
            deadline_factor=args.deadline_factor,
            retry=RetryPolicy(max_retries=args.max_retries),
            hedge=HedgePolicy(enabled=not args.no_hedge),
            verify_integrity=not args.no_verify,
            scale=args.scale,
            seed=args.seed,
            steady_state=args.steady_state,
            max_probes=args.max_probes,
            slo_window=args.slo_window,
            slo_target=args.slo_target,
            brownout=brownout,
            spares=args.spares,
            store_dir=args.store,
            domains=domains,
            storm=storm,
            domain_defense=not args.no_domain_defense,
            breaker_threshold=args.breaker_threshold,
            batching=batching,
        )
    except ValueError as e:
        raise SystemExit(str(e))
    try:
        traffic = TrafficConfig(
            rate=args.rate,
            duration=args.duration,
            models=tuple(models),
            seed=args.seed,
            coherence=args.coherence,
            shape=args.traffic_shape,
            peak_factor=args.peak_factor,
        )
    except ValueError as e:
        raise SystemExit(str(e))
    recorder = None
    if args.events or args.trace:
        from repro.obs.timeline import TimelineRecorder

        recorder = TimelineRecorder()
    t0 = time.time()
    with use_registry(MetricsRegistry()) as reg:
        report = run_serve_campaign(
            config, traffic, injector=injector, recorder=recorder
        )
    rows = [
        [
            label,
            report.fleet[label]["state"],
            str(u["completed"]),
            f"{u['busy_time'] * 1e3:.1f}",
            str(report.fleet[label]["crashes"]),
            str(report.fleet[label]["probes"]),
        ]
        for label, u in report.utilization.items()
    ]
    print(
        format_table(
            ["device", "health", "completed", "busy (ms)", "crashes",
             "probes"],
            rows,
            title=f"serve campaign ({args.preset}, seed {args.seed}, "
            f"{args.rate:.0f} req/s x {args.duration:.2f}s)",
        )
    )
    print(format_serve_summary(report))
    if report.steady_state:
        print(
            f"steady state: {report.warm_dispatches} warm / "
            f"{report.cold_dispatches} cold dispatches "
            f"({report.warm_fraction:.1%} warm, "
            f"coherence {args.coherence:.2f})"
        )
    if report.batching:
        mix = " ".join(
            f"x{n}:{c}" for n, c in sorted(report.batch_mix.items())
        )
        print(
            f"batching: {report.batches_dispatched} batched attempts "
            f"(<= {report.max_batch}) carrying {report.batched_members} "
            f"requests | mean size {report.mean_batch_size:.2f}, "
            f"occupancy {report.batch_occupancy:.1%}"
            + (f" | mix {mix}" if mix else "")
        )
    if report.brownout:
        steps = " -> ".join(["full"] + [c["rung"] for c in report.qos_changes])
        print(
            f"brownout: {len(report.qos_changes)} level changes ({steps}) | "
            f"{report.degraded_fraction:.1%} of served requests degraded"
        )
    if report.spares or report.replacements:
        if report.replacements:
            for rec in report.replacements:
                print(
                    f"replacement: {rec['device']} filled slot "
                    f"{rec['slot']} at t={rec['t'] * 1e3:.1f} ms "
                    + (
                        f"(warm-started, {rec['inherited_frames']} frames "
                        "inherited from the store)"
                        if rec["warm_start"]
                        else "(cold start)"
                    )
                )
            print(
                f"spare-served requests: "
                f"p50 {report.replacement_p50 * 1e3:.2f} ms, "
                f"p99 {report.replacement_p99 * 1e3:.2f} ms"
            )
        else:
            print(f"spares: {report.spares} armed, none needed")
    if report.domain_summary:
        for name in sorted(report.domain_summary):
            d = report.domain_summary[name]
            print(
                f"domain {name}: {d['members']} devices, "
                f"{d['outages']} outages, "
                f"{d['mass_quarantined']} mass-quarantined, "
                f"availability {d['availability']:.1%}"
            )
    if report.storm:
        print(
            f"storm defense: amplification {report.amplification:.2f}x "
            f"({report.attempts} attempts / {report.total} arrivals) | "
            f"{report.retries_denied} retries denied "
            f"(budget {report.retry_denied.get('budget', 0)}, "
            f"deadline {report.retry_denied.get('deadline', 0)}) | "
            f"{report.hedges_suppressed} hedges suppressed"
        )
    shots = injector.shots if injector else 0
    print(
        f"terminal states: {'all' if report.all_terminal else 'INCOMPLETE'} | "
        f"fault shots {shots} | host wall {time.time() - t0:.1f}s"
    )
    if args.slo_window is not None:
        series = report.slo_series()
        worst = report.worst_window_burn
        busiest = max(series, key=lambda w: w.total, default=None)
        print(
            f"SLO windows ({args.slo_window:.3f}s x {len(series)}, target "
            f"{args.slo_target:.2%}): worst burn {worst:.2f}x"
            + (
                f" | busiest window [{busiest.start:.3f}, {busiest.end:.3f}) "
                f"{busiest.total} finished, miss {busiest.miss_rate:.1%}, "
                f"p99 {busiest.p99 * 1e3:.2f} ms"
                if busiest is not None
                else ""
            )
        )
    if args.metrics:
        reg.dump_jsonl(args.metrics)
        print(f"metrics JSONL written to {args.metrics}")
    if args.prom:
        from repro.obs.exposition import write_prometheus

        write_prometheus(reg, args.prom)
        print(f"prometheus exposition written to {args.prom}")
    if recorder is not None:
        from repro.obs.timeline import EVENTS_SCHEMA, validate_journal
        from repro.profiling.trace import write_serve_trace

        problems = validate_journal(recorder.header(), recorder.events)
        if problems:
            for p in problems[:10]:
                print(f"journal invariant violated: {p}", file=sys.stderr)
            raise SystemExit("flight-recorder journal failed validation")
        if args.events:
            recorder.write(args.events)
            print(
                f"event journal written to {args.events} "
                f"({len(recorder.events)} events, schema {EVENTS_SCHEMA})"
            )
        if args.trace:
            write_serve_trace(recorder.header(), recorder.events, args.trace)
            print(
                f"campaign trace written to {args.trace} (open in Perfetto)"
            )
    if args.json:
        write_snapshot(report.to_json(), args.json)
        print(f"serve report written to {args.json}")
    ok = report.passed and report.slo_attainment >= args.slo_floor
    burn_ok = (
        args.burn_ceiling is None
        or args.slo_window is None
        or report.worst_window_burn <= args.burn_ceiling
    )
    if not ok or not burn_ok:
        if not report.all_terminal:
            print("FAIL: non-terminal requests at campaign end")
        elif report.corrupted_completions:
            print(
                f"FAIL: {report.corrupted_completions} corrupted results "
                "shipped as completed (silent-data-corruption hole)"
            )
        elif report.slo_attainment < args.slo_floor:
            print(
                f"FAIL: slo_attainment {report.slo_attainment:.3f} < floor "
                f"{args.slo_floor:.3f}"
            )
        else:
            print(
                f"FAIL: worst-window burn {report.worst_window_burn:.2f}x > "
                f"ceiling {args.burn_ceiling:.2f}x"
            )
    return 0 if ok and burn_ok else 1


def cmd_timeline(args) -> int:
    """Inspect, validate, and convert a flight-recorder event journal."""
    from collections import Counter as TallyCounter

    from repro.obs.timeline import (
        load_journal,
        request_timeline,
        validate_journal,
    )
    from repro.profiling.trace import write_serve_trace

    try:
        header, events = load_journal(args.events)
    except ValueError as e:
        raise SystemExit(str(e))
    problems = validate_journal(header, events)
    requests = {
        e["request"] for e in events if e.get("request") is not None
    }
    kinds = TallyCounter(e["kind"] for e in events)
    terminal_states = TallyCounter(
        e["attrs"]["state"] for e in events if e["kind"] == "terminal"
    )
    print(
        f"journal {args.events}: schema {header['schema']}, seed "
        f"{header.get('seed')}, {len(events)} events, "
        f"{len(requests)} requests, devices: "
        f"{', '.join(header.get('devices', [])) or '-'}"
    )
    print(
        "events: "
        + ", ".join(f"{k} x{v}" for k, v in sorted(kinds.items()))
    )
    print(
        "outcomes: "
        + (
            ", ".join(
                f"{k} x{v}" for k, v in sorted(terminal_states.items())
            )
            or "none"
        )
    )
    if args.request is not None:
        rows = request_timeline(events, args.request)
        if not rows:
            raise SystemExit(f"no events for request {args.request}")
        print(f"\ncausal timeline of request {args.request}:")
        for e in rows:
            attrs = ", ".join(
                f"{k}={v}" for k, v in sorted(e.get("attrs", {}).items())
            )
            slack = e.get("slack")
            print(
                f"  t={e['t'] * 1e3:9.3f} ms  {e['kind']:16s} "
                f"dev={e.get('device') or '-':12s} "
                f"depth={e['queue_depth']:3d}  "
                f"slack={'-' if slack is None else f'{slack * 1e3:.3f} ms':>12s}"
                + (f"  [{attrs}]" if attrs else "")
            )
    if args.trace:
        write_serve_trace(header, events, args.trace)
        print(f"campaign trace written to {args.trace} (open in Perfetto)")
    if problems:
        print(f"\nINVALID: {len(problems)} lifecycle violations:")
        for p in problems[:20]:
            print(f"  {p}")
        return 1
    print("lifecycle: valid (every request one terminal state, "
          "monotonic sim clock, causal retry/hedge links)")
    return 0


def cmd_store(args) -> int:
    """Inspect and maintain a durable artifact store."""
    from repro.persist import ArtifactStore
    from repro.robust.errors import StoreCorruptionError

    if not os.path.isdir(args.dir):
        raise SystemExit(f"store directory {args.dir!r} does not exist")
    try:
        store = ArtifactStore(args.dir, create=False)
    except StoreCorruptionError as e:
        print(f"CORRUPT MANIFEST: {e}")
        return 1

    def show(payload: dict) -> None:
        # path-free, key-sorted output: two same-seed runs over
        # identical stores must print identical snapshots
        if args.json:
            write_snapshot(payload, args.json)
            print(f"store snapshot written to {args.json}")
        for k in sorted(payload):
            v = payload[k]
            if isinstance(v, dict):
                v = (
                    ", ".join(f"{kk}={vv}" for kk, vv in sorted(v.items()))
                    or "-"
                )
            elif isinstance(v, list):
                v = ", ".join(str(x) for x in v) or "-"
            print(f"  {k}: {v}")

    if args.action == "stats":
        print(f"store stats ({len(store.entries)} entries)")
        show(store.stats())
        return 0
    if args.action == "verify":
        report = store.verify()
        print(
            f"store verify: {report['ok']}/{report['checked']} entries ok, "
            f"{len(report['corrupt'])} corrupt"
        )
        show(
            {
                "checked": report["checked"],
                "ok": report["ok"],
                "corrupt": [
                    f"{c['kind']}:{c['key']}:{c['reason']}"
                    for c in report["corrupt"]
                ],
                "recovery": report["recovery"],
            }
        )
        return 1 if report["corrupt"] else 0
    if args.action == "scrub":
        result = store.scrub()
        print(
            f"store scrub: evicted {len(result['evicted'])}, "
            f"removed {result['orphans']} orphan blobs and "
            f"{result['tmp_files']} temp files"
        )
        show(
            {
                "evicted": sorted(result["evicted"]),
                "orphans": result["orphans"],
                "tmp_files": result["tmp_files"],
                **{"stats": store.stats()},
            }
        )
        return 0
    # purge
    count = store.purge()
    print(f"store purge: dropped {count} entries")
    show(store.stats())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-bench", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="list models, engines and devices")

    def common(p):
        p.add_argument("--model", required=True)
        p.add_argument("--device", choices=list(DEVICES), default="2080ti")
        p.add_argument("--scale", type=float, default=0.3)
        p.add_argument("--samples", type=int, default=1)
        p.add_argument("--seed", type=int, default=0)

    p_bench = sub.add_parser("bench", help="run one model under one engine")
    common(p_bench)
    p_bench.add_argument(
        "--engine", choices=list(ENGINE_FACTORIES), default="torchsparse"
    )
    p_bench.add_argument(
        "--trace", metavar="PATH",
        help="write a nested-span Chrome trace (open in Perfetto)",
    )
    p_bench.add_argument(
        "--metrics", metavar="PATH",
        help="dump the run's metrics registry as JSONL",
    )
    p_bench.add_argument(
        "--json", metavar="PATH",
        help="write a machine-readable snapshot of the run",
    )
    p_bench.add_argument(
        "--report", action="store_true",
        help="print the per-layer time/stage breakdown",
    )
    p_bench.add_argument(
        "--strategies", metavar="PATH",
        help="tuned strategy book (from 'tune'); a missing or corrupt "
        "file falls back to the default per-layer strategy with a warning",
    )
    p_bench.add_argument(
        "--steady-state", action="store_true",
        help="stream temporally coherent frames through the persistent "
        "content-addressed mapping cache: frame 0 cold, the rest warm "
        "(same coordinates, fresh features)",
    )
    p_bench.add_argument(
        "--frames", type=int, default=4,
        help="frames in the --steady-state stream (default %(default)s)",
    )

    p_cmp = sub.add_parser("compare", help="run one model under every engine")
    common(p_cmp)

    p_tune = sub.add_parser("tune", help="Algorithm 5 offline strategy search")
    common(p_tune)
    p_tune.add_argument("--out", default="strategies.json")
    p_tune.add_argument(
        "--store", metavar="DIR", default=None,
        help="also persist the tuned book into this durable artifact "
        "store (keyed by model + device), for fleet warm-starts",
    )

    p_reg = sub.add_parser(
        "regress", help="gate a bench run against a snapshot baseline"
    )
    common(p_reg)
    p_reg.add_argument(
        "--engine", choices=list(ENGINE_FACTORIES), default="torchsparse"
    )
    p_reg.add_argument(
        "--baseline", required=True, metavar="PATH",
        help="baseline snapshot; created on first run, diffed afterwards",
    )
    p_reg.add_argument(
        "--update", action="store_true",
        help="rewrite the baseline from this run instead of gating",
    )
    p_reg.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="default relative tolerance (default %(default)s)",
    )
    p_reg.add_argument(
        "--tol", action="append", default=[], metavar="NAME=REL",
        help="per-key tolerance override; NAME may be an fnmatch pattern "
        "(repeatable)",
    )

    p_chaos = sub.add_parser(
        "chaos", help="seeded fault-injection campaign over the pipeline"
    )
    p_chaos.add_argument(
        "--kinds", default="",
        help="comma-separated fault kinds (default: all)",
    )
    p_chaos.add_argument(
        "--presets", default="",
        help="comma-separated engine presets (default: torchsparse,baseline)",
    )
    p_chaos.add_argument(
        "--seeds", type=int, default=3,
        help="seeds per (fault, preset) cell (default %(default)s)",
    )
    p_chaos.add_argument("--seed", type=int, default=0, help="base seed")
    p_chaos.add_argument(
        "--no-degrade", action="store_true",
        help="detection only: faults raise typed errors instead of "
        "degrading down the ladder",
    )
    p_chaos.add_argument(
        "--json", metavar="PATH",
        help="write the full campaign report as JSON "
        f"(schema {CHAOS_SCHEMA})",
    )

    p_serve = sub.add_parser(
        "serve",
        help="seeded serving campaign: deadline-aware admission, "
        "retry/hedging, fleet health",
    )
    p_serve.add_argument(
        "--models", default="minkunet_0.5x_kitti",
        help="comma-separated zoo models in the traffic mix",
    )
    p_serve.add_argument(
        "--devices", default="2080ti,2080ti,3090",
        help="comma-separated fleet (repeat a key for multiple cards)",
    )
    p_serve.add_argument(
        "--preset", choices=["torchsparse", "baseline"],
        default="torchsparse",
    )
    p_serve.add_argument(
        "--rate", type=float, default=250.0,
        help="mean Poisson arrivals per sim second (default %(default)s)",
    )
    p_serve.add_argument(
        "--duration", type=float, default=1.0,
        help="arrival window, sim seconds (default %(default)s)",
    )
    p_serve.add_argument("--scale", type=float, default=0.15)
    p_serve.add_argument("--seed", type=int, default=0)
    p_serve.add_argument("--queue-capacity", type=int, default=64)
    p_serve.add_argument(
        "--deadline-factor", type=float, default=10.0,
        help="per-request SLO: factor x base latency on the slowest card",
    )
    p_serve.add_argument("--max-retries", type=int, default=2)
    p_serve.add_argument(
        "--no-hedge", action="store_true",
        help="disable straggler hedging",
    )
    p_serve.add_argument(
        "--faults", default="",
        help="comma-separated serve fault kinds to inject "
        "(device_crash, device_stall, queue_spike, bitflip_feature, "
        "bitflip_weight, domain_outage, domain_degrade)",
    )
    p_serve.add_argument(
        "--domains", default="", metavar="D0,D1,...",
        help="comma-separated failure-domain label per device, aligned "
        "with --devices (e.g. rack0,rack0,rack1); empty keeps every "
        "device its own singleton domain",
    )
    p_serve.add_argument(
        "--outage-domain", default="", metavar="DOMAIN",
        help="pin domain_outage/domain_degrade windows to one domain "
        "label substring (default: any domain)",
    )
    p_serve.add_argument(
        "--outage-severity", type=float, default=0.05,
        help="severity of armed domain fault windows — scales the "
        "outage duration / degrade factor (default %(default)s)",
    )
    p_serve.add_argument(
        "--no-domain-defense", action="store_true",
        help="keep the correlated fault surface but react with only "
        "the flat per-device machinery (the undefended ablation arm)",
    )
    p_serve.add_argument(
        "--breaker-threshold", type=int, default=2,
        help="per-device failures before the device breaker "
        "quarantines it (default %(default)s)",
    )
    p_serve.add_argument(
        "--storm", action="store_true",
        help="engage the metastability defense: fleet-wide retry token "
        "bucket, deadline-aware retry admission, and hedge suppression "
        "while a domain breaker is open",
    )
    p_serve.add_argument(
        "--retry-budget", type=float, default=8.0,
        help="initial tokens in the storm defense's retry bucket "
        "(default %(default)s; needs --storm)",
    )
    p_serve.add_argument(
        "--retry-refill", type=float, default=0.1,
        help="retry tokens credited per successful completion "
        "(default %(default)s; needs --storm)",
    )
    p_serve.add_argument(
        "--no-verify", action="store_true",
        help="disable fleet integrity verification: corrupted results "
        "ship silently as completed (models the pre-ABFT hole)",
    )
    p_serve.add_argument(
        "--crashes", type=int, default=4,
        help="armed device_crash shots (default %(default)s); "
        "queue_spike bursts arm at half this",
    )
    p_serve.add_argument(
        "--crash-site", default="", metavar="LABEL",
        help="pin device_crash to one device label substring "
        "(default: any device); with --crashes -1 this kills the "
        "device, which is how to demo spare replacement",
    )
    p_serve.add_argument(
        "--max-probes", type=int, default=8,
        help="failed readmission probes before a quarantined device "
        "is declared DEAD (default %(default)s)",
    )
    p_serve.add_argument(
        "--slo-floor", type=float, default=0.0,
        help="exit nonzero when SLO attainment falls below this",
    )
    p_serve.add_argument(
        "--steady-state", action="store_true",
        help="per-device persistent mapping reuse: repeats of a "
        "(model, scene) pair on a device serve at the warm base latency",
    )
    p_serve.add_argument(
        "--batching", action="store_true",
        help="deadline-aware dynamic batching: an idle device coalesces "
        "queued same-model requests into one batched attempt, closing "
        "the batch when the oldest member's slack minus the modeled "
        "batch service time hits zero (off by default)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=4,
        help="largest batch the scheduler may coalesce "
        "(needs --batching; default %(default)s)",
    )
    p_serve.add_argument(
        "--coherence", type=float, default=0.0,
        help="probability a request repeats its model's current scene "
        "(temporal coherence of the traffic; default %(default)s)",
    )
    p_serve.add_argument(
        "--traffic-shape", default="poisson",
        choices=("poisson", "diurnal", "flash", "tenants"),
        help="arrival shape: homogeneous poisson, diurnal ramp, flash "
        "crowd, or multi-tenant model-mix drift (default %(default)s)",
    )
    p_serve.add_argument(
        "--peak-factor", type=float, default=4.0,
        help="flash-crowd rate multiplier for --traffic-shape flash "
        "(default %(default)s)",
    )
    p_serve.add_argument(
        "--brownout", action="store_true",
        help="engage the load-adaptive brownout controller: under queue "
        "or burn-rate pressure the fleet steps down the QoS ladder "
        "(int8 compute, then half-resolution voxels) instead of "
        "shedding or missing deadlines",
    )
    p_serve.add_argument(
        "--no-brownout", action="store_true",
        help="explicitly serve everything at full quality (the default; "
        "the baseline arm of brownout ablations)",
    )
    p_serve.add_argument(
        "--brownout-interval", type=float, default=None, metavar="SECONDS",
        help="brownout controller tick period (default: the SLO window "
        "when set, else 8x the traffic mix's mean base latency)",
    )
    p_serve.add_argument(
        "--brownout-max-level", type=int, default=None, metavar="LEVEL",
        help="deepest QoS level the controller may engage "
        "(default: the ladder floor)",
    )
    p_serve.add_argument(
        "--metrics", metavar="PATH",
        help="dump the campaign's metrics registry as JSONL",
    )
    p_serve.add_argument(
        "--json", metavar="PATH",
        help="write the campaign report (schema repro-bench.serve/1)",
    )
    p_serve.add_argument(
        "--events", metavar="PATH",
        help="flight recorder: write the per-request causal event "
        "journal as JSONL (schema repro-bench.events/1)",
    )
    p_serve.add_argument(
        "--trace", metavar="PATH",
        help="write the campaign as a Chrome/Perfetto trace "
        "(per-device tracks, retry/hedge flow arrows, queue counter)",
    )
    p_serve.add_argument(
        "--slo-window", type=float, default=None, metavar="SECONDS",
        help="windowed SLO monitor: sim-clock window width for "
        "deadline-miss / error-budget burn series (off by default)",
    )
    p_serve.add_argument(
        "--slo-target", type=float, default=0.99,
        help="SLO objective the burn rate is measured against "
        "(default %(default)s)",
    )
    p_serve.add_argument(
        "--burn-ceiling", type=float, default=None, metavar="RATE",
        help="exit nonzero when any window's error-budget burn rate "
        "exceeds this (needs --slo-window)",
    )
    p_serve.add_argument(
        "--prom", metavar="PATH",
        help="write the campaign's metrics registry in Prometheus "
        "text exposition format",
    )
    p_serve.add_argument(
        "--store", metavar="DIR", default=None,
        help="durable artifact store backing the fleet: with "
        "--steady-state, dispatched frames persist as durable markers "
        "and replacement devices warm-start from them",
    )
    p_serve.add_argument(
        "--spares", type=int, default=0,
        help="spare-device pool: a DEAD device is replaced by a fresh "
        "worker with the same GPU spec (default %(default)s)",
    )

    p_store = sub.add_parser(
        "store",
        help="inspect / maintain a durable artifact store "
        "(stats, verify, scrub, purge)",
    )
    p_store.add_argument(
        "action", choices=("stats", "verify", "scrub", "purge"),
        help="stats: snapshot; verify: re-checksum every entry (exit 1 "
        "on corruption); scrub: evict unverifiable entries, drop orphan "
        "blobs, compact the manifest; purge: drop everything",
    )
    p_store.add_argument(
        "--dir", required=True, metavar="DIR",
        help="store directory (as passed to serve --store / tune --store)",
    )
    p_store.add_argument(
        "--json", metavar="PATH",
        help="write the action's result as a JSON snapshot",
    )

    p_timeline = sub.add_parser(
        "timeline",
        help="inspect / validate / convert a flight-recorder journal "
        "written by serve --events",
    )
    p_timeline.add_argument(
        "--events", required=True, metavar="PATH",
        help="event journal (JSONL, schema repro-bench.events/1)",
    )
    p_timeline.add_argument(
        "--request", type=int, default=None, metavar="ID",
        help="print one request's full causal timeline",
    )
    p_timeline.add_argument(
        "--trace", metavar="PATH",
        help="convert the journal to a Chrome/Perfetto trace offline",
    )

    p_int = sub.add_parser(
        "integrity",
        help="seeded silent-data-corruption campaign against the ABFT "
        "verifier",
    )
    p_int.add_argument(
        "--kinds", default="",
        help="comma-separated SDC fault kinds (default: bitflip_feature, "
        "bitflip_weight, checksum_mismatch)",
    )
    p_int.add_argument(
        "--dtypes", default="",
        help="comma-separated storage-dtype presets (default: "
        "fp32,fp16,int8)",
    )
    p_int.add_argument(
        "--seeds", type=int, default=3,
        help="seeds per (fault, dtype) cell (default %(default)s)",
    )
    p_int.add_argument("--seed", type=int, default=0, help="base seed")
    p_int.add_argument(
        "--severity", type=float, default=0.05,
        help="fraction of buffer entries flipped per shot "
        "(default %(default)s)",
    )
    p_int.add_argument(
        "--recall-floor", type=float, default=0.95,
        help="exit nonzero when detection recall falls below this "
        "(default %(default)s)",
    )
    p_int.add_argument(
        "--json", metavar="PATH",
        help="write the campaign report (schema repro-bench.integrity/1)",
    )

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return {
        "info": cmd_info,
        "bench": cmd_bench,
        "compare": cmd_compare,
        "tune": cmd_tune,
        "regress": cmd_regress,
        "chaos": cmd_chaos,
        "serve": cmd_serve,
        "timeline": cmd_timeline,
        "integrity": cmd_integrity,
        "store": cmd_store,
    }[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
