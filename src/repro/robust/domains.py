"""Failure domains and the metastable-failure (retry storm) defense.

Real fleets do not fail independently: a PDU drops a rack, a driver
rollout bricks one zone, a thermal event slows every card sharing an
aisle.  This module gives the serving layer the vocabulary for that —
and the control machinery that keeps a correlated loss from turning
into a *metastable* failure, where the synchronized retry+hedge storm
the outage triggers keeps the fleet down long after the fault clears.

Three pieces:

* :class:`DomainTopology` — maps every fleet device label to a failure
  domain (rack / power / driver zone).  Without an explicit assignment
  every device is its *own* singleton domain (``trivial``), which makes
  all domain-aware machinery collapse exactly onto the pre-domain
  behavior — campaigns without domains stay bit-for-bit identical.
* :class:`StormConfig` — the metastability-defense knobs: the fleet
  retry token bucket, deadline-aware retry admission, and hedge
  suppression while a domain breaker is open.
* :class:`RetryBudget` — the token bucket itself.  Retries spend whole
  tokens; every *successful* completion refills ``refill`` of one, so
  steady-state retry traffic is budgeted to a bounded fraction of
  goodput plus the initial burst allowance — the classic anti-storm
  invariant (retry amplification cannot outrun the work that succeeds).

Everything here is deterministic state machinery — no RNG, no clocks —
so the serve loop's same-seed bit-exactness extends through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.robust.errors import ConfigError


class DomainTopology:
    """Device label -> failure-domain assignment of one fleet.

    Args:
        labels: fleet device labels, in fleet order.
        domains: domain label per device, aligned with ``labels``;
            ``None`` assigns every device its own singleton domain
            (the *trivial* topology — no correlation to exploit, and
            every domain-aware policy degenerates to the flat one).

    Domain order is first-appearance order in ``domains`` — stable, so
    seeded draws over domains are reproducible.
    """

    def __init__(self, labels, domains=None) -> None:
        labels = list(labels)
        if domains is None:
            domains = list(labels)
        else:
            domains = list(domains)
            if len(domains) != len(labels):
                raise ConfigError(
                    f"domains ({len(domains)}) must align with devices "
                    f"({len(labels)})"
                )
        for d in domains:
            if not isinstance(d, str) or not d:
                raise ConfigError(
                    f"domain labels must be non-empty strings, got {d!r}"
                )
        self._domain_of: dict = {}
        self._members: dict = {}
        self.names: list = []  # first-appearance order
        for label, domain in zip(labels, domains):
            self.assign(label, domain)

    def assign(self, label: str, domain: str) -> None:
        """Place ``label`` in ``domain`` (spares join mid-campaign)."""
        if label in self._domain_of:
            raise ConfigError(f"device {label!r} already assigned a domain")
        self._domain_of[label] = domain
        if domain not in self._members:
            self._members[domain] = []
            self.names.append(domain)
        self._members[domain].append(label)

    def domain_of(self, label: str) -> str:
        return self._domain_of[label]

    def members(self, domain: str) -> list:
        return list(self._members[domain])

    @property
    def trivial(self) -> bool:
        """True when no domain holds two devices — nothing is
        correlated, and every domain-aware policy reduces to the flat
        pre-domain behavior."""
        return all(len(m) == 1 for m in self._members.values())

    def to_json(self) -> dict:
        return dict(self._domain_of)


@dataclass(frozen=True)
class StormConfig:
    """Metastability-defense knobs of one serving campaign.

    Attributes:
        retry_budget: initial tokens in the fleet-wide retry bucket —
            the burst of retries the fleet may grant before any
            completion has refilled it.
        retry_refill: tokens credited per *successful* completion.
            0.1 budgets steady-state retry traffic to ~10% of goodput.
        retry_cap: bucket ceiling, so a long healthy stretch cannot
            bank an unbounded storm allowance.
        deadline_aware: skip a retry whose backoff delay plus the best
            healthy device's expected service time already overruns the
            deadline — resolve ``deadline_exceeded`` immediately
            instead of burning a fleet slot on a doomed attempt.
        suppress_hedges: stop launching hedges while any domain breaker
            is open — a mass outage makes p95-triggered duplicates pure
            load amplification onto the survivors.
    """

    retry_budget: float = 8.0
    retry_refill: float = 0.1
    retry_cap: float = 64.0
    deadline_aware: bool = True
    suppress_hedges: bool = True

    def __post_init__(self) -> None:
        if self.retry_budget < 0:
            raise ConfigError("retry_budget must be >= 0")
        if not 0.0 <= self.retry_refill <= 1.0:
            raise ConfigError("retry_refill must be in [0, 1]")
        if self.retry_cap < self.retry_budget:
            raise ConfigError("retry_cap must be >= retry_budget")


class RetryBudget:
    """The fleet-wide retry token bucket (see :class:`StormConfig`).

    ``take()`` spends one whole token (a retry dispatch); ``credit()``
    refills a fraction per successful completion, capped.  Fractional
    tokens accumulate — with ``refill=0.1`` every tenth success earns
    one retry — so the long-run retry:success ratio is bounded by
    ``refill`` regardless of how the outage clusters failures.
    """

    def __init__(self, config: StormConfig) -> None:
        self.config = config
        self.tokens = float(config.retry_budget)
        self.taken = 0
        self.denied = 0

    def take(self) -> bool:
        """Spend a token; False (and a denial tally) when broke."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.taken += 1
            return True
        self.denied += 1
        return False

    def credit(self) -> None:
        """One successful completion refills ``retry_refill`` tokens."""
        self.tokens = min(
            float(self.config.retry_cap),
            self.tokens + float(self.config.retry_refill),
        )
