"""The graceful-degradation ladder and per-layer circuit breakers.

When the engine detects a typed fault in an optimized path it retries
the layer *down the ladder* — each rung trades performance for a
simpler, more robust configuration, cumulatively:

====  ===============  =========================================
rung  name             swaps
====  ===============  =========================================
1     ``mm``           adaptive-grouped ``bmm`` -> plain per-offset
                       ``mm`` (``grouping="separate"``)
2     ``fp32-scalar``  FP16/INT8 vectorized movement -> FP32 scalar
3     ``hashmap``      grid table -> general hashmap, no map symmetry
====  ===============  =========================================

Rung selection is fault-aware: a mapping fault jumps straight to the
rung that swaps the mapping backend instead of burning retries on
matmul rungs that cannot help.  A per-layer :class:`CircuitBreaker`
counts failures and, past a threshold, *pins* the layer at its
recovered rung so later inputs skip the known-bad fast path entirely.

Every retry, fallback and pin is recorded as spans and counters in the
active :mod:`repro.obs` registry by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.memory import DType
from repro.robust.integrity import IntegrityConfig


@dataclass(frozen=True)
class Rung:
    """One ladder step: which faults it addresses, what it swaps."""

    name: str
    stage: str  # fault stage this rung fixes: "matmul" | "numeric" | "mapping"
    overrides: tuple  # ((config field, value), ...)


DEFAULT_RUNGS = (
    Rung("mm", "matmul", (("grouping", "separate"),)),
    Rung(
        "fp32-scalar",
        "numeric",
        (("dtype", DType.FP32), ("vectorized", False)),
    ),
    Rung(
        "hashmap",
        "mapping",
        (("map_backend", "hash"), ("use_map_symmetry", False)),
    ),
)


@dataclass(frozen=True)
class DegradationLadder:
    """Cumulative sequence of config degradations.

    Level ``L`` applies the overrides of the first ``L`` rungs; level 0
    is the undegraded configuration, ``len(rungs)`` the floor.
    """

    rungs: tuple = DEFAULT_RUNGS

    @property
    def floor(self) -> int:
        return len(self.rungs)

    def rung_name(self, level: int) -> str:
        """Display name of a level (its deepest applied rung)."""
        if level <= 0:
            return "full"
        return self.rungs[min(level, self.floor) - 1].name

    def config_at(self, config, level: int):
        """The engine config degraded to ``level`` (0 = unchanged)."""
        if level < 0 or level > self.floor:
            raise ValueError(f"level must be in [0, {self.floor}], got {level}")
        for rung in self.rungs[:level]:
            config = replace(config, **dict(rung.overrides))
        return config

    def next_level(self, level: int, fault_stage: str) -> int | None:
        """First level past ``level`` whose new rung addresses the fault.

        A fault no remaining rung addresses still advances one step
        (cumulative degradation may clear transient faults); ``None``
        once the floor is exhausted.
        """
        if level >= self.floor:
            return None
        for i in range(level, self.floor):
            if self.rungs[i].stage == fault_stage:
                return i + 1
        return level + 1


DEFAULT_LADDER = DegradationLadder()


@dataclass
class CircuitBreaker:
    """Failure memory for one layer.

    After ``threshold`` recorded failures the breaker *pins* the layer
    at the deepest level that recovered it: subsequent calls start
    degraded instead of re-discovering the fault on every input.
    """

    threshold: int = 3
    failures: int = 0
    pinned: int = 0
    #: level of the most recent successful execution
    last_good: int = 0

    @property
    def open(self) -> bool:
        """True once the breaker has pinned a fallback."""
        return self.pinned > 0

    def record_failure(self, recovered_level: int) -> bool:
        """Count a failure; returns True if this call pinned the layer."""
        self.failures += 1
        if self.failures >= self.threshold and recovered_level > self.pinned:
            self.pinned = recovered_level
            return True
        return False

    def record_success(self, level: int) -> None:
        self.last_good = level


@dataclass(frozen=True)
class RobustConfig:
    """Robustness knobs carried by :class:`repro.core.engine.EngineConfig`.

    Attributes:
        detect: run fault detection (kernel-map verification, numeric
            checks).  Detection without ``degrade`` turns faults into
            *typed* errors instead of silent corruption or bare asserts.
        degrade: retry detected faults down the ladder.
        input_policy: what to do with non-finite input features at the
            convolution boundary: ``"repair"`` (zero them, counted) or
            ``"strict"`` (raise :class:`InputValidationError`).
        verify_kmap: range-check kernel maps after construction.
        verify_numerics: check layer outputs for NaN/Inf.
        max_retries: ladder retries per layer call before giving up.
        breaker_threshold: failures before a layer pins its fallback.
        integrity: ABFT checksum verification of the dataflow
            (:class:`~repro.robust.integrity.IntegrityConfig`); ``None``
            keeps the NaN/Inf-only detection (an exponent bit flip in a
            feature buffer then ships silently).  A detected mismatch
            raises :class:`~repro.robust.errors.IntegrityError` (stage
            ``"numeric"``), so with ``degrade`` on the layer is
            recomputed once at FP32 scalar before escalating.  The
            checker itself never degrades: verification settings are
            identical at every ladder level, only the verified dtype's
            envelope follows the attempt.
    """

    detect: bool = True
    degrade: bool = True
    input_policy: str = "repair"
    verify_kmap: bool = True
    verify_numerics: bool = True
    max_retries: int = 4
    breaker_threshold: int = 3
    integrity: IntegrityConfig | None = None

    def __post_init__(self) -> None:
        if self.input_policy not in ("repair", "strict"):
            raise ValueError(
                f"input_policy must be 'repair' or 'strict', got {self.input_policy!r}"
            )
        if self.max_retries < 0 or self.breaker_threshold < 1:
            raise ValueError("max_retries >= 0 and breaker_threshold >= 1 required")
