"""The graceful-degradation ladder and per-layer circuit breakers.

When the engine detects a typed fault in an optimized path it retries
the layer *down the ladder* — each rung trades performance for a
simpler, more robust configuration, cumulatively:

====  ===============  =========================================
rung  name             swaps
====  ===============  =========================================
1     ``mm``           adaptive-grouped ``bmm`` -> plain per-offset
                       ``mm`` (``grouping="separate"``)
2     ``fp32-scalar``  FP16/INT8 vectorized movement -> FP32 scalar
3     ``hashmap``      grid table -> general hashmap, no map symmetry
====  ===============  =========================================

Rung selection is fault-aware: a mapping fault jumps straight to the
rung that swaps the mapping backend instead of burning retries on
matmul rungs that cannot help.  A per-layer :class:`CircuitBreaker`
counts failures and, past a threshold, *pins* the layer at its
recovered rung so later inputs skip the known-bad fast path entirely.

Every retry, fallback and pin is recorded as spans and counters in the
active :mod:`repro.obs` registry by the engine.

**Quality rungs** (:class:`QualityRung`, :class:`QoSLadder`) are the
second, independent ladder: they trade model *quality* for *latency
under load* (INT8 compute, coarser voxelization) and are engaged by the
serving layer's brownout controller (:mod:`repro.robust.brownout`),
never by the engine's fault-retry loop.  The two ladders deliberately
own disjoint state: fault rungs rewrite :class:`EngineConfig` fields
through ``overrides`` tuples and are pinned by circuit breakers;
quality rungs carry typed knobs (``dtype``, ``voxel_scale``) consumed
by the latency-pricing layer, and the fleet-wide QoS level lives in the
brownout controller.  Composition order is fixed — quality first
(chooses the base configuration a request is priced at), fault ladder
second — so a breaker-pinned ``fp32-scalar`` recovery always wins over
a brownout-selected INT8 dtype and the two can never flap against each
other.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.gpu.memory import DType
from repro.robust.integrity import IntegrityConfig


@dataclass(frozen=True)
class Rung:
    """One ladder step: which faults it addresses, what it swaps."""

    name: str
    stage: str  # fault stage this rung fixes: "matmul" | "numeric" | "mapping"
    overrides: tuple  # ((config field, value), ...)


DEFAULT_RUNGS = (
    Rung("mm", "matmul", (("grouping", "separate"),)),
    Rung(
        "fp32-scalar",
        "numeric",
        (("dtype", DType.FP32), ("vectorized", False)),
    ),
    Rung(
        "hashmap",
        "mapping",
        (("map_backend", "hash"), ("use_map_symmetry", False)),
    ),
)


@dataclass(frozen=True)
class DegradationLadder:
    """Cumulative sequence of config degradations.

    Level ``L`` applies the overrides of the first ``L`` rungs; level 0
    is the undegraded configuration, ``len(rungs)`` the floor.
    """

    rungs: tuple = DEFAULT_RUNGS

    @property
    def floor(self) -> int:
        return len(self.rungs)

    def rung_name(self, level: int) -> str:
        """Display name of a level (its deepest applied rung)."""
        if level <= 0:
            return "full"
        return self.rungs[min(level, self.floor) - 1].name

    def config_at(self, config, level: int):
        """The engine config degraded to ``level`` (0 = unchanged)."""
        if level < 0 or level > self.floor:
            raise ValueError(f"level must be in [0, {self.floor}], got {level}")
        for rung in self.rungs[:level]:
            config = replace(config, **dict(rung.overrides))
        return config

    def next_level(self, level: int, fault_stage: str) -> int | None:
        """First level past ``level`` whose new rung addresses the fault.

        A fault no remaining rung addresses still advances one step
        (cumulative degradation may clear transient faults); ``None``
        once the floor is exhausted.
        """
        if level >= self.floor:
            return None
        for i in range(level, self.floor):
            if self.rungs[i].stage == fault_stage:
                return i + 1
        return level + 1


DEFAULT_LADDER = DegradationLadder()


@dataclass(frozen=True)
class QualityRung:
    """One brownout step: trades model quality for latency under load.

    Unlike a fault :class:`Rung`, a quality rung never carries
    :class:`EngineConfig` override tuples — its knobs are typed fields
    the serving layer's latency pricing consumes directly, so the
    brownout controller and the per-layer circuit breakers can never
    fight over the same configuration state.

    Attributes:
        name: display name of the rung (the report's QoS mix keys).
        dtype: feature storage dtype this rung computes in (``None``
            keeps the preset's dtype).
        voxel_scale: integer factor multiplying the dataset voxel size
            — a coarser input grid with correspondingly fewer active
            sites (SPIRA's resolution lever).
        speedup: modeled latency factor used **only** when latency
            overrides bypass the engine (synthetic campaigns, unit
            tests); engine-priced campaigns measure the real thing.
    """

    name: str
    dtype: DType | None = None
    voxel_scale: int = 1
    speedup: float = 1.0

    def __post_init__(self) -> None:
        if self.voxel_scale < 1:
            raise ValueError("voxel_scale must be >= 1")
        if self.speedup < 1.0:
            raise ValueError("speedup must be >= 1 (a rung never slows down)")


#: The default brownout ladder: INT8 feature storage first (cheap
#: accuracy hit, moderate speedup — the §4.3.1 ablation), then halved
#: voxel resolution (large speedup, visible accuracy hit).
QUALITY_RUNGS = (
    QualityRung("int8", dtype=DType.INT8, speedup=1.25),
    QualityRung("half-res", voxel_scale=2, speedup=2.5),
)


@dataclass(frozen=True)
class QualityConfig:
    """Cumulative quality state at one QoS level (identity at level 0)."""

    dtype: DType | None = None
    voxel_scale: int = 1
    speedup: float = 1.0

    @property
    def degraded(self) -> bool:
        return self.dtype is not None or self.voxel_scale != 1


FULL_QUALITY = QualityConfig()


@dataclass(frozen=True)
class QoSLadder:
    """Cumulative sequence of quality degradations (brownout levels).

    Level ``L`` applies the first ``L`` quality rungs; level 0 is full
    quality, ``len(rungs)`` the floor.  Mirrors
    :class:`DegradationLadder`'s level algebra but owns none of its
    state: no stages, no breakers, no ``EngineConfig`` overrides.
    """

    rungs: tuple = QUALITY_RUNGS

    @property
    def floor(self) -> int:
        return len(self.rungs)

    def rung_name(self, level: int) -> str:
        """Display name of a level (its deepest applied rung)."""
        if level <= 0:
            return "full"
        return self.rungs[min(level, self.floor) - 1].name

    def rung_names(self) -> tuple:
        """Name per level, index 0 = full quality."""
        return ("full",) + tuple(r.name for r in self.rungs)

    def quality_at(self, level: int) -> QualityConfig:
        """Cumulative quality state at ``level`` (idempotent per level)."""
        if level < 0 or level > self.floor:
            raise ValueError(f"level must be in [0, {self.floor}], got {level}")
        dtype = None
        voxel_scale = 1
        speedup = 1.0
        for rung in self.rungs[:level]:
            if rung.dtype is not None:
                dtype = rung.dtype
            voxel_scale *= rung.voxel_scale
            speedup *= rung.speedup
        return QualityConfig(
            dtype=dtype, voxel_scale=voxel_scale, speedup=speedup
        )

    def config_at(self, config, level: int):
        """The engine config priced at ``level`` (quality dtype applied).

        Only the storage dtype crosses into :class:`EngineConfig`; the
        voxel scale is an *input-side* knob the pricing layer applies
        when it voxelizes.  Fault-rung overrides applied afterwards
        (``DEFAULT_LADDER.config_at``) always win — quality is the base
        a degraded retry starts from, never the other way around.
        """
        quality = self.quality_at(level)
        if quality.dtype is None:
            return config
        return replace(config, dtype=quality.dtype)


DEFAULT_QOS_LADDER = QoSLadder()


@dataclass
class CircuitBreaker:
    """Failure memory for one layer.

    After ``threshold`` recorded failures the breaker *pins* the layer
    at the deepest level that recovered it: subsequent calls start
    degraded instead of re-discovering the fault on every input.
    """

    threshold: int = 3
    failures: int = 0
    pinned: int = 0
    #: level of the most recent successful execution
    last_good: int = 0

    @property
    def open(self) -> bool:
        """True once the breaker has pinned a fallback."""
        return self.pinned > 0

    def record_failure(self, recovered_level: int) -> bool:
        """Count a failure; returns True if this call pinned the layer."""
        self.failures += 1
        if self.failures >= self.threshold and recovered_level > self.pinned:
            self.pinned = recovered_level
            return True
        return False

    def record_success(self, level: int) -> None:
        self.last_good = level


@dataclass(frozen=True)
class RobustConfig:
    """Robustness knobs carried by :class:`repro.core.engine.EngineConfig`.

    Attributes:
        detect: run fault detection (kernel-map verification, numeric
            checks).  Detection without ``degrade`` turns faults into
            *typed* errors instead of silent corruption or bare asserts.
        degrade: retry detected faults down the ladder.
        input_policy: what to do with non-finite input features at the
            convolution boundary: ``"repair"`` (zero them, counted) or
            ``"strict"`` (raise :class:`InputValidationError`).
        verify_kmap: range-check kernel maps after construction.
        verify_numerics: check layer outputs for NaN/Inf.
        max_retries: ladder retries per layer call before giving up.
        breaker_threshold: failures before a layer pins its fallback.
        integrity: ABFT checksum verification of the dataflow
            (:class:`~repro.robust.integrity.IntegrityConfig`); ``None``
            keeps the NaN/Inf-only detection (an exponent bit flip in a
            feature buffer then ships silently).  A detected mismatch
            raises :class:`~repro.robust.errors.IntegrityError` (stage
            ``"numeric"``), so with ``degrade`` on the layer is
            recomputed once at FP32 scalar before escalating.  The
            checker itself never degrades: verification settings are
            identical at every ladder level, only the verified dtype's
            envelope follows the attempt.
    """

    detect: bool = True
    degrade: bool = True
    input_policy: str = "repair"
    verify_kmap: bool = True
    verify_numerics: bool = True
    max_retries: int = 4
    breaker_threshold: int = 3
    integrity: IntegrityConfig | None = None

    def __post_init__(self) -> None:
        if self.input_policy not in ("repair", "strict"):
            raise ValueError(
                f"input_policy must be 'repair' or 'strict', got {self.input_policy!r}"
            )
        if self.max_retries < 0 or self.breaker_threshold < 1:
            raise ValueError("max_retries >= 0 and breaker_threshold >= 1 required")
