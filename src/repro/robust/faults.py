"""Deterministic, seeded fault injection.

A :class:`FaultInjector` holds an armed list of :class:`FaultSpec`
entries and a seeded generator; injection *sites* across the pipeline
ask :func:`get_injector` whether a fault of their kind should fire at
their location.  Sites are no-ops when no injector is installed, so
production paths pay one ``is None`` check.

Sites (mirroring where real engines break):

* ``kmap_corrupt``   — scramble kernel-map entries out of range
  (engine, after map search);
* ``hash_overflow``  — under-size a hash table so insertion overflows
  (:meth:`repro.hashmap.hash_table.HashTable.from_keys`);
* ``grid_oom``       — fail a grid-table allocation as if the
  ``MAX_GRID_BYTES`` budget were exceeded (engine, table build);
* ``strategy_drop``  — drop the tuner's :class:`StrategyBook` entry for
  a layer (engine, dataflow dispatch);
* ``matmul_nan``     — flip matmul outputs to NaN, modeling reduced-
  precision overflow: only fires when the pipeline runs below FP32
  (:func:`repro.core.dataflow.execute_gather_matmul_scatter`);
* ``input_corrupt``  — dirty a raw point cloud before tensor
  construction (chaos harness, dataset boundary).

Silent-data-corruption sites (the ABFT integrity layer's prey — none
of these crash or go NaN on their own; see
:mod:`repro.robust.integrity`):

* ``bitflip_feature`` — XOR an exponent bit of random entries in a
  gathered feature buffer or the scatter accumulator (dataflow,
  gather/scatter staging);
* ``bitflip_weight``  — the same flip in a weight matrix *after* its
  load-time golden checksum was taken (dataflow, post-cast);
* ``checksum_mismatch`` — corrupt the verifier's own checksum state so
  a clean layer reports a mismatch (integrity verifier), exercising the
  false-positive/recompute path.

Serving-layer sites (fleet-level failures, see :mod:`repro.serve`):

* ``device_crash``   — a device dies mid-request: the in-flight attempt
  fails and the device is quarantined until a probe readmits it;
* ``device_stall``   — a device turns straggler: its service times are
  multiplied by a severity-derived factor until the fault is disarmed;
* ``queue_spike``    — a burst of extra arrivals lands on the admission
  queue at once, modeling a traffic spike.

Correlated failure-domain sites (see :data:`DOMAIN_FAULT_KINDS` and
:mod:`repro.robust.domains`): ``domain_outage`` and ``domain_degrade``
take out (or slow down) *every* device sharing a failure domain at once
for a seeded drawn window — the rack/PDU/driver-rollout failure class
the per-device sites cannot model.

Disk-fault sites of the durable artifact store (see
:data:`STORE_FAULT_KINDS` and :mod:`repro.persist`): ``store_torn_write``,
``store_bitrot``, ``store_manifest_corrupt``, ``store_stale_entry`` —
all fired inside the store's write paths, all required to be caught by
manifest recovery or mandatory load-time verification.

Every shot is recorded on the injector (``fired``) and counted in the
current metrics registry as ``faults.injected{kind=...}``.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, replace

import numpy as np

from repro.obs.metrics import get_registry
from repro.robust.errors import GridMemoryError

#: Disk faults inside the durable artifact store (:mod:`repro.persist`):
#:
#: * ``store_torn_write``      — power loss mid-write: only a prefix of
#:   the artifact's bytes reaches the durable file;
#: * ``store_bitrot``          — media decay: random bytes of the
#:   durable file flip after the write committed;
#: * ``store_manifest_corrupt`` — the appended manifest journal record
#:   is truncated mid-line (the classic torn-append crash signature);
#: * ``store_stale_entry``     — the manifest records a new checksum but
#:   the object file still holds the previous (or no) content.
STORE_FAULT_KINDS = (
    "store_torn_write",
    "store_bitrot",
    "store_manifest_corrupt",
    "store_stale_entry",
)

#: Correlated failure-domain faults (see :mod:`repro.robust.domains`):
#:
#: * ``domain_outage``  — every device in one failure domain crash-
#:   fails together for a seeded drawn duration (PDU drop, driver
#:   rollout); in-flight attempts die at the outage instant and every
#:   dispatch into the domain crashes until the window closes;
#: * ``domain_degrade`` — a domain's service times inflate by a
#:   severity-derived factor for a drawn window (thermal event, shared-
#:   interconnect congestion) without any attempt failing outright.
DOMAIN_FAULT_KINDS = (
    "domain_outage",
    "domain_degrade",
)

#: Faults inside the single-request sparse-conv pipeline; the chaos
#: harness crosses exactly these with presets and seeds.  The store
#: kinds are included: a poisoned cached mapping is a pipeline fault
#: even though the injection site lives on disk.  The domain kinds are
#: included too — they are fleet-level, so the chaos harness sweeps
#: them through a dedicated mini serve campaign per trial.
PIPELINE_FAULT_KINDS = (
    "kmap_corrupt",
    "hash_overflow",
    "grid_oom",
    "strategy_drop",
    "matmul_nan",
    "input_corrupt",
    "bitflip_feature",
    "bitflip_weight",
    "checksum_mismatch",
) + STORE_FAULT_KINDS + DOMAIN_FAULT_KINDS

#: The silent-data-corruption subset: these sites never crash or emit
#: NaN, so only the ABFT integrity layer can see them.  The serving
#: layer also arms them per device to model SDC in responses.
SDC_FAULT_KINDS = (
    "bitflip_feature",
    "bitflip_weight",
    "checksum_mismatch",
)

#: Fleet-level faults fired by the serving layer (:mod:`repro.serve`).
SERVE_FAULT_KINDS = (
    "device_crash",
    "device_stall",
    "queue_spike",
)

FAULT_KINDS = PIPELINE_FAULT_KINDS + SERVE_FAULT_KINDS

#: Sticky by default: these model environmental conditions that persist
#: until the engine routes around them; the rest are one-shot glitches.
STICKY_KINDS = ("grid_oom", "strategy_drop", "device_stall")


@dataclass
class FaultSpec:
    """One armed fault.

    Attributes:
        kind: one of :data:`FAULT_KINDS`.
        site: substring the firing site's label must contain
            (``""`` matches everywhere).
        count: remaining shots; negative means unlimited (sticky).
        severity: fraction of entries corrupted where applicable.
    """

    kind: str
    site: str = ""
    count: int = 1
    severity: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


class FaultInjector:
    """Seeded dispenser of armed faults.

    Args:
        seed: drives every corruption pattern — identical seeds and
            specs reproduce identical campaigns bit for bit.
        specs: initial :class:`FaultSpec` list (copied; arming more
            later via :meth:`arm` is fine).
    """

    def __init__(self, seed: int = 0, specs=()):
        self.seed = int(seed)
        self.rng = np.random.default_rng(self.seed)
        self._specs = [replace(s) for s in specs]
        #: every shot taken: (kind, site) in firing order
        self.fired: list[tuple[str, str]] = []

    def arm(self, spec: FaultSpec) -> "FaultInjector":
        self._specs.append(replace(spec))
        return self

    def fire(self, kind: str, site: str = "") -> FaultSpec | None:
        """Take a shot of ``kind`` at ``site`` if one is armed."""
        for spec in self._specs:
            if spec.kind != kind or spec.count == 0:
                continue
            if spec.site and spec.site not in site:
                continue
            if spec.count > 0:
                spec.count -= 1
            self.fired.append((kind, site))
            get_registry().counter("faults.injected", kind=kind).inc()
            return spec
        return None

    @property
    def shots(self) -> int:
        return len(self.fired)


# -- the process-wide current injector -------------------------------------

_CURRENT: FaultInjector | None = None


def get_injector() -> FaultInjector | None:
    """The active injector, or ``None`` outside fault campaigns."""
    return _CURRENT


@contextmanager
def inject_faults(injector: FaultInjector):
    """Install ``injector`` for the duration of the block."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = injector
    try:
        yield injector
    finally:
        _CURRENT = previous


# -- injection-site helpers (each a no-op without an active injector) ------


def maybe_corrupt_kmap(kmap, site: str = "") -> bool:
    """Scramble some of one non-empty offset's input indices out of range."""
    inj = _CURRENT
    if inj is None:
        return False
    spec = inj.fire("kmap_corrupt", site)
    if spec is None:
        return False
    candidates = [n for n in range(kmap.volume) if len(kmap.in_indices[n])]
    if not candidates:
        return False
    n = candidates[int(inj.rng.integers(len(candidates)))]
    idx = kmap.in_indices[n]
    hits = max(1, int(len(idx) * spec.severity))
    where = inj.rng.choice(len(idx), size=min(hits, len(idx)), replace=False)
    idx[where] = kmap.n_in + 1 + inj.rng.integers(0, 1 << 20, size=where.shape)
    return True


def maybe_shrink_capacity(capacity: int, n_keys: int) -> int:
    """Return an under-sized hash-table capacity when an overflow is armed."""
    inj = _CURRENT
    if inj is None or n_keys <= 2:
        return capacity
    if inj.fire("hash_overflow", site=f"hash.build.n{n_keys}") is None:
        return capacity
    return 2  # rounds to capacity 2 < n_keys: insertion must overflow


def maybe_grid_oom(site: str = "") -> None:
    """Raise :class:`GridMemoryError` as if the grid budget were blown."""
    inj = _CURRENT
    if inj is None:
        return
    if inj.fire("grid_oom", site) is not None:
        raise GridMemoryError(
            f"injected grid-table allocation failure at {site or 'table build'}"
        )


def maybe_drop_strategy(layer_name: str) -> bool:
    """True when the tuned strategy entry for this layer should vanish."""
    inj = _CURRENT
    if inj is None:
        return False
    return inj.fire("strategy_drop", site=layer_name) is not None


def maybe_inject_matmul_nan(acc: np.ndarray, dtype) -> bool:
    """Flip random accumulator entries to NaN (sub-FP32 pipelines only).

    Models half-precision overflow: a pipeline degraded to FP32 is
    genuinely immune, which is what makes the ladder's FP32 rung a
    *fix* rather than a coin flip.
    """
    from repro.gpu.memory import DType

    inj = _CURRENT
    if inj is None or dtype is DType.FP32 or acc.size == 0:
        return False
    spec = inj.fire("matmul_nan", site=f"matmul.{dtype.name.lower()}")
    if spec is None:
        return False
    hits = max(1, int(acc.size * spec.severity))
    flat = inj.rng.choice(acc.size, size=min(hits, acc.size), replace=False)
    acc.reshape(-1)[flat] = np.nan
    return True


#: XORed into the float32 bit pattern by the bit-flip sites: the
#: second-highest exponent bit.  Flipping it rescales the value by
#: ~2^64 in either direction — a large, *finite* perturbation (sign
#: and NaN/Inf patterns stay untouched), exactly the corruption class
#: that ships silently without checksum verification.
_FLIP_MASK = np.uint32(1 << 29)


def _flip_exponent_bits(arr: np.ndarray, severity: float, rng) -> None:
    """XOR :data:`_FLIP_MASK` into ``severity`` of ``arr``'s entries.

    Writes go through ``arr.flat`` so the flips land even when ``arr``
    is a non-contiguous view (``reshape(-1)`` would silently copy and
    drop them while still consuming the shot).
    """
    hits = max(1, int(arr.size * severity))
    where = rng.choice(arr.size, size=min(hits, arr.size), replace=False)
    bits = arr.flat[where].astype(np.float32).view(np.uint32)
    arr.flat[where] = (bits ^ _FLIP_MASK).view(np.float32)


def maybe_bitflip_features(arr: np.ndarray, site: str = "") -> bool:
    """Flip exponent bits in a staged feature buffer (gather output or
    the scatter accumulator) — silent corruption the NaN check misses."""
    inj = _CURRENT
    if inj is None or arr.size == 0:
        return False
    spec = inj.fire("bitflip_feature", site)
    if spec is None:
        return False
    _flip_exponent_bits(arr, spec.severity, inj.rng)
    return True


def maybe_bitflip_weights(w: np.ndarray, site: str = "") -> bool:
    """Flip exponent bits in the cast weight tensor.

    Fires *after* the integrity layer's load-time golden checksum is
    taken, so the carried-through GEMM checksums agree with the
    corrupted weights — only the weight sentinel can catch it.
    """
    inj = _CURRENT
    if inj is None or w.size == 0:
        return False
    spec = inj.fire("bitflip_weight", site)
    if spec is None:
        return False
    _flip_exponent_bits(w, spec.severity, inj.rng)
    return True


def maybe_force_checksum_mismatch(site: str = "") -> bool:
    """True when the verifier's checksum state should read corrupted.

    Models corruption of the ABFT metadata itself: the layer's data is
    fine but a checksum register flipped, so verification must fail,
    trigger the FP32 recompute, and converge (the recompute re-derives
    clean checksums).  Measures the detector's recovery path and the
    cost of a false alarm.
    """
    inj = _CURRENT
    if inj is None:
        return False
    return inj.fire("checksum_mismatch", site) is not None


def maybe_silent_corruption(device_label: str) -> bool:
    """True when the attempt dispatched to this device will produce a
    corrupted-but-finished response (serving-layer SDC site).

    The serving layer asks at dispatch time, mirroring
    :func:`maybe_crash_device`; any armed bit-flip kind matches, so the
    same campaign specs drive pipeline and fleet-level SDC.
    """
    inj = _CURRENT
    if inj is None:
        return False
    for kind in ("bitflip_feature", "bitflip_weight"):
        if inj.fire(kind, site=device_label) is not None:
            return True
    return False


def maybe_crash_device(device_label: str) -> bool:
    """True when the device serving this attempt should die mid-flight.

    The serving layer asks at dispatch time; a crash fails the in-flight
    attempt partway through its service time and quarantines the device
    until a health probe readmits it.
    """
    inj = _CURRENT
    if inj is None:
        return False
    return inj.fire("device_crash", site=device_label) is not None


def stall_factor(device_label: str) -> float:
    """Service-time multiplier for a stalled (straggler) device.

    ``1.0`` when no stall is armed; otherwise ``1 + 40 * severity`` —
    the default severity (0.05) triples the device's service time, deep
    enough past any hedging threshold to make duplicates worthwhile.
    """
    inj = _CURRENT
    if inj is None:
        return 1.0
    spec = inj.fire("device_stall", site=device_label)
    if spec is None:
        return 1.0
    return 1.0 + 40.0 * spec.severity


def draw_domain_windows(domains, horizon: float) -> list:
    """Seeded correlated-fault windows for armed domain kinds.

    Asked once per campaign by the serve loop, *before* any event runs.
    For each domain (in topology order) and each kind in
    :data:`DOMAIN_FAULT_KINDS`, an armed matching spec fires one window
    ``{kind, domain, start, end, severity}``:

    * ``start`` is drawn uniformly from the campaign's first half
      (``[0.15, 0.45) x horizon``), so the fleet is warm when the
      domain drops and there is room to observe the recovery;
    * the duration is ``(4 x severity + U[0, 0.1)) x horizon`` — the
      default severity (0.05) takes the domain out for ~20-30% of the
      campaign, long enough to open the domain breaker and exhaust
      naive retry budgets.

    A spec with ``count=1`` hits the first matching domain only; a
    sticky spec (``count=-1``) hits every domain — a full-fleet event.
    Both draws come from the injector's seeded RNG in a deterministic
    (domain-order) sequence, so same-seed campaigns reproduce the same
    outage schedule bit for bit.  No-op (empty list, zero RNG consumed)
    when no injector is installed or nothing matching is armed.
    """
    inj = _CURRENT
    if inj is None or horizon <= 0:
        return []
    windows = []
    for domain in domains:
        for kind in DOMAIN_FAULT_KINDS:
            spec = inj.fire(kind, site=domain)
            if spec is None:
                continue
            start = float(inj.rng.uniform(0.15, 0.45)) * horizon
            frac = 4.0 * spec.severity + float(inj.rng.uniform(0.0, 0.1))
            windows.append(
                {
                    "kind": kind,
                    "domain": domain,
                    "start": start,
                    "end": start + min(0.8, frac) * horizon,
                    "severity": spec.severity,
                }
            )
    return windows


def domain_degrade_factor(severity: float) -> float:
    """Service-time multiplier inside a ``domain_degrade`` window.

    ``1 + 20 x severity`` — the default severity (0.05) doubles every
    member's service time: enough to trip hedging and deadline pressure
    without any attempt failing outright.
    """
    return 1.0 + 20.0 * severity


def queue_spike_burst(site: str = "traffic") -> int:
    """Number of extra arrivals to inject at once (0 when unarmed).

    Severity maps to burst size: the default (0.05) yields a burst of
    5 requests landing on the admission queue at the same instant.
    """
    inj = _CURRENT
    if inj is None:
        return 0
    spec = inj.fire("queue_spike", site)
    if spec is None:
        return 0
    return max(1, int(round(100.0 * spec.severity)))


def maybe_torn_write(data: bytes, site: str = "") -> bytes:
    """Truncate the durable bytes of one artifact write.

    Models power loss between ``write()`` and the completed flush: only
    a prefix of the intended content reaches the object file.  The
    manifest record (written afterwards, with its own fsync) carries the
    checksum of the *intended* content, so load-time verification must
    catch the mismatch.
    """
    inj = _CURRENT
    if inj is None or len(data) < 2:
        return data
    spec = inj.fire("store_torn_write", site)
    if spec is None:
        return data
    cut = max(1, int(len(data) * float(inj.rng.uniform(0.25, 0.75))))
    return data[:cut]


def maybe_bitrot(data: bytes, site: str = "") -> bytes:
    """Flip one bit in ``severity`` of an artifact's durable bytes.

    Models media decay after a committed write: the file length is
    right, the content is not — the corruption class only a content
    checksum (never a size check) can see.
    """
    inj = _CURRENT
    if inj is None or not data:
        return data
    spec = inj.fire("store_bitrot", site)
    if spec is None:
        return data
    arr = np.frombuffer(data, dtype=np.uint8).copy()
    hits = max(1, int(arr.size * spec.severity))
    where = inj.rng.choice(arr.size, size=min(hits, arr.size), replace=False)
    arr[where] ^= np.uint8(1 << int(inj.rng.integers(8)))
    return arr.tobytes()


def maybe_corrupt_manifest_line(line: str, site: str = "") -> str:
    """Truncate one manifest journal record mid-line (torn append).

    The append-only manifest's crash signature: the process died between
    ``write()`` and the fsync, leaving a partial JSON line.  Recovery on
    open must drop the damaged record and keep every earlier one.
    """
    inj = _CURRENT
    if inj is None or len(line) < 2:
        return line
    spec = inj.fire("store_manifest_corrupt", site)
    if spec is None:
        return line
    cut = max(1, int(len(line) * float(inj.rng.uniform(0.2, 0.8))))
    return line[:cut]


def maybe_stale_entry(site: str = "") -> bool:
    """True when this save's object write should be silently dropped.

    Models a reordered/absorbed write: the manifest records the new
    checksum but the object file keeps its previous content (or, for a
    first write, an empty stub) — a *stale entry* that only mandatory
    load-time verification can refuse to serve.
    """
    inj = _CURRENT
    if inj is None:
        return False
    return inj.fire("store_stale_entry", site) is not None


def maybe_corrupt_cloud(
    coords: np.ndarray, feats: np.ndarray, site: str = "dataset"
) -> tuple[np.ndarray, np.ndarray, bool]:
    """Dirty a raw cloud: NaN features, a duplicated row, an OOB coordinate."""
    inj = _CURRENT
    if inj is None:
        return coords, feats, False
    spec = inj.fire("input_corrupt", site)
    if spec is None:
        return coords, feats, False
    coords = np.array(coords, dtype=np.int64, copy=True)
    feats = np.array(feats, dtype=np.float32, copy=True)
    n = coords.shape[0]
    if n:
        hits = max(1, int(feats.size * spec.severity))
        flat = inj.rng.choice(feats.size, size=min(hits, feats.size), replace=False)
        feats.reshape(-1)[flat] = np.nan
        dup = int(inj.rng.integers(n))
        coords = np.concatenate([coords, coords[dup : dup + 1]], axis=0)
        feats = np.concatenate([feats, feats[dup : dup + 1]], axis=0)
        oob = int(inj.rng.integers(coords.shape[0]))
        coords[oob, 1] = 1 << 20  # outside the packable coordinate range
    return coords, feats, True
