"""Typed fault taxonomy of the robustness subsystem.

Every failure mode the engine can *detect* raises a subclass of
:class:`RobustnessError` carrying a ``kind`` (stable label used in
metrics/spans) and a ``stage`` (which degradation rung addresses it —
see :mod:`repro.robust.degrade`).  The hierarchy deliberately
double-inherits from the builtin exception a pre-robustness caller
would have expected (``ValueError`` for bad inputs, ``MemoryError``
for allocation failures) so hardening the engine never *narrows* what
existing ``except`` clauses catch.
"""

from __future__ import annotations


class RobustnessError(RuntimeError):
    """Base of every detectable engine fault.

    Attributes:
        kind: stable short label (metric/span dimension).
        stage: pipeline aspect a degradation rung can swap out —
            ``"mapping"``, ``"matmul"``, ``"numeric"`` or ``"input"``.
    """

    kind = "fault"
    stage = "generic"


class InputValidationError(RobustnessError, ValueError):
    """Malformed point cloud or tensor at an API boundary."""

    kind = "input"
    stage = "input"


class KernelMapCorruptionError(RobustnessError):
    """A kernel map holds out-of-range or inconsistent index pairs."""

    kind = "kmap_corrupt"
    stage = "mapping"


class TableOverflowError(RobustnessError, ValueError):
    """A hash table cannot hold the requested entries."""

    kind = "hash_overflow"
    stage = "mapping"


class GridMemoryError(RobustnessError, MemoryError):
    """A grid table's bounding-box volume exceeds its memory budget."""

    kind = "grid_oom"
    stage = "mapping"


class NumericFaultError(RobustnessError):
    """Non-finite values appeared inside the compute pipeline."""

    kind = "numeric"
    stage = "numeric"


class IntegrityError(RobustnessError):
    """An ABFT checksum residual left its tolerance envelope.

    Raised by the integrity verifier (:mod:`repro.robust.integrity`)
    when a carried checksum disagrees with the recomputed one — the
    signature of silent data corruption (a flipped bit in a feature
    buffer, a corrupted weight, a dropped scatter update).  The stage
    is ``"numeric"`` so the degradation ladder's response is a full
    FP32-scalar recompute of the layer; only if the mismatch persists
    does the error escalate out of the retry loop.
    """

    kind = "integrity"
    stage = "numeric"


class StrategyBookError(RobustnessError, ValueError):
    """A tuned strategy book failed to load or parse."""

    kind = "strategy_book"
    stage = "matmul"


class ConfigError(RobustnessError, ValueError):
    """A configuration dataclass was built with nonsensical values.

    Raised at *construction* time (``__post_init__``) by the serving
    and robustness config objects — negative spare pools, retry counts
    below zero, hedge quantiles outside their domain, duplicate device
    labels — so a bad campaign fails loudly before any event runs
    instead of misbehaving downstream.  Inherits ``ValueError`` so
    pre-audit callers catching that keep working.
    """

    kind = "config"
    stage = "input"


class StoreCorruptionError(RobustnessError):
    """A durable artifact (or the store manifest) failed verification.

    Raised by the persistent artifact store (:mod:`repro.persist`) when
    a blob's size/checksum disagrees with its manifest record, a blob
    fails structural decoding, or the manifest header itself is
    unreadable.  Deliberately **not** in :data:`FAULT_ERRORS`: store
    corruption is handled inside the store (quarantine the entry,
    rebuild from scratch) — the engine's retry ladder must never
    "recover" by re-reading the same poisoned bytes.
    """

    kind = "store_corrupt"
    stage = "mapping"


class DegradationExhaustedError(RobustnessError):
    """Every ladder rung failed; the layer cannot be salvaged."""

    kind = "exhausted"
    stage = "generic"


#: Faults the engine's retry ladder is allowed to catch.  Deliberately
#: excludes :class:`DegradationExhaustedError` (terminal) and plain
#: builtin exceptions (programming errors must keep crashing loudly).
FAULT_ERRORS = (
    InputValidationError,
    KernelMapCorruptionError,
    TableOverflowError,
    GridMemoryError,
    NumericFaultError,
    IntegrityError,
)
