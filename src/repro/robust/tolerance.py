"""Shared numeric tolerance envelopes.

One place for every ``atol``/``rtol`` pair the project compares floats
with.  Two families live here:

* **Comparison envelopes** — named :class:`Envelope` constants for
  "how close must two runs of the same math be", keyed either by name
  (``EXACT_FP32`` for identical-pipeline identities, ``CLOSE_FP32`` for
  reassociated FP32, ...) or by storage dtype via :func:`envelope`.
  Tests and the chaos harness's reference probes draw from these
  instead of scattering literals.
* **ABFT residual bounds** — :func:`checksum_tolerance` and
  :func:`gemm_residual_tolerance`, the detection thresholds of the
  integrity verifier (:mod:`repro.robust.integrity`).  Checksums are
  taken *after* the storage-dtype cast (``repro.core.dataflow._cast``
  returns float32 arrays for every dtype), so the residual between the
  carried checksum and the recomputed one contains only float32
  accumulation error — quantization error cancels.  The bound is the
  probabilistic (random-walk) model

      ``safety * eps(dtype) * sqrt(n_accum) * magnitude``

  where ``n_accum`` counts the float32 additions behind the checksum
  and ``magnitude`` is the operand-derived scale of one accumulated
  term.  ``eps`` is float32 machine epsilon with per-dtype slack for
  the reduced-precision pipelines (vectorized FP16 and INT8 reorder
  their reductions more aggressively).  Corruption below this envelope
  is undetectable *by design* — the same is true of hardware ABFT; the
  ``repro-bench integrity`` campaign measures the recall that the
  envelope actually delivers against seeded bit flips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gpu.memory import DType


@dataclass(frozen=True)
class Envelope:
    """A relative + absolute tolerance pair for ``allclose`` checks."""

    rtol: float
    atol: float

    def allclose(self, actual, desired) -> bool:
        return bool(
            np.allclose(actual, desired, rtol=self.rtol, atol=self.atol)
        )

    def assert_close(self, actual, desired, err_msg: str = "") -> None:
        np.testing.assert_allclose(
            actual, desired, rtol=self.rtol, atol=self.atol, err_msg=err_msg
        )


#: Identical pipeline, identical dtype: only launch-order reassociation.
EXACT_FP32 = Envelope(rtol=1e-5, atol=1e-6)

#: FP32 result vs. an independent FP32 implementation (reference conv,
#: different summation order).
CLOSE_FP32 = Envelope(rtol=1e-4, atol=1e-5)

#: FP32 inference vs. the training stack (autograd graph reorders more).
TRAIN_FP32 = Envelope(rtol=1e-3, atol=1e-4)

#: Anything routed through a half-precision storage round-trip.
HALF = Envelope(rtol=2e-2, atol=2e-2)

#: Symmetric per-tensor INT8 quantization round-trip.
INT8_QUANT = Envelope(rtol=5e-2, atol=5e-2)

#: Whole-model FP16 engine vs. whole-model FP32 engine (errors compound
#: across layers).
END_TO_END = Envelope(rtol=1e-1, atol=1e-1)

#: Storage dtype -> the envelope for comparing that pipeline's output
#: against an FP32 reference.
ENVELOPES: dict[DType, Envelope] = {
    DType.FP32: CLOSE_FP32,
    DType.FP16: HALF,
    DType.INT8: INT8_QUANT,
}


def envelope(dtype: DType) -> Envelope:
    """Comparison envelope for one storage dtype's pipeline output."""
    return ENVELOPES[dtype]


# -- ABFT residual bounds ----------------------------------------------------

#: Effective epsilon of the float32 checksum accumulation per storage
#: dtype.  All pipelines accumulate in float32 (see module docstring);
#: the sub-FP32 rows carry 2x/4x slack for the wider reduction reorder
#: of the vectorized and quantized kernels.
CHECKSUM_EPS: dict[DType, float] = {
    DType.FP32: 2.0**-23,
    DType.FP16: 2.0**-22,
    DType.INT8: 2.0**-21,
}

#: Default multiple of the random-walk error estimate.  8x the
#: square-root model sits far above observed clean residuals (the
#: integrity campaign asserts zero FP32 false positives) while staying
#: orders of magnitude below a single exponent-bit flip.
DEFAULT_SAFETY = 8.0

#: Floor keeping the bound meaningful when operands are all-zero.
_TINY = 1e-30


def checksum_tolerance(
    dtype: DType,
    n_accum: float,
    magnitude: float,
    safety: float = DEFAULT_SAFETY,
) -> float:
    """Allowed |carried - recomputed| for one additive checksum.

    Args:
        dtype: storage dtype of the verified pipeline.
        n_accum: float32 additions behind the checksum entry.
        magnitude: scale of one accumulated term (operand-derived).
        safety: multiple of the random-walk estimate.
    """
    if safety <= 0:
        raise ValueError("safety must be positive")
    n = max(1.0, float(n_accum))
    return safety * CHECKSUM_EPS[dtype] * math.sqrt(n) * abs(magnitude) + _TINY


def gemm_residual_tolerance(
    dtype: DType,
    m: int,
    k: int,
    amax_x: float,
    amax_w: float,
    safety: float = DEFAULT_SAFETY,
) -> float:
    """ABFT bound for an ``(m x k) @ (k x n)`` column checksum.

    Each checksum entry sums ``m`` dot products of length ``k``; one
    term's scale is bounded by ``k * amax_x * amax_w`` (the dot product
    magnitude), and the random walk runs over the ``m`` row additions.
    """
    term = max(1, int(k)) * abs(amax_x) * abs(amax_w)
    return checksum_tolerance(dtype, m, term, safety=safety)
