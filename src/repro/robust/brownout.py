"""Load-adaptive brownout: a hysteresis controller over the QoS ladder.

A production fleet under overload has three choices: shed requests,
miss deadlines, or serve *degraded but on time*.  The brownout
controller implements the third: it watches the serving loop's windowed
load signals — admission-queue depth and the error-budget burn rate of
the SLO monitor (PR 6's ``windowed_slo`` math) — and steps the fleet's
quality-of-service level up and down the
:class:`~repro.robust.degrade.QoSLadder` (INT8 compute, coarser
voxelization).  Every step is cheaper to serve, so the queue drains
faster and deadline misses fall, at an explicit, reported quality cost.

Hysteresis, not a thermostat: the controller uses *separate* enter and
exit thresholds (``enter_depth > exit_depth``, ``enter_burn >
exit_burn``) and a *dwell time* — after any level change it refuses to
move again until ``dwell`` sim-seconds have passed.  Together these
guarantee the ladder never flaps: an enter→exit→enter sequence inside
one dwell window is structurally impossible, and a load level sitting
between the enter and exit thresholds holds the current rung.

The controller is a pure state machine over explicit signals — no
clocks, no RNG, no references into the server — so the same tick
sequence always produces the same level trajectory (the serve loop's
bit-for-bit reproducibility extends through brownout), and it unit-
tests without a fleet.

Kept deliberately separate from the *fault* ladder
(:class:`~repro.robust.degrade.DegradationLadder`): breakers pin fault
rungs per layer on detected faults; brownout steps quality rungs
fleet-wide on load.  They own disjoint state and compose in a fixed
order (quality chooses the base configuration, fault recovery degrades
from it), so the two control loops cannot fight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.robust.degrade import QoSLadder


@dataclass(frozen=True)
class BrownoutConfig:
    """Knobs of the load-adaptive QoS controller.

    Attributes:
        ladder: the quality rungs the controller steps through.
        interval: controller tick period in sim seconds — also the
            width of the signal window the miss rate is computed over.
            ``None`` resolves (in the server) to the campaign's SLO
            window when one is configured, else 8x the traffic mix's
            mean base latency.
        enter_depth: queue depth at or above which a tick engages the
            next deeper rung.
        exit_depth: queue depth at or below which (burn permitting) a
            tick steps back toward full quality.  Must be strictly
            below ``enter_depth`` (the hysteresis band).
        enter_burn: windowed error-budget burn rate (miss rate over
            ``1 - slo_target``) at or above which a tick engages the
            next rung; 1.0 = burning budget exactly as fast as the SLO
            allows.
        exit_burn: burn rate at or below which (depth permitting) a
            tick steps back up.  Must be strictly below ``enter_burn``.
        dwell: minimum sim seconds between level changes.  ``None``
            resolves to 4x the tick interval.
        max_level: deepest level the controller may engage (``None`` =
            the ladder floor).
    """

    ladder: QoSLadder = field(default_factory=QoSLadder)
    interval: float | None = None
    enter_depth: int = 16
    exit_depth: int = 2
    enter_burn: float = 1.0
    exit_burn: float = 0.25
    dwell: float | None = None
    max_level: int | None = None

    def __post_init__(self) -> None:
        if self.interval is not None and self.interval <= 0:
            raise ValueError("interval must be positive")
        if self.dwell is not None and self.dwell <= 0:
            raise ValueError("dwell must be positive")
        if self.exit_depth < 0 or self.enter_depth <= self.exit_depth:
            raise ValueError(
                "need enter_depth > exit_depth >= 0 (the hysteresis band)"
            )
        if self.exit_burn < 0 or self.enter_burn <= self.exit_burn:
            raise ValueError(
                "need enter_burn > exit_burn >= 0 (the hysteresis band)"
            )
        if self.max_level is not None and not (
            0 <= self.max_level <= self.ladder.floor
        ):
            raise ValueError(
                f"max_level must be in [0, {self.ladder.floor}]"
            )

    @property
    def ceiling(self) -> int:
        """Deepest engageable level."""
        return self.ladder.floor if self.max_level is None else self.max_level


class BrownoutController:
    """The hysteresis state machine stepping the fleet's QoS level.

    One :meth:`observe` call per controller tick: the caller supplies
    the instantaneous queue depth and the window's terminal tallies
    (requests finished, requests that missed — late, failed, or shed).
    The controller answers with a change record when it moved, ``None``
    when it held.

    Args:
        config: thresholds and the ladder.
        target: the SLO objective the burn rate is measured against
            (``0.99`` = 1% error budget).
        dwell: resolved dwell time in sim seconds (the server resolves
            ``config.dwell=None`` against the tick interval before
            constructing the controller).
    """

    def __init__(
        self, config: BrownoutConfig, *, target: float = 0.99, dwell: float
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError("target must be in (0, 1)")
        if dwell <= 0:
            raise ValueError("dwell must be positive")
        self.config = config
        self.target = target
        self.dwell = dwell
        #: current QoS level (0 = full quality)
        self.level = 0
        #: sim time of the most recent level change (None before any)
        self.last_change: float | None = None
        #: every change record, in order (the report's ``qos_changes``)
        self.changes: list = []

    @property
    def rung(self) -> str:
        """Display name of the current level."""
        return self.config.ladder.rung_name(self.level)

    def burn_rate(self, misses: int, finished: int) -> float:
        """Windowed error-budget burn: miss rate over ``1 - target``."""
        if finished <= 0:
            return 0.0
        return (misses / finished) / (1.0 - self.target)

    def observe(
        self, now: float, *, queue_depth: int, misses: int, finished: int
    ) -> dict | None:
        """One controller tick; returns the change record or ``None``.

        The decision rule, in order:

        1. inside the dwell window after a change — hold;
        2. overloaded (depth **or** burn at/above its enter threshold)
           and below the ceiling — step one rung deeper;
        3. recovered (depth **and** burn at/below its exit threshold)
           and above full quality — step one rung back up;
        4. otherwise (between the thresholds) — hold.
        """
        cfg = self.config
        if (
            self.last_change is not None
            and now - self.last_change < self.dwell
        ):
            return None
        burn = self.burn_rate(misses, finished)
        overloaded = (
            queue_depth >= cfg.enter_depth or burn >= cfg.enter_burn
        )
        recovered = (
            queue_depth <= cfg.exit_depth and burn <= cfg.exit_burn
        )
        if overloaded and self.level < cfg.ceiling:
            direction, new = "down", self.level + 1  # quality goes down
        elif recovered and self.level > 0:
            direction, new = "up", self.level - 1
        else:
            return None
        self.level = new
        self.last_change = now
        record = {
            "t": float(now),
            "level": new,
            "rung": cfg.ladder.rung_name(new),
            "direction": direction,
            "queue_depth": int(queue_depth),
            "burn": burn,
        }
        self.changes.append(record)
        return record
