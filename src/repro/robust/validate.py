"""Input validation and sanitization for point clouds.

The outermost trust boundary of the engine: everything entering via
:class:`~repro.core.sparse_tensor.SparseTensor` construction or dataset
loading passes through :func:`validate_cloud` under one of three
policies:

* ``strict`` — raise :class:`InputValidationError` on the first issue
  (the right default for tests and offline pipelines);
* ``repair`` — fix what is fixable (zero non-finite features, round
  integral-float coordinates, drop unpackable rows, merge duplicate
  voxels by feature mean) and raise only on the unfixable (empty
  clouds, shape mismatches);
* ``reject`` — like strict, but callers treat the error as "skip this
  sample" (:func:`clean_batch` implements exactly that for loaders).

Each repair/rejection is counted in the metrics registry under
``robust.inputs{action=...}`` so a long-running service can watch its
ingress quality degrade before it becomes an outage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.robust.errors import InputValidationError

POLICIES = ("strict", "repair", "reject")


@dataclass
class ValidationReport:
    """What :func:`validate_cloud` found and did."""

    issues: list = field(default_factory=list)
    repairs: list = field(default_factory=list)
    dropped_rows: int = 0
    merged_duplicates: int = 0
    nonfinite_feats: int = 0

    @property
    def clean(self) -> bool:
        """True when the input needed neither repairs nor complaints."""
        return not self.issues and not self.repairs

    def _issue(self, policy: str, message: str) -> None:
        self.issues.append(message)
        if policy != "repair":
            raise InputValidationError(
                "invalid point cloud: " + "; ".join(self.issues)
            )
        self.repairs.append(message)


def _coord_range():
    from repro.hashmap.coords import COORD_MAX, COORD_MIN

    return COORD_MIN, COORD_MAX


def validate_cloud(
    coords: np.ndarray,
    feats: np.ndarray,
    policy: str = "strict",
) -> tuple[np.ndarray, np.ndarray, ValidationReport]:
    """Validate (and under ``repair``, sanitize) a raw cloud.

    Returns ``(coords int32 (N,4), feats float32 (N,C), report)``.

    Raises:
        InputValidationError: on any issue under ``strict``/``reject``,
            or on unfixable issues (empty cloud, shape mismatch,
            non-numeric data) under every policy.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    report = ValidationReport()
    reg = get_registry()
    reg.counter("robust.inputs", action="validated").inc()

    coords = np.asarray(coords)
    feats = np.asarray(feats)
    if coords.dtype == object or feats.dtype == object:
        raise InputValidationError("coords/feats must be numeric arrays")
    if coords.ndim != 2 or coords.shape[1] != 4:
        raise InputValidationError(
            f"coords must be (N, 4) (batch, x, y, z), got {coords.shape}"
        )
    if feats.ndim != 2:
        raise InputValidationError(f"feats must be (N, C), got {feats.shape}")
    if coords.shape[0] != feats.shape[0]:
        raise InputValidationError(
            f"coords ({coords.shape[0]}) and feats ({feats.shape[0]}) "
            "disagree on the number of points"
        )
    if coords.shape[0] == 0:
        raise InputValidationError("empty point cloud")

    feats = feats.astype(np.float32, copy=True)

    # -- coordinate dtype: floats must be finite and integral --------------
    if np.issubdtype(coords.dtype, np.floating):
        finite = np.isfinite(coords).all(axis=1)
        if not finite.all():
            bad = int((~finite).sum())
            report._issue(policy, f"{bad} coordinate rows are non-finite")
            coords, feats = coords[finite], feats[finite]
            report.dropped_rows += bad
        if coords.size and np.any(coords != np.round(coords)):
            report._issue(policy, "coordinates have fractional values")
            coords = np.round(coords)
        coords = coords.astype(np.int64)
    elif not np.issubdtype(coords.dtype, np.integer):
        raise InputValidationError(
            f"coords dtype {coords.dtype} is not integer or float"
        )
    else:
        coords = coords.astype(np.int64)

    # -- coordinate range: must survive int32 storage and key packing ------
    lo, hi = _coord_range()
    if coords.shape[0]:
        ok = (
            (coords[:, 1:] >= lo).all(axis=1)
            & (coords[:, 1:] <= hi).all(axis=1)
            & (coords[:, 0] >= 0)
            & (coords[:, 0] < (1 << 15))
        )
        if not ok.all():
            bad = int((~ok).sum())
            report._issue(
                policy,
                f"{bad} coordinate rows outside the packable range "
                f"[{lo}, {hi}] (batch in [0, 2^15))",
            )
            coords, feats = coords[ok], feats[ok]
            report.dropped_rows += bad
    if coords.shape[0] == 0:
        raise InputValidationError(
            "no valid points remain after dropping invalid coordinates"
        )

    # -- features: non-finite values --------------------------------------
    finite = np.isfinite(feats)
    if not finite.all():
        n_bad = int((~finite).sum())
        report.nonfinite_feats = n_bad
        report._issue(policy, f"{n_bad} feature values are NaN/Inf")
        feats = np.where(finite, feats, np.float32(0.0))

    # -- duplicate voxels ---------------------------------------------------
    from repro.hashmap.coords import pack_coords

    keys = pack_coords(coords)
    uniq, inverse, counts = np.unique(keys, return_inverse=True, return_counts=True)
    if uniq.shape[0] != keys.shape[0]:
        dups = int(keys.shape[0] - uniq.shape[0])
        report.merged_duplicates = dups
        report._issue(policy, f"{dups} duplicate coordinate rows")
        merged = np.zeros((uniq.shape[0], feats.shape[1]), dtype=np.float64)
        np.add.at(merged, inverse, feats.astype(np.float64))
        merged /= counts[:, None]
        order = np.argsort(inverse, kind="stable")
        first = order[np.searchsorted(inverse[order], np.arange(uniq.shape[0]))]
        coords = coords[first]
        feats = merged.astype(np.float32)

    if report.repairs:
        reg.counter("robust.inputs", action="repaired").inc(len(report.repairs))
    return coords.astype(np.int32), feats, report


def clean_batch(clouds, policy: str = "reject") -> list:
    """Filter/sanitize an iterable of ``(coords, feats)`` pairs.

    Under ``reject`` (the loader default), invalid samples are dropped
    and counted as ``robust.inputs{action=rejected}``; under ``repair``
    they are sanitized in place; under ``strict`` the first bad sample
    raises.  Returns the surviving ``(coords, feats)`` list.
    """
    out = []
    reg = get_registry()
    for coords, feats in clouds:
        try:
            c, f, _ = validate_cloud(coords, feats, policy=policy)
        except InputValidationError:
            if policy != "reject":
                raise
            reg.counter("robust.inputs", action="rejected").inc()
            continue
        out.append((c, f))
    return out
