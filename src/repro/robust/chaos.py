"""Seeded chaos campaigns over the full sparse-conv pipeline.

A campaign runs a small multi-layer model end to end while injecting
one fault kind per trial (every kind in :data:`~repro.robust.faults.FAULT_KINDS`
crossed with engine presets and seeds) and checks, per trial:

* **survival** — with degradation enabled the run must complete;
* **bit-exactness** — the surviving output must equal, bit for bit, a
  fault-free replay whose per-layer circuit breakers are pre-pinned to
  the degradation levels the faulted run recovered at (degraded rungs
  only change *numerics* via the dtype rung, so pinning the replay to
  the same levels must reproduce the same floats);
* **visibility** — every injected shot must be observable in the
  metrics registry (``faults.injected``) and every detection as
  ``robust.faults`` counters and ``fault.*`` spans;
* with degradation *disabled*, faults must surface as typed
  :class:`~repro.robust.errors.RobustnessError` subclasses — never as
  bare ``IndexError``/``AssertionError`` crashes.

Store kinds (``blob_corrupt`` & co.) run against the durable artifact
store, and the correlated domain kinds (``domain_outage`` /
``domain_degrade``) against a mini two-domain serving fleet — each
with its own survival / visibility / bit-exactness criteria (see
:func:`_run_store_trial` and :func:`_run_domain_trial`).

A per-preset reference probe additionally checks the hardened engine
against :func:`repro.core.reference.sparse_conv_reference` on a clean
input (tolerance scaled to the preset's dtype), guarding against the
robustness layer itself perturbing fault-free numerics.

Backs the ``repro-bench chaos`` CLI and the CI chaos smoke job.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.engine import BaseEngine, EngineConfig, ExecutionContext
from repro.core.reference import sparse_conv_reference
from repro.core.sparse_tensor import SparseTensor
from repro.core.tuner import LayerStrategy, StrategyBook
from repro.nn.modules import Conv3d, ReLU, Sequential
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.robust.degrade import DEFAULT_LADDER, CircuitBreaker, RobustConfig
from repro.robust.integrity import IntegrityConfig
from repro.robust.tolerance import envelope
from repro.robust.errors import RobustnessError
from repro.robust.faults import (
    DOMAIN_FAULT_KINDS,
    PIPELINE_FAULT_KINDS,
    STICKY_KINDS,
    STORE_FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    inject_faults,
    maybe_corrupt_cloud,
)

PRESETS = ("torchsparse", "baseline")

_PRESET_FACTORIES = {
    "torchsparse": EngineConfig.torchsparse,
    "baseline": EngineConfig.baseline,
}


@dataclass
class ChaosTrial:
    """Outcome of one (fault kind, preset, seed) trial."""

    kind: str
    preset: str
    seed: int
    degrade: bool
    survived: bool = False
    #: injected shots actually fired (0 when the site never applied,
    #: e.g. ``matmul_nan`` under an FP32 preset)
    shots: int = 0
    #: every fired shot is visible in the metrics registry
    visible: bool = True
    #: faults the engine detected (``robust.faults`` counter total)
    detected: int = 0
    #: layer name -> rung name for layers that recovered degraded
    degraded_layers: dict = field(default_factory=dict)
    #: surviving output equals the pre-pinned fault-free replay
    bitexact: bool | None = None
    error: str = ""
    #: ``kind`` attribute of a typed RobustnessError, ``""`` otherwise
    error_kind: str = ""

    @property
    def ok(self) -> bool:
        """Did this trial meet its acceptance criterion?"""
        if self.degrade:
            return self.survived and self.visible and self.bitexact is not False
        # detection-only mode: either nothing fired / the fault is
        # absorbed inline, or the failure was a *typed* error
        if self.survived:
            return self.visible
        return self.error_kind != ""

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "preset": self.preset,
            "seed": self.seed,
            "degrade": self.degrade,
            "survived": self.survived,
            "shots": self.shots,
            "visible": self.visible,
            "detected": self.detected,
            "degraded_layers": dict(self.degraded_layers),
            "bitexact": self.bitexact,
            "error": self.error,
            "error_kind": self.error_kind,
            "ok": self.ok,
        }


@dataclass
class ChaosReport:
    """Aggregate of a campaign: trials plus per-preset reference probes."""

    trials: list = field(default_factory=list)
    #: preset name -> hardened engine matches the reference implementation
    reference_ok: dict = field(default_factory=dict)
    degrade: bool = True

    @property
    def survival_rate(self) -> float:
        if not self.trials:
            return 1.0
        return sum(t.survived for t in self.trials) / len(self.trials)

    @property
    def ok_rate(self) -> float:
        if not self.trials:
            return 1.0
        return sum(t.ok for t in self.trials) / len(self.trials)

    @property
    def degradation_mix(self) -> dict:
        """rung name -> number of layer recoveries across the campaign."""
        mix: dict = {}
        for t in self.trials:
            for rung in t.degraded_layers.values():
                mix[rung] = mix.get(rung, 0) + 1
        return mix

    @property
    def passed(self) -> bool:
        return self.ok_rate == 1.0 and all(self.reference_ok.values())

    @property
    def per_preset(self) -> dict:
        """preset -> {trials, survived, ok, reference_ok} summary."""
        out: dict = {}
        for t in self.trials:
            entry = out.setdefault(
                t.preset, {"trials": 0, "survived": 0, "ok": 0}
            )
            entry["trials"] += 1
            entry["survived"] += int(t.survived)
            entry["ok"] += int(t.ok)
        for preset, ok in self.reference_ok.items():
            out.setdefault(
                preset, {"trials": 0, "survived": 0, "ok": 0}
            )["reference_ok"] = bool(ok)
        return out

    def to_json(self) -> dict:
        return {
            "degrade": self.degrade,
            "survival_rate": self.survival_rate,
            "ok_rate": self.ok_rate,
            "degradation_mix": self.degradation_mix,
            "reference_ok": dict(self.reference_ok),
            "per_preset": self.per_preset,
            "passed": self.passed,
            "trials": [t.to_json() for t in self.trials],
        }


# -- trial machinery --------------------------------------------------------


def _make_cloud(seed: int, kind: str, n: int = 160, channels: int = 4):
    """A deterministic cloud; spread out for ``hash_overflow`` so the
    auto backend picks the hashmap (the grid stays under budget on
    compact clouds, and a grid build never exercises hash insertion)."""
    rng = np.random.default_rng(seed)
    extent = 4096 if kind == "hash_overflow" else 24
    coords = np.concatenate(
        [
            np.zeros((n, 1), dtype=np.int64),
            rng.integers(0, extent, size=(n, 3)),
        ],
        axis=1,
    )
    coords = np.unique(coords, axis=0)
    feats = rng.normal(size=(coords.shape[0], channels)).astype(np.float32)
    return coords.astype(np.int32), feats


def _make_model(seed: int, channels: int = 4) -> Sequential:
    rng = np.random.default_rng(seed + 1)
    return Sequential(
        Conv3d(channels, 8, kernel_size=3, rng=rng),
        ReLU(),
        Conv3d(8, 16, kernel_size=2, stride=2, rng=rng),
        ReLU(),
        Conv3d(16, 16, kernel_size=3, rng=rng),
    )


def _make_book(model: Sequential) -> StrategyBook:
    book = StrategyBook(device_name="chaos")
    for conv in model.conv_layers():
        book.set(conv.name, LayerStrategy(epsilon=0.4, s_threshold=float("inf")))
    return book


def _trial_config(preset: str, book: StrategyBook, degrade: bool) -> EngineConfig:
    base = _PRESET_FACTORIES[preset](strategy_book=book)
    return replace(
        base,
        robustness=RobustConfig(
            detect=True,
            degrade=degrade,
            input_policy="repair" if degrade else "strict",
            # ABFT verification armed so the SDC kinds in
            # PIPELINE_FAULT_KINDS are detectable by every campaign
            integrity=IntegrityConfig(),
        ),
    )


def _specs_for(kind: str) -> list:
    count = -1 if kind in STICKY_KINDS else 1
    return [FaultSpec(kind=kind, count=count)]


def _replay(
    config: EngineConfig, model: Sequential, x: SparseTensor, faulted: BaseEngine
) -> SparseTensor:
    """Fault-free re-run with breakers pre-pinned to the faulted run's
    recovery levels (``last_good``), on a fresh engine and context."""
    engine = BaseEngine(config=config)
    threshold = config.robustness.breaker_threshold
    for label, breaker in faulted.breakers.items():
        engine.breakers[label] = CircuitBreaker(
            threshold=threshold, pinned=breaker.last_good
        )
    ctx = ExecutionContext(engine=engine)
    return model(x, ctx)


def _run_store_trial(
    kind: str, preset: str, seed: int, degrade: bool
) -> ChaosTrial:
    """One disk-fault trial against the durable artifact store.

    The trial models the full life of a store under a seeded disk
    fault: a clean no-store run establishes the reference output; then,
    with the injector armed, a store-backed run populates the durable
    tier (the fault lands on a blob write or manifest append), a
    *second* store instance over the same root simulates the post-crash
    process (manifest replay + recovery, every load verified), and a
    :meth:`~repro.persist.store.ArtifactStore.scrub` pass repairs the
    store offline.

    Acceptance per trial: both store-backed runs produce the clean
    output bit for bit (a poisoned artifact was never *served* — the
    verified load path rebuilt instead), every fired shot was visible
    and detected (quarantine counters + replay recovery), and the
    scrubbed store verifies clean.
    """
    import shutil
    import tempfile

    from repro.persist import ArtifactStore, StoreBackedMappingCache

    trial = ChaosTrial(kind=kind, preset=preset, seed=seed, degrade=degrade)
    registry = MetricsRegistry()
    coords, feats = _make_cloud(seed, kind)
    model = _make_model(seed)
    config = _trial_config(preset, _make_book(model), degrade)
    injector = FaultInjector(seed=seed, specs=_specs_for(kind))
    root = tempfile.mkdtemp(prefix="repro-chaos-store-")
    recovered = {}
    leftover: dict = {"corrupt": []}
    outs: list = []
    try:
        with use_registry(registry):
            policy = "repair" if degrade else "strict"
            x = SparseTensor.sanitized(coords, feats, policy=policy)
            clean = model(x, ExecutionContext(engine=BaseEngine(config=config)))
            try:
                with inject_faults(injector):
                    # process 1 populates the store; the fault lands
                    # somewhere on its write path
                    store = ArtifactStore(root)
                    outs.append(
                        model(
                            x,
                            ExecutionContext(
                                engine=BaseEngine(config=config),
                                mapcache=StoreBackedMappingCache(store),
                            ),
                        )
                    )
                    # process 2 opens the same root cold: manifest
                    # replay tolerates the damage, loads re-verify
                    store2 = ArtifactStore(root)
                    recovered = dict(store2.recovery)
                    outs.append(
                        model(
                            x,
                            ExecutionContext(
                                engine=BaseEngine(config=config),
                                mapcache=StoreBackedMappingCache(store2),
                            ),
                        )
                    )
                    store2.scrub()
                    leftover = store2.verify()
                trial.survived = True
            except RobustnessError as e:
                trial.error = str(e)
                trial.error_kind = e.kind
            except Exception as e:  # untyped crash: always a failure
                trial.error = f"{type(e).__name__}: {e}"
    finally:
        shutil.rmtree(root, ignore_errors=True)

    trial.shots = injector.shots
    scalars = registry.scalars()
    injected = sum(
        v for k, v in scalars.items() if k.startswith("faults.injected")
    )
    trial.visible = trial.shots == 0 or injected >= trial.shots
    trial.detected = int(
        sum(
            v
            for k, v in scalars.items()
            if k.startswith("persist.quarantined")
        )
        + sum(recovered.values())
    )
    if trial.survived:
        trial.bitexact = bool(
            all(
                np.array_equal(out.coords, clean.coords)
                and np.array_equal(out.feats, clean.feats)
                for out in outs
            )
            and not leftover["corrupt"]
        )
    return trial


def _run_domain_trial(
    kind: str, preset: str, seed: int, degrade: bool
) -> ChaosTrial:
    """One correlated-failure trial against a mini serve fleet.

    Domain kinds have no site in the single-request pipeline — the
    trial runs a small seeded serving campaign (latency overrides, no
    engine) over a two-domain fleet with the injector armed, twice with
    the same seed.

    Acceptance per trial: the campaign survives (every request reaches
    a terminal state — the serve loop's liveness invariant — with the
    storm defense engaged when ``degrade`` is on), every fired window
    is visible (``faults.injected`` plus the domain breaker / degraded-
    dispatch activity it caused), and the two same-seed reports are
    JSON-identical (bit-exactness extends through the correlated-fault
    path).
    """
    import json

    from repro.robust.domains import StormConfig

    trial = ChaosTrial(kind=kind, preset=preset, seed=seed, degrade=degrade)

    def one_run():
        from repro.gpu.device import RTX_2080TI, RTX_3090
        from repro.serve.server import ServeConfig, run_serve_campaign
        from repro.serve.traffic import TrafficConfig

        registry = MetricsRegistry()
        config = ServeConfig(
            devices=(RTX_2080TI, RTX_2080TI, RTX_3090, RTX_3090),
            domains=("rack0", "rack0", "rack1", "rack1"),
            preset=preset,
            latency_overrides={"m": 0.004},
            seed=seed,
            storm=StormConfig() if degrade else None,
        )
        traffic = TrafficConfig(
            rate=400.0, duration=0.5, models=("m",), seed=seed
        )
        injector = FaultInjector(seed=seed, specs=_specs_for(kind))
        with use_registry(registry):
            report = run_serve_campaign(config, traffic, injector=injector)
        return report, injector, registry

    try:
        report, injector, registry = one_run()
        replay, _, _ = one_run()
        trial.survived = report.all_terminal
        trial.bitexact = json.dumps(
            report.to_json(), sort_keys=True
        ) == json.dumps(replay.to_json(), sort_keys=True)
    except RobustnessError as e:
        trial.error = str(e)
        trial.error_kind = e.kind
        return trial
    except Exception as e:  # untyped crash: always a failure
        trial.error = f"{type(e).__name__}: {e}"
        return trial

    trial.shots = injector.shots
    scalars = registry.scalars()
    injected = sum(
        v for k, v in scalars.items() if k.startswith("faults.injected")
    )
    trial.visible = trial.shots == 0 or injected >= trial.shots
    # what the fleet *noticed*: breaker openings for outages, inflated-
    # service activity shows up as quarantines/retries for degrades
    trial.detected = int(
        sum(
            v
            for k, v in scalars.items()
            if k.startswith("serve.domain_outages")
            or k.startswith("serve.mass_quarantines")
            or k.startswith("serve.quarantines")
            or k.startswith("serve.retries")
        )
    )
    return trial


def run_trial(
    kind: str, preset: str, seed: int, degrade: bool = True
) -> ChaosTrial:
    """Run one end-to-end trial under a fresh metrics registry."""
    if kind in STORE_FAULT_KINDS:
        return _run_store_trial(kind, preset, seed, degrade)
    if kind in DOMAIN_FAULT_KINDS:
        return _run_domain_trial(kind, preset, seed, degrade)
    trial = ChaosTrial(kind=kind, preset=preset, seed=seed, degrade=degrade)
    registry = MetricsRegistry()
    coords, feats = _make_cloud(seed, kind)
    model = _make_model(seed)
    config = _trial_config(preset, _make_book(model), degrade)
    engine = BaseEngine(config=config)
    injector = FaultInjector(seed=seed, specs=_specs_for(kind))

    out = None
    x = None
    with use_registry(registry):
        try:
            with inject_faults(injector):
                if kind == "input_corrupt":
                    coords, feats, _ = maybe_corrupt_cloud(coords, feats)
                policy = "repair" if degrade else "strict"
                x = SparseTensor.sanitized(coords, feats, policy=policy)
                ctx = ExecutionContext(engine=engine)
                out = model(x, ctx)
            trial.survived = True
        except RobustnessError as e:
            trial.error = str(e)
            trial.error_kind = e.kind
        except Exception as e:  # untyped crash: always a failure
            trial.error = f"{type(e).__name__}: {e}"

    trial.shots = injector.shots
    scalars = registry.scalars()
    injected = sum(
        v for k, v in scalars.items() if k.startswith("faults.injected")
    )
    trial.visible = trial.shots == 0 or injected >= trial.shots
    trial.detected = int(
        sum(v for k, v in scalars.items() if k.startswith("robust.faults"))
    )
    trial.degraded_layers = {
        label: DEFAULT_LADDER.rung_name(b.last_good)
        for label, b in engine.breakers.items()
        if b.last_good > 0
    }

    if trial.survived and degrade and out is not None:
        with use_registry(MetricsRegistry()):
            replay = _replay(config, model, x, engine)
        trial.bitexact = bool(
            np.array_equal(out.coords, replay.coords)
            and np.array_equal(out.feats, replay.feats)
        )
    return trial


def reference_probe(preset: str, seed: int = 0) -> bool:
    """Hardened engine vs. the literal Equation-1 reference on a clean
    submanifold conv (tolerance matched to the preset's storage dtype)."""
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [
                np.zeros((48, 1), dtype=np.int64),
                rng.integers(0, 8, size=(48, 3)),
            ],
            axis=1,
        ),
        axis=0,
    ).astype(np.int32)
    feats = rng.normal(size=(coords.shape[0], 4)).astype(np.float32)
    weights = (rng.normal(size=(27, 4, 6)) * 0.2).astype(np.float32)
    config = EngineConfig.hardened(
        _PRESET_FACTORIES[preset](), integrity=IntegrityConfig()
    )
    engine = BaseEngine(config=config)
    with use_registry(MetricsRegistry()):
        ctx = ExecutionContext(engine=engine)
        out = engine.convolution(
            SparseTensor(coords, feats), weights, ctx, kernel_size=3, stride=1
        )
    ref = sparse_conv_reference(coords, feats, weights, coords, 3, stride=1)
    return envelope(config.dtype).allclose(out.feats, ref)


def run_campaign(
    kinds=PIPELINE_FAULT_KINDS,
    presets=PRESETS,
    seeds=(0, 1, 2),
    degrade: bool = True,
) -> ChaosReport:
    """The full cross product of fault kinds x presets x seeds.

    Serve-layer kinds (``device_crash`` & co.) have no injection site in
    the single-request pipeline and are rejected here — campaign them
    through ``repro-bench serve`` instead.
    """
    report = ChaosReport(degrade=degrade)
    for preset in presets:
        if preset not in _PRESET_FACTORIES:
            raise ValueError(
                f"unknown preset {preset!r}; expected one of {PRESETS}"
            )
        report.reference_ok[preset] = reference_probe(preset)
    for kind in kinds:
        if kind not in PIPELINE_FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r}; expected one of "
                f"{PIPELINE_FAULT_KINDS}"
            )
        for preset in presets:
            for seed in seeds:
                report.trials.append(
                    run_trial(kind, preset, int(seed), degrade=degrade)
                )
    return report
