"""Algorithm-based fault tolerance (ABFT) for the sparse-conv pipeline.

The fast paths this engine reproduces (FP16 vectorized movement,
adaptive-grouping ``bmm``) are exactly the ones where a flipped bit in
a feature buffer ships silently: nothing crashes, nothing goes NaN, a
``completed`` request carries garbage.  This module closes that hole
with checksums carried *through* the algebra instead of recomputation:

* **Checksummed GEMM** — for ``Y = X @ W`` the column-sum identity
  ``1ᵀY = (1ᵀX) W`` holds exactly in real arithmetic, so the checksum
  row of the inputs, multiplied once by the weights (``O(k·n)`` extra
  work against the GEMM's ``O(m·k·n)``), predicts the checksum row of
  the output.  The float32 residual between prediction and the reduced
  output is bounded by the per-dtype envelope in
  :mod:`repro.robust.tolerance`; anything outside it is corruption.
* **Buffer sentinels** — additive checksums over gather inputs and the
  scatter accumulator.  Both exploit permutation invariance of the
  kernel map: a sum over gathered rows does not care in which order the
  movement kernel visited them, and the scatter accumulator's column
  sum equals the sum of every partial's column sum regardless of how
  output rows interleave across offsets.
* **Weight sentinels** — a golden per-offset checksum taken at load
  time (right after the storage-dtype cast); corruption of the weight
  buffer *after* that point fools the GEMM checksums (both sides use
  the corrupted operand) but not the golden sum.

On mismatch the checker raises
:class:`~repro.robust.errors.IntegrityError` (stage ``"numeric"``), so
the engine's degradation ladder recomputes the layer once at FP32
scalar; only a persistent mismatch escalates out of the retry loop.

Verification is *observation only*: it never modifies features or
weights, so verified runs are bit-exact with unverified ones on clean
inputs.  Its cost (the checksum traffic's extra bytes and FLOPs) is
modeled through :func:`repro.gpu.gemm.checksum_cost` and surfaced as an
``integrity.checksum`` profile record plus ``integrity.*`` metrics, so
the overhead is visible in BENCH reports.

:func:`run_integrity_campaign` drives seeded bit-flip campaigns
(``repro-bench integrity``) measuring detection recall and
false-positive rate per storage dtype.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpu.memory import DType
from repro.obs.metrics import get_registry
from repro.robust.errors import IntegrityError
from repro.robust.faults import maybe_force_checksum_mismatch
from repro.robust.tolerance import (
    DEFAULT_SAFETY,
    checksum_tolerance,
    gemm_residual_tolerance,
)

INTEGRITY_SCHEMA = "repro-bench.integrity/1"


@dataclass(frozen=True)
class IntegrityConfig:
    """Knobs of the ABFT verifier (all checks on by default).

    Attributes:
        verify_gemm: carry column checksums through ``mm``/``bmm`` and
            verify the post-matmul residual.
        verify_movement: additive sentinels over gathered buffers.
        verify_output: sentinel over the scatter accumulator.
        verify_weights: golden load-time weight checksum.
        safety: multiple of the random-walk residual estimate
            (:mod:`repro.robust.tolerance`).
        model_overhead: price the checksum traffic into the profile so
            BENCH reports show the verification cost.
    """

    verify_gemm: bool = True
    verify_movement: bool = True
    verify_output: bool = True
    verify_weights: bool = True
    safety: float = DEFAULT_SAFETY
    model_overhead: bool = True

    def __post_init__(self) -> None:
        if self.safety <= 0:
            raise ValueError("safety must be positive")


class IntegrityChecker:
    """Per-layer ABFT state: golden checksums, running output checksum,
    and the modeled cost of maintaining them.

    One checker covers one dataflow execution
    (:func:`repro.core.dataflow.execute_gather_matmul_scatter` or the
    fetch-on-demand path).  The dataflow calls, in order: :meth:`begin`
    once, then per offset :meth:`source_checksum` /
    :meth:`check_buffer` / :meth:`check_matmul` / :meth:`absorb`, then
    :meth:`verify_weights` and :meth:`check_output`, and finally
    :meth:`finish` to emit the priced overhead.
    """

    def __init__(
        self,
        config: IntegrityConfig,
        dtype: DType,
        device,
        metrics=None,
        label: str = "",
    ) -> None:
        self.config = config
        self.dtype = dtype
        self.device = device
        self.metrics = metrics if metrics is not None else get_registry()
        self.label = label or "conv"
        self._c_in = 0
        self._amax_x = 0.0
        self._amax_w = 0.0
        self._w_golden: np.ndarray | None = None
        self._expected_out: np.ndarray | None = None
        #: feature rows absorbed into the output checksum (its n_accum)
        self._rows = 0
        self._time = 0.0
        self._flops = 0.0
        self._bytes = 0.0
        self.checks = 0
        self.mismatches = 0

    # -- lifecycle -----------------------------------------------------------

    def begin(self, x: np.ndarray, w: np.ndarray) -> None:
        """Take operand magnitudes and the golden weight checksum.

        Runs immediately after the storage-dtype cast — the model of a
        load-time checksum: every later corruption of the weight buffer
        is visible against it.
        """
        self._c_in = int(x.shape[1]) if x.ndim == 2 else 0
        self._amax_x = float(np.abs(x).max()) if x.size else 0.0
        self._amax_w = float(np.abs(w).max()) if w.size else 0.0
        if self.config.verify_weights:
            self._w_golden = w.astype(np.float64).sum(axis=(1, 2))
            self._account(flops=float(w.size), nbytes=8.0 * w.shape[0])
        self._expected_out = None
        self._rows = 0

    def finish(self, profile=None) -> None:
        """Emit the accumulated verification cost (metrics + profile)."""
        reg = self.metrics
        reg.counter("integrity.flops").inc(self._flops)
        reg.counter("integrity.bytes").inc(self._bytes)
        if (
            self.config.model_overhead
            and profile is not None
            and self._time > 0.0
        ):
            profile.log(
                "integrity.checksum",
                "other",
                self._time,
                bytes_moved=self._bytes,
                flops=self._flops,
            )

    # -- checks --------------------------------------------------------------

    def source_checksum(self, x: np.ndarray, idx) -> np.ndarray:
        """Input-side checksum of one offset's rows, from the source
        tensor (permutation-invariant over the kernel map's order)."""
        return x[idx].astype(np.float64).sum(axis=0)

    def check_buffer(self, buffer: np.ndarray, src: np.ndarray, site: str) -> None:
        """Gather sentinel: the staged buffer must sum to the source
        checksum (zero residual when clean — same rows, same order)."""
        if not self.config.verify_movement:
            return
        rows = int(buffer.shape[0])
        self._account(
            flops=2.0 * buffer.size + buffer.shape[-1],
            nbytes=16.0 * buffer.shape[-1],
        )
        actual = buffer.astype(np.float64).sum(axis=0)
        tol = checksum_tolerance(
            self.dtype, rows, self._amax_x, safety=self.config.safety
        )
        self._verdict(actual, src, tol, "gather", site)

    def check_matmul(
        self,
        partial: np.ndarray,
        src: np.ndarray,
        w_n: np.ndarray,
        m: int,
        site: str,
    ) -> None:
        """Checksummed GEMM: ``partial``'s column sums must equal the
        carried input checksum times the weights, within the envelope."""
        if not self.config.verify_gemm:
            return
        from repro.gpu.gemm import checksum_cost

        k, n = int(w_n.shape[0]), int(w_n.shape[1])
        cost = checksum_cost(m, k, n, self.dtype, self.device)
        self._account(flops=cost.flops, nbytes=cost.bytes_moved, time=cost.time)
        expected = src @ w_n.astype(np.float64)
        actual = partial.astype(np.float64).sum(axis=0)
        tol = gemm_residual_tolerance(
            self.dtype, m, k, self._amax_x, self._amax_w,
            safety=self.config.safety,
        )
        self._verdict(actual, expected, tol, "matmul", site)

    def absorb(self, partial: np.ndarray) -> None:
        """Fold one partial's column checksum into the expected output
        checksum (linearity: scatter-add cannot change column sums)."""
        if not self.config.verify_output:
            return
        s = partial.astype(np.float64).sum(axis=0)
        self._rows += int(partial.shape[0])
        if self._expected_out is None:
            self._expected_out = s
        else:
            self._expected_out = self._expected_out + s

    def check_output(self, acc: np.ndarray, site: str) -> None:
        """Scatter sentinel: the accumulator's column sums must equal
        the absorbed partials' (output-order invariant)."""
        if not self.config.verify_output or self._expected_out is None:
            return
        self._account(
            flops=2.0 * acc.size + acc.shape[-1],
            nbytes=16.0 * acc.shape[-1],
        )
        actual = acc.astype(np.float64).sum(axis=0)
        magnitude = max(1, self._c_in) * self._amax_x * self._amax_w
        tol = checksum_tolerance(
            self.dtype, self._rows, magnitude, safety=self.config.safety
        )
        self._verdict(actual, self._expected_out, tol, "scatter", site)

    def verify_weights(self, w: np.ndarray, site: str) -> None:
        """Weight sentinel: the buffer must still match its golden
        load-time checksum (exact when clean — same buffer)."""
        if self._w_golden is None:
            return
        self._account(flops=float(w.size), nbytes=8.0 * w.shape[0])
        actual = w.astype(np.float64).sum(axis=(1, 2))
        tol = checksum_tolerance(
            self.dtype,
            w.shape[1] * w.shape[2],
            self._amax_w,
            safety=self.config.safety,
        )
        self._verdict(actual, self._w_golden, tol, "weights", site)

    # -- internals -----------------------------------------------------------

    def _verdict(
        self,
        actual: np.ndarray,
        expected: np.ndarray,
        tol: float,
        stage: str,
        site: str,
    ) -> None:
        self.checks += 1
        self.metrics.counter("integrity.checks", stage=stage).inc()
        residual = float(np.max(np.abs(np.subtract(actual, expected))))
        clean = np.isfinite(residual) and residual <= tol
        # fault-injection site: the checksum state itself corrupted
        if maybe_force_checksum_mismatch(f"{self.label}.{stage}.{site}"):
            clean = False
        if clean:
            return
        self.mismatches += 1
        self.metrics.counter("integrity.mismatches", stage=stage).inc()
        raise IntegrityError(
            f"{self.label}: {stage} checksum residual {residual:.3e} exceeds "
            f"envelope {tol:.3e} at {site} ({self.dtype.name})"
        )

    def _account(self, flops: float, nbytes: float, time: float | None = None) -> None:
        self._flops += flops
        self._bytes += nbytes
        if time is None:
            # sentinel reductions: streaming adds on CUDA cores
            time = max(
                self.device.compute_time(flops, DType.FP32, utilization=0.5),
                self.device.mem_time(nbytes),
            )
        self._time += time


# -- seeded SDC campaigns ----------------------------------------------------

#: Storage-dtype presets the campaign crosses with fault kinds.  Keys
#: double as the report's dtype labels.
DTYPE_PRESET_KEYS = ("fp32", "fp16", "int8")


def _dtype_config(key: str):
    """Engine config for one dtype preset, integrity armed."""
    from repro.core.engine import EngineConfig
    from repro.robust.degrade import RobustConfig

    if key == "fp32":
        base = EngineConfig.baseline()
    elif key == "fp16":
        base = EngineConfig.torchsparse()
    elif key == "int8":
        base = EngineConfig.torchsparse(dtype=DType.INT8)
    else:
        raise ValueError(
            f"unknown dtype preset {key!r}; expected one of {DTYPE_PRESET_KEYS}"
        )
    from dataclasses import replace

    return replace(
        base,
        robustness=RobustConfig(integrity=IntegrityConfig()),
    )


@dataclass
class IntegrityTrial:
    """Outcome of one (SDC kind, dtype preset, seed) trial."""

    kind: str
    dtype: str
    seed: int
    #: injected shots fired
    shots: int = 0
    #: integrity mismatches the verifier reported
    detected: int = 0
    #: run finished (recompute absorbed the fault)
    survived: bool = False
    #: a survived run's output matches a clean (uninjected) run within
    #: the dtype envelope — a "recovery" that ships corrupted data is
    #: not a recovery
    output_ok: bool = True
    #: layer -> rung for layers that recovered degraded
    recovered_layers: dict = field(default_factory=dict)
    error: str = ""
    error_kind: str = ""

    @property
    def caught(self) -> bool:
        """Every fired shot was flagged by the verifier."""
        return self.shots == 0 or self.detected > 0

    @property
    def ok(self) -> bool:
        return self.survived and self.caught and self.output_ok

    def to_json(self) -> dict:
        return {
            "kind": self.kind,
            "dtype": self.dtype,
            "seed": self.seed,
            "shots": self.shots,
            "detected": self.detected,
            "caught": self.caught,
            "survived": self.survived,
            "output_ok": self.output_ok,
            "recovered_layers": dict(self.recovered_layers),
            "error": self.error,
            "error_kind": self.error_kind,
            "ok": self.ok,
        }


@dataclass
class CleanProbe:
    """Clean-input control run for one dtype preset."""

    dtype: str
    seed: int
    #: verification checks executed
    checks: int = 0
    #: mismatches on clean input (false positives)
    false_positives: int = 0
    #: verified output is bit-for-bit the unverified engine's output
    bitexact: bool = False
    #: single conv within the dtype's envelope of the Equation-1 reference
    reference_ok: bool = False

    @property
    def ok(self) -> bool:
        return self.false_positives == 0 and self.bitexact and self.reference_ok

    def to_json(self) -> dict:
        return {
            "dtype": self.dtype,
            "seed": self.seed,
            "checks": self.checks,
            "false_positives": self.false_positives,
            "false_positive_rate": (
                0.0 if not self.checks else self.false_positives / self.checks
            ),
            "bitexact": self.bitexact,
            "reference_ok": self.reference_ok,
            "ok": self.ok,
        }


@dataclass
class IntegrityReport:
    """Aggregate of one SDC campaign: recall, FP rate, clean probes."""

    trials: list = field(default_factory=list)
    clean: list = field(default_factory=list)
    severity: float = 0.05

    @property
    def recall(self) -> float:
        """Fraction of fired-fault trials the verifier caught."""
        fired = [t for t in self.trials if t.shots > 0]
        if not fired:
            return 1.0
        return sum(t.caught for t in fired) / len(fired)

    @property
    def recall_by_kind(self) -> dict:
        out: dict = {}
        for t in self.trials:
            if t.shots == 0:
                continue
            hit, total = out.get(t.kind, (0, 0))
            out[t.kind] = (hit + int(t.caught), total + 1)
        return {k: hit / total for k, (hit, total) in out.items()}

    @property
    def false_positive_rate(self) -> dict:
        """dtype -> clean-run mismatches per executed check."""
        return {
            p.dtype: (0.0 if not p.checks else p.false_positives / p.checks)
            for p in self.clean
        }

    @property
    def fp32_false_positives(self) -> int:
        return sum(p.false_positives for p in self.clean if p.dtype == "fp32")

    def gate(self, recall_floor: float = 0.95, fp_budget: float = 0.0) -> bool:
        """The acceptance gate ``repro-bench integrity`` exits on."""
        if self.recall < recall_floor:
            return False
        if self.fp32_false_positives > 0:
            return False
        for probe in self.clean:
            if not probe.bitexact or not probe.reference_ok:
                return False
            if probe.dtype != "fp32" and probe.checks:
                if probe.false_positives / probe.checks > fp_budget:
                    return False
        return all(t.ok for t in self.trials)

    @property
    def passed(self) -> bool:
        return self.gate()

    def to_json(
        self, recall_floor: float = 0.95, fp_budget: float = 0.0
    ) -> dict:
        """Serialize; ``passed`` honours the same thresholds as the CLI
        exit status so the persisted report never contradicts it."""
        return {
            "schema": INTEGRITY_SCHEMA,
            "severity": self.severity,
            "recall": self.recall,
            "recall_by_kind": dict(sorted(self.recall_by_kind.items())),
            "false_positive_rate": dict(
                sorted(self.false_positive_rate.items())
            ),
            "fp32_false_positives": self.fp32_false_positives,
            "passed": self.gate(
                recall_floor=recall_floor, fp_budget=fp_budget
            ),
            "clean": [p.to_json() for p in self.clean],
            "trials": [t.to_json() for t in self.trials],
        }


def run_integrity_trial(
    kind: str, dtype_key: str, seed: int, severity: float = 0.05
) -> IntegrityTrial:
    """One seeded SDC shot against an integrity-hardened model run."""
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.robust.chaos import _make_book, _make_cloud, _make_model
    from repro.robust.degrade import DEFAULT_LADDER
    from repro.robust.errors import RobustnessError
    from repro.robust.faults import FaultInjector, FaultSpec, inject_faults

    from repro.core.engine import BaseEngine, ExecutionContext
    from repro.core.sparse_tensor import SparseTensor

    trial = IntegrityTrial(kind=kind, dtype=dtype_key, seed=seed)
    registry = MetricsRegistry()
    coords, feats = _make_cloud(seed, kind)
    model = _make_model(seed)
    from dataclasses import replace

    config = replace(_dtype_config(dtype_key), strategy_book=_make_book(model))
    engine = BaseEngine(config=config)
    injector = FaultInjector(
        seed=seed, specs=[FaultSpec(kind=kind, count=1, severity=severity)]
    )
    out = None
    with use_registry(registry):
        try:
            with inject_faults(injector):
                x = SparseTensor.sanitized(coords, feats, policy="repair")
                ctx = ExecutionContext(engine=engine)
                out = model(x, ctx)
            trial.survived = True
        except RobustnessError as e:
            trial.error = str(e)
            trial.error_kind = e.kind
        except Exception as e:  # untyped crash: always a failure
            trial.error = f"{type(e).__name__}: {e}"
    trial.shots = injector.shots
    if trial.survived and out is not None:
        # A recovery only counts if the shipped output matches a clean
        # run.  Fresh model + engine: the injected run must not have
        # been able to corrupt anything that outlives it (e.g. the
        # model's weight tensors via an aliased dtype cast).
        from repro.robust.tolerance import CLOSE_FP32, END_TO_END

        with use_registry(MetricsRegistry()):
            clean_ctx = ExecutionContext(engine=BaseEngine(config=config))
            ref = _make_model(seed)(
                SparseTensor.sanitized(coords, feats, policy="repair"),
                clean_ctx,
            )
        # the recomputed layer ran at the fp32-scalar rung, so sub-FP32
        # presets differ from their clean run by one layer's
        # quantization error propagated end to end
        env = CLOSE_FP32 if config.dtype is DType.FP32 else END_TO_END
        trial.output_ok = bool(
            np.array_equal(out.coords, ref.coords)
            and env.allclose(out.feats, ref.feats)
        )
    scalars = registry.scalars()
    trial.detected = int(
        sum(
            v
            for k, v in scalars.items()
            if k.startswith("integrity.mismatches")
        )
    )
    trial.recovered_layers = {
        label: DEFAULT_LADDER.rung_name(b.last_good)
        for label, b in engine.breakers.items()
        if b.last_good > 0
    }
    return trial


def run_clean_probe(dtype_key: str, seed: int = 0) -> CleanProbe:
    """Clean control: zero mismatches, bit-exact, reference-close."""
    from repro.obs.metrics import MetricsRegistry, use_registry
    from repro.robust.chaos import _make_cloud, _make_model
    from repro.robust.tolerance import envelope

    from repro.core.engine import BaseEngine, ExecutionContext
    from repro.core.reference import sparse_conv_reference
    from repro.core.sparse_tensor import SparseTensor

    probe = CleanProbe(dtype=dtype_key, seed=seed)
    coords, feats = _make_cloud(seed, "clean")
    model = _make_model(seed)
    config = _dtype_config(dtype_key)
    registry = MetricsRegistry()
    with use_registry(registry):
        ctx = ExecutionContext(engine=BaseEngine(config=config))
        verified = model(SparseTensor(coords, feats), ctx)
    scalars = registry.scalars()
    probe.checks = int(
        sum(v for k, v in scalars.items() if k.startswith("integrity.checks"))
    )
    probe.false_positives = int(
        sum(
            v
            for k, v in scalars.items()
            if k.startswith("integrity.mismatches")
        )
    )
    from dataclasses import replace

    with use_registry(MetricsRegistry()):
        ctx = ExecutionContext(
            engine=BaseEngine(config=replace(config, robustness=None))
        )
        unverified = model(SparseTensor(coords, feats), ctx)
    probe.bitexact = bool(
        np.array_equal(verified.coords, unverified.coords)
        and np.array_equal(verified.feats, unverified.feats)
    )

    # single conv against the Equation-1 reference, dtype envelope
    rng = np.random.default_rng(seed)
    ref_coords = np.unique(
        np.concatenate(
            [np.zeros((48, 1), dtype=np.int64),
             rng.integers(0, 8, size=(48, 3))],
            axis=1,
        ),
        axis=0,
    ).astype(np.int32)
    ref_feats = rng.normal(size=(ref_coords.shape[0], 4)).astype(np.float32)
    weights = (rng.normal(size=(27, 4, 6)) * 0.2).astype(np.float32)
    with use_registry(MetricsRegistry()):
        engine = BaseEngine(config=config)
        ctx = ExecutionContext(engine=engine)
        out = engine.convolution(
            SparseTensor(ref_coords, ref_feats), weights, ctx,
            kernel_size=3, stride=1,
        )
    ref = sparse_conv_reference(
        ref_coords, ref_feats, weights, ref_coords, 3, stride=1
    )
    probe.reference_ok = envelope(config.dtype).allclose(out.feats, ref)
    return probe


def run_integrity_campaign(
    kinds=None,
    dtypes=DTYPE_PRESET_KEYS,
    seeds=(0, 1, 2),
    severity: float = 0.05,
) -> IntegrityReport:
    """Cross SDC kinds x dtype presets x seeds, plus clean controls."""
    from repro.robust.faults import SDC_FAULT_KINDS

    kinds = tuple(kinds) if kinds else SDC_FAULT_KINDS
    for kind in kinds:
        if kind not in SDC_FAULT_KINDS:
            raise ValueError(
                f"unknown SDC fault kind {kind!r}; expected one of "
                f"{SDC_FAULT_KINDS}"
            )
    report = IntegrityReport(severity=severity)
    for dtype_key in dtypes:
        report.clean.append(run_clean_probe(dtype_key, seed=int(seeds[0])))
    for kind in kinds:
        for dtype_key in dtypes:
            for seed in seeds:
                report.trials.append(
                    run_integrity_trial(
                        kind, dtype_key, int(seed), severity=severity
                    )
                )
    return report
