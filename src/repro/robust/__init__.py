"""Fault tolerance for the sparse-conv pipeline.

Four pieces (see DESIGN.md, "Robustness"):

* :mod:`repro.robust.errors`   — the typed fault taxonomy;
* :mod:`repro.robust.validate` — strict/repair/reject input validation
  at the :class:`~repro.core.sparse_tensor.SparseTensor`/dataset
  boundary;
* :mod:`repro.robust.faults`   — deterministic seeded fault injection
  threaded through the engine, tables, and dataflow;
* :mod:`repro.robust.degrade`  — the graceful-degradation ladder and
  per-layer circuit breakers the engine retries faults down, plus the
  independent quality (QoS) ladder the serving layer browns out on;
* :mod:`repro.robust.brownout` — the load-adaptive hysteresis
  controller stepping the fleet's QoS level under overload;
* :mod:`repro.robust.domains`  — failure-domain topology and the
  metastable-failure (retry storm) defense the serving layer runs on;
* :mod:`repro.robust.tolerance` — the shared numeric tolerance
  envelopes (test comparisons and ABFT residual bounds);
* :mod:`repro.robust.integrity` — ABFT checksum verification of the
  dataflow (silent-data-corruption defense).

The chaos harness (:mod:`repro.robust.chaos`) is imported on demand —
it pulls in the whole engine stack and backs ``repro-bench chaos``.
"""

from repro.robust.domains import DomainTopology, RetryBudget, StormConfig
from repro.robust.errors import (
    FAULT_ERRORS,
    ConfigError,
    DegradationExhaustedError,
    GridMemoryError,
    InputValidationError,
    IntegrityError,
    KernelMapCorruptionError,
    NumericFaultError,
    RobustnessError,
    StrategyBookError,
    TableOverflowError,
)
from repro.robust.faults import (
    DOMAIN_FAULT_KINDS,
    FAULT_KINDS,
    PIPELINE_FAULT_KINDS,
    SDC_FAULT_KINDS,
    SERVE_FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    get_injector,
    inject_faults,
)
from repro.robust.integrity import (
    INTEGRITY_SCHEMA,
    IntegrityChecker,
    IntegrityConfig,
    IntegrityReport,
    run_integrity_campaign,
)
from repro.robust.brownout import BrownoutConfig, BrownoutController
from repro.robust.degrade import (
    DEFAULT_LADDER,
    DEFAULT_QOS_LADDER,
    FULL_QUALITY,
    QUALITY_RUNGS,
    CircuitBreaker,
    DegradationLadder,
    QoSLadder,
    QualityConfig,
    QualityRung,
    RobustConfig,
    Rung,
)
from repro.robust.validate import (
    POLICIES,
    ValidationReport,
    clean_batch,
    validate_cloud,
)

__all__ = [
    "DOMAIN_FAULT_KINDS",
    "FAULT_ERRORS",
    "FAULT_KINDS",
    "INTEGRITY_SCHEMA",
    "PIPELINE_FAULT_KINDS",
    "SDC_FAULT_KINDS",
    "SERVE_FAULT_KINDS",
    "POLICIES",
    "DEFAULT_LADDER",
    "DEFAULT_QOS_LADDER",
    "FULL_QUALITY",
    "QUALITY_RUNGS",
    "BrownoutConfig",
    "BrownoutController",
    "CircuitBreaker",
    "ConfigError",
    "DegradationExhaustedError",
    "DegradationLadder",
    "DomainTopology",
    "FaultInjector",
    "FaultSpec",
    "GridMemoryError",
    "InputValidationError",
    "IntegrityChecker",
    "IntegrityConfig",
    "IntegrityError",
    "IntegrityReport",
    "KernelMapCorruptionError",
    "NumericFaultError",
    "QoSLadder",
    "QualityConfig",
    "QualityRung",
    "RetryBudget",
    "RobustConfig",
    "RobustnessError",
    "Rung",
    "StormConfig",
    "StrategyBookError",
    "TableOverflowError",
    "ValidationReport",
    "clean_batch",
    "get_injector",
    "inject_faults",
    "run_integrity_campaign",
    "validate_cloud",
]
