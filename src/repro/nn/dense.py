"""Dense 2D ops for the BEV detection head.

CenterPoint's head runs on a dense bird's-eye-view grid — conventional
convolution, not sparse convolution.  The paper bills this (plus NMS) as
the ~10% "other" share of detector runtime (Section 5.2), so these ops
log into the ``other`` stage.

Implementation: im2col + GEMM, exact numerics; latency from the same
roofline used for sparse GEMMs, at dense-workload occupancy.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import ExecutionContext
from repro.gpu.gemm import mm_cost


def im2col(x: np.ndarray, k: int, stride: int = 1, pad: int = 0) -> np.ndarray:
    """Extract ``k x k`` patches of an ``(H, W, C)`` map.

    Returns ``(H_out * W_out, k * k * C)`` with rows in raster order.
    """
    if pad:
        x = np.pad(x, ((pad, pad), (pad, pad), (0, 0)))
    h, w, c = x.shape
    h_out = (h - k) // stride + 1
    w_out = (w - k) // stride + 1
    shape = (h_out, w_out, k, k, c)
    strides = (
        x.strides[0] * stride,
        x.strides[1] * stride,
        x.strides[0],
        x.strides[1],
        x.strides[2],
    )
    patches = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    return patches.reshape(h_out * w_out, k * k * c)


def conv2d(
    x: np.ndarray,
    weight: np.ndarray,
    ctx: ExecutionContext,
    stride: int = 1,
    pad: int | None = None,
    name: str = "dense.conv2d",
) -> np.ndarray:
    """Dense 2D convolution on an ``(H, W, C_in)`` map.

    Args:
        weight: ``(k, k, C_in, C_out)``.
        pad: defaults to "same" padding for stride 1 (``k // 2``).
    """
    k, _, c_in, c_out = weight.shape
    if x.ndim != 3 or x.shape[2] != c_in:
        raise ValueError(f"input {x.shape} does not match weight {weight.shape}")
    if pad is None:
        pad = k // 2
    cols = im2col(x, k, stride=stride, pad=pad)
    out = cols @ weight.reshape(k * k * c_in, c_out)
    h_out = (x.shape[0] + 2 * pad - k) // stride + 1
    w_out = (x.shape[1] + 2 * pad - k) // stride + 1
    cost = mm_cost(
        cols.shape[0], k * k * c_in, c_out, ctx.engine.config.dtype, ctx.device
    )
    ctx.profile.log(
        name, "other", cost.time, bytes_moved=cost.bytes_moved, flops=cost.flops
    )
    return out.reshape(h_out, w_out, c_out).astype(np.float32)


def relu2d(x: np.ndarray, ctx: ExecutionContext, name: str = "dense.relu") -> np.ndarray:
    nbytes = 2 * x.size * ctx.engine.config.dtype.nbytes
    ctx.profile.log(
        name,
        "other",
        ctx.device.mem_time(nbytes) + ctx.device.launch_overhead,
        bytes_moved=nbytes,
    )
    return np.maximum(x, 0)


def sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))
