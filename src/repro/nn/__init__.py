"""PyTorch-like sparse inference modules built on the engine.

Users compose :class:`Conv3d`, :class:`BatchNorm`, :class:`ReLU`,
:class:`Sequential` etc. exactly as with ``torch.nn`` — no
``indice_key``/``coordinate_manager`` plumbing (Section 4.1).  Every
module's ``__call__`` takes the tensor and an
:class:`~repro.core.engine.ExecutionContext` carrying the engine,
device model and caches.
"""

from repro.nn.modules import (
    AvgPool3d,
    BatchNorm,
    Conv3d,
    GlobalAvgPool,
    Linear,
    MaxPool3d,
    Module,
    ReLU,
    Residual,
    Sequential,
)

__all__ = [
    "Module",
    "Conv3d",
    "BatchNorm",
    "ReLU",
    "Linear",
    "Sequential",
    "Residual",
    "MaxPool3d",
    "AvgPool3d",
    "GlobalAvgPool",
]
