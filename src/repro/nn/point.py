"""Point-voxel operations (SPVConv, Tang et al. 2020).

The paper's group followed TorchSparse with SPVCNN/SPVNAS, whose Sparse
Point-Voxel convolution keeps a high-resolution *point* branch beside
the sparse *voxel* branch.  Three ops connect them:

* :func:`initial_voxelize` — average point features into a voxel grid,
  remembering each point's voxel;
* :func:`point_to_voxel` — re-aggregate (scatter-mean) point features
  onto an existing voxel set;
* :func:`voxel_to_point` — *trilinear devoxelization*: interpolate the 8
  surrounding voxel corners back to every point, renormalizing over the
  corners that actually exist in the sparse tensor.

All three are exact NumPy and priced as data movement through the
context's device model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.hashmap.coords import pack_coords
from repro.hashmap.hash_table import HashTable


@dataclass
class PointTensor:
    """Continuous-coordinate points with features.

    Attributes:
        coords: ``(N, 4)`` float rows ``(batch, x, y, z)`` in *voxel
            units* (i.e. already divided by the voxel size).
        feats: ``(N, C)`` float features.
    """

    coords: np.ndarray
    feats: np.ndarray

    def __post_init__(self) -> None:
        self.coords = np.ascontiguousarray(self.coords, dtype=np.float64)
        self.feats = np.ascontiguousarray(self.feats, dtype=np.float32)
        if self.coords.ndim != 2 or self.coords.shape[1] != 4:
            raise ValueError(f"coords must be (N, 4), got {self.coords.shape}")
        if self.feats.shape[0] != self.coords.shape[0]:
            raise ValueError("coords and feats disagree on N")

    @property
    def num_points(self) -> int:
        return int(self.coords.shape[0])

    @property
    def num_channels(self) -> int:
        return int(self.feats.shape[1])

    def replace_feats(self, feats: np.ndarray) -> "PointTensor":
        return PointTensor(self.coords, feats)


def _price_movement(ctx: ExecutionContext, name: str, rows: int, channels: int) -> None:
    nbytes = 2 * rows * channels * ctx.engine.config.dtype.nbytes
    ctx.profile.log(
        name,
        "other",
        ctx.device.mem_time(nbytes, efficiency=0.75) + ctx.device.launch_overhead,
        bytes_moved=nbytes,
    )


def initial_voxelize(
    pt: PointTensor, ctx: ExecutionContext
) -> tuple[SparseTensor, np.ndarray]:
    """Average point features into voxels (floor quantization).

    Returns the sparse tensor and the per-point voxel row index.
    """
    grid = np.floor(pt.coords).astype(np.int64)
    keys = pack_coords(grid)
    uniq, inverse = np.unique(keys, return_inverse=True)
    counts = np.bincount(inverse)
    feats = np.zeros((uniq.shape[0], pt.num_channels), dtype=np.float64)
    np.add.at(feats, inverse, pt.feats.astype(np.float64))
    feats /= counts[:, None]

    order = np.argsort(inverse, kind="stable")
    first = order[np.searchsorted(inverse[order], np.arange(uniq.shape[0]))]
    coords = grid[first].astype(np.int32)
    _price_movement(ctx, "initial_voxelize", pt.num_points, pt.num_channels)
    return SparseTensor(coords, feats.astype(np.float32)), inverse


def point_to_voxel(
    sparse: SparseTensor, pt: PointTensor, ctx: ExecutionContext
) -> SparseTensor:
    """Scatter-mean point features onto an existing voxel set.

    Points whose voxel is absent from ``sparse`` are dropped; voxels
    with no point keep zero features.  Coordinates are scaled by the
    sparse tensor's stride, so the op works at any pyramid level.
    """
    from repro.core.kernel import to_tuple

    grid = np.floor(
        pt.coords / np.array([1, *to_tuple(sparse.stride, name="stride")])
    ).astype(np.int64)
    table = HashTable.from_keys(pack_coords(sparse.coords.astype(np.int64)))
    rows = table.lookup(pack_coords(grid))
    hit = rows >= 0
    feats = np.zeros((sparse.num_points, pt.num_channels), dtype=np.float64)
    counts = np.zeros(sparse.num_points, dtype=np.int64)
    np.add.at(feats, rows[hit], pt.feats[hit].astype(np.float64))
    np.add.at(counts, rows[hit], 1)
    feats[counts > 0] /= counts[counts > 0, None]
    _price_movement(ctx, "point_to_voxel", pt.num_points, pt.num_channels)
    return SparseTensor(sparse.coords, feats.astype(np.float32), stride=sparse.stride)


def voxel_to_point(
    sparse: SparseTensor, pt: PointTensor, ctx: ExecutionContext
) -> np.ndarray:
    """Trilinear devoxelization: per-point interpolation of 8 corners.

    For each point the 8 surrounding voxel corners (at the tensor's
    stride) are queried in the sparse set; weights are the standard
    trilinear volumes, renormalized over corners that exist.  Points
    with no live corner get zeros.

    Returns ``(N, C)`` interpolated features.
    """
    from repro.core.kernel import to_tuple

    s = np.array(to_tuple(sparse.stride, name="stride"), dtype=np.float64)
    xyz = pt.coords[:, 1:] / s
    base = np.floor(xyz).astype(np.int64)
    frac = xyz - base
    table = HashTable.from_keys(pack_coords(sparse.coords.astype(np.int64)))

    out = np.zeros((pt.num_points, sparse.num_channels), dtype=np.float64)
    weight_sum = np.zeros(pt.num_points, dtype=np.float64)
    batch = pt.coords[:, 0].astype(np.int64)

    for corner in range(8):
        dx, dy, dz = (corner >> 2) & 1, (corner >> 1) & 1, corner & 1
        corner_xyz = base + np.array([dx, dy, dz])
        w = (
            (frac[:, 0] if dx else 1 - frac[:, 0])
            * (frac[:, 1] if dy else 1 - frac[:, 1])
            * (frac[:, 2] if dz else 1 - frac[:, 2])
        )
        coords = np.concatenate([batch[:, None], corner_xyz], axis=1)
        rows = table.lookup(pack_coords(coords))
        hit = (rows >= 0) & (w > 0)
        out[hit] += w[hit, None] * sparse.feats[rows[hit]].astype(np.float64)
        weight_sum[hit] += w[hit]

    nonzero = weight_sum > 0
    out[nonzero] /= weight_sum[nonzero, None]
    _price_movement(ctx, "voxel_to_point", 8 * pt.num_points, sparse.num_channels)
    return out.astype(np.float32)
