"""Sparse inference modules.

All modules are inference-only (the paper evaluates GPU inference) and
hold NumPy weights.  Each module has a dotted ``name`` assigned when it
is attached to a parent — the key under which the tuner's strategy book
stores per-layer ``(epsilon, S)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import ExecutionContext
from repro.core.kernel import kernel_volume
from repro.core.sparse_tensor import SparseTensor, cat
from repro.gpu.gemm import mm_cost


class Module:
    """Base class: named, composable, callable on (tensor, ctx)."""

    def __init__(self) -> None:
        self.name = self.__class__.__name__.lower()
        self._children: dict[str, Module] = {}

    def add_child(self, key: str, child: "Module") -> "Module":
        self._children[key] = child
        child.rename(f"{self.name}.{key}")
        return child

    def rename(self, name: str) -> None:
        """Set this module's dotted name and repath all descendants."""
        self.name = name
        for key, child in self._children.items():
            child.rename(f"{name}.{key}")

    def children(self):
        return list(self._children.values())

    def modules(self):
        """All descendants, depth-first, self included."""
        out = [self]
        for c in self._children.values():
            out.extend(c.modules())
        return out

    def conv_layers(self) -> list:
        """All Conv3d descendants in call order."""
        return [m for m in self.modules() if isinstance(m, Conv3d)]

    def __call__(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        return self.forward(x, ctx)

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        raise NotImplementedError

    def num_parameters(self) -> int:
        return sum(
            p.size for m in self.modules() for p in getattr(m, "params", [])
        )


class Conv3d(Module):
    """Sparse 3D convolution (submanifold, strided, or transposed).

    Args:
        in_channels / out_channels: feature widths.
        kernel_size: cubic kernel extent.
        stride: 1 keeps the coordinate set (submanifold); >1 downsamples
            (or upsamples when ``transposed``).
        transposed: inverse convolution back onto the finer cached level.
        bias: include an additive bias.
        rng: weight-initialization generator (He-style fan-in scaling).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        transposed: bool = False,
        bias: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if in_channels < 1 or out_channels < 1:
            raise ValueError("channel counts must be positive")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.transposed = transposed
        vol = kernel_volume(kernel_size)
        scale = np.sqrt(2.0 / (vol * in_channels))
        self.weight = (
            rng.standard_normal((vol, in_channels, out_channels)) * scale
        ).astype(np.float32)
        self.bias = np.zeros(out_channels, dtype=np.float32) if bias else None
        self.params = [self.weight] + ([self.bias] if bias else [])

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        if x.num_channels != self.in_channels:
            raise ValueError(
                f"{self.name}: expected {self.in_channels} channels, "
                f"got {x.num_channels}"
            )
        return ctx.engine.convolution(
            x,
            self.weight,
            ctx,
            kernel_size=self.kernel_size,
            stride=self.stride,
            transposed=self.transposed,
            bias=self.bias,
            layer_name=self.name,
        )


class BatchNorm(Module):
    """Inference-mode batch normalization (folded scale + shift)."""

    def __init__(self, channels: int, eps: float = 1e-5):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.gamma = np.ones(channels, dtype=np.float32)
        self.beta = np.zeros(channels, dtype=np.float32)
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self.params = [self.gamma, self.beta]

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        feats = x.feats * scale + (self.beta - self.running_mean * scale)
        return ctx.engine.pointwise(x, feats.astype(np.float32), ctx, self.name)


class ReLU(Module):
    """Elementwise rectifier."""

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        return ctx.engine.pointwise(x, np.maximum(x.feats, 0), ctx, self.name)


class Linear(Module):
    """Per-point linear layer (the segmentation classifier head)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        scale = np.sqrt(1.0 / in_features)
        self.weight = (
            rng.standard_normal((in_features, out_features)) * scale
        ).astype(np.float32)
        self.bias = np.zeros(out_features, dtype=np.float32) if bias else None
        self.params = [self.weight] + ([self.bias] if bias is not None else [])

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        out = x.feats @ self.weight
        if self.bias is not None:
            out = out + self.bias
        cost = mm_cost(
            x.num_points,
            self.in_features,
            self.out_features,
            ctx.engine.config.dtype,
            ctx.device,
        )
        with ctx.profile.span(self.name, kind="linear"):
            ctx.profile.log(
                self.name,
                "matmul",
                cost.time,
                bytes_moved=cost.bytes_moved,
                flops=cost.flops,
            )
        return x.replace_feats(out.astype(np.float32))


class Sequential(Module):
    """Run children in order."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)
        for i, layer in enumerate(self.layers):
            self.add_child(str(i), layer)

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        for layer in self.layers:
            x = layer(x, ctx)
        return x

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class Residual(Module):
    """``main(x) + shortcut(x)`` with a trailing ReLU (ResNet basic block).

    The shortcut defaults to identity; pass one (e.g. a 1x1x1 Conv3d +
    BatchNorm) when channel counts change.
    """

    def __init__(self, main: Module, shortcut: Module | None = None):
        super().__init__()
        self.main = self.add_child("main", main)
        self.shortcut = (
            self.add_child("shortcut", shortcut) if shortcut is not None else None
        )
        self.relu = self.add_child("relu", ReLU())

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        out = self.main(x, ctx)
        skip = self.shortcut(x, ctx) if self.shortcut is not None else x
        if out.coords.shape != skip.coords.shape or not np.array_equal(
            out.coords, skip.coords
        ):
            raise ValueError(f"{self.name}: residual branches diverged in coords")
        summed = ctx.engine.pointwise(
            out, out.feats + skip.feats, ctx, f"{self.name}.add"
        )
        return self.relu(summed, ctx)


class MaxPool3d(Module):
    """Sparse max pooling over kernel windows (downsamples when
    ``stride > 1``)."""

    def __init__(self, kernel_size=2, stride=2):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        return ctx.engine.pooling(
            x, ctx, kernel_size=self.kernel_size, stride=self.stride, mode="max"
        )


class AvgPool3d(Module):
    """Sparse average pooling (over *present* voxels per window)."""

    def __init__(self, kernel_size=2, stride=2):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        return ctx.engine.pooling(
            x, ctx, kernel_size=self.kernel_size, stride=self.stride, mode="avg"
        )


class GlobalAvgPool(Module):
    """Mean over all points per batch element; returns ``(B, C)``."""

    def forward(self, x: SparseTensor, ctx: ExecutionContext):
        b = x.batch_size
        out = np.zeros((b, x.num_channels), dtype=np.float32)
        for i in range(b):
            mask = x.coords[:, 0] == i
            if mask.any():
                out[i] = x.feats[mask].mean(axis=0)
        nbytes = x.num_points * x.num_channels * ctx.engine.config.dtype.nbytes
        with ctx.profile.span(self.name, kind="pool"):
            ctx.profile.log(
                self.name,
                "other",
                ctx.device.mem_time(nbytes) + ctx.device.launch_overhead,
                bytes_moved=nbytes,
            )
        return out


def concat_skip(
    a: SparseTensor, b: SparseTensor, ctx: ExecutionContext, name: str = "cat"
) -> SparseTensor:
    """U-Net skip concatenation, priced as a pointwise copy."""
    out = cat([a, b])
    nbytes = 2 * out.num_points * out.num_channels * ctx.engine.config.dtype.nbytes
    with ctx.profile.span(name, kind="cat"):
        ctx.profile.log(
            name,
            "other",
            ctx.device.mem_time(nbytes) + ctx.device.launch_overhead,
            bytes_moved=nbytes,
        )
    return out
