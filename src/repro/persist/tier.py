"""Store-backed tier behind the in-memory :class:`MappingCache`.

:class:`StoreBackedMappingCache` is a drop-in ``MappingCache`` whose
misses fall through to a shared :class:`~repro.persist.store.ArtifactStore`
and whose inserts write through to it.  The engine keeps talking to the
plain ``get``/``put``/``purge`` protocol; durability is a property of
the instance handed to :class:`~repro.core.engine.ExecutionContext`,
not a new code path inside the engine.

Tier semantics:

* ``get`` — memory first; on miss, a **verified** store load (checksum
  re-checked by the store, structure re-checked by the blob decoder).
  A store hit is promoted into memory at the same byte price the
  engine would have charged for a fresh build, so LRU pressure treats
  warm-started entries like any other.  Anything that fails decoding
  or arrives with the wrong kind is quarantined and reported as a
  miss — a corrupted artifact is never served.
* ``put`` — memory insert as usual; on success, persisted kinds
  (coords/index/kmap) are encoded and written through with the key's
  content fingerprints attached, so fault-driven purges can find them.
* ``purge`` — both tiers: the robustness layer's poisoned-fingerprint
  purge must also destroy the durable copies, or the next process
  warm-starts from exactly the state the purge was meant to kill.
"""

from __future__ import annotations

from repro.mapping.cache import MappingCache
from repro.obs.metrics import get_registry
from repro.robust.errors import StoreCorruptionError

from .blob import artifact_nbytes, decode_artifact, encode_artifact
from .store import ArtifactStore, store_key

#: Mapping-cache entry kinds that write through to the durable tier.
PERSISTED_KINDS = ("coords", "index", "kmap")


class StoreBackedMappingCache(MappingCache):
    """A :class:`MappingCache` with a durable second tier."""

    def __init__(self, store: ArtifactStore, max_bytes: int | None = None):
        if max_bytes is None:
            super().__init__()
        else:
            super().__init__(max_bytes=max_bytes)
        self.store = store

    def get(self, key):
        value = super().get(key)
        if value is not None:
            return value
        if key.kind not in PERSISTED_KINDS:
            return None
        skey = store_key(key)
        data = self.store.load(skey)
        if data is None:
            return None
        try:
            kind, value = decode_artifact(data)
        except StoreCorruptionError:
            # Checksum passed but the structure didn't — a writer bug
            # or a collision-grade anomaly; same policy either way.
            self.store.quarantine(skey, reason="decode")
            return None
        if kind != key.kind:
            self.store.quarantine(skey, reason="kind_mismatch")
            return None
        MappingCache.put(self, key, value, artifact_nbytes(kind, value))
        get_registry().counter("persist.tier", result="warm").inc()
        return value

    def put(self, key, value, nbytes: int) -> bool:
        ok = super().put(key, value, nbytes)
        if ok and key.kind in PERSISTED_KINDS:
            data = encode_artifact(key.kind, value)
            self.store.save(
                store_key(key),
                key.kind,
                data,
                fingerprints=key.fingerprints,
            )
        return ok

    def purge(self, fingerprints) -> int:
        count = super().purge(fingerprints)
        self.store.evict_fingerprints(fingerprints)
        return count
