"""Crash-consistent, content-addressed artifact store.

The :class:`ArtifactStore` is the durable tier under the in-memory
:class:`~repro.mapping.cache.MappingCache`: kernel maps, coordinate
indices, downsampled coordinates, tuned strategy books, and serve-layer
frame markers live on disk, keyed by the same BLAKE2b content
fingerprints the memory tier uses, and survive process crashes and
DEAD-device replacement.

Layout::

    <root>/
        MANIFEST.jsonl          append-only journal (header + records)
        objects/<kk>/<key>.bin  one blob per artifact, sharded by prefix
        quarantine/<key>.bin    blobs that failed verification

Crash-consistency protocol — every write follows the same ladder:

1. blob bytes are written to ``<key>.bin.tmp`` in the final directory,
   flushed, and ``fsync``\\ ed;
2. the temp file is atomically renamed over the final name
   (``os.replace``), then the *directory* is fsynced so the rename
   itself is durable;
3. only then is a ``put`` record appended to the manifest (write +
   flush + fsync).

A crash between any two steps leaves either (a) a stray ``.tmp`` file
(invisible to readers, removed by :meth:`scrub`), or (b) a fully
written blob with no manifest record (invisible, removed by scrub) —
never a manifest record pointing at partial bytes.  The manifest is
replayed on open; a torn final line (crash mid-append) is tolerated and
counted, damaged interior lines are skipped and counted, and a manifest
whose *header* is unreadable raises
:class:`~repro.robust.errors.StoreCorruptionError` — that store needs
operator attention (``repro-bench store scrub`` cannot guess a schema).

Verification is mandatory, not advisory: :meth:`save` records the
BLAKE2b checksum of the bytes it *intended* to write, and :meth:`load`
re-hashes the bytes it actually read on **every** call.  Any mismatch —
torn write, bit rot, a stale file left by a failed replace — moves the
blob to ``quarantine/`` and returns a miss so the caller rebuilds from
scratch.  A corrupted artifact is never served.

Determinism: records carry no timestamps, sequence numbers or pids, and
keys/fingerprints are pure content hashes, so two same-seed campaigns
writing the same artifacts produce byte-identical manifests and object
trees (the CI ``store-smoke`` job diffs them).

The seeded disk-fault sites (``store_torn_write``, ``store_bitrot``,
``store_manifest_corrupt``, ``store_stale_entry``) are threaded through
:meth:`save` and the manifest append via the
:mod:`repro.robust.faults` helpers; with no injector armed they are
zero-cost no-ops.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil

from repro.obs.metrics import get_registry
from repro.robust.errors import StoreCorruptionError
from repro.robust.faults import (
    maybe_bitrot,
    maybe_corrupt_manifest_line,
    maybe_stale_entry,
    maybe_torn_write,
)

from .blob import ARTIFACT_KINDS

#: Manifest header schema tag; bump on incompatible layout changes.
STORE_SCHEMA = "repro-store/1"

MANIFEST_NAME = "MANIFEST.jsonl"


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_checksum(data: bytes) -> str:
    """BLAKE2b-128 hex digest of a blob's bytes."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def store_key(key) -> str:
    """Stable store key for a mapping-cache key.

    The cache keys are frozen dataclasses whose ``repr`` is a pure
    function of their content (fingerprints + layer parameters), so
    hashing ``ClassName:repr`` gives a collision-resistant, process-
    independent identity without inventing a second serialization.
    """
    text = f"{type(key).__name__}:{key!r}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def book_key(name: str, device_name: str = "") -> str:
    """Store key for a tuned strategy book."""
    text = f"StrategyBook:{name}:{device_name}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def frame_key(model: str, scene: str) -> str:
    """Store key for a serve-layer ``(model, scene)`` frame marker."""
    text = f"Frame:{model}:{scene}"
    return hashlib.blake2b(text.encode(), digest_size=16).hexdigest()


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class ArtifactStore:
    """On-disk, cross-process artifact store with verified loads.

    Args:
        root: store directory (created when ``create`` is true).
        create: create the directory tree and manifest header if absent.

    Attributes:
        entries: ``key -> record`` dict replayed from the manifest;
            each record holds ``kind``, ``checksum``, ``nbytes`` and
            sorted content ``fps``.
        recovery: counters of what manifest replay had to tolerate —
            ``torn_tail``, ``damaged_records``, ``missing_objects``.
    """

    def __init__(self, root: str, create: bool = True):
        self.root = str(root)
        self.objects_dir = os.path.join(self.root, "objects")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.manifest_path = os.path.join(self.root, MANIFEST_NAME)
        self.entries: dict = {}
        self.recovery = {"torn_tail": 0, "damaged_records": 0, "missing_objects": 0}
        if create:
            os.makedirs(self.objects_dir, exist_ok=True)
            os.makedirs(self.quarantine_dir, exist_ok=True)
        elif not os.path.isdir(self.root):
            raise StoreCorruptionError(f"store root {self.root} does not exist")
        if os.path.exists(self.manifest_path):
            self._replay()
        elif create:
            self._write_header()
        else:
            raise StoreCorruptionError(
                f"store at {self.root} has no manifest"
            )
        self._gauges()

    # -- manifest -----------------------------------------------------------

    def _write_header(self) -> None:
        # The header is written directly (never through the
        # store_manifest_corrupt site): a store that cannot even record
        # its schema is not a recoverable-journal scenario but a mkdir
        # race, and letting chaos eat the header would turn every
        # one-shot manifest fault into an unopenable store.
        with open(self.manifest_path, "w", encoding="utf-8") as fh:
            fh.write(_dumps({"schema": STORE_SCHEMA}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        _fsync_dir(self.root)

    def _replay(self) -> None:
        with open(self.manifest_path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        if not lines:
            raise StoreCorruptionError("store manifest is empty")
        try:
            header = json.loads(lines[0])
            schema = header.get("schema")
        except (json.JSONDecodeError, AttributeError):
            schema = None
        if schema != STORE_SCHEMA:
            raise StoreCorruptionError(
                f"store manifest header is unreadable or has wrong schema "
                f"(want {STORE_SCHEMA!r})"
            )
        last = len(lines) - 1
        for i, line in enumerate(lines[1:], start=1):
            if not line.strip():
                continue
            try:
                rec = json.loads(line)
                op = rec["op"]
                key = rec["key"]
            except (json.JSONDecodeError, TypeError, KeyError):
                # A damaged *final* line is the expected signature of a
                # crash mid-append; a damaged interior line is bit rot
                # on the journal itself.  Both are skipped — the blobs
                # they described either verify on load or get scrubbed.
                if i == last:
                    self.recovery["torn_tail"] += 1
                else:
                    self.recovery["damaged_records"] += 1
                continue
            if op == "put":
                if (
                    rec.get("kind") not in ARTIFACT_KINDS
                    or not isinstance(rec.get("checksum"), str)
                    or not isinstance(rec.get("nbytes"), int)
                ):
                    if i == last:
                        self.recovery["torn_tail"] += 1
                    else:
                        self.recovery["damaged_records"] += 1
                    continue
                self.entries[key] = {
                    "kind": rec["kind"],
                    "checksum": rec["checksum"],
                    "nbytes": rec["nbytes"],
                    "fps": list(rec.get("fps", [])),
                }
            elif op == "evict":
                self.entries.pop(key, None)
            else:
                self.recovery["damaged_records"] += 1
        # A put record whose blob never survived the crash is dropped
        # here so load() never even stats a missing file.
        missing = [k for k in self.entries if not os.path.exists(self._path(k))]
        for k in missing:
            del self.entries[k]
            self.recovery["missing_objects"] += 1

    def _append(self, record: dict, op: str) -> None:
        line = _dumps(record)
        line = maybe_corrupt_manifest_line(line, site=f"store.manifest.{op}")
        with open(self.manifest_path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())

    def _rewrite_manifest(self) -> None:
        """Atomically compact the manifest to the live entry set.

        Used by :meth:`scrub`/:meth:`purge`; deliberately *not* routed
        through the manifest fault site — scrub is the recovery tool,
        and a recovery pass that re-poisons the journal it is repairing
        cannot make progress.
        """
        tmp = self.manifest_path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(_dumps({"schema": STORE_SCHEMA}) + "\n")
            for key in sorted(self.entries):
                rec = self.entries[key]
                fh.write(
                    _dumps(
                        {
                            "op": "put",
                            "key": key,
                            "kind": rec["kind"],
                            "checksum": rec["checksum"],
                            "nbytes": rec["nbytes"],
                            "fps": sorted(rec["fps"]),
                        }
                    )
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.manifest_path)
        _fsync_dir(self.root)

    # -- paths & gauges ------------------------------------------------------

    def _path(self, key: str) -> str:
        return os.path.join(self.objects_dir, key[:2], f"{key}.bin")

    def _gauges(self) -> None:
        reg = get_registry()
        reg.gauge("persist.entries").set(float(len(self.entries)))
        reg.gauge("persist.bytes").set(
            float(sum(rec["nbytes"] for rec in self.entries.values()))
        )

    # -- the protocol --------------------------------------------------------

    def save(self, key: str, kind: str, data: bytes, fingerprints=()) -> None:
        """Durably persist one encoded blob under ``key``.

        The checksum recorded in the manifest is of the bytes the
        caller *intended* — computed before the write ladder — so any
        damage the disk (or an armed fault injector) inflicts on the
        way down is caught by the next :meth:`load`, not silently
        laundered into the record.
        """
        if kind not in ARTIFACT_KINDS:
            raise ValueError(f"unknown artifact kind {kind!r}")
        checksum = content_checksum(data)
        nbytes = len(data)
        site = f"store.save.{kind}"
        written = maybe_torn_write(data, site=site)
        written = maybe_bitrot(written, site=site)
        final = self._path(key)
        os.makedirs(os.path.dirname(final), exist_ok=True)
        if maybe_stale_entry(site=site):
            # Model a lost write: the rename never happened, so the old
            # file (or, for a first write, an empty stub the next load
            # will reject by size) is what readers see.
            if not os.path.exists(final):
                with open(final, "wb") as fh:
                    fh.write(b"")
        else:
            tmp = final + ".tmp"
            with open(tmp, "wb") as fh:
                fh.write(written)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, final)
            _fsync_dir(os.path.dirname(final))
        record = {
            "op": "put",
            "key": key,
            "kind": kind,
            "checksum": checksum,
            "nbytes": nbytes,
            "fps": sorted(fingerprints),
        }
        self._append(record, op="put")
        self.entries[key] = {
            "kind": kind,
            "checksum": checksum,
            "nbytes": nbytes,
            "fps": sorted(fingerprints),
        }
        get_registry().counter("persist.saves", kind=kind).inc()
        self._gauges()

    def load(self, key: str):
        """The verified blob bytes for ``key``, or ``None``.

        Every load re-checks size and checksum against the manifest
        record; a mismatch quarantines the blob and reports a miss so
        the caller rebuilds.  There is no unverified fast path.
        """
        rec = self.entries.get(key)
        reg = get_registry()
        if rec is None:
            reg.counter("persist.loads", result="miss").inc()
            return None
        try:
            with open(self._path(key), "rb") as fh:
                data = fh.read()
        except OSError:
            self.quarantine(key, reason="missing")
            reg.counter("persist.loads", result="corrupt").inc()
            return None
        if len(data) != rec["nbytes"] or content_checksum(data) != rec["checksum"]:
            self.quarantine(key, reason="checksum")
            reg.counter("persist.loads", result="corrupt").inc()
            return None
        reg.counter("persist.loads", result="hit").inc()
        return data

    def quarantine(self, key: str, reason: str = "checksum") -> None:
        """Evict ``key``, moving its blob (if any) to ``quarantine/``."""
        path = self._path(key)
        if os.path.exists(path):
            os.makedirs(self.quarantine_dir, exist_ok=True)
            try:
                shutil.move(path, os.path.join(self.quarantine_dir, f"{key}.bin"))
            except OSError:
                pass
        if key in self.entries:
            del self.entries[key]
            self._append({"op": "evict", "key": key}, op="evict")
        reg = get_registry()
        reg.counter("persist.quarantined", reason=reason).inc()
        reg.counter("persist.evictions").inc()
        self._gauges()

    def evict_fingerprints(self, fingerprints) -> int:
        """Drop every entry referencing any of ``fingerprints``.

        Mirrors :meth:`MappingCache.purge`: when the robustness layer
        decides a fault may have poisoned artifacts built from given
        coordinates, the durable copies must go too — otherwise the
        next process warm-starts from exactly the state the purge was
        meant to destroy.
        """
        fps = set(fingerprints)
        if not fps:
            return 0
        victims = [
            key
            for key, rec in self.entries.items()
            if any(fp in fps for fp in rec["fps"])
        ]
        for key in victims:
            path = self._path(key)
            if os.path.exists(path):
                try:
                    os.remove(path)
                except OSError:
                    pass
            del self.entries[key]
            self._append({"op": "evict", "key": key}, op="evict")
        if victims:
            get_registry().counter("persist.evictions").inc(len(victims))
            self._gauges()
        return len(victims)

    # -- maintenance ---------------------------------------------------------

    def verify(self) -> dict:
        """Read-only integrity sweep over every live entry.

        Returns ``{"checked", "ok", "corrupt": [{key, kind, reason}],
        "recovery"}`` — deterministic (keys sorted) so CLI snapshots
        diff cleanly.  Does not modify the store; :meth:`scrub` acts.
        """
        corrupt = []
        for key in sorted(self.entries):
            rec = self.entries[key]
            reason = None
            try:
                with open(self._path(key), "rb") as fh:
                    data = fh.read()
            except OSError:
                reason = "missing"
            else:
                if len(data) != rec["nbytes"]:
                    reason = "size"
                elif content_checksum(data) != rec["checksum"]:
                    reason = "checksum"
            if reason is not None:
                corrupt.append({"key": key, "kind": rec["kind"], "reason": reason})
        return {
            "checked": len(self.entries),
            "ok": len(self.entries) - len(corrupt),
            "corrupt": corrupt,
            "recovery": dict(self.recovery),
        }

    def scrub(self) -> dict:
        """Offline repair pass: evict every unverifiable entry, delete
        orphan blobs and stray temp files, and compact the manifest.

        Idempotent — a second scrub of an untouched store finds nothing.
        Returns ``{"evicted": [...], "orphans", "tmp_files"}``.
        """
        report = self.verify()
        for item in report["corrupt"]:
            self.quarantine(item["key"], reason=item["reason"])
        orphans = 0
        tmp_files = 0
        live = {self._path(key) for key in self.entries}
        for dirpath, _, filenames in os.walk(self.objects_dir):
            for fn in filenames:
                path = os.path.join(dirpath, fn)
                if fn.endswith(".tmp"):
                    os.remove(path)
                    tmp_files += 1
                elif path not in live:
                    os.remove(path)
                    orphans += 1
        self._rewrite_manifest()
        self.recovery = {k: 0 for k in self.recovery}
        self._gauges()
        return {
            "evicted": [item["key"] for item in report["corrupt"]],
            "orphans": orphans,
            "tmp_files": tmp_files,
        }

    def purge(self) -> int:
        """Drop every entry and blob; the store stays openable."""
        count = len(self.entries)
        self.entries = {}
        shutil.rmtree(self.objects_dir, ignore_errors=True)
        os.makedirs(self.objects_dir, exist_ok=True)
        self._rewrite_manifest()
        self._gauges()
        return count

    def stats(self) -> dict:
        """Deterministic store snapshot for the CLI."""
        by_kind: dict = {}
        for rec in self.entries.values():
            by_kind[rec["kind"]] = by_kind.get(rec["kind"], 0) + 1
        quarantined = 0
        if os.path.isdir(self.quarantine_dir):
            quarantined = sum(
                1 for f in os.listdir(self.quarantine_dir) if f.endswith(".bin")
            )
        return {
            "schema": STORE_SCHEMA,
            "entries": len(self.entries),
            "bytes": sum(rec["nbytes"] for rec in self.entries.values()),
            "by_kind": dict(sorted(by_kind.items())),
            "quarantined": quarantined,
            "recovery": dict(self.recovery),
        }
