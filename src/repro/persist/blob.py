"""Deterministic binary encoding of mapping-stage artifacts.

Every artifact the durable store holds — kernel maps, coordinate
indices, downsampled coordinates, tuned strategy books, and the serve
layer's ``(model, scene)`` frame markers — round-trips through one
self-describing blob format::

    MAGIC ("RPB1") | u32 header length | canonical JSON header | payloads

The header carries the artifact kind, its scalar metadata, and one
``{dtype, shape}`` descriptor per trailing array payload; payloads are
the raw C-order bytes of each array, concatenated in header order.
Canonical JSON (sorted keys, compact separators) plus raw array bytes
makes encoding a pure function of the artifact's content: two processes
persisting the same kernel map write byte-identical blobs, which is
what lets same-seed campaigns diff their stores byte for byte.

Decoding is defensive: any structural damage — bad magic, truncated
header, short payload, unknown kind, array lengths that disagree with
the metadata — raises a typed
:class:`~repro.robust.errors.StoreCorruptionError` rather than
whichever ``ValueError``/``KeyError`` the damage happens to hit first.
(The store checksums every blob before decoding, so reaching a decode
error means the writer was buggy, not the disk — but the store treats
both identically: quarantine, rebuild, never serve.)
"""

from __future__ import annotations

import json

import numpy as np

from repro.robust.errors import StoreCorruptionError

MAGIC = b"RPB1"

#: Artifact kinds the blob codec understands.
ARTIFACT_KINDS = ("coords", "index", "kmap", "book", "frame")


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _pack(kind: str, meta: dict, arrays: list) -> bytes:
    descs = []
    payloads = []
    for arr in arrays:
        a = np.ascontiguousarray(arr)
        descs.append({"dtype": a.dtype.str, "shape": list(a.shape)})
        payloads.append(a.tobytes())
    header = _dumps({"kind": kind, "meta": meta, "arrays": descs}).encode()
    out = [MAGIC, len(header).to_bytes(4, "little"), header]
    out.extend(payloads)
    return b"".join(out)


def _unpack(data: bytes) -> tuple:
    """``(kind, meta, arrays)`` of one blob; typed error on any damage."""
    if len(data) < len(MAGIC) + 4 or data[: len(MAGIC)] != MAGIC:
        raise StoreCorruptionError("artifact blob has no valid magic")
    hlen = int.from_bytes(data[len(MAGIC) : len(MAGIC) + 4], "little")
    start = len(MAGIC) + 4
    if start + hlen > len(data):
        raise StoreCorruptionError("artifact blob header is truncated")
    try:
        header = json.loads(data[start : start + hlen].decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as e:
        raise StoreCorruptionError(
            f"artifact blob header is not valid JSON: {e}"
        ) from e
    if not isinstance(header, dict) or header.get("kind") not in ARTIFACT_KINDS:
        raise StoreCorruptionError(
            f"artifact blob has unknown kind "
            f"{header.get('kind') if isinstance(header, dict) else None!r}"
        )
    arrays = []
    offset = start + hlen
    for desc in header.get("arrays", []):
        try:
            dtype = np.dtype(desc["dtype"])
            shape = tuple(int(s) for s in desc["shape"])
        except (KeyError, TypeError, ValueError) as e:
            raise StoreCorruptionError(
                f"artifact blob has a malformed array descriptor: {e}"
            ) from e
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset + nbytes > len(data):
            raise StoreCorruptionError("artifact blob payload is truncated")
        arr = np.frombuffer(data[offset : offset + nbytes], dtype=dtype)
        arrays.append(arr.reshape(shape).copy())  # writable
        offset += nbytes
    if offset != len(data):
        raise StoreCorruptionError(
            f"artifact blob has {len(data) - offset} trailing bytes"
        )
    return header["kind"], header.get("meta", {}), arrays


def _canon(value):
    """Kernel size / stride for JSON: tuples become lists and back."""
    return list(value) if isinstance(value, tuple) else value


def _uncanon(value):
    return tuple(value) if isinstance(value, list) else value


# -- per-kind codecs --------------------------------------------------------


def _encode_kmap(kmap) -> bytes:
    meta = {
        "kernel_size": _canon(kmap.kernel_size),
        "stride": _canon(kmap.stride),
        "n_in": int(kmap.n_in),
        "n_out": int(kmap.n_out),
        "queries_issued": int(kmap.queries_issued),
        "mirrored_entries": int(kmap.mirrored_entries),
        "volume": int(kmap.volume),
    }
    arrays = [np.asarray(a, dtype=np.int64) for a in kmap.in_indices]
    arrays += [np.asarray(a, dtype=np.int64) for a in kmap.out_indices]
    return _pack("kmap", meta, arrays)


def _decode_kmap(meta: dict, arrays: list):
    from repro.mapping.kmap import KernelMap

    vol = int(meta["volume"])
    if len(arrays) != 2 * vol:
        raise StoreCorruptionError(
            f"kernel-map blob holds {len(arrays)} index arrays, "
            f"expected {2 * vol}"
        )
    try:
        return KernelMap(
            kernel_size=_uncanon(meta["kernel_size"]),
            stride=_uncanon(meta["stride"]),
            n_in=int(meta["n_in"]),
            n_out=int(meta["n_out"]),
            in_indices=list(arrays[:vol]),
            out_indices=list(arrays[vol:]),
            queries_issued=int(meta["queries_issued"]),
            mirrored_entries=int(meta["mirrored_entries"]),
        )
    except (KeyError, TypeError, ValueError) as e:
        raise StoreCorruptionError(f"kernel-map blob is malformed: {e}") from e


def _stats_meta(stats) -> dict:
    return {
        "build_accesses": int(stats.build_accesses),
        "query_accesses": int(stats.query_accesses),
        "table_bytes": int(stats.table_bytes),
        "max_probe_len": int(stats.max_probe_len),
    }


def _stats_from(meta: dict):
    from repro.hashmap.hash_table import HashStats

    try:
        return HashStats(
            build_accesses=int(meta["build_accesses"]),
            query_accesses=int(meta["query_accesses"]),
            table_bytes=int(meta["table_bytes"]),
            max_probe_len=int(meta["max_probe_len"]),
        )
    except (KeyError, TypeError, ValueError) as e:
        raise StoreCorruptionError(f"index blob stats are malformed: {e}") from e


def _encode_index(index) -> bytes:
    from repro.hashmap.hash_table import HashTable

    table = index.table
    if isinstance(table, HashTable):
        meta = {
            "backend": "hash",
            "capacity": int(table.capacity),
            "size": int(table._size),
            "stats": _stats_meta(table.stats),
        }
        return _pack("index", meta, [table._keys, table._values])
    meta = {
        "backend": "grid",
        "size": int(table._size),
        "stats": _stats_meta(table.stats),
    }
    return _pack("index", meta, [table.origin, table.shape, table._values])


def _decode_index(meta: dict, arrays: list):
    from repro.hashmap.grid_table import GridTable
    from repro.hashmap.hash_table import HashTable
    from repro.mapping.kmap import CoordIndex

    backend = meta.get("backend")
    stats = _stats_from(meta.get("stats", {}))
    if backend == "hash":
        if len(arrays) != 2:
            raise StoreCorruptionError("hash-index blob needs 2 arrays")
        keys, values = arrays
        table = HashTable(capacity=int(meta["capacity"]))
        if keys.shape != (table.capacity,) or values.shape != (table.capacity,):
            raise StoreCorruptionError(
                "hash-index blob slot arrays disagree with capacity"
            )
        table._keys = keys.astype(np.int64)
        table._values = values.astype(np.int64)
        table._size = int(meta["size"])
        table.stats = stats
        return CoordIndex(table)
    if backend == "grid":
        if len(arrays) != 3:
            raise StoreCorruptionError("grid-index blob needs 3 arrays")
        origin, shape, values = arrays
        try:
            table = GridTable(origin=origin, shape=shape)
        except ValueError as e:
            raise StoreCorruptionError(
                f"grid-index blob bounding box is malformed: {e}"
            ) from e
        if values.shape != (table.volume,):
            raise StoreCorruptionError(
                "grid-index blob slot array disagrees with box volume"
            )
        table._values = values.astype(np.int64)
        table._size = int(meta["size"])
        table.stats = stats
        return CoordIndex(table)
    raise StoreCorruptionError(f"index blob has unknown backend {backend!r}")


def _encode_book(book) -> bytes:
    text = book.dumps().encode()
    return _pack("book", {}, [np.frombuffer(text, dtype=np.uint8)])


def _decode_book(arrays: list):
    from repro.core.tuner import StrategyBook
    from repro.robust.errors import StrategyBookError

    if len(arrays) != 1:
        raise StoreCorruptionError("strategy-book blob needs 1 payload")
    try:
        return StrategyBook.loads(arrays[0].tobytes().decode())
    except (UnicodeDecodeError, StrategyBookError) as e:
        raise StoreCorruptionError(
            f"strategy-book blob failed to parse: {e}"
        ) from e


# -- public API -------------------------------------------------------------


def encode_artifact(kind: str, value) -> bytes:
    """Serialize one artifact; inverse of :func:`decode_artifact`."""
    if kind == "kmap":
        return _encode_kmap(value)
    if kind == "index":
        return _encode_index(value)
    if kind == "coords":
        return _pack("coords", {}, [np.asarray(value)])
    if kind == "book":
        return _encode_book(value)
    if kind == "frame":
        model, scene = value["model"], value["scene"]
        # scene identity must round-trip exactly — the serve layer
        # compares inherited frames against live (model, scene) tuples,
        # and an int scene stringified here would never match again
        if not isinstance(model, str) or isinstance(scene, bool) or not isinstance(scene, (str, int)):
            raise ValueError(
                f"frame wants str model and str/int scene, got "
                f"({type(model).__name__}, {type(scene).__name__})"
            )
        return _pack("frame", {"model": model, "scene": scene}, [])
    raise ValueError(f"unknown artifact kind {kind!r}")


def decode_artifact(data: bytes):
    """``(kind, value)`` of one blob.

    Raises:
        StoreCorruptionError: on any structural damage.
    """
    kind, meta, arrays = _unpack(data)
    if kind == "kmap":
        return kind, _decode_kmap(meta, arrays)
    if kind == "index":
        return kind, _decode_index(meta, arrays)
    if kind == "coords":
        if len(arrays) != 1:
            raise StoreCorruptionError("coords blob needs 1 payload")
        return kind, arrays[0]
    if kind == "book":
        return kind, _decode_book(arrays)
    # frame: kind validated by _unpack
    if "model" not in meta or "scene" not in meta:
        raise StoreCorruptionError("frame blob is missing model/scene")
    model, scene = meta["model"], meta["scene"]
    if not isinstance(model, str) or isinstance(scene, bool) or not isinstance(scene, (str, int)):
        raise StoreCorruptionError("frame blob has malformed model/scene")
    return kind, {"model": model, "scene": scene}


def artifact_nbytes(kind: str, value) -> int:
    """Resident byte cost of a decoded artifact — priced the same way
    the in-memory :class:`~repro.mapping.cache.MappingCache` accounts
    its entries, so a store-promoted value charges the LRU budget
    exactly as if the engine had just built it."""
    from repro.mapping.cache import (
        ENTRY_OVERHEAD_BYTES,
        coords_nbytes,
        index_nbytes,
        kmap_nbytes,
    )

    if kind == "kmap":
        return kmap_nbytes(value)
    if kind == "index":
        return index_nbytes(value)
    if kind == "coords":
        return coords_nbytes(value)
    return ENTRY_OVERHEAD_BYTES
