"""Durable artifact store: crash-consistent, verified, content-addressed.

See :mod:`repro.persist.store` for the on-disk protocol,
:mod:`repro.persist.blob` for the artifact encoding, and
:mod:`repro.persist.tier` for the store-backed :class:`MappingCache`
tier the serve layer hands to replacement devices.
"""

from .blob import (
    ARTIFACT_KINDS,
    artifact_nbytes,
    decode_artifact,
    encode_artifact,
)
from .store import (
    MANIFEST_NAME,
    STORE_SCHEMA,
    ArtifactStore,
    book_key,
    content_checksum,
    frame_key,
    store_key,
)
from .tier import PERSISTED_KINDS, StoreBackedMappingCache

__all__ = [
    "ARTIFACT_KINDS",
    "MANIFEST_NAME",
    "PERSISTED_KINDS",
    "STORE_SCHEMA",
    "ArtifactStore",
    "StoreBackedMappingCache",
    "artifact_nbytes",
    "book_key",
    "content_checksum",
    "decode_artifact",
    "encode_artifact",
    "frame_key",
    "store_key",
]
