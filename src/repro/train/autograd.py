"""Minimal reverse-mode autograd over NumPy arrays.

A :class:`Var` wraps an array and remembers how it was produced; calling
:meth:`Var.backward` on a scalar loss runs the tape in reverse
topological order.  Only what sparse-CNN training needs is implemented —
matmul, elementwise ops, indexed gather/scatter-add, concatenation —
but each op is exact and numerically grad-checked in the tests.
"""

from __future__ import annotations

from typing import Callable

import numpy as np


class Var:
    """A node in the computation graph.

    Attributes:
        data: the value (any-dimensional float array).
        grad: accumulated gradient, same shape as ``data`` (after
            ``backward``; ``None`` before).
        requires_grad: leaves with ``False`` stop gradient flow.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data: np.ndarray,
        requires_grad: bool = False,
        parents: tuple = (),
        backward: Callable | None = None,
        name: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad or any(
            p.requires_grad for p in parents
        )
        self._parents = parents
        self._backward = backward
        self.name = name

    # -- graph execution -----------------------------------------------------

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this node.

        Args:
            grad: seed gradient; defaults to 1 for scalar outputs.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a seed needs a scalar")
            grad = np.ones_like(self.data)
        order: list[Var] = []
        seen: set[int] = set()

        def visit(v: "Var") -> None:
            if id(v) in seen or not v.requires_grad:
                return
            seen.add(id(v))
            for p in v._parents:
                visit(p)
            order.append(v)

        visit(self)
        for v in order:
            v.grad = np.zeros_like(v.data)
        self.grad = np.asarray(grad, dtype=np.float64).reshape(self.data.shape)
        for v in reversed(order):
            if v._backward is not None:
                v._backward(v.grad)

    def zero_grad(self) -> None:
        self.grad = None

    # -- shape sugar ---------------------------------------------------------

    @property
    def shape(self):
        return self.data.shape

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return f"Var(shape={self.data.shape}, grad={self.grad is not None}{tag})"

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Var") -> "Var":
        return add(self, other)

    def __matmul__(self, other: "Var") -> "Var":
        return matmul(self, other)

    def __mul__(self, scalar: float) -> "Var":
        return scale(self, scalar)

    __rmul__ = __mul__


class Param(Var):
    """A trainable leaf."""

    def __init__(self, data: np.ndarray, name: str = ""):
        super().__init__(data, requires_grad=True, name=name)


def _accumulate(v: Var, g: np.ndarray) -> None:
    if v.requires_grad:
        if v.grad is None:
            v.grad = np.zeros_like(v.data)
        v.grad += g


# -- primitive ops --------------------------------------------------------


def add(a: Var, b: Var) -> Var:
    if a.data.shape != b.data.shape:
        raise ValueError(f"add shape mismatch: {a.shape} vs {b.shape}")

    def backward(g):
        _accumulate(a, g)
        _accumulate(b, g)

    return Var(a.data + b.data, parents=(a, b), backward=backward)


def add_bias(x: Var, b: Var) -> Var:
    """Row-broadcast bias add: (N, C) + (C,)."""

    def backward(g):
        _accumulate(x, g)
        _accumulate(b, g.sum(axis=0))

    return Var(x.data + b.data[None, :], parents=(x, b), backward=backward)


def scale(x: Var, s: float) -> Var:
    def backward(g):
        _accumulate(x, s * g)

    return Var(x.data * s, parents=(x,), backward=backward)


def mul_rows(x: Var, w: Var) -> Var:
    """Per-channel scaling: (N, C) * (C,)."""

    def backward(g):
        _accumulate(x, g * w.data[None, :])
        _accumulate(w, (g * x.data).sum(axis=0))

    return Var(x.data * w.data[None, :], parents=(x, w), backward=backward)


def matmul(a: Var, b: Var) -> Var:
    def backward(g):
        _accumulate(a, g @ b.data.T)
        _accumulate(b, a.data.T @ g)

    return Var(a.data @ b.data, parents=(a, b), backward=backward)


def relu(x: Var) -> Var:
    mask = x.data > 0

    def backward(g):
        _accumulate(x, g * mask)

    return Var(x.data * mask, parents=(x,), backward=backward)


def take_rows(x: Var, idx: np.ndarray) -> Var:
    """Gather rows (duplicates allowed); backward scatter-adds."""
    idx = np.asarray(idx, dtype=np.int64)

    def backward(g):
        if x.requires_grad:
            buf = np.zeros_like(x.data)
            np.add.at(buf, idx, g)
            _accumulate(x, buf)

    return Var(x.data[idx], parents=(x,), backward=backward)


def scatter_add(x: Var, idx: np.ndarray, n_out: int) -> Var:
    """Scatter rows of ``x`` into ``n_out`` rows, accumulating.

    Forward of the sparse-conv scatter stage; backward is a gather.
    """
    idx = np.asarray(idx, dtype=np.int64)
    out = np.zeros((n_out, x.data.shape[1]), dtype=np.float64)
    np.add.at(out, idx, x.data)

    def backward(g):
        _accumulate(x, g[idx])

    return Var(out, parents=(x,), backward=backward)


def concat_cols(a: Var, b: Var) -> Var:
    ca = a.data.shape[1]

    def backward(g):
        _accumulate(a, g[:, :ca])
        _accumulate(b, g[:, ca:])

    return Var(
        np.concatenate([a.data, b.data], axis=1), parents=(a, b), backward=backward
    )


def pick_per_row(x: Var, cols: np.ndarray) -> Var:
    """Select one column per row: ``out[i] = x[i, cols[i]]``."""
    cols = np.asarray(cols, dtype=np.int64)
    n = x.data.shape[0]
    rows = np.arange(n)

    def backward(g):
        if x.requires_grad:
            buf = np.zeros_like(x.data)
            buf[rows, cols] = g
            _accumulate(x, buf)

    return Var(x.data[rows, cols], parents=(x,), backward=backward)


def mean_all(x: Var) -> Var:
    n = x.data.size

    def backward(g):
        _accumulate(x, np.full_like(x.data, float(g) / n))

    return Var(np.array(x.data.mean()), parents=(x,), backward=backward)


def log_softmax(x: Var) -> Var:
    """Row-wise log-softmax, numerically stable."""
    shifted = x.data - x.data.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    out = shifted - lse

    def backward(g):
        softmax = np.exp(out)
        _accumulate(x, g - softmax * g.sum(axis=1, keepdims=True))

    return Var(out, parents=(x,), backward=backward)
