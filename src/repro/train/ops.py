"""Sparse-convolution forward/backward on kernel maps.

Training reuses the *same* mapping machinery as inference: an engine's
:class:`~repro.mapping.kmap.KernelMap` drives both directions.

Forward (per offset ``n``):   ``Y[out_n] += X[in_n] @ W_n``
Backward:                     ``dX[in_n] += dY[out_n] @ W_n^T``
                              ``dW_n     = X[in_n]^T @ dY[out_n]``

which is exactly the composition of the autograd gather / matmul /
scatter primitives, so no bespoke backward code is needed here.
"""

from __future__ import annotations

import numpy as np

from repro.mapping.kmap import KernelMap
from repro.train.autograd import Var, add, matmul, scatter_add, take_rows


def sparse_conv(x: Var, weights: list, kmap: KernelMap) -> Var:
    """Differentiable sparse convolution.

    Args:
        x: ``(N_in, C_in)`` input features.
        weights: list of ``K^3`` :class:`Param` matrices ``(C_in, C_out)``.
        kmap: the layer's kernel map (from the inference engine's
            mapping step — coordinates need no gradients).

    Returns:
        ``(N_out, C_out)`` output features as a :class:`Var`.
    """
    if len(weights) != kmap.volume:
        raise ValueError(
            f"expected {kmap.volume} weight matrices, got {len(weights)}"
        )
    c_out = weights[0].data.shape[1]
    total: Var | None = None
    for n in range(kmap.volume):
        in_idx = kmap.in_indices[n]
        if len(in_idx) == 0:
            continue
        gathered = take_rows(x, in_idx)
        partial = matmul(gathered, weights[n])
        scattered = scatter_add(partial, kmap.out_indices[n], kmap.n_out)
        total = scattered if total is None else add(total, scattered)
    if total is None:
        return Var(np.zeros((kmap.n_out, c_out)))
    return total
