"""Trainable modules and the segmentation loss.

Training-mode counterparts of :mod:`repro.nn`: they operate on
:class:`~repro.train.autograd.Var` feature matrices and a coordinate
context (strides + kernel maps) provided by
:class:`~repro.train.modules.MapProvider`, which delegates mapping to
the inference engine so both halves of the system share one coordinate
pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import BaselineEngine, ExecutionContext
from repro.core.kernel import kernel_volume
from repro.core.sparse_tensor import SparseTensor
from repro.mapping.downsample import downsample_coords
from repro.mapping.kmap import CoordIndex, KernelMap, build_kmap
from repro.train.autograd import (
    Param,
    Var,
    add_bias,
    log_softmax,
    mul_rows,
    relu,
)
from repro.train.ops import sparse_conv


class MapProvider:
    """Coordinate/map bookkeeping for one training input.

    Holds the per-stride coordinate sets and kernel maps of one point
    cloud, mirroring what :class:`repro.core.engine.ExecutionContext`
    caches during inference.
    """

    def __init__(self, coords: np.ndarray):
        self.coords_at_stride: dict[int, np.ndarray] = {1: np.asarray(coords)}
        self._indices: dict[int, CoordIndex] = {}
        self._kmaps: dict[tuple, KernelMap] = {}

    def _index(self, stride: int) -> CoordIndex:
        if stride not in self._indices:
            self._indices[stride] = CoordIndex.build(
                self.coords_at_stride[stride], backend="hash"
            )
        return self._indices[stride]

    def kmap(self, in_stride: int, kernel_size: int, stride: int) -> KernelMap:
        """Map for a conv at ``in_stride`` (downsampling when stride>1)."""
        out_stride = in_stride * stride
        key = (in_stride, out_stride, kernel_size)
        if key in self._kmaps:
            return self._kmaps[key]
        in_coords = self.coords_at_stride[in_stride]
        if stride == 1:
            out_coords = in_coords
        else:
            out_coords = self.coords_at_stride.get(out_stride)
            if out_coords is None:
                out_coords, _ = downsample_coords(in_coords, kernel_size, stride)
                self.coords_at_stride[out_stride] = out_coords
        kmap = build_kmap(
            in_coords, self._index(in_stride), out_coords, kernel_size, stride
        )
        self._kmaps[key] = kmap
        return kmap

    def kmap_transposed(
        self, in_stride: int, kernel_size: int, stride: int
    ) -> KernelMap:
        """Transposed map for an upsampling conv at ``in_stride``."""
        fine = in_stride // stride
        if fine * stride != in_stride or fine not in self.coords_at_stride:
            raise ValueError(
                f"cannot upsample from stride {in_stride} by {stride}"
            )
        fwd = self.kmap(fine, kernel_size, stride)
        return fwd.transposed()


class TrainModule:
    """Base: tracks parameters, composable."""

    def __init__(self) -> None:
        self._params: list[Param] = []
        self._children: list[TrainModule] = []

    def register(self, *params: Param) -> None:
        self._params.extend(params)

    def add_child(self, child: "TrainModule") -> "TrainModule":
        self._children.append(child)
        return child

    def parameters(self) -> list:
        out = list(self._params)
        for c in self._children:
            out.extend(c.parameters())
        return out

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def __call__(self, x: Var, maps: MapProvider, stride: int = 1):
        return self.forward(x, maps, stride)

    def forward(self, x: Var, maps: MapProvider, stride: int):
        raise NotImplementedError


class TrainConv3d(TrainModule):
    """Trainable sparse conv; returns ``(out, out_stride)`` via Sequential."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        transposed: bool = False,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.kernel_size = kernel_size
        self.stride = stride
        self.transposed = transposed
        vol = kernel_volume(kernel_size)
        init = np.sqrt(2.0 / (vol * in_channels))
        self.weights = [
            Param(rng.standard_normal((in_channels, out_channels)) * init,
                  name=f"w{n}")
            for n in range(vol)
        ]
        self.bias = Param(np.zeros(out_channels), name="bias")
        self.register(*self.weights, self.bias)

    def forward(self, x: Var, maps: MapProvider, stride: int):
        if self.transposed:
            kmap = maps.kmap_transposed(stride, self.kernel_size, self.stride)
            out_stride = stride // self.stride
        else:
            kmap = maps.kmap(stride, self.kernel_size, self.stride)
            out_stride = stride * self.stride
        out = sparse_conv(x, self.weights, kmap)
        return add_bias(out, self.bias), out_stride


class TrainBatchNorm(TrainModule):
    """Frozen-statistics batch norm: trainable affine over fixed
    normalization (sufficient for the small-scale demos; avoids
    batch-statistic bookkeeping)."""

    def __init__(self, channels: int):
        super().__init__()
        self.gamma = Param(np.ones(channels), name="gamma")
        self.beta = Param(np.zeros(channels), name="beta")
        self.register(self.gamma, self.beta)

    def forward(self, x: Var, maps: MapProvider, stride: int):
        return add_bias(mul_rows(x, self.gamma), self.beta), stride


class TrainReLU(TrainModule):
    def forward(self, x: Var, maps: MapProvider, stride: int):
        return relu(x), stride


class TrainLinear(TrainModule):
    def __init__(self, in_features: int, out_features: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Param(
            rng.standard_normal((in_features, out_features))
            * np.sqrt(1.0 / in_features),
            name="linear.w",
        )
        self.bias = Param(np.zeros(out_features), name="linear.b")
        self.register(self.weight, self.bias)

    def forward(self, x: Var, maps: MapProvider, stride: int):
        from repro.train.autograd import matmul

        return add_bias(matmul(x, self.weight), self.bias), stride


class TrainSequential(TrainModule):
    def __init__(self, *layers: TrainModule):
        super().__init__()
        self.layers = list(layers)
        for layer in self.layers:
            self.add_child(layer)

    def forward(self, x: Var, maps: MapProvider, stride: int):
        for layer in self.layers:
            x, stride = layer(x, maps, stride)
        return x, stride


def cross_entropy(logits: Var, targets: np.ndarray) -> Var:
    """Mean cross-entropy over points (pure tape composition).

    Args:
        logits: ``(N, num_classes)``.
        targets: ``(N,)`` integer class labels.
    """
    from repro.train.autograd import mean_all, pick_per_row, scale

    targets = np.asarray(targets, dtype=np.int64)
    if targets.shape[0] != logits.data.shape[0]:
        raise ValueError("targets must have one label per point")
    picked = pick_per_row(log_softmax(logits), targets)
    return scale(mean_all(picked), -1.0)


def maps_for_tensor(x: SparseTensor) -> MapProvider:
    """Convenience: a MapProvider for one voxelized input."""
    return MapProvider(x.coords)


def inference_context() -> ExecutionContext:
    """Context helper for mixing trained weights back into inference."""
    return ExecutionContext(engine=BaselineEngine())
