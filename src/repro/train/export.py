"""Export trained weights into the inference engine's modules.

The training stack (float64 tape) and the inference stack (float32 +
cost model) share kernel-map semantics, so a trained network can be
converted layer-for-layer and served by any engine — the train-then-
deploy loop of a real system.  ``unet_to_inference`` mirrors
:class:`repro.train.model.TrainUNet`'s forward exactly; the test suite
asserts logit agreement between the two stacks.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.engine import ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.nn.modules import concat_skip
from repro.train.model import TrainUNet
from repro.train.modules import (
    TrainBatchNorm,
    TrainConv3d,
    TrainLinear,
    TrainSequential,
)


def conv_to_inference(layer: TrainConv3d) -> nn.Conv3d:
    """Copy a trained sparse conv into an inference ``nn.Conv3d``."""
    c_in, c_out = layer.weights[0].data.shape
    conv = nn.Conv3d(
        c_in,
        c_out,
        kernel_size=layer.kernel_size,
        stride=layer.stride,
        transposed=layer.transposed,
        bias=True,
    )
    conv.weight = np.stack([w.data for w in layer.weights]).astype(np.float32)
    conv.bias = layer.bias.data.astype(np.float32)
    return conv


def bn_to_inference(layer: TrainBatchNorm) -> nn.BatchNorm:
    """Copy a trained (frozen-stats) BN into an inference BatchNorm."""
    bn = nn.BatchNorm(layer.gamma.data.shape[0])
    bn.gamma = layer.gamma.data.astype(np.float32)
    bn.beta = layer.beta.data.astype(np.float32)
    # the training BN normalizes with frozen zero-mean/unit-var stats
    bn.running_mean[:] = 0.0
    bn.running_var[:] = 1.0 - bn.eps  # so scale is exactly gamma
    return bn


def linear_to_inference(layer: TrainLinear) -> nn.Linear:
    lin = nn.Linear(*layer.weight.data.shape)
    lin.weight = layer.weight.data.astype(np.float32)
    lin.bias = layer.bias.data.astype(np.float32)
    return lin


def sequential_to_inference(seq: TrainSequential) -> nn.Sequential:
    """Convert a linear chain of trainable layers."""
    from repro.train.modules import TrainReLU

    out = []
    for layer in seq.layers:
        if isinstance(layer, TrainConv3d):
            out.append(conv_to_inference(layer))
        elif isinstance(layer, TrainBatchNorm):
            out.append(bn_to_inference(layer))
        elif isinstance(layer, TrainReLU):
            out.append(nn.ReLU())
        elif isinstance(layer, TrainLinear):
            out.append(linear_to_inference(layer))
        else:
            raise TypeError(f"cannot export layer of type {type(layer).__name__}")
    return nn.Sequential(*out)


class InferenceUNet(nn.Module):
    """Inference twin of :class:`repro.train.model.TrainUNet`."""

    def __init__(self, trained: TrainUNet):
        super().__init__()
        self.stem = self.add_child("stem", sequential_to_inference(trained.stem))
        self.down = self.add_child("down", sequential_to_inference(trained.down))
        self.up = self.add_child("up", conv_to_inference(trained.up))
        self.head = self.add_child("head", sequential_to_inference(trained.head))

    def forward(self, x: SparseTensor, ctx: ExecutionContext) -> SparseTensor:
        skip = self.stem(x, ctx)
        deep = self.down(skip, ctx)
        upped = self.up(deep, ctx)
        merged = concat_skip(upped, skip, ctx, name=f"{self.name}.skip")
        relu = ctx.engine.pointwise(
            merged, np.maximum(merged.feats, 0), ctx, f"{self.name}.fuse_relu"
        )
        return self.head(relu, ctx)


def unet_to_inference(trained: TrainUNet) -> InferenceUNet:
    """Export a trained U-Net for serving under any engine/device."""
    return InferenceUNet(trained)
