"""Optimizers and a small training loop."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.train.autograd import Param


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: Sequence[Param], lr: float = 1e-2,
                 momentum: float = 0.0):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            v *= self.momentum
            v -= self.lr * p.grad
            p.data += v

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class Adam:
    """Adam (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Sequence[Param],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.params = list(params)
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            m *= self.b1
            m += (1 - self.b1) * p.grad
            v *= self.b2
            v += (1 - self.b2) * p.grad**2
            m_hat = m / (1 - self.b1**self._t)
            v_hat = v / (1 - self.b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


def train_epoch(
    model,
    batches: Sequence[tuple],
    optimizer,
    loss_fn: Callable,
) -> float:
    """One pass over ``batches`` of ``(Var features, MapProvider, targets)``.

    Returns the mean loss.
    """
    total = 0.0
    for x, maps, targets in batches:
        optimizer.zero_grad()
        logits, _ = model(x, maps, 1)
        loss = loss_fn(logits, targets)
        loss.backward()
        optimizer.step()
        total += float(loss.data)
    return total / max(1, len(batches))


def mean_iou(pred: np.ndarray, target: np.ndarray, num_classes: int) -> float:
    """Mean intersection-over-union over classes present in the target."""
    pred = np.asarray(pred)
    target = np.asarray(target)
    ious = []
    for c in range(num_classes):
        t = target == c
        if not t.any():
            continue
        p = pred == c
        inter = (p & t).sum()
        union = (p | t).sum()
        ious.append(inter / union if union else 0.0)
    return float(np.mean(ious)) if ious else 0.0
