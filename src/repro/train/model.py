"""A small trainable sparse U-Net for segmentation demos.

A two-level MinkUNet-style encoder/decoder built from the trainable
modules: enough capacity to learn the synthetic scenes' geometry-driven
classes, small enough to train in seconds on a laptop.
"""

from __future__ import annotations

import numpy as np

from repro.core.sparse_tensor import SparseTensor
from repro.train.autograd import Var, concat_cols, relu
from repro.train.modules import (
    MapProvider,
    TrainBatchNorm,
    TrainConv3d,
    TrainLinear,
    TrainModule,
    TrainReLU,
    TrainSequential,
)


class TrainUNet(TrainModule):
    """stem -> down(2x) -> bottleneck -> up(2x) -> concat skip -> classify."""

    def __init__(self, in_channels: int, num_classes: int, width: int = 16,
                 seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        w = width
        self.stem = self.add_child(
            TrainSequential(
                TrainConv3d(in_channels, w, 3, rng=rng),
                TrainBatchNorm(w),
                TrainReLU(),
                TrainConv3d(w, w, 3, rng=rng),
                TrainReLU(),
            )
        )
        self.down = self.add_child(
            TrainSequential(
                TrainConv3d(w, 2 * w, 2, stride=2, rng=rng),
                TrainReLU(),
                TrainConv3d(2 * w, 2 * w, 3, rng=rng),
                TrainReLU(),
            )
        )
        self.up = self.add_child(
            TrainConv3d(2 * w, w, 2, stride=2, transposed=True, rng=rng)
        )
        self.head = self.add_child(
            TrainSequential(
                TrainConv3d(2 * w, w, 3, rng=rng),
                TrainReLU(),
                TrainLinear(w, num_classes, rng=rng),
            )
        )

    def forward(self, x: Var, maps: MapProvider, stride: int = 1):
        skip, s = self.stem(x, maps, stride)
        deep, s2 = self.down(skip, maps, s)
        upped, s1 = self.up(deep, maps, s2)
        assert s1 == s
        merged = relu(concat_cols(upped, skip))
        return self.head(merged, maps, s1)


def prepare_sample(x: SparseTensor) -> tuple:
    """(Var features, MapProvider) for one voxelized input."""
    return Var(x.feats.astype(np.float64)), MapProvider(x.coords)
