"""Training support.

The paper's system "provides support for CPU inference and multi-GPU
training" while evaluating GPU inference (Section 4.1).  This subpackage
adds the training half: a small reverse-mode autograd over feature
matrices (:mod:`repro.train.autograd`), sparse-convolution forward and
backward built on the same kernel maps the inference engine uses
(:mod:`repro.train.ops`), trainable modules and losses
(:mod:`repro.train.modules`), and optimizers + a training loop
(:mod:`repro.train.optim`).

Every op's backward is validated against central-difference numerical
gradients in the test suite.
"""

from repro.train.autograd import Param, Var
from repro.train.export import unet_to_inference
from repro.train.modules import (
    TrainBatchNorm,
    TrainConv3d,
    TrainLinear,
    TrainModule,
    TrainReLU,
    TrainSequential,
    cross_entropy,
)
from repro.train.optim import SGD, Adam

__all__ = [
    "Var",
    "Param",
    "TrainModule",
    "TrainConv3d",
    "TrainBatchNorm",
    "TrainReLU",
    "TrainLinear",
    "TrainSequential",
    "cross_entropy",
    "SGD",
    "Adam",
    "unet_to_inference",
]
