"""Open-addressing hash table over packed coordinate keys.

This is the "general hashmap" backend of the mapping stage.  Build and
query are fully vectorized: each probe round handles every unresolved
key at once, so the number of rounds equals the longest probe chain.

The table tracks how many slot accesses (≈ DRAM accesses on a GPU) each
build/query performed.  A general hashmap needs on average more than one
access per operation because of collisions; the paper's grid table
(:mod:`repro.hashmap.grid_table`) needs exactly one, which is where its
2.7x map-search speedup comes from (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.robust.errors import TableOverflowError

_EMPTY = np.int64(-1)

# splitmix64 constants — a strong scalar mixer for 64-bit keys.
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX_1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX_2 = np.uint64(0x94D049BB133111EB)


def splitmix64(keys: np.ndarray) -> np.ndarray:
    """Mix 64-bit keys (splitmix64 finalizer), returned as ``uint64``."""
    z = keys.astype(np.uint64) + _SPLITMIX_GAMMA
    z = (z ^ (z >> np.uint64(30))) * _MIX_1
    z = (z ^ (z >> np.uint64(27))) * _MIX_2
    return z ^ (z >> np.uint64(31))


@dataclass
class HashStats:
    """Counters of table activity, priced later by the GPU cost model."""

    build_accesses: int = 0
    query_accesses: int = 0
    table_bytes: int = 0
    max_probe_len: int = 0

    def merge(self, other: "HashStats") -> None:
        self.build_accesses += other.build_accesses
        self.query_accesses += other.query_accesses
        self.table_bytes = max(self.table_bytes, other.table_bytes)
        self.max_probe_len = max(self.max_probe_len, other.max_probe_len)


@dataclass
class HashTable:
    """Linear-probing hash table mapping ``int64`` keys to ``int64`` values.

    Args:
        capacity: number of slots; rounded up to a power of two.
    """

    capacity: int
    stats: HashStats = field(default_factory=HashStats)

    def __post_init__(self) -> None:
        cap = 1
        while cap < max(2, int(self.capacity)):
            cap <<= 1
        self.capacity = cap
        self._keys = np.full(cap, _EMPTY, dtype=np.int64)
        self._values = np.full(cap, _EMPTY, dtype=np.int64)
        self._size = 0
        # key + value slots, 8 bytes each
        self.stats.table_bytes = cap * 16

    # -- construction ---------------------------------------------------

    @classmethod
    def from_keys(
        cls, keys: np.ndarray, values: np.ndarray | None = None, load_factor: float = 0.5
    ) -> "HashTable":
        """Build a table from keys; values default to ``arange(len(keys))``.

        This is the classic (key = packed coordinate, value = point index)
        table of Section 2.1.2.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if values is None:
            values = np.arange(keys.shape[0], dtype=np.int64)
        capacity = max(2, int(np.ceil(keys.shape[0] / load_factor)))
        # fault-injection site: under-size the allocation so insertion
        # overflows (lazy import keeps this module robust-free otherwise)
        from repro.robust.faults import maybe_shrink_capacity

        capacity = maybe_shrink_capacity(capacity, keys.shape[0])
        table = cls(capacity=capacity)
        table.insert(keys, values)
        return table

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert key/value pairs (later duplicates overwrite earlier ones).

        Vectorized linear probing: every still-colliding key advances one
        slot per round.  Duplicate keys *within* one call are resolved so
        that the last occurrence wins, matching ``dict`` semantics.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if keys.shape != values.shape:
            raise ValueError("keys and values must have identical shapes")
        if keys.size == 0:
            return
        if (keys == _EMPTY).any():
            raise ValueError("key -1 is reserved as the empty sentinel")
        n_new = np.unique(keys).shape[0]
        if self._size + n_new > self.capacity:
            # typed (still a ValueError) so the engine's recovery path can
            # distinguish capacity faults from bad-argument errors
            raise TableOverflowError(
                f"table of capacity {self.capacity} cannot hold "
                f"{self._size + n_new} entries"
            )

        reg = get_registry()
        probe_hist = reg.histogram("hash.probe_length", op="build")
        accesses_before = self.stats.build_accesses
        mask = np.int64(self.capacity - 1)
        slot = (splitmix64(keys) & np.uint64(mask)).astype(np.int64)
        pending = np.arange(keys.shape[0])
        probes = 0
        while pending.size:
            probes += 1
            round_pending = pending.size
            self.stats.build_accesses += pending.size
            s = slot[pending]
            occupant = self._keys[s]
            free = occupant == _EMPTY
            match = occupant == keys[pending]
            winner = free | match

            if winner.any():
                # Several pending keys can target the same free slot; keep
                # one claimant per slot (the last, for dict semantics) and
                # retry the rest next round.
                w_idx = pending[winner]
                w_slot = s[winner]
                order = np.argsort(w_idx, kind="stable")
                w_idx, w_slot = w_idx[order], w_slot[order]
                # last occurrence per slot wins
                last = np.zeros(w_slot.shape[0], dtype=bool)
                sort_by_slot = np.argsort(w_slot, kind="stable")
                ss = w_slot[sort_by_slot]
                boundary = np.ones(ss.shape[0], dtype=bool)
                boundary[:-1] = ss[1:] != ss[:-1]
                last[sort_by_slot[boundary]] = True

                claim_idx = w_idx[last]
                claim_slot = w_slot[last]
                newly = self._keys[claim_slot] == _EMPTY
                # keys equal to an existing occupant overwrite in place
                self._size += int(np.count_nonzero(newly))
                self._keys[claim_slot] = keys[claim_idx]
                self._values[claim_slot] = values[claim_idx]

                # Losers whose key now matches the occupant also resolve
                # (their value is superseded), everyone else retries.
                s_after = self._keys[slot[pending]]
                resolved = s_after == keys[pending]
                pending = pending[~resolved]
                slot[pending] = (slot[pending] + 1) & mask
            else:
                slot[pending] = (slot[pending] + 1) & mask
            done = round_pending - pending.size
            if done:
                probe_hist.observe(probes, count=done)
        self.stats.max_probe_len = max(self.stats.max_probe_len, probes)
        reg.counter("table.accesses", backend="hash", op="build").inc(
            self.stats.build_accesses - accesses_before
        )
        reg.counter("hash.collisions", op="build").inc(
            self.stats.build_accesses - accesses_before - keys.shape[0]
        )
        reg.gauge("table.load", backend="hash").set(self.load)

    # -- queries ----------------------------------------------------------

    def lookup(self, keys: np.ndarray) -> np.ndarray:
        """Return the value for each key, or ``-1`` where absent."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        reg = get_registry()
        probe_hist = reg.histogram("hash.probe_length", op="query")
        accesses_before = self.stats.query_accesses
        mask = np.int64(self.capacity - 1)
        slot = (splitmix64(keys) & np.uint64(mask)).astype(np.int64)
        out = np.full(keys.shape[0], _EMPTY, dtype=np.int64)
        pending = np.arange(keys.shape[0])
        probes = 0
        while pending.size:
            probes += 1
            round_pending = pending.size
            self.stats.query_accesses += pending.size
            s = slot[pending]
            occupant = self._keys[s]
            hit = occupant == keys[pending]
            miss = occupant == _EMPTY
            out[pending[hit]] = self._values[s[hit]]
            pending = pending[~(hit | miss)]
            slot[pending] = (slot[pending] + 1) & mask
            done = round_pending - pending.size
            if done:
                probe_hist.observe(probes, count=done)
        self.stats.max_probe_len = max(self.stats.max_probe_len, probes)
        reg.counter("table.accesses", backend="hash", op="query").inc(
            self.stats.query_accesses - accesses_before
        )
        reg.counter("hash.collisions", op="query").inc(
            self.stats.query_accesses - accesses_before - keys.shape[0]
        )
        return out

    def contains(self, keys: np.ndarray) -> np.ndarray:
        """Boolean membership per key."""
        return self.lookup(keys) != _EMPTY

    def __len__(self) -> int:
        return self._size

    @property
    def load(self) -> float:
        """Occupied fraction of the table."""
        return self._size / self.capacity
