"""Packing voxel coordinates into scalar keys.

A point-cloud coordinate is an ``int32`` row ``(batch, x, y, z)``.  The
hash backends operate on scalar ``int64`` keys instead of 4-tuples, so we
bijectively pack each coordinate into 64 bits (15 bits of batch, 16 bits
per signed spatial axis) — this mirrors the "flatten the coordinate of
each dimension into an integer" hash function described in Section 2.1.2
of the paper.
"""

from __future__ import annotations

import numpy as np

#: Bits reserved for each of the (x, y, z) axes inside a packed key.
COORD_BITS = 16

#: Signed coordinate range representable by :func:`pack_coords`.
COORD_MIN = -(1 << (COORD_BITS - 1))
COORD_MAX = (1 << (COORD_BITS - 1)) - 1

_OFFSET = 1 << (COORD_BITS - 1)
_MASK = (1 << COORD_BITS) - 1


def _as_coords(coords: np.ndarray) -> np.ndarray:
    coords = np.asarray(coords)
    if coords.ndim != 2 or coords.shape[1] != 4:
        raise ValueError(f"coords must have shape (N, 4), got {coords.shape}")
    return coords.astype(np.int64, copy=False)


def pack_coords(coords: np.ndarray) -> np.ndarray:
    """Pack ``(N, 4)`` ``(batch, x, y, z)`` rows into unique ``int64`` keys.

    The packing is a bijection on its declared domain, so equal keys imply
    equal coordinates (no hash collisions at this level).

    Raises:
        ValueError: if any coordinate is outside ``[COORD_MIN, COORD_MAX]``
            or any batch index is outside ``[0, 2**15)``.
    """
    c = _as_coords(coords)
    b, xyz = c[:, 0], c[:, 1:]
    if c.size:
        if xyz.min() < COORD_MIN or xyz.max() > COORD_MAX:
            raise ValueError(
                f"spatial coordinates must lie in [{COORD_MIN}, {COORD_MAX}]"
            )
        if b.min() < 0 or b.max() >= (1 << 15):
            raise ValueError("batch indices must lie in [0, 2**15)")
    key = b
    for axis in range(3):
        key = (key << COORD_BITS) | ((xyz[:, axis] + _OFFSET) & _MASK)
    return key


def unpack_coords(keys: np.ndarray) -> np.ndarray:
    """Invert :func:`pack_coords`, returning ``(N, 4)`` ``int32`` rows."""
    keys = np.asarray(keys, dtype=np.int64)
    out = np.empty((keys.shape[0], 4), dtype=np.int32)
    k = keys
    for axis in (3, 2, 1):
        out[:, axis] = ((k & _MASK) - _OFFSET).astype(np.int32)
        k = k >> COORD_BITS
    out[:, 0] = k.astype(np.int32)
    return out


def coords_bounds(coords: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return per-column ``(min, max)`` of a non-empty coordinate array."""
    c = _as_coords(coords)
    if not c.size:
        raise ValueError("cannot take bounds of an empty coordinate array")
    return c.min(axis=0), c.max(axis=0)


def ravel_coords(
    coords: np.ndarray, origin: np.ndarray, shape: np.ndarray
) -> np.ndarray:
    """Flatten coordinates into dense indices of a bounding-box grid.

    This is the addressing scheme of the collision-free grid table: the
    coordinate's offset from ``origin`` is raveled row-major over
    ``shape`` (which covers batch and the three spatial axes).

    Coordinates outside the box raise ``ValueError`` — the grid table is
    only collision-free inside its declared extent.
    """
    c = _as_coords(coords)
    origin = np.asarray(origin, dtype=np.int64)
    shape = np.asarray(shape, dtype=np.int64)
    rel = c - origin
    if c.size and ((rel < 0).any() or (rel >= shape).any()):
        raise ValueError("coordinates fall outside the grid bounding box")
    idx = rel[:, 0]
    for axis in range(1, 4):
        idx = idx * shape[axis] + rel[:, axis]
    return idx


def unravel_coords(
    indices: np.ndarray, origin: np.ndarray, shape: np.ndarray
) -> np.ndarray:
    """Invert :func:`ravel_coords`."""
    idx = np.asarray(indices, dtype=np.int64)
    origin = np.asarray(origin, dtype=np.int64)
    shape = np.asarray(shape, dtype=np.int64)
    out = np.empty((idx.shape[0], 4), dtype=np.int64)
    for axis in (3, 2, 1):
        out[:, axis] = idx % shape[axis]
        idx = idx // shape[axis]
    out[:, 0] = idx
    return (out + origin).astype(np.int32)
