"""Collision-free grid table over coordinate bounding boxes.

The "grid" backend of map search (Section 4.4): a dense array covering
the (batch x spatial) bounding box of the coordinates.  Every build or
query touches exactly one slot, so DRAM traffic per entry is minimal —
the paper measures it 2.7x faster than a general hashmap — at the price
of memory proportional to the box volume, which is why TorchSparse
*chooses* between grid and hashmap per layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashmap.coords import ravel_coords
from repro.hashmap.hash_table import HashStats
from repro.obs.metrics import get_registry
from repro.robust.errors import GridMemoryError

_EMPTY = np.int64(-1)


@dataclass
class GridTable:
    """Dense ``coordinate -> value`` table over a fixed bounding box.

    Args:
        origin: per-column lower bound ``(batch, x, y, z)``.
        shape: per-column extent; the table holds ``prod(shape)`` slots.
    """

    origin: np.ndarray
    shape: np.ndarray
    stats: HashStats = field(default_factory=HashStats)

    def __post_init__(self) -> None:
        self.origin = np.asarray(self.origin, dtype=np.int64)
        self.shape = np.asarray(self.shape, dtype=np.int64)
        if self.origin.shape != (4,) or self.shape.shape != (4,):
            raise ValueError("origin and shape must be length-4")
        if (self.shape <= 0).any():
            raise ValueError("shape entries must be positive")
        volume = int(np.prod(self.shape))
        # Stored as value+1 with 0 = empty so the backing array can be
        # np.zeros: fresh zero pages are mapped lazily by the OS, which
        # keeps huge mostly-empty grids cheap in host memory (the GPU
        # being modeled pays for the full allocation — that is captured
        # by table_bytes, not by this process's RSS).
        self._values = np.zeros(volume, dtype=np.int64)
        self._size = 0
        self.stats.table_bytes = volume * 8
        self.stats.max_probe_len = 1

    @classmethod
    def from_coords(
        cls,
        coords: np.ndarray,
        values: np.ndarray | None = None,
        margin: int = 0,
        max_bytes: int | None = None,
    ) -> "GridTable":
        """Build a grid table covering ``coords`` (plus a spatial margin).

        The margin widens the box so that neighbor queries at kernel
        offsets up to ``margin`` voxels stay inside the table.

        Args:
            max_bytes: memory budget for the dense slot array; exceeding
                it raises :class:`~repro.robust.errors.GridMemoryError`
                (a ``MemoryError``) instead of allocating — the modeled
                GPU would OOM long before the lazily-mapped host pages do.
        """
        coords = np.asarray(coords, dtype=np.int64)
        if coords.shape[0] == 0:
            raise ValueError("cannot size a grid table from zero coordinates")
        lo = coords.min(axis=0)
        hi = coords.max(axis=0)
        lo[1:] -= margin
        hi[1:] += margin
        shape = hi - lo + 1
        if max_bytes is not None:
            volume = int(np.prod(shape.astype(np.int64)))
            if volume * 8 > max_bytes:
                raise GridMemoryError(
                    f"grid table of {volume} slots ({volume * 8} bytes) "
                    f"exceeds the {max_bytes}-byte budget"
                )
        table = cls(origin=lo, shape=shape)
        if values is None:
            values = np.arange(coords.shape[0], dtype=np.int64)
        table.insert(coords, values)
        return table

    def insert(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Insert coordinate rows (later duplicates overwrite earlier)."""
        coords = np.asarray(coords, dtype=np.int64)
        values = np.asarray(values, dtype=np.int64)
        if coords.shape[0] != values.shape[0]:
            raise ValueError("coords and values must have matching lengths")
        if coords.shape[0] == 0:
            return
        if (values < 0).any():
            raise ValueError("grid table values must be non-negative")
        idx = ravel_coords(coords, self.origin, self.shape)
        newly = self._values[idx] == 0
        # idx may repeat; count distinct new slots
        new_slots = np.unique(idx[newly])
        self._size += int(new_slots.shape[0])
        self._values[idx] = values + 1
        self.stats.build_accesses += coords.shape[0]
        reg = get_registry()
        reg.counter("table.accesses", backend="grid", op="build").inc(
            coords.shape[0]
        )
        reg.gauge("table.load", backend="grid").set(self._size / self.volume)

    def lookup(self, coords: np.ndarray) -> np.ndarray:
        """Value per coordinate row, ``-1`` where absent or out of box."""
        coords = np.asarray(coords, dtype=np.int64)
        if coords.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        rel = coords - self.origin
        inside = ((rel >= 0) & (rel < self.shape)).all(axis=1)
        out = np.full(coords.shape[0], _EMPTY, dtype=np.int64)
        if inside.any():
            idx = ravel_coords(coords[inside], self.origin, self.shape)
            out[inside] = self._values[idx] - 1
        self.stats.query_accesses += coords.shape[0]
        get_registry().counter("table.accesses", backend="grid", op="query").inc(
            coords.shape[0]
        )
        return out

    def contains(self, coords: np.ndarray) -> np.ndarray:
        """Boolean membership per coordinate row."""
        return self.lookup(coords) != _EMPTY

    def __len__(self) -> int:
        return self._size

    @property
    def volume(self) -> int:
        """Number of slots (the memory cost of collision freedom)."""
        return int(self._values.shape[0])
