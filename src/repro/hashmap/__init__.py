"""Coordinate indexing substrate.

Sparse convolution's mapping step needs an exact membership/index query
over integer voxel coordinates.  The paper compares two backends
(Section 4.4):

* a general open-addressing **hashmap** (:mod:`repro.hashmap.hash_table`),
  compact but requiring on average more than one probe (DRAM access) per
  query, and
* a collision-free **grid table** (:mod:`repro.hashmap.grid_table`) that
  spends memory proportional to the bounding-box volume in exchange for
  exactly one DRAM access per build/query.

Both backends count their DRAM accesses so the GPU cost model can price
them, and both are validated against a Python ``dict`` oracle in the
test suite.
"""

from repro.hashmap.coords import (
    COORD_BITS,
    coords_bounds,
    pack_coords,
    ravel_coords,
    unpack_coords,
    unravel_coords,
)
from repro.hashmap.grid_table import GridTable
from repro.hashmap.hash_table import HashTable

__all__ = [
    "COORD_BITS",
    "HashTable",
    "GridTable",
    "pack_coords",
    "unpack_coords",
    "ravel_coords",
    "unravel_coords",
    "coords_bounds",
]
