"""Tests for matmul grouping strategies (Algorithm 4)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.grouping import (
    make_plan,
    partition_adaptive,
    plan_matmul_cost,
)
from repro.core.kernel import center_offset_index, opposite_offset_index
from repro.gpu.device import RTX_2080TI
from repro.gpu.memory import DType

CENTER = center_offset_index(3)

sizes_strategy = st.lists(
    st.integers(0, 50_000), min_size=27, max_size=27
).map(np.array)


def symmetric_sizes(rng_seed=0):
    """Random sizes obeying the stride-1 symmetry |M[n]| == |M[opp(n)]|."""
    rng = np.random.default_rng(rng_seed)
    sizes = np.zeros(27, dtype=np.int64)
    for n in range(13):
        sizes[n] = sizes[opposite_offset_index(n, 3)] = rng.integers(100, 30_000)
    sizes[CENTER] = rng.integers(100, 30_000)
    return sizes


class TestPlanInvariants:
    @pytest.mark.parametrize("strategy", ["separate", "symmetric", "fixed", "adaptive"])
    def test_each_offset_exactly_once(self, strategy):
        sizes = symmetric_sizes()
        plan = make_plan(strategy, sizes, 3, 1, epsilon=0.5, s_threshold=1e5)
        members = plan.member_offsets()
        assert sorted(members) == sorted(set(members))
        expected = {n for n in range(27) if n != CENTER and sizes[n] > 0}
        assert set(members) == expected
        plan.validate(27, CENTER)

    @pytest.mark.parametrize("strategy", ["separate", "symmetric", "fixed", "adaptive"])
    def test_empty_offsets_excluded(self, strategy):
        sizes = symmetric_sizes()
        sizes[0] = sizes[26] = 0
        plan = make_plan(strategy, sizes, 3, 1)
        assert 0 not in plan.member_offsets()
        assert 26 not in plan.member_offsets()

    def test_downsample_includes_all_offsets(self):
        """At stride > 1 there is no free center: all offsets grouped."""
        sizes = np.full(8, 1000, dtype=np.int64)
        plan = make_plan("separate", sizes, 2, 2)
        assert len(plan.member_offsets()) == 8


class TestSeparate:
    def test_one_group_per_offset(self):
        plan = make_plan("separate", symmetric_sizes(), 3, 1)
        assert all(len(g.members) == 1 for g in plan.groups)
        assert all(not g.use_bmm for g in plan.groups)


class TestSymmetric:
    def test_pairs_are_opposites(self):
        plan = make_plan("symmetric", symmetric_sizes(), 3, 1)
        for g in plan.groups:
            if len(g.members) == 2:
                a, b = g.members
                assert b == opposite_offset_index(a, 3)
        assert sum(len(g.members) == 2 for g in plan.groups) == 13

    def test_pairs_pad_nothing(self):
        """Symmetric pairs have equal sizes, so bmm padding waste is 0."""
        sizes = symmetric_sizes()
        plan = make_plan("symmetric", sizes, 3, 1)
        for g in plan.groups:
            member_sizes = [sizes[m] for m in g.members]
            assert max(member_sizes) == min(member_sizes)

    def test_falls_back_for_downsample(self):
        sizes = np.full(8, 1000, dtype=np.int64)
        plan = make_plan("symmetric", sizes, 2, 2)
        assert plan.strategy == "separate"


class TestFixed:
    def test_submanifold_two_groups(self):
        plan = make_plan("fixed", symmetric_sizes(), 3, 1)
        assert plan.num_groups == 2

    def test_downsample_single_group(self):
        sizes = np.full(8, 1000, dtype=np.int64)
        plan = make_plan("fixed", sizes, 2, 2)
        assert plan.num_groups == 1
        assert plan.groups[0].use_bmm


class TestAdaptivePartition:
    def test_epsilon_zero_only_groups_equal_sizes(self):
        sizes = symmetric_sizes()
        parts = partition_adaptive(sizes, 0.0, CENTER, 3, symmetric=True)
        for members in parts:
            ms = [sizes[m] for m in members]
            assert max(ms) == min(ms)

    def test_epsilon_one_single_group(self):
        sizes = symmetric_sizes()
        parts = partition_adaptive(sizes, 1.0, CENTER, 3, symmetric=True)
        assert len(parts) == 1

    def test_waste_ratio_bounded(self):
        """Every group respects 1 - n_min/n_max <= epsilon."""
        sizes = symmetric_sizes(5)
        for eps in (0.1, 0.3, 0.6):
            parts = partition_adaptive(sizes, eps, CENTER, 3, symmetric=True)
            for members in parts:
                ms = [int(sizes[m]) for m in members]
                assert 1 - min(ms) / max(ms) <= eps + 1e-9

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            partition_adaptive(symmetric_sizes(), 1.5, CENTER, 3, True)

    def test_s_threshold_controls_bmm(self):
        sizes = symmetric_sizes()
        hi = make_plan("adaptive", sizes, 3, 1, epsilon=1.0, s_threshold=math.inf)
        lo = make_plan("adaptive", sizes, 3, 1, epsilon=1.0, s_threshold=0.0)
        assert any(g.use_bmm for g in hi.groups)
        assert not any(g.use_bmm for g in lo.groups)

    @given(sizes_strategy, st.floats(0, 1))
    @settings(max_examples=40, deadline=None)
    def test_property_partition_is_exact_cover(self, sizes, eps):
        parts = partition_adaptive(sizes, eps, CENTER, 3, symmetric=False)
        flat = [m for g in parts for m in g]
        expected = [n for n in range(27) if n != CENTER and sizes[n] > 0]
        assert sorted(flat) == expected


class TestSpecialCaseEquivalences:
    """Section 4.2.3: the (epsilon, S) space covers the other strategies."""

    def test_s_zero_equals_separate_cost(self):
        sizes = symmetric_sizes(7)
        sep = make_plan("separate", sizes, 3, 1)
        ada = make_plan("adaptive", sizes, 3, 1, epsilon=0.5, s_threshold=0.0)
        c_sep = plan_matmul_cost(sep, sizes, 32, 32, DType.FP16, RTX_2080TI)
        c_ada = plan_matmul_cost(ada, sizes, 32, 32, DType.FP16, RTX_2080TI)
        # identical FLOPs (no padding anywhere)
        assert c_sep.flops == pytest.approx(c_ada.flops)

    def test_eps0_sinf_equals_symmetric(self):
        sizes = symmetric_sizes(8)
        sym = make_plan("symmetric", sizes, 3, 1)
        ada = make_plan("adaptive", sizes, 3, 1, epsilon=0.0, s_threshold=math.inf)
        # same group count and same padded flops
        c_sym = plan_matmul_cost(sym, sizes, 32, 32, DType.FP16, RTX_2080TI)
        c_ada = plan_matmul_cost(ada, sizes, 32, 32, DType.FP16, RTX_2080TI)
        assert c_sym.flops == pytest.approx(c_ada.flops)


class TestPlanCost:
    def test_bmm_pads_flops(self):
        sizes = np.zeros(27, dtype=np.int64)
        sizes[0], sizes[26] = 100, 1000
        plan = make_plan("adaptive", sizes, 3, 1, epsilon=1.0, s_threshold=math.inf)
        cost = plan_matmul_cost(plan, sizes, 32, 32, DType.FP16, RTX_2080TI)
        assert cost.flops == pytest.approx(2 * 2 * 1000 * 32 * 32)
        assert cost.useful_flops == pytest.approx(2 * 1100 * 32 * 32)

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            make_plan("magic", symmetric_sizes(), 3, 1)
