"""Tests for kernel offset enumeration."""

import numpy as np
import pytest

from repro.core.kernel import (
    center_offset_index,
    is_symmetric_enumeration,
    kernel_offsets,
    kernel_range,
    kernel_volume,
    opposite_offset_index,
)


class TestKernelRange:
    def test_odd_centered(self):
        assert np.array_equal(kernel_range(3), [-1, 0, 1])
        assert np.array_equal(kernel_range(5), [-2, -1, 0, 1, 2])

    def test_even_nonnegative(self):
        assert np.array_equal(kernel_range(2), [0, 1])
        assert np.array_equal(kernel_range(4), [0, 1, 2, 3])

    def test_size_one(self):
        assert np.array_equal(kernel_range(1), [0])

    def test_invalid(self):
        with pytest.raises(ValueError):
            kernel_range(0)


class TestKernelOffsets:
    def test_count(self):
        for k in (1, 2, 3, 5):
            assert kernel_offsets(k).shape == (k**3, 3)
            assert kernel_volume(k) == k**3

    def test_2d(self):
        offs = kernel_offsets(5, ndim=2)
        assert offs.shape == (25, 2)
        assert offs.min() == -2 and offs.max() == 2

    def test_lexicographic_order(self):
        offs = kernel_offsets(3)
        assert np.array_equal(offs[0], [-1, -1, -1])
        assert np.array_equal(offs[-1], [1, 1, 1])
        # first axis slowest
        assert np.array_equal(offs[1], [-1, -1, 0])

    def test_all_unique(self):
        offs = kernel_offsets(3)
        assert np.unique(offs, axis=0).shape[0] == offs.shape[0]


class TestSymmetry:
    def test_center_index_odd(self):
        assert center_offset_index(3) == 13
        offs = kernel_offsets(3)
        assert np.array_equal(offs[13], [0, 0, 0])

    def test_center_index_even_is_none(self):
        assert center_offset_index(2) is None

    def test_opposite_is_negation(self):
        """The load-bearing identity of symmetric grouping."""
        for k in (1, 3, 5):
            offs = kernel_offsets(k)
            for n in range(offs.shape[0]):
                opp = opposite_offset_index(n, k)
                assert np.array_equal(offs[opp], -offs[n])

    def test_opposite_is_involution(self):
        for n in range(27):
            assert opposite_offset_index(opposite_offset_index(n, 3), 3) == n

    def test_opposite_rejects_even(self):
        with pytest.raises(ValueError):
            opposite_offset_index(0, 2)

    def test_is_symmetric_enumeration(self):
        assert is_symmetric_enumeration(3)
        assert is_symmetric_enumeration(5)
        assert not is_symmetric_enumeration(2)

    def test_center_is_own_opposite(self):
        c = center_offset_index(3)
        assert opposite_offset_index(c, 3) == c
