"""Tests for the repro-bench CLI."""

import json

import pytest

from repro.cli import DEVICES, ENGINE_FACTORIES, build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "--model", "x"])
        assert args.engine == "torchsparse"
        assert args.device == "2080ti"

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_engine_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--model", "x", "--engine", "y"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "minkunet_1.0x_kitti" in out
        assert "torchsparse" in out
        assert "3090" in out

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["bench", "--model", "nope"])

    def test_bench_runs(self, capsys):
        rc = main(
            ["bench", "--model", "minkunet_0.5x_kitti", "--scale", "0.12",
             "--engine", "baseline"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled latency" in out
        assert "matmul" in out

    def test_compare_runs(self, capsys):
        rc = main(
            ["compare", "--model", "minkunet_0.5x_kitti", "--scale", "0.12"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for engine in ENGINE_FACTORIES:
            assert engine in out

    def test_tune_runs(self, tmp_path, capsys):
        out_file = tmp_path / "book.json"
        rc = main(
            ["tune", "--model", "minkunet_0.5x_kitti", "--scale", "0.1",
             "--out", str(out_file)]
        )
        assert rc == 0
        assert out_file.exists()
        from repro.core.tuner import StrategyBook

        book = StrategyBook.loads(out_file.read_text())
        assert len(book.layers) > 10

    def test_cpu_device_available(self):
        assert "cpu" in DEVICES
        rc = main(
            ["bench", "--model", "minkunet_0.5x_kitti", "--scale", "0.1",
             "--device", "cpu"]
        )
        assert rc == 0


BENCH = ["--model", "minkunet_0.5x_kitti", "--scale", "0.12"]


class TestObservabilityExports:
    def test_bench_artifacts(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.jsonl"
        snap = tmp_path / "snap.json"
        rc = main(
            ["bench", *BENCH, "--trace", str(trace), "--metrics", str(metrics),
             "--json", str(snap), "--report"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "per-layer breakdown" in out

        loaded = json.loads(trace.read_text())
        spans = [
            e for e in loaded["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "span"
        ]
        depths = {e["args"]["depth"] for e in spans}
        assert {0, 1} <= depths  # layer spans nest stage spans

        names = {json.loads(l)["name"] for l in metrics.read_text().splitlines()}
        assert "gemm.utilization" in names
        assert "gemm.padded_flops" in names
        assert "engine.cache.hits" in names

        s = json.loads(snap.read_text())
        assert s["schema"] == "repro-bench.snapshot/1"
        assert s["latency"] > 0
        assert any(k.startswith("engine.cache.hit_rate") for k in s["metrics"])

    def test_regress_gate(self, tmp_path, capsys):
        base = tmp_path / "base.json"
        # first run writes the baseline
        assert main(["regress", *BENCH, "--baseline", str(base)]) == 0
        assert "baseline written" in capsys.readouterr().out
        # identical rerun passes (the model is deterministic)
        assert main(["regress", *BENCH, "--baseline", str(base)]) == 0
        assert "0 drifted" in capsys.readouterr().out
        # tampered baseline fails the gate
        snap = json.loads(base.read_text())
        snap["latency"] *= 2.0
        base.write_text(json.dumps(snap))
        assert main(["regress", *BENCH, "--baseline", str(base)]) == 1
        assert "FAIL latency" in capsys.readouterr().out
        # ... unless the tolerance override forgives it
        rc = main(
            ["regress", *BENCH, "--baseline", str(base), "--tol", "latency=2.0"]
        )
        assert rc == 0
        # --update rewrites the baseline and the gate passes again
        assert main(["regress", *BENCH, "--baseline", str(base), "--update"]) == 0
        assert main(["regress", *BENCH, "--baseline", str(base)]) == 0

    def test_regress_bad_tol_spec(self, tmp_path):
        base = tmp_path / "b.json"
        main(["regress", *BENCH, "--baseline", str(base)])
        with pytest.raises(SystemExit, match="NAME=REL"):
            main(["regress", *BENCH, "--baseline", str(base), "--tol", "oops"])


class TestServeCli:
    SERVE = ["serve", "--scale", "0.1", "--rate", "300", "--duration", "0.3",
             "--seed", "3"]
    CHAOS = [*SERVE, "--faults", "device_crash,device_stall,queue_spike"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.devices == "2080ti,2080ti,3090"
        assert args.preset == "torchsparse"
        assert args.faults == ""  # clean campaign unless asked
        assert args.slo_floor == 0.0

    def test_clean_campaign_passes(self, capsys):
        rc = main(self.SERVE)
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve campaign" in out
        assert "terminal states: all" in out
        assert "SLO" in out

    def test_chaos_campaign_artifacts(self, tmp_path, capsys):
        snap = tmp_path / "serve.json"
        metrics = tmp_path / "serve-metrics.jsonl"
        rc = main(
            [*self.CHAOS, "--json", str(snap), "--metrics", str(metrics)]
        )
        assert rc == 0
        d = json.loads(snap.read_text())
        assert d["schema"] == "repro-bench.serve/1"
        assert d["all_terminal"] is True
        assert d["total"] == len(d["requests"])
        names = {
            json.loads(l)["name"] for l in metrics.read_text().splitlines()
        }
        assert "serve.arrivals" in names
        assert "serve.latency_ms" in names
        assert any(n.startswith("faults.injected") for n in names)

    def test_same_seed_bit_for_bit_json(self, tmp_path, capsys):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.CHAOS, "--json", str(a)]) == 0
        assert main([*self.CHAOS, "--json", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_slo_floor_gate_fails(self, capsys):
        # an impossible floor flips the exit code, not the report
        rc = main([*self.SERVE, "--slo-floor", "1.01"])
        assert rc == 1
        assert "FAIL: slo_attainment" in capsys.readouterr().out

    def test_unknown_device_rejected(self):
        with pytest.raises(SystemExit, match="unknown device"):
            main([*self.SERVE, "--devices", "quantum9000"])

    def test_unknown_fault_rejected(self):
        with pytest.raises(SystemExit, match="unknown serve fault"):
            main([*self.SERVE, "--faults", "kmap_corrupt"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main([*self.SERVE, "--models", "nope"])


class TestChaosJsonSchema:
    def test_chaos_snapshot_schema_and_per_preset(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        rc = main(
            ["chaos", "--seeds", "1", "--kinds", "matmul_nan",
             "--json", str(out)]
        )
        assert rc == 0
        d = json.loads(out.read_text())
        assert d["schema"] == "repro-bench.chaos/1"
        assert set(d["per_preset"]) == {"torchsparse", "baseline"}
        for stats in d["per_preset"].values():
            assert stats["trials"] >= 1
        from repro.obs.regress import CHAOS_SCHEMA, load_snapshot

        # the snapshot loader accepts it under the chaos schema...
        assert load_snapshot(str(out), schema=CHAOS_SCHEMA)["passed"] is True
        # ...and rejects it under the default benchmark schema
        with pytest.raises(ValueError, match="expected"):
            load_snapshot(str(out))


class TestSteadyStateCli:
    BENCH = ["bench", "--model", "minkunet_0.5x_kitti", "--scale", "0.12",
             "--engine", "baseline", "--steady-state", "--frames", "3"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench", "--model", "x"])
        assert args.steady_state is False
        assert args.frames == 4
        serve = build_parser().parse_args(["serve"])
        assert serve.steady_state is False
        assert serve.coherence == 0.0

    def test_bench_steady_state_runs(self, capsys):
        assert main(self.BENCH) == 0
        out = capsys.readouterr().out
        assert "cold frame" in out and "warm frames" in out
        assert "warm reduction" in out and "mapping 100.0%" in out

    def test_bench_steady_state_snapshot(self, tmp_path, capsys):
        snap = tmp_path / "steady.json"
        assert main([*self.BENCH, "--json", str(snap)]) == 0
        d = json.loads(snap.read_text())
        assert d["schema"] == "repro-bench.steady/1"
        assert d["frames"] == 3
        assert d["warm_mapping"] == 0.0
        assert d["mapping_reduction"] == 1.0
        assert d["latency_reduction"] > 0.0
        assert d["cache"]["entries"] > 0
        assert any(
            k.startswith("mapcache.hits") and v > 0
            for k, v in d["mapcache_metrics"].items()
        )

    def test_bench_steady_state_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.BENCH, "--json", str(a)]) == 0
        assert main([*self.BENCH, "--json", str(b)]) == 0
        assert a.read_text() == b.read_text()

    def test_serve_steady_state_smoke(self, capsys):
        rc = main(
            ["serve", "--scale", "0.1", "--rate", "300", "--duration", "0.3",
             "--seed", "3", "--coherence", "0.8", "--steady-state"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "steady state:" in out and "warm" in out

    def test_bad_coherence_rejected(self):
        with pytest.raises(SystemExit, match="coherence"):
            main(["serve", "--scale", "0.1", "--rate", "100",
                  "--duration", "0.2", "--coherence", "1.5"])


class TestFlightRecorderCli:
    SERVE = ["serve", "--scale", "0.1", "--rate", "300", "--duration", "0.3",
             "--seed", "3", "--faults", "device_crash,device_stall"]

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.events is None and args.trace is None
        assert args.slo_window is None and args.slo_target == 0.99
        assert args.burn_ceiling is None and args.prom is None

    def test_events_and_trace_artifacts(self, tmp_path, capsys):
        ev = tmp_path / "events.jsonl"
        tr = tmp_path / "trace.json"
        rc = main([*self.SERVE, "--events", str(ev), "--trace", str(tr)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "event journal written" in out
        from repro.obs.timeline import load_journal, validate_journal

        header, events = load_journal(str(ev))
        assert header["seed"] == 3
        assert validate_journal(header, events) == []
        trace = json.loads(tr.read_text())
        assert trace["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in trace["traceEvents"])

    def test_same_seed_journal_bit_for_bit(self, tmp_path, capsys):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        ta, tb = tmp_path / "ta.json", tmp_path / "tb.json"
        assert main([*self.SERVE, "--events", str(a), "--trace", str(ta)]) == 0
        assert main([*self.SERVE, "--events", str(b), "--trace", str(tb)]) == 0
        assert a.read_bytes() == b.read_bytes()
        assert ta.read_bytes() == tb.read_bytes()

    def test_slo_window_summary_and_burn_gate(self, capsys):
        rc = main([*self.SERVE, "--slo-window", "0.1"])
        assert rc == 0
        assert "SLO windows" in capsys.readouterr().out
        # an impossible ceiling flips the exit code
        rc = main([*self.SERVE, "--slo-window", "0.1",
                   "--burn-ceiling", "-1.0"])
        assert rc == 1
        assert "FAIL: worst-window burn" in capsys.readouterr().out

    def test_prometheus_exposition_artifact(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        assert main([*self.SERVE, "--prom", str(prom)]) == 0
        text = prom.read_text()
        assert "# TYPE repro_serve_arrivals_total counter" in text
        assert "repro_serve_latency_ms_bucket" in text

    def test_timeline_subcommand_validates(self, tmp_path, capsys):
        ev = tmp_path / "events.jsonl"
        tr = tmp_path / "offline.json"
        assert main([*self.SERVE, "--events", str(ev)]) == 0
        capsys.readouterr()
        rc = main(["timeline", "--events", str(ev), "--request", "0",
                   "--trace", str(tr)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "schema repro-bench.events/1" in out
        assert "causal timeline of request 0" in out
        assert "lifecycle: valid" in out
        assert json.loads(tr.read_text())["traceEvents"]

    def test_timeline_flags_corrupt_journal(self, tmp_path, capsys):
        ev = tmp_path / "events.jsonl"
        assert main([*self.SERVE, "--events", str(ev)]) == 0
        lines = ev.read_text().splitlines()
        # drop a terminal event: the lifecycle is no longer closed
        cut = next(i for i, l in enumerate(lines) if '"kind":"terminal"' in l)
        ev.write_text("\n".join(lines[:cut] + lines[cut + 1:]) + "\n")
        capsys.readouterr()
        rc = main(["timeline", "--events", str(ev)])
        assert rc == 1
        assert "INVALID" in capsys.readouterr().out

    def test_timeline_rejects_non_journal(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"schema": "repro-bench.serve/1"}\n')
        with pytest.raises(SystemExit, match="not an event journal"):
            main(["timeline", "--events", str(bad)])


class TestStoreCli:
    def populate(self, tmp_path, seed="5"):
        """A store filled by a short steady-state serve campaign."""
        root = tmp_path / "store"
        rc = main([
            "serve", "--scale", "0.1", "--rate", "200", "--duration",
            "0.3", "--seed", seed, "--steady-state", "--coherence",
            "0.8", "--store", str(root),
        ])
        assert rc == 0
        return root

    def test_parser_defaults(self):
        args = build_parser().parse_args(["store", "stats", "--dir", "x"])
        assert args.command == "store"
        assert args.action == "stats"
        args = build_parser().parse_args(["serve"])
        assert args.store is None
        assert args.spares == 0

    def test_stats_verify_scrub_pass(self, tmp_path, capsys):
        root = self.populate(tmp_path)
        assert main(["store", "stats", "--dir", str(root)]) == 0
        out = capsys.readouterr().out
        assert "store stats" in out and "frame=" in out
        assert main(["store", "verify", "--dir", str(root)]) == 0
        assert "0 corrupt" in capsys.readouterr().out
        assert main(["store", "scrub", "--dir", str(root)]) == 0

    def test_snapshot_deterministic_across_same_seed_runs(
        self, tmp_path, capsys
    ):
        """Two same-seed campaigns into two stores must produce
        byte-identical `store stats` snapshots (and manifests)."""
        ra = self.populate(tmp_path / "a")
        capsys.readouterr()
        assert main(["store", "stats", "--dir", str(ra)]) == 0
        out_a = capsys.readouterr().out.replace(str(ra), "<dir>")
        rb = self.populate(tmp_path / "b")
        capsys.readouterr()
        assert main(["store", "stats", "--dir", str(rb)]) == 0
        out_b = capsys.readouterr().out.replace(str(rb), "<dir>")
        assert out_a == out_b
        assert (ra / "MANIFEST.jsonl").read_bytes() == (
            rb / "MANIFEST.jsonl"
        ).read_bytes()

    def test_stats_json_snapshot(self, tmp_path, capsys):
        root = self.populate(tmp_path)
        snap = tmp_path / "store.json"
        assert main(
            ["store", "stats", "--dir", str(root), "--json", str(snap)]
        ) == 0
        d = json.loads(snap.read_text())
        assert d["schema"] == "repro-store/1"
        assert d["entries"] > 0

    def test_verify_exits_1_on_corrupt_entry(self, tmp_path, capsys):
        root = self.populate(tmp_path)
        # rot one blob on disk
        import os
        for dirpath, _, files in os.walk(root / "objects"):
            for fn in files:
                path = os.path.join(dirpath, fn)
                with open(path, "r+b") as fh:
                    raw = bytearray(fh.read())
                    raw[len(raw) // 2] ^= 0xFF
                    fh.seek(0)
                    fh.write(bytes(raw))
                break
            else:
                continue
            break
        assert main(["store", "verify", "--dir", str(root)]) == 1
        assert "corrupt" in capsys.readouterr().out
        # scrub repairs; verify passes again
        assert main(["store", "scrub", "--dir", str(root)]) == 0
        assert main(["store", "verify", "--dir", str(root)]) == 0

    def test_corrupt_manifest_exits_1(self, tmp_path, capsys):
        root = self.populate(tmp_path)
        (root / "MANIFEST.jsonl").write_text('{"schema": "bogus/9"}\n')
        assert main(["store", "stats", "--dir", str(root)]) == 1
        assert "CORRUPT MANIFEST" in capsys.readouterr().out

    def test_missing_dir_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "stats", "--dir", str(tmp_path / "nope")])

    def test_purge_empties(self, tmp_path, capsys):
        root = self.populate(tmp_path)
        assert main(["store", "purge", "--dir", str(root)]) == 0
        capsys.readouterr()
        assert main(["store", "stats", "--dir", str(root)]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_serve_with_spares_prints_replacement(self, capsys, tmp_path):
        rc = main([
            "serve", "--scale", "0.1", "--rate", "200", "--duration",
            "0.4", "--seed", "7", "--steady-state", "--coherence",
            "0.9", "--store", str(tmp_path / "store"), "--spares", "1",
            "--max-probes", "2", "--faults", "device_crash",
            "--crashes", "-1", "--crash-site", "RTX 2080Ti #0",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "replacement: spare1 filled slot RTX 2080Ti #0" in out
        assert "warm-started" in out
