"""Tests for the repro-bench CLI."""

import pytest

from repro.cli import DEVICES, ENGINE_FACTORIES, build_parser, main


class TestParser:
    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_bench_defaults(self):
        args = build_parser().parse_args(["bench", "--model", "x"])
        assert args.engine == "torchsparse"
        assert args.device == "2080ti"

    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bad_engine_fails(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "--model", "x", "--engine", "y"])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "minkunet_1.0x_kitti" in out
        assert "torchsparse" in out
        assert "3090" in out

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["bench", "--model", "nope"])

    def test_bench_runs(self, capsys):
        rc = main(
            ["bench", "--model", "minkunet_0.5x_kitti", "--scale", "0.12",
             "--engine", "baseline"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "modeled latency" in out
        assert "matmul" in out

    def test_compare_runs(self, capsys):
        rc = main(
            ["compare", "--model", "minkunet_0.5x_kitti", "--scale", "0.12"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        for engine in ENGINE_FACTORIES:
            assert engine in out

    def test_tune_runs(self, tmp_path, capsys):
        out_file = tmp_path / "book.json"
        rc = main(
            ["tune", "--model", "minkunet_0.5x_kitti", "--scale", "0.1",
             "--out", str(out_file)]
        )
        assert rc == 0
        assert out_file.exists()
        from repro.core.tuner import StrategyBook

        book = StrategyBook.loads(out_file.read_text())
        assert len(book.layers) > 10

    def test_cpu_device_available(self):
        assert "cpu" in DEVICES
        rc = main(
            ["bench", "--model", "minkunet_0.5x_kitti", "--scale", "0.1",
             "--device", "cpu"]
        )
        assert rc == 0
