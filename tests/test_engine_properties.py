"""Property-based tests of the full convolution op.

Hypothesis drives the engine end to end on random instances (random
coordinate sets, batch counts, kernel shapes, strides, engine configs)
and checks the numerics against the literal Equation-1 oracle, plus
structural invariants that must hold for any input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import (
    BaseEngine,
    BaselineEngine,
    EngineConfig,
    ExecutionContext,
)
from repro.core.kernel import kernel_volume
from repro.core.reference import sparse_conv_reference
from repro.core.sparse_tensor import SparseTensor
from repro.gpu.memory import DType
from repro.robust.tolerance import EXACT_FP32, TRAIN_FP32

coord_sets = st.lists(
    st.tuples(
        st.integers(0, 1),  # batch
        st.integers(0, 9),
        st.integers(0, 9),
        st.integers(0, 9),
    ),
    min_size=1,
    max_size=60,
    unique=True,
)

kernel_shapes = st.one_of(
    st.sampled_from([1, 2, 3]),
    st.tuples(st.sampled_from([1, 2, 3]), st.sampled_from([1, 3]),
              st.sampled_from([1, 3])),
)


def build_instance(rows, c_in=3, c_out=4, kernel_size=3, seed=0):
    coords = np.array(sorted(rows), dtype=np.int32)
    rng = np.random.default_rng(seed)
    feats = rng.standard_normal((coords.shape[0], c_in)).astype(np.float32)
    vol = kernel_volume(kernel_size)
    weights = (rng.standard_normal((vol, c_in, c_out)) * 0.3).astype(np.float32)
    return SparseTensor(coords, feats), weights


class TestConvolutionProperties:
    @given(coord_sets, kernel_shapes)
    @settings(max_examples=40, deadline=None)
    def test_submanifold_matches_oracle(self, rows, kernel_size):
        x, w = build_instance(rows, kernel_size=kernel_size)
        ctx = ExecutionContext(engine=BaselineEngine())
        y = ctx.engine.convolution(x, w, ctx, kernel_size=kernel_size)
        # stride-1 even kernels shift the coordinate set; compare on the
        # coords the engine actually produced
        want = sparse_conv_reference(
            x.coords, x.feats, w, y.coords, kernel_size, 1
        )
        TRAIN_FP32.assert_close(y.feats, want)

    @given(coord_sets)
    @settings(max_examples=30, deadline=None)
    def test_strided_matches_oracle(self, rows):
        x, w = build_instance(rows, kernel_size=2)
        ctx = ExecutionContext(engine=BaselineEngine())
        y = ctx.engine.convolution(x, w, ctx, kernel_size=2, stride=2)
        want = sparse_conv_reference(x.coords, x.feats, w, y.coords, 2, 2)
        TRAIN_FP32.assert_close(y.feats, want)
        assert y.stride == 2

    @given(coord_sets, st.sampled_from(["separate", "symmetric", "fixed",
                                        "adaptive"]))
    @settings(max_examples=30, deadline=None)
    def test_grouping_strategy_never_changes_numerics(self, rows, strategy):
        x, w = build_instance(rows)
        base_ctx = ExecutionContext(engine=BaselineEngine())
        base = base_ctx.engine.convolution(x, w, base_ctx)
        eng = BaseEngine(EngineConfig.baseline(grouping=strategy))
        ctx = ExecutionContext(engine=eng)
        got = eng.convolution(x, w, ctx)
        EXACT_FP32.assert_close(got.feats, base.feats)

    @given(coord_sets)
    @settings(max_examples=20, deadline=None)
    def test_down_up_roundtrip_preserves_coords(self, rows):
        x, w_down = build_instance(rows, kernel_size=2, c_out=4)
        rng = np.random.default_rng(1)
        w_up = (rng.standard_normal((8, 4, 3)) * 0.3).astype(np.float32)
        ctx = ExecutionContext(engine=BaselineEngine())
        y = ctx.engine.convolution(x, w_down, ctx, kernel_size=2, stride=2)
        z = ctx.engine.convolution(
            y, w_up, ctx, kernel_size=2, stride=2, transposed=True
        )
        assert np.array_equal(z.coords, x.coords)
        assert z.stride == 1

    @given(coord_sets)
    @settings(max_examples=20, deadline=None)
    def test_output_feats_always_finite(self, rows):
        x, w = build_instance(rows)
        for dtype in (DType.FP32, DType.FP16, DType.INT8):
            eng = BaseEngine(EngineConfig.torchsparse(dtype=dtype))
            ctx = ExecutionContext(engine=eng)
            y = eng.convolution(x, w, ctx)
            assert np.isfinite(y.feats).all()

    @given(coord_sets)
    @settings(max_examples=20, deadline=None)
    def test_profile_time_positive_and_additive(self, rows):
        x, w = build_instance(rows)
        ctx = ExecutionContext(engine=BaselineEngine())
        ctx.engine.convolution(x, w, ctx)
        t1 = ctx.profile.total_time
        assert t1 > 0
        ctx.engine.convolution(x, w, ctx)
        assert ctx.profile.total_time > t1

    @given(coord_sets)
    @settings(max_examples=20, deadline=None)
    def test_batches_never_mix(self, rows):
        """Zeroing batch 1's features must not change batch 0's output."""
        x, w = build_instance(rows)
        mask0 = x.coords[:, 0] == 0
        if not mask0.any() or mask0.all():
            return
        ctx = ExecutionContext(engine=BaselineEngine())
        y_full = ctx.engine.convolution(x, w, ctx)

        feats2 = x.feats.copy()
        feats2[~mask0] = 0
        x2 = SparseTensor(x.coords, feats2)
        ctx2 = ExecutionContext(engine=BaselineEngine())
        y_zero = ctx2.engine.convolution(x2, w, ctx2)
        out0 = y_full.coords[:, 0] == 0
        EXACT_FP32.assert_close(y_full.feats[out0], y_zero.feats[out0])


class TestPoolingProperties:
    @given(coord_sets)
    @settings(max_examples=25, deadline=None)
    def test_maxpool_dominates_avgpool(self, rows):
        x, _ = build_instance(rows)
        ctx = ExecutionContext(engine=BaselineEngine())
        y_max = ctx.engine.pooling(x, ctx, 2, 2, mode="max")
        ctx2 = ExecutionContext(engine=BaselineEngine())
        y_avg = ctx2.engine.pooling(x, ctx2, 2, 2, mode="avg")
        assert np.array_equal(y_max.coords, y_avg.coords)
        assert (y_max.feats >= y_avg.feats - 1e-5).all()

    @given(coord_sets)
    @settings(max_examples=25, deadline=None)
    def test_pool_outputs_subset_of_input_values_per_channel(self, rows):
        x, _ = build_instance(rows)
        ctx = ExecutionContext(engine=BaselineEngine())
        y = ctx.engine.pooling(x, ctx, 2, 2, mode="max")
        for ch in range(x.num_channels):
            assert set(np.round(y.feats[:, ch], 5)).issubset(
                set(np.round(x.feats[:, ch], 5))
            )
