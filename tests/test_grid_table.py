"""Tests for the collision-free grid table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashmap.grid_table import GridTable

coords_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),
        st.integers(-10, 10),
        st.integers(-10, 10),
        st.integers(-10, 10),
    ),
    min_size=1,
    max_size=100,
)


def as_array(rows):
    return np.array(rows, dtype=np.int64).reshape(-1, 4)


class TestGridTable:
    def test_build_and_lookup(self):
        c = np.array([[0, 1, 2, 3], [0, 4, 5, 6]], dtype=np.int64)
        t = GridTable.from_coords(c)
        assert np.array_equal(t.lookup(c), [0, 1])
        assert len(t) == 2

    def test_missing_inside_box(self):
        c = np.array([[0, 0, 0, 0], [0, 3, 3, 3]], dtype=np.int64)
        t = GridTable.from_coords(c)
        assert t.lookup(np.array([[0, 1, 1, 1]]))[0] == -1

    def test_outside_box_is_absent_not_error(self):
        c = np.array([[0, 0, 0, 0]], dtype=np.int64)
        t = GridTable.from_coords(c)
        assert t.lookup(np.array([[0, 100, 100, 100]]))[0] == -1
        assert t.lookup(np.array([[0, -50, 0, 0]]))[0] == -1

    def test_margin_extends_box(self):
        c = np.array([[0, 0, 0, 0]], dtype=np.int64)
        t = GridTable.from_coords(c, margin=2)
        # coordinates within margin are inside the box (absent, not error)
        assert t.lookup(np.array([[0, 2, -2, 1]]))[0] == -1
        assert t.volume == 1 * 5 * 5 * 5

    def test_duplicate_insert_overwrites(self):
        c = np.array([[0, 1, 1, 1]], dtype=np.int64)
        t = GridTable.from_coords(c)
        t.insert(c, np.array([42]))
        assert t.lookup(c)[0] == 42
        assert len(t) == 1

    def test_exactly_one_access_per_operation(self):
        """The collision-free property: 1 slot access per build/query."""
        rng = np.random.default_rng(0)
        c = np.unique(rng.integers(0, 10, size=(60, 4)), axis=0)
        t = GridTable.from_coords(c)
        assert t.stats.build_accesses == c.shape[0]
        t.lookup(c)
        assert t.stats.query_accesses == c.shape[0]
        assert t.stats.max_probe_len == 1

    def test_volume_is_memory_price(self):
        c = np.array([[0, 0, 0, 0], [0, 9, 9, 9]], dtype=np.int64)
        t = GridTable.from_coords(c)
        assert t.volume == 10 * 10 * 10
        assert t.stats.table_bytes == t.volume * 8

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            GridTable(origin=np.zeros(3), shape=np.ones(3))
        with pytest.raises(ValueError):
            GridTable(origin=np.zeros(4), shape=np.array([1, 0, 1, 1]))

    def test_empty_coords_sizing_rejected(self):
        with pytest.raises(ValueError):
            GridTable.from_coords(np.empty((0, 4), dtype=np.int64))

    @given(coords_strategy, coords_strategy)
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_oracle(self, insert_rows, query_rows):
        ins = np.unique(as_array(insert_rows), axis=0)
        qry = as_array(query_rows)
        oracle = {tuple(r): i for i, r in enumerate(ins.tolist())}
        t = GridTable.from_coords(ins)
        got = t.lookup(qry)
        want = np.array([oracle.get(tuple(r), -1) for r in qry.tolist()])
        assert np.array_equal(got, want.reshape(got.shape))


class TestGridVsHashEquivalence:
    def test_same_answers_as_hash_table(self):
        """Both backends must index identically (CoordIndex contract)."""
        from repro.mapping.kmap import CoordIndex

        rng = np.random.default_rng(3)
        coords = np.unique(rng.integers(0, 15, size=(80, 4)), axis=0)
        coords[:, 0] = 0
        probes = rng.integers(-2, 17, size=(200, 4))
        probes[:, 0] = 0
        hash_idx = CoordIndex.build(coords, backend="hash")
        grid_idx = CoordIndex.build(coords, backend="grid", margin=3)
        assert np.array_equal(hash_idx.lookup(probes), grid_idx.lookup(probes))
