"""Tests for output-coordinate calculation (Algorithm 3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping.downsample import (
    downsample_coords,
    downsample_coords_reference,
)

coords_strategy = st.lists(
    st.tuples(st.integers(0, 20), st.integers(0, 20), st.integers(0, 20)),
    min_size=1,
    max_size=60,
    unique=True,
)


def make_coords(rows):
    c = np.array(rows, dtype=np.int64).reshape(-1, 3)
    return np.concatenate(
        [np.zeros((c.shape[0], 1), dtype=np.int64), c], axis=1
    ).astype(np.int32)


class TestDownsampleCoords:
    @pytest.mark.parametrize("kernel_size,stride", [(2, 2), (3, 2), (2, 4), (3, 3)])
    def test_matches_reference(self, kernel_size, stride):
        rng = np.random.default_rng(0)
        coords = make_coords(np.unique(rng.integers(0, 16, size=(50, 3)), axis=0))
        got, _ = downsample_coords(coords, kernel_size, stride)
        want = downsample_coords_reference(coords, kernel_size, stride)
        assert np.array_equal(np.unique(got, axis=0), np.unique(want, axis=0))

    def test_k2s2_is_floor_division(self):
        """The classic 2x downsampler maps each point to floor(p/2)."""
        coords = make_coords([(0, 0, 0), (1, 1, 1), (5, 4, 3), (7, 7, 7)])
        got, _ = downsample_coords(coords, 2, 2)
        want = np.unique(
            np.concatenate(
                [coords[:, :1], coords[:, 1:] // 2], axis=1
            ),
            axis=0,
        )
        assert np.array_equal(np.sort(got.view("i4,i4,i4,i4").ravel()),
                              np.sort(want.astype(np.int32).view("i4,i4,i4,i4").ravel()))

    def test_output_unique(self):
        rng = np.random.default_rng(1)
        coords = make_coords(np.unique(rng.integers(0, 30, size=(100, 3)), axis=0))
        got, _ = downsample_coords(coords, 3, 2)
        assert np.unique(got, axis=0).shape[0] == got.shape[0]

    def test_batches_kept_separate(self):
        coords = np.array([[0, 2, 2, 2], [1, 2, 2, 2]], dtype=np.int32)
        got, _ = downsample_coords(coords, 2, 2)
        assert got.shape[0] == 2
        assert set(got[:, 0].tolist()) == {0, 1}

    def test_boundary_trims(self):
        coords = make_coords([(0, 0, 0), (9, 9, 9)])
        full, _ = downsample_coords(coords, 2, 2)
        trimmed, _ = downsample_coords(
            coords, 2, 2, boundary=np.array([3, 3, 3])
        )
        assert trimmed.shape[0] <= full.shape[0]
        assert (trimmed[:, 1:] < 3).all()

    def test_stride_one_rejected(self):
        with pytest.raises(ValueError):
            downsample_coords(make_coords([(0, 0, 0)]), 3, 1)

    @given(coords_strategy, st.sampled_from([(2, 2), (3, 2)]))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_reference(self, rows, ks):
        kernel_size, stride = ks
        coords = make_coords(rows)
        got, _ = downsample_coords(coords, kernel_size, stride)
        want = downsample_coords_reference(coords, kernel_size, stride)
        assert np.array_equal(np.unique(got, axis=0), np.unique(want, axis=0))


class TestDownsampleCost:
    def test_fused_strictly_cheaper(self):
        rng = np.random.default_rng(2)
        coords = make_coords(np.unique(rng.integers(0, 20, size=(80, 3)), axis=0))
        _, cost = downsample_coords(coords, 3, 2)
        assert cost.total_bytes(fused=True) < cost.total_bytes(fused=False)
        assert cost.launches(fused=True) == 2
        assert cost.launches(fused=False) == 5

    def test_candidate_counts(self):
        coords = make_coords([(0, 0, 0)])
        _, cost = downsample_coords(coords, 2, 2)
        assert cost.n_in == 1
        # a single point at the origin: all 8 offsets pass modular check
        # only when p - delta is even in every axis -> exactly 1 survivor
        assert cost.n_candidates == 1
        assert cost.n_out == 1

    def test_stage_bytes_scale_with_candidates(self):
        small = make_coords([(0, 0, 0)])
        rng = np.random.default_rng(3)
        big = make_coords(np.unique(rng.integers(0, 30, size=(100, 3)), axis=0))
        _, c_small = downsample_coords(small, 3, 2)
        _, c_big = downsample_coords(big, 3, 2)
        assert sum(c_big.stage_bytes) > sum(c_small.stage_bytes)
