"""Tests for the reference (oracle) implementations themselves.

The optimized paths are tested *against* these oracles elsewhere; here
the two independent oracles are tested against each other and against
hand-computable micro-instances, so a bug in one cannot silently
validate the engine.
"""

import numpy as np
import pytest

from repro.core.reference import dense_conv3d_reference, sparse_conv_reference
from repro.robust.tolerance import EXACT_FP32


def micro_instance():
    """Two adjacent voxels, 1 input channel, identity-ish weights."""
    coords = np.array([[0, 0, 0, 0], [0, 1, 0, 0]], dtype=np.int32)
    feats = np.array([[1.0], [10.0]], dtype=np.float32)
    weights = np.zeros((27, 1, 1), dtype=np.float32)
    return coords, feats, weights


class TestMicroInstances:
    def test_center_only_weight_is_identity(self):
        coords, feats, w = micro_instance()
        w[13, 0, 0] = 1.0  # center offset
        out = sparse_conv_reference(coords, feats, w, coords, 3, 1)
        np.testing.assert_allclose(out, feats)

    def test_neighbor_weight_moves_features(self):
        coords, feats, w = micro_instance()
        # offset (+1, 0, 0) is index 13 + 9 = 22 in lexicographic order
        w[22, 0, 0] = 1.0
        out = sparse_conv_reference(coords, feats, w, coords, 3, 1)
        # output at (0,0,0) reads input at (1,0,0) = 10; at (1,0,0) reads
        # (2,0,0) which is absent = 0
        EXACT_FP32.assert_close(out[:, 0], [10.0, 0.0])

    def test_offset_index_convention(self):
        """Offset index 22 really is (+1, 0, 0)."""
        from repro.core.kernel import kernel_offsets

        assert np.array_equal(kernel_offsets(3)[22], [1, 0, 0])

    def test_stride2_reads_doubled_coords(self):
        coords = np.array([[0, 2, 0, 0]], dtype=np.int32)
        feats = np.array([[5.0]], dtype=np.float32)
        w = np.zeros((8, 1, 1), dtype=np.float32)
        w[0, 0, 0] = 1.0  # offset (0,0,0) of the 2x2x2 kernel
        out_coords = np.array([[0, 1, 0, 0]], dtype=np.int32)
        out = sparse_conv_reference(coords, feats, w, out_coords, 2, 2)
        np.testing.assert_allclose(out[:, 0], [5.0])


class TestOracleAgreement:
    @pytest.mark.parametrize("kernel_size,stride", [(3, 1), (1, 1), (2, 2), (3, 2)])
    def test_oracles_agree_on_random_instances(self, kernel_size, stride):
        rng = np.random.default_rng(kernel_size * 10 + stride)
        xyz = np.unique(rng.integers(0, 8, size=(40, 3)), axis=0)
        coords = np.concatenate(
            [np.zeros((xyz.shape[0], 1), dtype=np.int64), xyz], axis=1
        ).astype(np.int32)
        feats = rng.standard_normal((coords.shape[0], 3)).astype(np.float32)
        weights = (
            rng.standard_normal((kernel_size**3, 3, 5)) * 0.3
        ).astype(np.float32)
        if stride == 1:
            out_coords = coords
        else:
            from repro.mapping.downsample import downsample_coords

            out_coords, _ = downsample_coords(coords, kernel_size, stride)
        a = sparse_conv_reference(coords, feats, weights, out_coords,
                                  kernel_size, stride)
        b = dense_conv3d_reference(coords, feats, weights, out_coords,
                                   kernel_size, stride)
        np.testing.assert_allclose(a, b)

    def test_dense_reference_rejects_multibatch(self):
        coords = np.array([[0, 0, 0, 0], [1, 0, 0, 0]], dtype=np.int32)
        with pytest.raises(ValueError):
            dense_conv3d_reference(
                coords,
                np.ones((2, 1), dtype=np.float32),
                np.zeros((27, 1, 1), dtype=np.float32),
                coords,
                3,
            )

    def test_missing_inputs_contribute_zero(self):
        """Outputs whose entire receptive field is empty are zero."""
        coords = np.array([[0, 0, 0, 0]], dtype=np.int32)
        feats = np.array([[3.0]], dtype=np.float32)
        w = np.ones((27, 1, 1), dtype=np.float32)
        far = np.array([[0, 100, 100, 100]], dtype=np.int32)
        out = sparse_conv_reference(coords, feats, w, far, 3, 1)
        np.testing.assert_allclose(out, [[0.0]])
