"""Tests for MinkUNet, CenterPoint and the model zoo."""

import numpy as np
import pytest

from repro.core.engine import BaselineEngine, ExecutionContext, TorchSparseEngine
from repro.datasets.configs import nuscenes_like, waymo_like
from repro.models import MODEL_ZOO, CenterPoint, MinkUNet
from repro.models.centerpoint import Detection, bev_iou, nms
from repro.robust.tolerance import END_TO_END


@pytest.fixture(scope="module")
def small_input():
    return nuscenes_like().sample_tensor(seed=0, scale=0.15)


@pytest.fixture(scope="module")
def det_input():
    return waymo_like().cropped(-0.5, 6.0).sample_tensor(seed=0, scale=0.15)


class TestMinkUNet:
    def test_forward_shapes(self, small_input):
        net = MinkUNet(in_channels=4, num_classes=16, width=0.5)
        ctx = ExecutionContext(engine=BaselineEngine())
        y = net(small_input, ctx)
        assert y.num_points == small_input.num_points
        assert y.num_channels == 16
        assert np.array_equal(y.coords, small_input.coords)

    def test_width_scales_parameters(self):
        full = MinkUNet(width=1.0).num_parameters()
        half = MinkUNet(width=0.5).num_parameters()
        assert half < full / 2.5

    def test_deterministic_in_seed(self, small_input):
        outs = []
        for _ in range(2):
            net = MinkUNet(width=0.5, seed=11)
            ctx = ExecutionContext(engine=BaselineEngine())
            outs.append(net(small_input, ctx).feats)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_engines_agree(self, small_input):
        net = MinkUNet(width=0.5, num_classes=8)
        feats = {}
        for eng in (BaselineEngine(), TorchSparseEngine()):
            ctx = ExecutionContext(engine=eng)
            feats[eng.config.name] = net(small_input, ctx).feats
        END_TO_END.assert_close(feats["torchsparse"], feats["baseline-fp32"])

    def test_profile_covers_all_stages(self, small_input):
        net = MinkUNet(width=0.5)
        ctx = ExecutionContext(engine=BaselineEngine())
        net(small_input, ctx)
        st = ctx.profile.stage_times()
        assert all(st[s] > 0 for s in ("mapping", "gather", "matmul", "scatter"))


class TestCenterPoint:
    def test_forward_outputs(self, det_input):
        net = CenterPoint(num_classes=3)
        ctx = ExecutionContext(engine=BaselineEngine())
        out = net(det_input, ctx)
        hm, reg = out["heatmap"], out["regression"]
        assert hm.ndim == 3 and hm.shape[2] == 3
        assert reg.shape[:2] == hm.shape[:2] and reg.shape[2] == CenterPoint.REG_DIMS
        assert out["sparse_features"].stride == 8

    def test_decode_returns_detections(self, det_input):
        net = CenterPoint(num_classes=3)
        ctx = ExecutionContext(engine=BaselineEngine())
        out = net(det_input, ctx)
        dets = net.decode(out, ctx, score_threshold=0.0, max_dets=20)
        assert len(dets) <= 20
        for d in dets:
            assert 0 <= d.label < 3
            assert d.w > 0 and d.l > 0

    def test_dense_head_billed_as_other(self, det_input):
        net = CenterPoint(num_classes=3)
        ctx = ExecutionContext(engine=BaselineEngine())
        net(det_input, ctx)
        assert ctx.profile.stage_times()["other"] > 0


class TestNMS:
    def _det(self, x, y, score, label=0, size=2.0):
        return Detection(x=x, y=y, z=0, w=size, l=size, h=1.5, score=score,
                         label=label)

    def test_iou_identical(self):
        d = self._det(0, 0, 0.9)
        assert bev_iou(d, d) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert bev_iou(self._det(0, 0, 0.9), self._det(10, 10, 0.9)) == 0.0

    def test_nms_suppresses_overlaps(self):
        dets = [self._det(0, 0, 0.9), self._det(0.1, 0.1, 0.5), self._det(10, 0, 0.8)]
        kept = nms(dets, iou_threshold=0.5)
        assert len(kept) == 2
        assert kept[0].score == 0.9

    def test_nms_keeps_highest_scores_first(self):
        dets = [self._det(0, 0, 0.2), self._det(0, 0, 0.9)]
        kept = nms(dets, iou_threshold=0.5)
        assert len(kept) == 1 and kept[0].score == 0.9

    def test_nms_empty(self):
        assert nms([]) == []


class TestModelZoo:
    def test_seven_entries(self):
        assert len(MODEL_ZOO) == 7
        assert sum(e.task == "segmentation" for e in MODEL_ZOO) == 4
        assert sum(e.task == "detection" for e in MODEL_ZOO) == 3

    def test_keys_unique(self):
        keys = [e.key for e in MODEL_ZOO]
        assert len(set(keys)) == 7

    def test_factories_construct(self):
        for e in MODEL_ZOO[:2]:
            model = e.make_model()
            ds = e.make_dataset()
            assert model is not None and ds.name
