"""Tests for the ABFT integrity layer: checksummed GEMM, buffer
sentinels, detect -> recompute -> escalate wiring, and the seeded SDC
campaign."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import BaseEngine, EngineConfig, ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.gpu.device import RTX_2080TI
from repro.gpu.gemm import checksum_cost, sequential_cost
from repro.gpu.memory import DType
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.robust.degrade import RobustConfig
from repro.robust.errors import FAULT_ERRORS, IntegrityError
from repro.robust.faults import (
    PIPELINE_FAULT_KINDS,
    SDC_FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    inject_faults,
    maybe_bitflip_features,
    maybe_bitflip_weights,
    maybe_force_checksum_mismatch,
    maybe_silent_corruption,
)
from repro.robust.tolerance import CLOSE_FP32
from repro.robust.integrity import (
    DTYPE_PRESET_KEYS,
    INTEGRITY_SCHEMA,
    IntegrityChecker,
    IntegrityConfig,
    IntegrityReport,
    run_clean_probe,
    run_integrity_campaign,
    run_integrity_trial,
)


def make_checker(dtype=DType.FP32, **cfg):
    return IntegrityChecker(
        IntegrityConfig(**cfg), dtype, RTX_2080TI, metrics=MetricsRegistry()
    )


def make_operands(m=32, c_in=4, c_out=6, vol=27, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, c_in)).astype(np.float32)
    w = (rng.standard_normal((vol, c_in, c_out)) * 0.3).astype(np.float32)
    return x, w


class TestConfig:
    def test_defaults_arm_everything(self):
        cfg = IntegrityConfig()
        assert cfg.verify_gemm and cfg.verify_movement
        assert cfg.verify_output and cfg.verify_weights

    def test_rejects_nonpositive_safety(self):
        with pytest.raises(ValueError):
            IntegrityConfig(safety=0.0)

    def test_sdc_kinds_are_registered_pipeline_faults(self):
        assert set(SDC_FAULT_KINDS) <= set(PIPELINE_FAULT_KINDS)
        for kind in SDC_FAULT_KINDS:
            FaultSpec(kind=kind)  # must not raise

    def test_integrity_error_taxonomy(self):
        e = IntegrityError("boom")
        assert e.kind == "integrity"
        assert e.stage == "numeric"  # routes to the fp32-scalar rung
        assert IntegrityError in FAULT_ERRORS


class TestCheckerUnit:
    def test_clean_matmul_passes_and_counts(self):
        x, w = make_operands()
        chk = make_checker()
        chk.begin(x, w)
        idx = np.arange(x.shape[0])
        src = chk.source_checksum(x, idx)
        partial = x[idx] @ w[0]
        chk.check_matmul(partial, src, w[0], len(idx), "matmul.o0")
        assert chk.checks == 1 and chk.mismatches == 0

    def test_corrupted_matmul_raises(self):
        x, w = make_operands()
        chk = make_checker()
        chk.begin(x, w)
        idx = np.arange(x.shape[0])
        src = chk.source_checksum(x, idx)
        partial = x[idx] @ w[0]
        partial[3, 2] *= 2.0**40  # an exponent-flip-sized corruption
        with pytest.raises(IntegrityError, match="matmul"):
            chk.check_matmul(partial, src, w[0], len(idx), "matmul.o0")
        assert chk.mismatches == 1

    def test_gather_sentinel_catches_row_corruption(self):
        x, w = make_operands()
        chk = make_checker()
        chk.begin(x, w)
        idx = np.arange(0, x.shape[0], 2)
        src = chk.source_checksum(x, idx)
        buf = x[idx].copy()
        chk.check_buffer(buf, src, "gather.o0")  # clean: identical rows
        buf[1, 0] *= 2.0**40
        with pytest.raises(IntegrityError, match="gather"):
            chk.check_buffer(buf, src, "gather.o0")

    def test_weight_sentinel_sees_post_load_flip(self):
        x, w = make_operands()
        chk = make_checker()
        chk.begin(x, w)  # golden checksum taken here
        chk.verify_weights(w, "weights")  # still clean
        w[5, 1, 2] *= 2.0**40
        with pytest.raises(IntegrityError, match="weights"):
            chk.verify_weights(w, "weights")

    def test_output_sentinel_tracks_absorbed_partials(self):
        x, w = make_operands()
        chk = make_checker()
        chk.begin(x, w)
        p0 = x @ w[0]
        p1 = x[:10] @ w[1]
        chk.absorb(p0)
        chk.absorb(p1)
        acc = p0.copy()
        acc[:10] += p1
        chk.check_output(acc, "scatter.out")  # clean
        acc[7, 1] *= 2.0**40
        with pytest.raises(IntegrityError, match="scatter"):
            chk.check_output(acc, "scatter.out")

    def test_disabled_checks_are_noops(self):
        x, w = make_operands()
        chk = make_checker(
            verify_gemm=False, verify_movement=False,
            verify_output=False, verify_weights=False,
        )
        chk.begin(x, w)
        garbage = np.full((4, 6), 1e30, dtype=np.float32)
        chk.check_buffer(garbage, np.zeros(6), "gather.o0")
        chk.check_matmul(garbage, np.zeros(4), w[0], 4, "matmul.o0")
        chk.absorb(garbage)
        chk.check_output(garbage, "scatter.out")
        chk.verify_weights(w * 100, "weights")
        assert chk.checks == 0

    def test_verdict_emits_metrics(self):
        x, w = make_operands()
        reg = MetricsRegistry()
        chk = IntegrityChecker(
            IntegrityConfig(), DType.FP32, RTX_2080TI, metrics=reg
        )
        chk.begin(x, w)
        chk.verify_weights(w, "weights")
        scalars = reg.scalars()
        assert any(k.startswith("integrity.checks") for k in scalars)


class TestCheckerProperties:
    @given(
        st.integers(4, 40),
        st.integers(1, 6),
        st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_checksum_is_permutation_invariant(self, rows, c, seed):
        # the kernel map may visit gathered rows in any order; the
        # sentinel must not care
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((rows, c)).astype(np.float32)
        w = rng.standard_normal((1, c, c)).astype(np.float32)
        idx = rng.choice(rows, size=rows // 2 + 1, replace=False)
        perm = rng.permutation(len(idx))
        chk = make_checker()
        chk.begin(x, w)
        src = chk.source_checksum(x, idx)
        chk.check_buffer(x[idx[perm]], src, "gather.perm")  # no raise
        assert chk.mismatches == 0

    @given(
        st.integers(4, 40),
        st.integers(2, 5),
        st.integers(0, 500),
    )
    @settings(max_examples=40, deadline=None)
    def test_output_checksum_is_scatter_order_invariant(self, rows, parts,
                                                        seed):
        # scatter-add linearity: however partials interleave into the
        # accumulator, column sums add up
        rng = np.random.default_rng(seed)
        c = 4
        x = rng.standard_normal((rows, c)).astype(np.float32)
        w = rng.standard_normal((parts, c, c)).astype(np.float32)
        chk = make_checker()
        chk.begin(x, w)
        acc = np.zeros((rows, c), dtype=np.float32)
        order = rng.permutation(parts)
        partials = [x @ w[n] for n in range(parts)]
        for n in order:  # absorb and scatter in a random order
            chk.absorb(partials[n])
            acc += partials[n]
        chk.check_output(acc, "scatter.out")
        assert chk.mismatches == 0

    @given(st.sampled_from([DType.FP32, DType.FP16, DType.INT8]),
           st.integers(0, 200))
    @settings(max_examples=30, deadline=None)
    def test_no_false_positives_across_dtypes(self, dtype, seed):
        # clean data must pass under every storage dtype's envelope
        x, w = make_operands(seed=seed)
        chk = make_checker(dtype=dtype)
        chk.begin(x, w)
        idx = np.arange(x.shape[0])
        src = chk.source_checksum(x, idx)
        partial = x[idx] @ w[0]
        chk.check_buffer(x[idx], src, "gather.o0")
        chk.check_matmul(partial, src, w[0], len(idx), "matmul.o0")
        chk.absorb(partial)
        chk.check_output(partial.copy(), "scatter.out")
        chk.verify_weights(w, "weights")
        assert chk.mismatches == 0


class TestFaultSites:
    def test_bitflip_is_finite_and_large(self):
        rng_arr = np.random.default_rng(0).standard_normal((64, 4))
        arr = rng_arr.astype(np.float32)
        before = arr.copy()
        inj = FaultInjector(
            seed=1, specs=[FaultSpec(kind="bitflip_feature", severity=0.1)]
        )
        with inject_faults(inj):
            assert maybe_bitflip_features(arr, site="gather.o0")
        assert np.isfinite(arr).all()  # silent: never NaN/Inf
        changed = int((arr != before).sum())
        assert changed == max(1, int(arr.size * 0.1))
        # an exponent flip rescales hugely -- far outside any envelope
        ratio = np.abs(arr[arr != before] / before[arr != before])
        assert ((ratio > 1e9) | (ratio < 1e-9)).all()

    def test_bitflip_weight_fires_once(self):
        w = np.random.default_rng(0).standard_normal((8, 3, 3)).astype(
            np.float32
        )
        inj = FaultInjector(seed=1, specs=[FaultSpec(kind="bitflip_weight")])
        with inject_faults(inj):
            assert maybe_bitflip_weights(w, site="weights.v8")
            assert not maybe_bitflip_weights(w, site="weights.v8")
        assert inj.shots == 1

    def test_checksum_mismatch_fires_at_verifier_site(self):
        inj = FaultInjector(
            seed=0, specs=[FaultSpec(kind="checksum_mismatch", site="matmul")]
        )
        with inject_faults(inj):
            assert not maybe_force_checksum_mismatch("conv.gather.o0")
            assert maybe_force_checksum_mismatch("conv.matmul.o0")

    def test_silent_corruption_matches_any_bitflip_kind(self):
        inj = FaultInjector(
            seed=0, specs=[FaultSpec(kind="bitflip_weight", count=1)]
        )
        with inject_faults(inj):
            assert maybe_silent_corruption("RTX 3090")
            assert not maybe_silent_corruption("RTX 3090")
        assert maybe_silent_corruption("RTX 3090") is False  # no injector

    def test_bitflip_writes_through_noncontiguous_views(self):
        # reshape(-1) on a non-contiguous view returns a copy, which
        # would silently drop the flips while still consuming the shot
        arr = np.ones((8, 8), dtype=np.float32)
        view = arr[:, ::2]
        inj = FaultInjector(
            seed=0, specs=[FaultSpec(kind="bitflip_feature", severity=0.25)]
        )
        with inject_faults(inj):
            assert maybe_bitflip_features(view, site="gather.o0")
        changed = int((view != 1.0).sum())
        assert changed == max(1, int(view.size * 0.25))
        # the flips landed in the parent buffer, not a throwaway copy
        assert int((arr != 1.0).sum()) == changed

    def test_exact_bmm_flip_lands_in_real_rows(self):
        # a shot against the padded bmm batch must corrupt rows that
        # reach the output; a hit in a zero-padding row is sliced off
        # before scatter and the fired fault becomes undetectable
        from repro.core.dataflow import (
            MovementConfig,
            execute_gather_matmul_scatter,
        )
        from repro.core.grouping import make_plan
        from repro.gpu.timeline import Profile
        from repro.mapping.kmap import CoordIndex, build_kmap

        coords, feats, w = small_instance()
        index = CoordIndex.build(coords, backend="hash")
        kmap = build_kmap(coords, index, coords, 3)
        plan = make_plan(
            "adaptive", kmap.sizes, 3, 1, epsilon=1.0, s_threshold=np.inf
        )
        assert any(g.use_bmm for g in plan.groups)
        for seed in range(8):
            chk = make_checker()
            inj = FaultInjector(
                seed=seed,
                specs=[FaultSpec(kind="bitflip_feature", site="gather")],
            )
            with inject_faults(inj):
                with pytest.raises(IntegrityError):
                    execute_gather_matmul_scatter(
                        feats, w, kmap, plan, MovementConfig(), RTX_2080TI,
                        Profile(), exact_bmm=True, integrity=chk,
                    )
            assert inj.shots == 1

    def test_sites_are_noops_without_injector(self):
        arr = np.ones((4, 4), dtype=np.float32)
        assert not maybe_bitflip_features(arr)
        assert not maybe_bitflip_weights(arr)
        assert not maybe_force_checksum_mismatch("x")
        assert (arr == 1.0).all()


class TestChecksumCost:
    def test_fused_epilogue_adds_no_launch(self):
        cost = checksum_cost(512, 64, 64, DType.FP16, RTX_2080TI)
        assert cost.launches == 0
        assert cost.flops == 512 * 64 + 2 * 64 * 64 + 512 * 64 + 64
        assert cost.time > 0

    def test_overhead_is_small_against_the_gemm(self):
        gemm = sequential_cost([4096], 64, 64, DType.FP16, RTX_2080TI)
        extra = checksum_cost(4096, 64, 64, DType.FP16, RTX_2080TI)
        assert extra.flops < 0.05 * gemm.flops


def hardened(dtype=DType.FP32):
    base = (
        EngineConfig.baseline()
        if dtype is DType.FP32
        else EngineConfig.torchsparse(dtype=dtype)
    )
    from dataclasses import replace

    return replace(
        base, robustness=RobustConfig(integrity=IntegrityConfig())
    )


def small_instance(seed=0, n=60, c_in=4, c_out=6):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), dtype=np.int64),
             rng.integers(0, 10, size=(n, 3))],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((coords.shape[0], c_in)).astype(np.float32)
    w = (rng.standard_normal((27, c_in, c_out)) * 0.3).astype(np.float32)
    return coords, feats, w


class TestEngineIntegration:
    def test_verification_is_observation_only(self):
        # verified and unverified runs must agree bit for bit
        coords, feats, w = small_instance()
        outs = []
        for config in (hardened(), EngineConfig.baseline()):
            with use_registry(MetricsRegistry()):
                engine = BaseEngine(config=config)
                ctx = ExecutionContext(engine=engine)
                y = engine.convolution(
                    SparseTensor(coords, feats), w, ctx, kernel_size=3
                )
            outs.append(y)
        assert np.array_equal(outs[0].coords, outs[1].coords)
        assert np.array_equal(outs[0].feats, outs[1].feats)

    @pytest.mark.parametrize("dtype", [DType.FP32, DType.FP16, DType.INT8])
    def test_clean_run_emits_checks_no_mismatches(self, dtype):
        coords, feats, w = small_instance()
        with use_registry(MetricsRegistry()) as reg:
            engine = BaseEngine(config=hardened(dtype))
            ctx = ExecutionContext(engine=engine)
            engine.convolution(SparseTensor(coords, feats), w, ctx,
                               kernel_size=3)
        scalars = reg.scalars()
        assert sum(
            v for k, v in scalars.items() if k.startswith("integrity.checks")
        ) > 0
        assert sum(
            v
            for k, v in scalars.items()
            if k.startswith("integrity.mismatches")
        ) == 0
        assert scalars.get("integrity.flops", 0) > 0

    @pytest.mark.parametrize("dtype_key", DTYPE_PRESET_KEYS)
    @pytest.mark.parametrize("kind", SDC_FAULT_KINDS)
    def test_detect_recompute_recovers(self, kind, dtype_key):
        # one seeded shot: detected, recomputed at fp32-scalar, survives
        # -- and the recovered output matches a clean (uninjected) run,
        # so a "recovery" that ships corrupted data cannot pass
        trial = run_integrity_trial(kind, dtype_key, seed=0)
        assert trial.shots == 1
        assert trial.detected >= 1
        assert trial.survived and trial.caught
        assert trial.output_ok, "recovered output differs from a clean run"
        assert trial.ok
        assert "fp32-scalar" in trial.recovered_layers.values()

    def test_fp32_weight_flip_cannot_corrupt_caller_weights(self):
        # regression: the FP32 dtype cast used to alias the caller's
        # weight tensor, so an injected flip outlived the failed
        # attempt, the recompute re-took its golden checksum from the
        # corrupted buffer, and the corruption shipped as a recovery
        coords, feats, w = small_instance()
        pristine = w.copy()
        inj = FaultInjector(
            seed=0, specs=[FaultSpec(kind="bitflip_weight", count=1)]
        )
        with use_registry(MetricsRegistry()):
            engine = BaseEngine(config=hardened())
            ctx = ExecutionContext(engine=engine)
            with inject_faults(inj):
                out = engine.convolution(
                    SparseTensor(coords, feats), w, ctx, kernel_size=3
                )
        assert inj.shots == 1
        assert np.array_equal(w, pristine), "model weights were mutated"
        with use_registry(MetricsRegistry()):
            clean = BaseEngine(config=hardened())
            ref = clean.convolution(
                SparseTensor(coords, feats), w,
                ExecutionContext(engine=clean), kernel_size=3,
            )
        CLOSE_FP32.assert_close(out.feats, ref.feats)

    @pytest.mark.parametrize("kind", SDC_FAULT_KINDS[:2])
    def test_undetected_without_integrity(self, kind):
        # the control: the same corruption ships silently when the
        # verifier is off -- finishes fine, zero mismatches recorded
        from repro.robust.chaos import _make_book, _make_cloud, _make_model

        coords, feats = _make_cloud(0, kind)
        model = _make_model(0)
        from dataclasses import replace

        config = replace(
            EngineConfig.torchsparse(), strategy_book=_make_book(model)
        )
        inj = FaultInjector(seed=0, specs=[FaultSpec(kind=kind, count=1)])
        with use_registry(MetricsRegistry()) as reg:
            with inject_faults(inj):
                engine = BaseEngine(config=config)
                ctx = ExecutionContext(engine=engine)
                model(SparseTensor.sanitized(coords, feats, policy="repair"),
                      ctx)
        assert inj.shots == 1  # fault fired...
        assert not any(  # ...and nothing noticed
            k.startswith("integrity.mismatches") for k in reg.scalars()
        )

    def test_detect_only_mode_escalates_typed(self):
        # robustness armed but degrade off: the IntegrityError surfaces
        from repro.robust.chaos import _make_book, _make_cloud, _make_model

        coords, feats = _make_cloud(0, "bitflip_feature")
        model = _make_model(0)
        from dataclasses import replace

        config = replace(
            EngineConfig.torchsparse(),
            strategy_book=_make_book(model),
            robustness=RobustConfig(
                degrade=False, integrity=IntegrityConfig()
            ),
        )
        inj = FaultInjector(
            seed=0, specs=[FaultSpec(kind="bitflip_feature", count=1)]
        )
        with use_registry(MetricsRegistry()):
            with inject_faults(inj):
                engine = BaseEngine(config=config)
                ctx = ExecutionContext(engine=engine)
                with pytest.raises(IntegrityError):
                    model(
                        SparseTensor.sanitized(coords, feats, policy="repair"),
                        ctx,
                    )


class TestCampaign:
    def test_clean_probe_all_dtypes(self):
        for key in DTYPE_PRESET_KEYS:
            probe = run_clean_probe(key, seed=0)
            assert probe.checks > 0
            assert probe.false_positives == 0
            assert probe.bitexact and probe.reference_ok and probe.ok

    def test_campaign_gate_and_schema(self):
        report = run_integrity_campaign(
            kinds=("bitflip_feature",), dtypes=("fp32", "fp16"), seeds=(0,)
        )
        assert report.recall == 1.0
        assert report.fp32_false_positives == 0
        assert report.gate() and report.passed
        blob = report.to_json()
        assert blob["schema"] == INTEGRITY_SCHEMA
        assert blob["recall_by_kind"] == {"bitflip_feature": 1.0}
        assert set(blob["false_positive_rate"]) == {"fp32", "fp16"}

    def test_campaign_is_deterministic(self):
        a = run_integrity_campaign(
            kinds=("bitflip_weight",), dtypes=("int8",), seeds=(3,)
        )
        b = run_integrity_campaign(
            kinds=("bitflip_weight",), dtypes=("int8",), seeds=(3,)
        )
        assert a.to_json() == b.to_json()

    def test_report_json_passed_matches_custom_floor(self):
        # the serialized 'passed' must honour the same recall floor as
        # the CLI exit status (they used to diverge on --recall-floor)
        report = IntegrityReport()
        assert report.to_json()["passed"]
        assert not report.to_json(recall_floor=1.01)["passed"]

    def test_campaign_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            run_integrity_campaign(kinds=("nonsense",))

    def test_gate_fails_on_missed_detection(self):
        report = IntegrityReport()
        from repro.robust.integrity import IntegrityTrial

        report.trials.append(
            IntegrityTrial(
                kind="bitflip_feature", dtype="fp16", seed=0,
                shots=1, detected=0, survived=True,
            )
        )
        assert report.recall == 0.0
        assert not report.gate()
