"""Tests for small accounting types (HashStats, MemoryTraffic edges)."""

from repro.gpu.memory import DType, MemoryAccessPattern, MemoryTraffic, traffic
from repro.hashmap.hash_table import HashStats


class TestHashStats:
    def test_merge_accumulates_and_maxes(self):
        a = HashStats(build_accesses=10, query_accesses=5, table_bytes=100,
                      max_probe_len=2)
        b = HashStats(build_accesses=1, query_accesses=2, table_bytes=400,
                      max_probe_len=1)
        a.merge(b)
        assert a.build_accesses == 11
        assert a.query_accesses == 7
        assert a.table_bytes == 400  # max, not sum (peak footprint)
        assert a.max_probe_len == 2

    def test_defaults(self):
        s = HashStats()
        assert s.build_accesses == 0 and s.query_accesses == 0


class TestMemoryTrafficEdges:
    def test_add_zero_traffic(self):
        z = MemoryTraffic(0, 0, 1.0)
        t = traffic(10, 32, DType.FP32, MemoryAccessPattern.SCALAR)
        s = z + t
        assert s.bytes_moved == t.bytes_moved
        assert s.efficiency == t.efficiency

    def test_add_two_zeros(self):
        z = MemoryTraffic(0, 0, 1.0)
        s = z + z
        assert s.bytes_moved == 0 and s.efficiency == 1.0

    def test_transactions_round_up(self):
        t = traffic(1, 1, DType.FP32, MemoryAccessPattern.SCALAR)
        assert t.transactions == 1  # 4 bytes still needs one transaction
