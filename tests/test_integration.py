"""End-to-end integration tests: the paper's main claims in miniature.

These exercise the whole stack — synthetic dataset, model, engines and
cost model — and assert the qualitative results of the evaluation
section at reduced scale.
"""

import numpy as np
import pytest

from repro.baselines import MinkowskiEngineLike, SpConvLike
from repro.core.engine import BaselineEngine, ExecutionContext, TorchSparseEngine
from repro.datasets.configs import nuscenes_like, semantic_kitti_like, waymo_like
from repro.models import CenterPoint, MinkUNet
from repro.profiling import run_model


@pytest.fixture(scope="module")
def kitti_input():
    return semantic_kitti_like().sample_tensor(seed=0, scale=0.3)


@pytest.fixture(scope="module")
def waymo_input():
    return waymo_like().cropped(-0.5, 6.0).sample_tensor(seed=0, scale=0.3)


class TestEndToEndSegmentation:
    def test_torchsparse_beats_all_baselines(self, kitti_input):
        net = MinkUNet(width=0.5)
        results = {}
        for eng in (
            TorchSparseEngine(),
            MinkowskiEngineLike(),
            SpConvLike(),
            BaselineEngine(),
        ):
            results[eng.config.name] = run_model(net, [kitti_input], eng).latency
        ts = results["torchsparse"]
        assert all(ts < v for k, v in results.items() if k != "torchsparse")

    def test_speedup_magnitudes_sane(self, kitti_input):
        """Within a loose band of the paper's 1.5-2.2x over ME/SpConv."""
        net = MinkUNet(width=0.5)
        ts = run_model(net, [kitti_input], TorchSparseEngine()).latency
        me = run_model(net, [kitti_input], MinkowskiEngineLike()).latency
        sp = run_model(net, [kitti_input], SpConvLike()).latency
        assert 1.2 < me / ts < 5.0
        assert 1.1 < sp / ts < 4.0

    def test_segmentation_output_valid(self, kitti_input):
        net = MinkUNet(width=0.5, num_classes=19)
        ctx = ExecutionContext(engine=TorchSparseEngine())
        y = net(kitti_input, ctx)
        pred = y.feats.argmax(axis=1)
        assert pred.shape[0] == kitti_input.num_points
        assert np.isfinite(y.feats).all()


class TestEndToEndDetection:
    def test_full_pipeline(self, waymo_input):
        net = CenterPoint(num_classes=3)
        ctx = ExecutionContext(engine=TorchSparseEngine())
        out = net(waymo_input, ctx)
        dets = net.decode(out, ctx, score_threshold=0.0, max_dets=50)
        assert isinstance(dets, list)
        assert np.isfinite(out["heatmap"]).all()

    def test_detection_breakdown_matches_figure4_shape(self, waymo_input):
        """Baseline detector: data movement is the largest sparse stage,
        mapping is substantial (Figure 4b)."""
        net = CenterPoint(num_classes=3)
        ctx = ExecutionContext(engine=BaselineEngine())
        net(waymo_input, ctx)
        st = ctx.profile.stage_fractions()
        assert st["gather"] + st["scatter"] > 0.2
        assert st["mapping"] > 0.1


class TestCrossDatasetBehaviour:
    def test_nuscenes_maps_smaller_than_kitti(self):
        """Figure 12's premise, measured on real kernel maps."""
        from repro.profiling import collect_workloads

        net = MinkUNet(width=1.0, num_classes=8)
        k_in = [semantic_kitti_like().sample_tensor(seed=0, scale=0.2)]
        n_in = [nuscenes_like().sample_tensor(seed=0, scale=0.2)]
        k_ws = {w.name: w for w in collect_workloads(net, k_in)}
        n_ws = {w.name: w for w in collect_workloads(net, n_in)}
        name = "minkunet.stem.0"
        k_mean = np.mean(k_ws[name].samples[0])
        n_mean = np.mean(n_ws[name].samples[0])
        assert k_mean > 2 * n_mean

    def test_multi_frame_increases_latency(self):
        net = MinkUNet(width=0.5, num_classes=8)
        one = nuscenes_like(frames=1).sample_tensor(seed=0, scale=0.3)
        three = nuscenes_like(frames=3).sample_tensor(seed=0, scale=0.3)
        t1 = run_model(net, [one], TorchSparseEngine()).latency
        t3 = run_model(net, [three], TorchSparseEngine()).latency
        assert t3 > t1


class TestNo1080TiTensorCores:
    def test_speedup_survives_without_tensor_cores(self, kitti_input):
        """Section 5.2: most of the gain is not from FP16 math."""
        from repro.gpu.device import GTX_1080TI

        net = MinkUNet(width=0.5)
        ts = run_model(net, [kitti_input], TorchSparseEngine(), GTX_1080TI).latency
        base = run_model(net, [kitti_input], BaselineEngine(), GTX_1080TI).latency
        assert base / ts > 1.4
