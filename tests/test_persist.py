"""Tests for the durable artifact store (`repro.persist`).

Covers the blob codec roundtrips and defensive decoding, the
crash-consistency protocol (torn manifest tail, stray temp files,
unrecorded blobs), mandatory load-time verification (bitrot is
quarantined, never served), scrub/purge maintenance, the store-backed
mapping-cache tier (write-through, cross-process warm hits, purge of
both tiers), the seeded disk-fault sites, and the StrategyBook
persistence hooks.
"""

import os

import numpy as np
import pytest

from repro.core.engine import ExecutionContext, TorchSparseEngine
from repro.core.sparse_tensor import SparseTensor
from repro.core.tuner import (
    LayerStrategy,
    StrategyBook,
    StrategyBookError,
)
from repro.mapping.cache import (
    CoordsKey,
    IndexKey,
    MappingCache,
    coords_fingerprint,
    kmap_key,
)
from repro.mapping.kmap import CoordIndex, build_kmap
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.persist import (
    ARTIFACT_KINDS,
    MANIFEST_NAME,
    PERSISTED_KINDS,
    STORE_SCHEMA,
    ArtifactStore,
    StoreBackedMappingCache,
    artifact_nbytes,
    book_key,
    content_checksum,
    decode_artifact,
    encode_artifact,
    frame_key,
    store_key,
)
from repro.robust.errors import StoreCorruptionError
from repro.robust.faults import (
    STORE_FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    inject_faults,
)


def make_coords(n=60, seed=0, span=16):
    rng = np.random.default_rng(seed)
    coords = rng.integers(0, span, size=(4 * n, 3))
    coords = np.unique(coords, axis=0)[:n]
    return np.hstack(
        [np.zeros((len(coords), 1), dtype=np.int64), coords]
    ).astype(np.int32)


def make_cloud(n=60, seed=0):
    coords = make_coords(n=n, seed=seed)
    rng = np.random.default_rng(seed + 100)
    feats = rng.standard_normal((len(coords), 4)).astype(np.float32)
    return SparseTensor(coords, feats)


def make_kmap(seed=0, backend="hash"):
    coords = make_coords(seed=seed)
    index = CoordIndex.build(coords, backend=backend)
    return build_kmap(coords, index, coords, kernel_size=3, stride=1)


# -- blob codec --------------------------------------------------------------


class TestBlobRoundtrip:
    def test_kmap_roundtrip_exact(self):
        kmap = make_kmap()
        data = encode_artifact("kmap", kmap)
        kind, back = decode_artifact(data)
        assert kind == "kmap"
        assert back.kernel_size == kmap.kernel_size
        assert back.stride == kmap.stride
        assert back.n_in == kmap.n_in and back.n_out == kmap.n_out
        assert back.total == kmap.total
        for a, b in zip(kmap.in_indices, back.in_indices):
            assert (a == b).all()
        for a, b in zip(kmap.out_indices, back.out_indices):
            assert (a == b).all()

    @pytest.mark.parametrize("backend", ["hash", "grid"])
    def test_index_roundtrip_answers_queries(self, backend):
        coords = make_coords(seed=3)
        index = CoordIndex.build(coords, backend=backend)
        kind, back = decode_artifact(
            encode_artifact("index", index)
        )
        assert kind == "index"
        assert type(back.table).__name__ == type(index.table).__name__
        # the restored table answers every original query identically
        got = back.lookup(coords)
        want = index.lookup(coords)
        assert (got == want).all()

    def test_coords_roundtrip_exact(self):
        coords = make_coords(seed=5)
        kind, back = decode_artifact(encode_artifact("coords", coords))
        assert kind == "coords"
        assert back.dtype == coords.dtype
        assert (back == coords).all()

    def test_book_roundtrip(self):
        book = StrategyBook(device_name="RTX 3090")
        book.set(
            "conv1",
            LayerStrategy(
                epsilon=0.2, s_threshold=1e4, expected_time=1.5
            ),
        )
        kind, back = decode_artifact(encode_artifact("book", book))
        assert kind == "book"
        assert back.dumps() == book.dumps()

    def test_frame_roundtrip(self):
        data = encode_artifact(
            "frame", {"model": "minkunet", "scene": "scene7"}
        )
        kind, back = decode_artifact(data)
        assert kind == "frame"
        assert back == {"model": "minkunet", "scene": "scene7"}

    def test_encoding_is_deterministic(self):
        a = encode_artifact("kmap", make_kmap(seed=1))
        b = encode_artifact("kmap", make_kmap(seed=1))
        assert a == b

    def test_nbytes_positive_for_all_kinds(self):
        kmap = make_kmap()
        coords = make_coords()
        index = CoordIndex.build(coords, backend="hash")
        book = StrategyBook(device_name="x")
        for kind, value in [
            ("kmap", kmap),
            ("coords", coords),
            ("index", index),
            ("book", book),
            ("frame", {"model": "m", "scene": "s"}),
        ]:
            assert artifact_nbytes(kind, value) > 0


class TestBlobDefensiveDecode:
    def good(self):
        return encode_artifact("coords", make_coords())

    def test_bad_magic(self):
        data = b"XXXX" + self.good()[4:]
        with pytest.raises(StoreCorruptionError):
            decode_artifact(data)

    def test_truncated_header(self):
        with pytest.raises(StoreCorruptionError):
            decode_artifact(self.good()[:10])

    def test_truncated_payload(self):
        with pytest.raises(StoreCorruptionError):
            decode_artifact(self.good()[:-8])

    def test_trailing_garbage(self):
        with pytest.raises(StoreCorruptionError):
            decode_artifact(self.good() + b"\x00" * 7)

    def test_header_not_json(self):
        data = bytearray(self.good())
        data[9] = data[9] ^ 0xFF  # inside the JSON header
        with pytest.raises(StoreCorruptionError):
            decode_artifact(bytes(data))

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            encode_artifact("sandwich", b"")
        assert "sandwich" not in ARTIFACT_KINDS


# -- store keys --------------------------------------------------------------


class TestKeys:
    def test_store_key_stable_and_distinct(self):
        coords = make_coords(seed=0)
        k1 = CoordsKey(coords_fingerprint(coords), (2, 2, 2), (2, 2, 2))
        k2 = CoordsKey(coords_fingerprint(coords), (3, 3, 3), (1, 1, 1))
        assert store_key(k1) == store_key(k1)
        assert store_key(k1) != store_key(k2)

    def test_index_vs_coords_keys_never_collide(self):
        fp = coords_fingerprint(make_coords(seed=1))
        assert store_key(IndexKey(fp, "hash")) != store_key(
            CoordsKey(fp, (1, 1, 1), (1, 1, 1))
        )

    def test_book_and_frame_keys(self):
        assert book_key("mink", "RTX 3090") != book_key("mink", "GTX")
        assert frame_key("m", "s1") != frame_key("m", "s2")


# -- the store protocol ------------------------------------------------------


class TestStore:
    def test_save_load_roundtrip(self, tmp_path):
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(tmp_path / "store")
            data = encode_artifact("coords", make_coords())
            store.save("k" * 32, "coords", data, fingerprints=("fp1",))
            assert store.load("k" * 32) == data
            scalars = reg.scalars()
            assert scalars["persist.saves{kind=coords}"] == 1
            assert scalars["persist.loads{result=hit}"] == 1
            assert scalars["persist.entries"] == 1

    def test_miss_is_counted_not_raised(self, tmp_path):
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(tmp_path / "store")
            assert store.load("nope") is None
            assert reg.scalars()["persist.loads{result=miss}"] == 1

    def test_cross_process_reopen_serves_same_bytes(self, tmp_path):
        root = tmp_path / "store"
        data = encode_artifact("coords", make_coords(seed=2))
        with use_registry(MetricsRegistry()):
            ArtifactStore(root).save("a" * 32, "coords", data)
            # a second open is the cross-process case: fresh entries
            # replayed from the manifest, same verified bytes
            again = ArtifactStore(root)
            assert again.load("a" * 32) == data
            assert again.recovery == {
                "torn_tail": 0,
                "damaged_records": 0,
                "missing_objects": 0,
            }

    def test_bitrot_quarantined_never_served(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(root)
            data = encode_artifact("coords", make_coords())
            store.save("b" * 32, "coords", data)
            blob = store._path("b" * 32)
            raw = bytearray(open(blob, "rb").read())
            raw[len(raw) // 2] ^= 0xFF
            open(blob, "wb").write(bytes(raw))
            assert store.load("b" * 32) is None
            # quarantined: gone from entries, blob moved aside
            assert "b" * 32 not in store.entries
            assert not os.path.exists(blob)
            assert os.path.exists(
                os.path.join(store.quarantine_dir, "b" * 32 + ".bin")
            )
            scalars = reg.scalars()
            assert scalars["persist.loads{result=corrupt}"] == 1
            assert scalars["persist.quarantined{reason=checksum}"] == 1
            # and the eviction is durable: a reopen misses too
            assert ArtifactStore(root).load("b" * 32) is None

    def test_truncation_caught_by_size(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(tmp_path / "store")
            data = encode_artifact("coords", make_coords())
            store.save("c" * 32, "coords", data)
            blob = store._path("c" * 32)
            open(blob, "wb").write(data[: len(data) // 2])
            assert store.load("c" * 32) is None

    def test_torn_manifest_tail_recovered(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            d1 = encode_artifact("coords", make_coords(seed=1))
            d2 = encode_artifact("coords", make_coords(seed=2))
            store.save("d" * 32, "coords", d1)
            store.save("e" * 32, "coords", d2)
            # crash mid-append: chop the final record in half
            text = open(store.manifest_path).read()
            torn = text[: len(text) - len(text.splitlines()[-1]) // 2 - 1]
            open(store.manifest_path, "w").write(torn)
            again = ArtifactStore(root)
            assert again.recovery["torn_tail"] == 1
            # the survivor is intact; the torn record's blob is simply
            # not visible (crash before durable record = not written)
            assert again.load("d" * 32) == d1
            assert again.load("e" * 32) is None

    def test_damaged_interior_record_skipped(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            store.save(
                "f" * 32, "coords", encode_artifact("coords", make_coords())
            )
            lines = open(store.manifest_path).read().splitlines()
            lines.insert(1, '{"op": "put", "key"')  # interior damage
            open(store.manifest_path, "w").write("\n".join(lines) + "\n")
            again = ArtifactStore(root)
            assert again.recovery["damaged_records"] == 1
            assert again.load("f" * 32) is not None

    def test_unrecorded_blob_invisible(self, tmp_path):
        """A blob written but not recorded (crash between rename and
        manifest append) must be invisible, then scrubbed as orphan."""
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            orphan = os.path.join(store.objects_dir, "zz", "z" * 32 + ".bin")
            os.makedirs(os.path.dirname(orphan))
            open(orphan, "wb").write(b"whatever")
            assert store.load("z" * 32) is None
            assert store.scrub()["orphans"] == 1
            assert not os.path.exists(orphan)

    def test_missing_object_dropped_on_replay(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            store.save(
                "g" * 32, "coords", encode_artifact("coords", make_coords())
            )
            os.remove(store._path("g" * 32))
            again = ArtifactStore(root)
            assert again.recovery["missing_objects"] == 1
            assert "g" * 32 not in again.entries

    def test_corrupt_header_raises_typed(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            ArtifactStore(root)
            open(os.path.join(root, MANIFEST_NAME), "w").write(
                '{"schema": "bogus/9"}\n'
            )
            with pytest.raises(StoreCorruptionError):
                ArtifactStore(root)

    def test_open_missing_without_create(self, tmp_path):
        with pytest.raises(StoreCorruptionError):
            ArtifactStore(tmp_path / "absent", create=False)

    def test_evict_by_fingerprint(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(tmp_path / "store")
            data = encode_artifact("coords", make_coords())
            store.save("h" * 32, "coords", data, fingerprints=("fpA",))
            store.save("i" * 32, "coords", data, fingerprints=("fpB",))
            assert store.evict_fingerprints(["fpA"]) == 1
            assert store.load("h" * 32) is None
            assert store.load("i" * 32) == data
            # durable across reopen
            assert (tmp_path / "store").exists()
            assert ArtifactStore(tmp_path / "store").load("h" * 32) is None

    def test_stats_shape(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(tmp_path / "store")
            store.save(
                "j" * 32, "coords", encode_artifact("coords", make_coords())
            )
            s = store.stats()
            assert s["schema"] == STORE_SCHEMA
            assert s["entries"] == 1
            assert s["by_kind"] == {"coords": 1}
            assert s["bytes"] > 0
            assert s["quarantined"] == 0


class TestScrubAndPurge:
    def test_scrub_evicts_and_compacts(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            good = encode_artifact("coords", make_coords(seed=1))
            bad = encode_artifact("coords", make_coords(seed=2))
            store.save("k" * 32, "coords", good)
            store.save("l" * 32, "coords", bad)
            open(store._path("l" * 32), "ab").write(b"rot")
            # stray temp file from a simulated crash
            open(store._path("k" * 32) + ".tmp", "wb").write(b"x")
            report = store.scrub()
            assert report["evicted"] == ["l" * 32]
            assert report["tmp_files"] == 1
            # second scrub of the repaired store finds nothing
            again = store.scrub()
            assert again == {"evicted": [], "orphans": 0, "tmp_files": 0}
            # compaction: manifest has exactly header + one live record
            reopened = ArtifactStore(root)
            assert reopened.recovery == {
                "torn_tail": 0,
                "damaged_records": 0,
                "missing_objects": 0,
            }
            assert list(reopened.entries) == ["k" * 32]
            assert reopened.load("k" * 32) == good

    def test_verify_is_read_only(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(tmp_path / "store")
            store.save(
                "m" * 32, "coords", encode_artifact("coords", make_coords())
            )
            open(store._path("m" * 32), "ab").write(b"!")
            report = store.verify()
            assert report["checked"] == 1 and report["ok"] == 0
            assert report["corrupt"][0]["reason"] == "size"
            # still present until scrub acts
            assert "m" * 32 in store.entries

    def test_purge_empties_but_store_stays_openable(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            store.save(
                "n" * 32, "coords", encode_artifact("coords", make_coords())
            )
            assert store.purge() == 1
            assert store.stats()["entries"] == 0
            assert ArtifactStore(root).stats()["entries"] == 0


# -- seeded disk-fault sites -------------------------------------------------


class TestFaultSites:
    def test_store_kinds_registered(self):
        from repro.robust.faults import PIPELINE_FAULT_KINDS

        assert set(STORE_FAULT_KINDS) == {
            "store_torn_write",
            "store_bitrot",
            "store_manifest_corrupt",
            "store_stale_entry",
        }
        for kind in STORE_FAULT_KINDS:
            assert kind in PIPELINE_FAULT_KINDS

    @pytest.mark.parametrize(
        "kind", ["store_torn_write", "store_bitrot", "store_stale_entry"]
    )
    def test_damaged_save_detected_on_load(self, kind, tmp_path):
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(tmp_path / "store")
            data = encode_artifact("coords", make_coords())
            inj = FaultInjector(seed=0, specs=[FaultSpec(kind, count=1)])
            with inject_faults(inj):
                store.save("o" * 32, "coords", data)
                assert inj.shots == 1
                # verification catches it under the injector too
                assert store.load("o" * 32) is None
            assert reg.scalars()["persist.loads{result=corrupt}"] == 1
            # rebuild succeeds once the fault is spent
            store.save("o" * 32, "coords", data)
            assert store.load("o" * 32) == data

    def test_manifest_corrupt_recovered_on_reopen(self, tmp_path):
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(root)
            data = encode_artifact("coords", make_coords())
            inj = FaultInjector(
                seed=0, specs=[FaultSpec("store_manifest_corrupt", count=1)]
            )
            with inject_faults(inj):
                store.save("p" * 32, "coords", data)
            assert inj.shots == 1
            again = ArtifactStore(root)
            assert (
                again.recovery["torn_tail"]
                + again.recovery["damaged_records"]
                >= 1
            )
            # the damaged record's entry is not trusted...
            assert again.load("p" * 32) is None
            # ...and scrub leaves a clean, re-writable store
            again.scrub()
            again.save("p" * 32, "coords", data)
            assert again.load("p" * 32) == data


# -- the store-backed tier ---------------------------------------------------


def run_conv(x, ctx, w):
    return ctx.engine.convolution(x, w, ctx, kernel_size=3, stride=1)


class TestStoreBackedTier:
    def weights(self):
        rng = np.random.default_rng(7)
        return rng.standard_normal((27, 4, 8)).astype(np.float32)

    def test_write_through_and_cross_process_warm_hit(self, tmp_path):
        x = make_cloud(seed=0)
        w = self.weights()
        engine = TorchSparseEngine()
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            tier = StoreBackedMappingCache(ArtifactStore(root))
            cold = ExecutionContext(engine=engine, mapcache=tier)
            out_cold = run_conv(x, cold, w)
            stats = tier.store.stats()
            assert stats["entries"] > 0
            assert set(stats["by_kind"]) <= set(PERSISTED_KINDS)
        # "new process": fresh registry, fresh memory tier, same disk
        with use_registry(MetricsRegistry()) as reg:
            tier2 = StoreBackedMappingCache(ArtifactStore(root))
            warm = ExecutionContext(engine=engine, mapcache=tier2)
            out_warm = run_conv(x, warm, w)
            scalars = reg.scalars()
            assert scalars["persist.tier{result=warm}"] > 0
            assert scalars["persist.loads{result=hit}"] > 0
        assert out_warm.feats.tobytes() == out_cold.feats.tobytes()
        assert (out_warm.coords == out_cold.coords).all()

    def test_tier_matches_plain_cache_bit_exact(self, tmp_path):
        x = make_cloud(seed=1)
        w = self.weights()
        engine = TorchSparseEngine()
        with use_registry(MetricsRegistry()):
            tier = StoreBackedMappingCache(
                ArtifactStore(tmp_path / "store")
            )
            a = ExecutionContext(engine=engine, mapcache=tier)
            out_a = run_conv(x, a, w)
            b = ExecutionContext(engine=engine, mapcache=MappingCache())
            out_b = run_conv(x, b, w)
        assert out_a.feats.tobytes() == out_b.feats.tobytes()

    def test_corrupted_store_entry_rebuilt_not_served(self, tmp_path):
        x = make_cloud(seed=2)
        w = self.weights()
        engine = TorchSparseEngine()
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            tier = StoreBackedMappingCache(ArtifactStore(root))
            out_clean = run_conv(
                x, ExecutionContext(engine=engine, mapcache=tier), w
            )
            # rot every blob on disk
            for key in list(tier.store.entries):
                path = tier.store._path(key)
                raw = bytearray(open(path, "rb").read())
                raw[len(raw) // 2] ^= 0xFF
                open(path, "wb").write(bytes(raw))
        with use_registry(MetricsRegistry()) as reg:
            tier2 = StoreBackedMappingCache(ArtifactStore(root))
            out = run_conv(
                x, ExecutionContext(engine=engine, mapcache=tier2), w
            )
            scalars = reg.scalars()
            assert scalars.get("persist.loads{result=corrupt}", 0) > 0
            assert scalars.get("persist.tier{result=warm}", 0) == 0
        # rebuilt output identical to the clean run
        assert out.feats.tobytes() == out_clean.feats.tobytes()

    def test_purge_hits_both_tiers(self, tmp_path):
        x = make_cloud(seed=3)
        w = self.weights()
        engine = TorchSparseEngine()
        root = tmp_path / "store"
        with use_registry(MetricsRegistry()):
            tier = StoreBackedMappingCache(ArtifactStore(root))
            run_conv(x, ExecutionContext(engine=engine, mapcache=tier), w)
            fp = coords_fingerprint(x.coords)
            assert tier.purge([fp]) > 0
            assert tier.stats()["entries"] == 0
            assert tier.store.stats()["entries"] == 0
            # and durably: a reopen sees the evictions
            assert ArtifactStore(root).stats()["entries"] == 0

    def test_decode_damage_quarantined(self, tmp_path):
        """Checksum-valid but structurally bad blob: the tier must
        quarantine on decode failure, not crash or serve."""
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(tmp_path / "store")
            coords = make_coords(seed=4)
            key = IndexKey(coords_fingerprint(coords), "hash")
            # record garbage *as* the entry: checksum matches garbage
            store.save(store_key(key), "index", b"not a blob")
            tier = StoreBackedMappingCache(store)
            assert tier.get(key) is None
            assert (
                reg.scalars()["persist.quarantined{reason=decode}"] == 1
            )

    def test_kind_mismatch_quarantined(self, tmp_path):
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(tmp_path / "store")
            coords = make_coords(seed=5)
            key = IndexKey(coords_fingerprint(coords), "hash")
            # a frame blob filed under an index key
            store.save(
                store_key(key),
                "index",
                encode_artifact("frame", {"model": "m", "scene": "s"}),
            )
            tier = StoreBackedMappingCache(store)
            assert tier.get(key) is None
            assert (
                reg.scalars()["persist.quarantined{reason=kind_mismatch}"]
                == 1
            )


# -- StrategyBook persistence ------------------------------------------------


class TestBookStore:
    def book(self):
        book = StrategyBook(device_name="RTX 3090")
        book.set(
            "conv1",
            LayerStrategy(
                epsilon=0.15, s_threshold=2e4, expected_time=0.8
            ),
        )
        return book

    def test_roundtrip_through_store(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(tmp_path / "store")
            book = self.book()
            key = book.save_to_store(store, "minkunet")
            assert key == book_key("minkunet", "RTX 3090")
            back = StrategyBook.load_from_store(
                store, "minkunet", device_name="RTX 3090"
            )
            assert back.dumps() == book.dumps()

    def test_missing_raises_unless_fallback(self, tmp_path):
        with use_registry(MetricsRegistry()):
            store = ArtifactStore(tmp_path / "store")
            with pytest.raises(StrategyBookError):
                StrategyBook.load_from_store(store, "absent")
            assert (
                StrategyBook.load_from_store(
                    store, "absent", fallback=True
                )
                is None
            )

    def test_corrupt_book_falls_back(self, tmp_path):
        with use_registry(MetricsRegistry()) as reg:
            store = ArtifactStore(tmp_path / "store")
            self.book().save_to_store(store, "minkunet")
            key = book_key("minkunet", "RTX 3090")
            path = store._path(key)
            raw = bytearray(open(path, "rb").read())
            raw[len(raw) // 2] ^= 0xFF
            open(path, "wb").write(bytes(raw))
            assert (
                StrategyBook.load_from_store(
                    store,
                    "minkunet",
                    device_name="RTX 3090",
                    fallback=True,
                )
                is None
            )
            assert reg.scalars()["persist.quarantined{reason=checksum}"] == 1
