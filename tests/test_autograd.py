"""Numerical gradient checks for the training autograd."""

import numpy as np
import pytest

from repro.mapping.kmap import CoordIndex, build_kmap
from repro.train.autograd import (
    Param,
    Var,
    add,
    add_bias,
    concat_cols,
    log_softmax,
    matmul,
    mean_all,
    mul_rows,
    pick_per_row,
    relu,
    scale,
    scatter_add,
    take_rows,
)
from repro.train.modules import cross_entropy
from repro.train.ops import sparse_conv

RNG = np.random.default_rng(0)


def numerical_grad(f, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central differences of a scalar function of an array."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gf[i] = (up - down) / (2 * eps)
    return g


def check_grad(build_loss, *leaves):
    """Assert tape gradients match central differences for each leaf."""
    loss = build_loss()
    loss.backward()
    for leaf in leaves:
        analytic = leaf.grad.copy()
        numeric = numerical_grad(lambda: float(build_loss().data), leaf.data)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-6)


class TestPrimitiveGradients:
    def test_matmul(self):
        a = Param(RNG.standard_normal((4, 3)))
        b = Param(RNG.standard_normal((3, 5)))
        check_grad(lambda: mean_all(matmul(a, b)), a, b)

    def test_add_and_scale(self):
        a = Param(RNG.standard_normal((4, 3)))
        b = Param(RNG.standard_normal((4, 3)))
        check_grad(lambda: mean_all(scale(add(a, b), 2.5)), a, b)

    def test_add_bias(self):
        x = Param(RNG.standard_normal((6, 3)))
        b = Param(RNG.standard_normal(3))
        check_grad(lambda: mean_all(add_bias(x, b)), x, b)

    def test_mul_rows(self):
        x = Param(RNG.standard_normal((6, 3)))
        w = Param(RNG.standard_normal(3))
        check_grad(lambda: mean_all(mul_rows(x, w)), x, w)

    def test_relu(self):
        x = Param(RNG.standard_normal((5, 4)) + 0.1)
        check_grad(lambda: mean_all(relu(x)), x)

    def test_take_rows_with_duplicates(self):
        x = Param(RNG.standard_normal((5, 3)))
        idx = np.array([0, 2, 2, 4, 0])
        check_grad(lambda: mean_all(take_rows(x, idx)), x)

    def test_scatter_add(self):
        x = Param(RNG.standard_normal((6, 3)))
        idx = np.array([0, 1, 1, 3, 3, 3])
        check_grad(lambda: mean_all(scatter_add(x, idx, 4)), x)

    def test_concat_cols(self):
        a = Param(RNG.standard_normal((4, 2)))
        b = Param(RNG.standard_normal((4, 3)))
        check_grad(lambda: mean_all(concat_cols(a, b)), a, b)

    def test_log_softmax(self):
        x = Param(RNG.standard_normal((5, 4)))
        check_grad(lambda: mean_all(log_softmax(x)), x)

    def test_pick_per_row(self):
        x = Param(RNG.standard_normal((5, 4)))
        cols = np.array([0, 3, 1, 2, 2])
        check_grad(lambda: mean_all(pick_per_row(x, cols)), x)

    def test_cross_entropy(self):
        x = Param(RNG.standard_normal((6, 4)))
        targets = np.array([0, 1, 2, 3, 1, 0])
        check_grad(lambda: cross_entropy(x, targets), x)

    def test_cross_entropy_value(self):
        """Uniform logits -> loss = log(num_classes)."""
        x = Var(np.zeros((3, 4)), requires_grad=True)
        loss = cross_entropy(x, np.array([0, 1, 2]))
        assert float(loss.data) == pytest.approx(np.log(4))


class TestVarMechanics:
    def test_backward_needs_scalar(self):
        x = Param(RNG.standard_normal((3, 3)))
        with pytest.raises(ValueError):
            matmul(x, x).backward()

    def test_no_grad_leaf_skipped(self):
        a = Var(RNG.standard_normal((2, 2)))  # requires_grad=False
        b = Param(RNG.standard_normal((2, 2)))
        mean_all(matmul(a, b)).backward()
        assert a.grad is None
        assert b.grad is not None

    def test_shared_node_accumulates(self):
        """y = x + x must give dy/dx = 2."""
        x = Param(np.ones((2, 2)))
        mean_all(add(x, x)).backward()
        np.testing.assert_allclose(x.grad, np.full((2, 2), 2 / 4))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            add(Param(np.zeros((2, 2))), Param(np.zeros((3, 2))))

    def test_operators(self):
        a = Param(np.ones((2, 2)))
        b = Param(np.ones((2, 2)))
        out = (a + b) @ b * 0.5
        assert out.shape == (2, 2)


class TestSparseConvGradients:
    def _instance(self, n=25, c_in=3, c_out=4, k=3):
        xyz = np.unique(RNG.integers(0, 5, size=(n, 3)), axis=0)
        coords = np.concatenate(
            [np.zeros((xyz.shape[0], 1), dtype=np.int64), xyz], axis=1
        ).astype(np.int32)
        index = CoordIndex.build(coords, backend="hash")
        kmap = build_kmap(coords, index, coords, k)
        x = Param(RNG.standard_normal((kmap.n_in, c_in)))
        weights = [
            Param(RNG.standard_normal((c_in, c_out)) * 0.3)
            for _ in range(kmap.volume)
        ]
        return x, weights, kmap

    def test_matches_inference_forward(self):
        x, weights, kmap = self._instance()
        out = sparse_conv(x, weights, kmap)
        from repro.core.reference import sparse_conv_reference
        from repro.hashmap.coords import unpack_coords

        # indices 0..n_in-1 with the same coords as construction
        # (reference needs coords; rebuild them from the kmap instance)
        # simpler: compare against the engine dataflow
        from repro.core.dataflow import MovementConfig, execute_gather_matmul_scatter
        from repro.core.grouping import make_plan
        from repro.gpu.device import RTX_2080TI
        from repro.gpu.timeline import Profile

        plan = make_plan("separate", kmap.sizes, kmap.kernel_size, kmap.stride)
        want = execute_gather_matmul_scatter(
            x.data.astype(np.float32),
            np.stack([w.data for w in weights]).astype(np.float32),
            kmap,
            plan,
            MovementConfig(),
            RTX_2080TI,
            Profile(),
            skip_center=True,
        )
        np.testing.assert_allclose(out.data, want, rtol=1e-4, atol=1e-5)

    def test_weight_gradients(self):
        x, weights, kmap = self._instance(n=15, c_in=2, c_out=2)
        check_grad(
            lambda: mean_all(sparse_conv(x, weights, kmap)),
            weights[13],  # the center weight definitely has map entries
            x,
        )

    def test_empty_offsets_contribute_nothing(self):
        x, weights, kmap = self._instance()
        out = sparse_conv(x, weights, kmap)
        out.backward(np.ones_like(out.data))
        for n in range(kmap.volume):
            if len(kmap.in_indices[n]) == 0:
                # unused weights never enter the graph: grad stays None
                assert weights[n].grad is None or not weights[n].grad.any()

    def test_weight_count_validated(self):
        x, weights, kmap = self._instance()
        with pytest.raises(ValueError):
            sparse_conv(x, weights[:5], kmap)
