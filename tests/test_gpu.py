"""Tests for the GPU cost model (device, memory, gemm)."""

import numpy as np
import pytest

from repro.gpu.device import GPU_REGISTRY, GTX_1080TI, RTX_2080TI, RTX_3090
from repro.gpu.gemm import bmm_cost, mm_cost, sequential_cost
from repro.gpu.memory import (
    DType,
    MemoryAccessPattern,
    movement_time,
    traffic,
    transaction_efficiency,
)


class TestDeviceSpecs:
    def test_registry(self):
        assert set(GPU_REGISTRY) == {"1080ti", "2080ti", "3090"}

    def test_1080ti_has_no_fp16_advantage(self):
        assert GTX_1080TI.math_throughput(DType.FP16) == GTX_1080TI.math_throughput(
            DType.FP32
        )

    def test_tensor_core_gpus_accelerate_fp16(self):
        for dev in (RTX_2080TI, RTX_3090):
            assert dev.math_throughput(DType.FP16) > dev.math_throughput(DType.FP32)

    def test_occupancy_monotone_saturating(self):
        occs = [RTX_2080TI.occupancy(b) for b in (0, 1, 10, 100, 1000, 100000)]
        assert occs == sorted(occs)
        assert occs[0] == 0.0
        assert occs[-1] <= 0.95

    def test_mem_time_linear(self):
        t1 = RTX_2080TI.mem_time(1e6)
        t2 = RTX_2080TI.mem_time(2e6)
        assert t2 == pytest.approx(2 * t1)

    def test_kernel_time_roofline(self):
        """Latency is the max of memory and compute, plus launch."""
        t = RTX_2080TI.kernel_time(bytes_moved=1e9, flops=1.0, dtype=DType.FP32)
        assert t == pytest.approx(
            RTX_2080TI.mem_time(1e9) + RTX_2080TI.launch_overhead
        )

    def test_zero_work_costs_only_launch(self):
        assert RTX_2080TI.kernel_time() == pytest.approx(RTX_2080TI.launch_overhead)

    def test_device_ordering(self):
        """Newer GPUs are uniformly faster in the sheet."""
        assert GTX_1080TI.dram_bandwidth < RTX_2080TI.dram_bandwidth < RTX_3090.dram_bandwidth


class TestTransactionModel:
    def test_fp32_scalar_full_efficiency(self):
        assert transaction_efficiency(DType.FP32, MemoryAccessPattern.SCALAR) == 1.0

    def test_fp16_scalar_partial(self):
        eff = transaction_efficiency(DType.FP16, MemoryAccessPattern.SCALAR)
        assert 0.4 < eff < 0.8

    def test_vectorized_near_full(self):
        eff = transaction_efficiency(DType.FP16, MemoryAccessPattern.VECTORIZED)
        assert eff > 0.9

    def test_speedup_ladder_matches_paper(self):
        """FP32 -> scalar FP16 ~1.3x, -> vectorized FP16 ~1.9x (Fig. 8)."""
        rows, ch = 100_000, 64
        t32 = movement_time(
            traffic(rows, ch, DType.FP32, MemoryAccessPattern.SCALAR), 616e9
        )
        t16s = movement_time(
            traffic(rows, ch, DType.FP16, MemoryAccessPattern.SCALAR), 616e9
        )
        t16v = movement_time(
            traffic(rows, ch, DType.FP16, MemoryAccessPattern.VECTORIZED), 616e9
        )
        assert 1.1 < t32 / t16s < 1.6
        assert 1.7 < t32 / t16v < 2.0

    def test_int8_diminishing_return(self):
        """INT8 scalar gains little over FP16 scalar (Section 4.3.1)."""
        rows, ch = 100_000, 64
        t16 = movement_time(
            traffic(rows, ch, DType.FP16, MemoryAccessPattern.SCALAR), 616e9
        )
        t8 = movement_time(
            traffic(rows, ch, DType.INT8, MemoryAccessPattern.SCALAR), 616e9
        )
        assert t8 / t16 > 0.6  # nowhere near the naive 2x

    def test_traffic_zero_rows(self):
        t = traffic(0, 32, DType.FP32, MemoryAccessPattern.SCALAR)
        assert t.bytes_moved == 0 and t.transactions == 0
        assert movement_time(t, 616e9) == 0.0

    def test_traffic_negative_rejected(self):
        with pytest.raises(ValueError):
            traffic(-1, 32, DType.FP32, MemoryAccessPattern.SCALAR)

    def test_traffic_addition_weights_efficiency(self):
        a = traffic(1000, 32, DType.FP32, MemoryAccessPattern.SCALAR)
        b = traffic(1000, 32, DType.FP16, MemoryAccessPattern.SCALAR)
        c = a + b
        assert c.bytes_moved == a.bytes_moved + b.bytes_moved
        assert min(a.efficiency, b.efficiency) <= c.efficiency <= 1.0


class TestGemmModel:
    def test_mm_zero_rows_free(self):
        c = mm_cost(0, 32, 32, DType.FP16, RTX_2080TI)
        assert c.time == 0.0 and c.flops == 0.0

    def test_mm_flops_exact(self):
        c = mm_cost(100, 32, 64, DType.FP16, RTX_2080TI)
        assert c.flops == 2 * 100 * 32 * 64

    def test_bmm_pads_to_max(self):
        c = bmm_cost([100, 1000], 32, 32, DType.FP16, RTX_2080TI)
        assert c.flops == 2 * 2 * 1000 * 32 * 32
        assert c.useful_flops == 2 * 1100 * 32 * 32
        assert c.launches == 1

    def test_bmm_beats_sequential_on_small_maps(self):
        """The Figure 7 effect: batching small equal maps wins."""
        sizes = [2000] * 13
        seq = sequential_cost(sizes, 32, 32, DType.FP16, RTX_2080TI)
        bat = bmm_cost(sizes, 32, 32, DType.FP16, RTX_2080TI)
        assert bat.time < seq.time

    def test_bmm_padding_can_lose_on_skewed_maps(self):
        """Padding a tiny map to a huge one wastes more than batching saves."""
        sizes = [100, 200_000]
        seq = sequential_cost(sizes, 256, 256, DType.FP16, RTX_2080TI)
        bat = bmm_cost(sizes, 256, 256, DType.FP16, RTX_2080TI)
        assert bat.flops > seq.flops
        assert bat.time > seq.time * 0.9  # no meaningful win

    def test_sequential_accumulates_launches(self):
        seq = sequential_cost([10, 10, 10], 8, 8, DType.FP32, RTX_2080TI)
        assert seq.launches == 3

    def test_achieved_tflops_sane(self):
        c = mm_cost(500_000, 256, 256, DType.FP16, RTX_2080TI)
        assert 0 < c.achieved_tflops <= RTX_2080TI.fp16_tflops

    def test_empty_bmm(self):
        c = bmm_cost([], 32, 32, DType.FP16, RTX_2080TI)
        assert c.time == 0.0
