"""Tests for the synthetic dataset substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.configs import nuscenes_like, semantic_kitti_like, waymo_like
from repro.datasets.lidar import LidarConfig, multi_frame_scan, scan
from repro.datasets.scenes import CLASS_IDS, make_outdoor_scene
from repro.datasets.voxelize import sparse_quantize, to_sparse_tensor, voxel_labels
from repro.hashmap.coords import pack_coords

SMALL = LidarConfig(beams=16, azimuth_steps=128, max_range=60.0)


class TestScenes:
    def test_deterministic_in_seed(self):
        a = make_outdoor_scene(seed=7)
        b = make_outdoor_scene(seed=7)
        assert np.array_equal(a.box_lo, b.box_lo)
        assert np.array_equal(a.cyl_xyrh, b.cyl_xyrh)

    def test_different_seeds_differ(self):
        a = make_outdoor_scene(seed=1)
        b = make_outdoor_scene(seed=2)
        assert not np.array_equal(a.box_lo, b.box_lo)

    def test_has_all_object_kinds(self):
        s = make_outdoor_scene(seed=0)
        assert s.num_boxes > 0 and s.num_cylinders > 0
        assert CLASS_IDS["building"] in set(s.box_class.tolist())
        assert CLASS_IDS["vehicle"] in set(s.box_class.tolist())

    def test_ground_height_bounded(self):
        s = make_outdoor_scene(seed=0)
        x = np.linspace(-50, 50, 100)
        h = s.ground_height(x, x)
        assert np.abs(h).max() <= 2 * s.ground_amp


class TestLidarScan:
    def test_scan_produces_points(self):
        pc = scan(make_outdoor_scene(seed=0), SMALL, seed=0)
        assert pc.num_points > 500
        assert pc.xyz.shape == (pc.num_points, 3)
        assert pc.intensity.shape == (pc.num_points,)
        assert pc.labels.shape == (pc.num_points,)

    def test_ranges_respected(self):
        pc = scan(make_outdoor_scene(seed=0), SMALL, seed=0)
        r = np.linalg.norm(pc.xyz[:, :2], axis=1)
        assert r.max() <= SMALL.max_range * 1.05  # small noise slack

    def test_intensity_in_unit_range(self):
        pc = scan(make_outdoor_scene(seed=0), SMALL, seed=0)
        assert pc.intensity.min() >= 0 and pc.intensity.max() <= 1

    def test_labels_are_valid_classes(self):
        pc = scan(make_outdoor_scene(seed=0), SMALL, seed=0)
        assert set(np.unique(pc.labels)).issubset(set(CLASS_IDS.values()))
        # ground and at least one structure class should appear
        assert CLASS_IDS["ground"] in pc.labels

    def test_deterministic(self):
        s = make_outdoor_scene(seed=0)
        a = scan(s, SMALL, seed=3)
        b = scan(s, SMALL, seed=3)
        assert np.array_equal(a.xyz, b.xyz)

    def test_dropout_reduces_points(self):
        s = make_outdoor_scene(seed=0)
        none = scan(s, LidarConfig(beams=16, azimuth_steps=128, dropout=0.0), seed=0)
        half = scan(s, LidarConfig(beams=16, azimuth_steps=128, dropout=0.5), seed=0)
        assert half.num_points < none.num_points * 0.7

    def test_multi_frame_aggregates(self):
        s = make_outdoor_scene(seed=0)
        one = scan(s, SMALL, seed=0)
        three = multi_frame_scan(s, SMALL, frames=3, seed=0)
        assert three.num_points > 2 * one.num_points

    def test_scaled_config(self):
        half = SMALL.scaled(0.5)
        assert half.beams == 8 and half.azimuth_steps == 64
        assert half.max_range == SMALL.max_range


class TestVoxelize:
    def test_quantize_basic(self):
        xyz = np.array([[0.0, 0.0, 0.0], [0.01, 0.01, 0.01], [1.0, 0.0, 0.0]])
        feats = np.array([[1.0], [3.0], [5.0]], dtype=np.float32)
        coords, f = sparse_quantize(xyz, feats, voxel_size=0.1)
        assert coords.shape[0] == 2  # first two points share a voxel
        # co-located features averaged
        assert 2.0 in f.ravel().tolist()

    def test_coords_nonnegative_and_unique(self):
        rng = np.random.default_rng(0)
        xyz = rng.uniform(-30, 30, size=(3000, 3))
        coords, _ = sparse_quantize(xyz, np.ones((3000, 1), dtype=np.float32), 0.5)
        assert coords.min() >= 0
        keys = pack_coords(coords)
        assert np.unique(keys).shape[0] == coords.shape[0]

    def test_empty_input(self):
        coords, feats = sparse_quantize(
            np.zeros((0, 3)), np.zeros((0, 4), dtype=np.float32), 0.1
        )
        assert coords.shape == (0, 4)

    def test_invalid_voxel_size(self):
        with pytest.raises(ValueError):
            sparse_quantize(np.zeros((1, 3)), np.zeros((1, 1)), 0.0)

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            sparse_quantize(np.zeros((2, 3)), np.zeros((3, 1)), 0.1)

    def test_to_sparse_tensor(self):
        pc = scan(make_outdoor_scene(seed=0), SMALL, seed=0)
        t = to_sparse_tensor(pc, voxel_size=0.2)
        assert t.num_channels == 4
        t.validate_unique()

    def test_voxel_labels_align_with_tensor(self):
        pc = scan(make_outdoor_scene(seed=0), SMALL, seed=0)
        t = to_sparse_tensor(pc, voxel_size=0.2)
        labels = voxel_labels(pc, voxel_size=0.2, num_classes=5)
        assert labels.shape[0] == t.num_points
        assert labels.min() >= 0 and labels.max() < 5

    @given(
        st.lists(
            st.tuples(
                st.floats(-50, 50, allow_nan=False),
                st.floats(-50, 50, allow_nan=False),
                st.floats(-5, 20, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_quantize_feature_means_bounded(self, pts):
        """Voxel means must stay within the input feature range."""
        xyz = np.array(pts)
        feats = xyz[:, :1].astype(np.float32)
        _, f = sparse_quantize(xyz, feats, 0.5)
        assert f.min() >= feats.min() - 1e-4
        assert f.max() <= feats.max() + 1e-4


class TestDatasetConfigs:
    def test_presets_shapes(self):
        kitti = semantic_kitti_like()
        nus = nuscenes_like()
        assert kitti.lidar.beams == 64 and nus.lidar.beams == 32
        assert kitti.voxel_size < nus.voxel_size

    def test_kitti_denser_than_nuscenes(self):
        """The Figure 12 premise: KITTI-like inputs are much larger."""
        k = semantic_kitti_like().sample_tensor(seed=0, scale=0.2)
        n = nuscenes_like().sample_tensor(seed=0, scale=0.2)
        assert k.num_points > 2.5 * n.num_points

    def test_frames_variant(self):
        ds = nuscenes_like(frames=3)
        assert ds.frames == 3 and "3f" in ds.name

    def test_z_crop(self):
        ds = waymo_like().cropped(-0.5, 4.0)
        pc = ds.sample(seed=0, scale=0.15)
        assert pc.xyz[:, 2].max() <= 4.0
        assert pc.xyz[:, 2].min() >= -0.5

    def test_sample_many(self):
        ds = nuscenes_like()
        xs = ds.sample_many(2, scale=0.15)
        assert len(xs) == 2
        assert xs[0].num_points != xs[1].num_points  # different scenes
