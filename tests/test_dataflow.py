"""Tests for dataflow execution: numerics against references, cost ladder."""

import numpy as np
import pytest

from repro.core.dataflow import (
    MovementConfig,
    execute_fetch_on_demand,
    execute_gather_matmul_scatter,
    gather_record,
    scatter_record,
)
from repro.core.grouping import make_plan
from repro.core.reference import dense_conv3d_reference, sparse_conv_reference
from repro.gpu.device import RTX_2080TI
from repro.gpu.memory import DType
from repro.gpu.timeline import Profile
from repro.mapping.downsample import downsample_coords
from repro.mapping.kmap import CoordIndex, build_kmap
from repro.robust.tolerance import CLOSE_FP32, EXACT_FP32, HALF


def random_instance(n=80, c_in=8, c_out=12, kernel_size=3, seed=0, extent=10):
    rng = np.random.default_rng(seed)
    xyz = np.unique(rng.integers(0, extent, size=(n, 3)), axis=0)
    coords = np.concatenate(
        [np.zeros((xyz.shape[0], 1), dtype=np.int64), xyz], axis=1
    ).astype(np.int32)
    feats = rng.standard_normal((coords.shape[0], c_in)).astype(np.float32)
    weights = (
        rng.standard_normal((kernel_size**3, c_in, c_out)) * 0.2
    ).astype(np.float32)
    return coords, feats, weights


def run_gms(coords, feats, weights, out_coords, kernel_size, stride,
            strategy="separate", cfg=None, **plan_kw):
    index = CoordIndex.build(coords, backend="hash")
    kmap = build_kmap(coords, index, out_coords, kernel_size, stride=stride)
    skip_center = stride == 1 and kernel_size % 2 == 1
    plan = make_plan(
        strategy, kmap.sizes, kernel_size, kmap.stride, **plan_kw
    )
    return execute_gather_matmul_scatter(
        feats,
        weights,
        kmap,
        plan,
        cfg or MovementConfig(),
        RTX_2080TI,
        Profile(),
        skip_center=skip_center,
    )


class TestNumericsVsReferences:
    def test_submanifold_matches_equation1(self):
        coords, feats, weights = random_instance()
        got = run_gms(coords, feats, weights, coords, 3, 1)
        want = sparse_conv_reference(coords, feats, weights, coords, 3, 1)
        CLOSE_FP32.assert_close(got, want)

    def test_submanifold_matches_dense_reference(self):
        coords, feats, weights = random_instance(seed=3)
        got = run_gms(coords, feats, weights, coords, 3, 1)
        want = dense_conv3d_reference(coords, feats, weights, coords, 3, 1)
        CLOSE_FP32.assert_close(got, want)

    def test_two_references_agree(self):
        coords, feats, weights = random_instance(seed=9)
        a = sparse_conv_reference(coords, feats, weights, coords, 3, 1)
        b = dense_conv3d_reference(coords, feats, weights, coords, 3, 1)
        EXACT_FP32.assert_close(a, b)

    @pytest.mark.parametrize("kernel_size,stride", [(2, 2), (3, 2)])
    def test_strided_matches_equation1(self, kernel_size, stride):
        coords, feats, _ = random_instance(seed=1)
        rng = np.random.default_rng(2)
        weights = (
            rng.standard_normal((kernel_size**3, 8, 12)) * 0.2
        ).astype(np.float32)
        out_coords, _ = downsample_coords(coords, kernel_size, stride)
        got = run_gms(coords, feats, weights, out_coords, kernel_size, stride)
        want = sparse_conv_reference(
            coords, feats, weights, out_coords, kernel_size, stride
        )
        CLOSE_FP32.assert_close(got, want)

    @pytest.mark.parametrize(
        "strategy,kw",
        [
            ("separate", {}),
            ("symmetric", {}),
            ("fixed", {}),
            ("adaptive", dict(epsilon=0.3, s_threshold=1e5)),
            ("adaptive", dict(epsilon=1.0, s_threshold=np.inf)),
        ],
    )
    def test_all_strategies_same_output(self, strategy, kw):
        """Grouping only reorders multiply-accumulates."""
        coords, feats, weights = random_instance(seed=4)
        base = run_gms(coords, feats, weights, coords, 3, 1)
        got = run_gms(coords, feats, weights, coords, 3, 1, strategy=strategy, **kw)
        EXACT_FP32.assert_close(got, base)

    def test_exact_bmm_equals_per_member(self):
        """Zero padding cannot change the products."""
        coords, feats, weights = random_instance(seed=5)
        index = CoordIndex.build(coords, backend="hash")
        kmap = build_kmap(coords, index, coords, 3)
        plan = make_plan("adaptive", kmap.sizes, 3, 1, epsilon=1.0,
                         s_threshold=np.inf)
        outs = []
        for exact in (False, True):
            outs.append(
                execute_gather_matmul_scatter(
                    feats, weights, kmap, plan, MovementConfig(), RTX_2080TI,
                    Profile(), exact_bmm=exact,
                )
            )
        EXACT_FP32.assert_close(outs[0], outs[1])

    def test_fp16_close_to_fp32(self):
        coords, feats, weights = random_instance(seed=6)
        f32 = run_gms(coords, feats, weights, coords, 3, 1)
        f16 = run_gms(
            coords, feats, weights, coords, 3, 1,
            cfg=MovementConfig(dtype=DType.FP16, vectorized=True),
        )
        assert not np.array_equal(f16, f32)  # quantization visible
        HALF.assert_close(f16, f32)

    def test_fetch_on_demand_same_output(self):
        coords, feats, weights = random_instance(seed=7)
        index = CoordIndex.build(coords, backend="hash")
        kmap = build_kmap(coords, index, coords, 3)
        base = run_gms(coords, feats, weights, coords, 3, 1)
        fod = execute_fetch_on_demand(
            feats, weights, kmap, RTX_2080TI, Profile()
        )
        EXACT_FP32.assert_close(fod, base)

    def test_shape_validation(self):
        coords, feats, weights = random_instance()
        index = CoordIndex.build(coords, backend="hash")
        kmap = build_kmap(coords, index, coords, 3)
        plan = make_plan("separate", kmap.sizes, 3, 1)
        with pytest.raises(ValueError):
            execute_gather_matmul_scatter(
                feats[:, :4], weights, kmap, plan, MovementConfig(),
                RTX_2080TI, Profile(),
            )
        with pytest.raises(ValueError):
            execute_gather_matmul_scatter(
                feats, weights[:5], kmap, plan, MovementConfig(),
                RTX_2080TI, Profile(),
            )


class TestMovementCostLadder:
    """Table 3's ablation, on a synthetic layer."""

    # Large enough that DRAM traffic (not launch overhead) dominates,
    # as on the paper's full-scale layers.
    CHANNELS = 256

    def _kmap(self, n=40_000, extent=80, seed=0):
        rng = np.random.default_rng(seed)
        xyz = np.unique(rng.integers(0, extent, size=(n, 3)), axis=0)
        coords = np.concatenate(
            [np.zeros((xyz.shape[0], 1), dtype=np.int64), xyz], axis=1
        ).astype(np.int32)
        index = CoordIndex.build(coords, backend="hash")
        return build_kmap(coords, index, coords, 3)

    def _times(self, cfg):
        kmap = self._kmap()
        g = gather_record(kmap, self.CHANNELS, cfg, RTX_2080TI, skip_center=True)
        s = scatter_record(kmap, self.CHANNELS, cfg, RTX_2080TI, skip_center=True)
        return g.time, s.time

    def test_ladder_strictly_improves(self):
        ladder = [
            MovementConfig(DType.FP32, False, False, False),
            MovementConfig(DType.FP16, False, False, False),
            MovementConfig(DType.FP16, True, False, False),
            MovementConfig(DType.FP16, True, True, False),
            MovementConfig(DType.FP16, True, True, True),
        ]
        totals = [sum(self._times(c)) for c in ladder]
        for a, b in zip(totals, totals[1:]):
            assert b <= a * 1.001

    def test_full_stack_speedup_in_paper_range(self):
        base = sum(self._times(MovementConfig(DType.FP32, False, False, False)))
        full = sum(self._times(MovementConfig(DType.FP16, True, True, True)))
        assert 2.0 < base / full < 4.5  # paper: 2.72x

    def test_vectorization_is_the_big_fp16_step(self):
        scalar = sum(self._times(MovementConfig(DType.FP16, False, False, False)))
        vec = sum(self._times(MovementConfig(DType.FP16, True, False, False)))
        base = sum(self._times(MovementConfig(DType.FP32, False, False, False)))
        assert base / scalar < 1.6  # naive FP16 disappoints (paper 1.32x)
        assert base / vec > 1.7  # vectorized delivers (paper 1.93x)

    def test_fused_alone_helps_scatter_not_gather(self):
        cfg_u = MovementConfig(DType.FP16, True, False, False)
        cfg_f = MovementConfig(DType.FP16, True, True, False)
        g_u, s_u = self._times(cfg_u)
        g_f, s_f = self._times(cfg_f)
        assert s_f < s_u
        assert g_f <= g_u  # only launch savings

    def test_locality_reduces_point_side_traffic(self):
        kmap = self._kmap()
        cfg_w = MovementConfig(DType.FP16, True, True, False)
        cfg_l = MovementConfig(DType.FP16, True, True, True)
        g_w = gather_record(kmap, 64, cfg_w, RTX_2080TI, True)
        g_l = gather_record(kmap, 64, cfg_l, RTX_2080TI, True)
        assert g_l.bytes_moved < g_w.bytes_moved
