"""Tests for timeline records, profiles, runner, and report helpers."""

import numpy as np
import pytest

from repro.core.engine import BaselineEngine, TorchSparseEngine
from repro.datasets.configs import nuscenes_like
from repro.gpu.device import GTX_1080TI, RTX_2080TI
from repro.gpu.timeline import STAGES, KernelRecord, Profile
from repro.models import MinkUNet
from repro.profiling import (
    collect_workloads,
    format_series,
    format_table,
    geomean,
    run_model,
    stage_breakdown,
    tune_model,
)
from repro.profiling.breakdown import format_breakdown
from repro.profiling.runner import tuned_engine_config


class TestKernelRecord:
    def test_valid(self):
        r = KernelRecord("x", "matmul", 1e-3)
        assert r.time == 1e-3

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            KernelRecord("x", "teleport", 1e-3)

    def test_negative_time(self):
        with pytest.raises(ValueError):
            KernelRecord("x", "matmul", -1.0)


class TestProfile:
    def _profile(self):
        p = Profile()
        p.log("a", "mapping", 1e-3, bytes_moved=10, flops=5)
        p.log("b", "matmul", 3e-3, flops=100, launches=2)
        p.log("a", "gather", 1e-3)
        return p

    def test_totals(self):
        p = self._profile()
        assert p.total_time == pytest.approx(5e-3)
        assert p.total_flops == 105
        assert p.total_bytes == 10
        assert p.total_launches == 4

    def test_stage_times_complete(self):
        st = self._profile().stage_times()
        assert set(st) == set(STAGES)
        assert st["scatter"] == 0.0

    def test_fractions_sum_to_one(self):
        fr = self._profile().stage_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fractions_of_empty(self):
        assert sum(Profile().stage_fractions().values()) == 0.0

    def test_by_name_merges(self):
        assert self._profile().by_name()["a"] == pytest.approx(2e-3)

    def test_merge_and_clear(self):
        p = self._profile()
        q = p.merge(self._profile())
        assert q.total_time == pytest.approx(2 * p.total_time)
        p.clear()
        assert p.total_time == 0

    def test_summary_text(self):
        assert "matmul" in self._profile().summary()

    def test_breakdown_helpers(self):
        p = self._profile()
        b = stage_breakdown(p)
        assert b["datamove"] == pytest.approx(b["gather"] + b["scatter"])
        assert "mapping" in format_breakdown(p, title="t")


class TestReport:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2, 0]) == pytest.approx(2.0)  # zeros skipped

    def test_format_table(self):
        txt = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in txt and "bb" in txt and "0.001" in txt

    def test_format_series(self):
        txt = format_series("s", [1, 2], [0.5, 1.5])
        assert txt.startswith("s:") and "1=0.50" in txt


class TestRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = nuscenes_like()
        xs = [ds.sample_tensor(seed=i, scale=0.15) for i in range(2)]
        return MinkUNet(width=0.5, num_classes=8), xs

    def test_run_model(self, setup):
        model, xs = setup
        r = run_model(model, xs, BaselineEngine(), RTX_2080TI, model_name="mu")
        assert r.model == "mu"
        assert r.latency > 0 and r.fps == pytest.approx(1 / r.latency)

    def test_run_model_empty_inputs(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            run_model(model, [], BaselineEngine())

    def test_collect_workloads(self, setup):
        model, xs = setup
        ws = collect_workloads(model, xs[:1])
        conv_names = {c.name for c in model.conv_layers()}
        assert {w.name for w in ws}.issubset(conv_names)
        assert all(len(w.samples) == 1 for w in ws)
        assert all(len(s) == w.kernel_size**3 for w in ws for s in w.samples)

    def test_tune_model_and_apply(self, setup):
        model, xs = setup
        book = tune_model(
            model, xs[:1], epsilons=[0.0, 0.5], thresholds=[0.0, np.inf]
        )
        assert len(book.layers) > 10
        cfg = tuned_engine_config(book)
        assert cfg.strategy_book is book
        from repro.core.engine import BaseEngine

        tuned = run_model(model, xs, BaseEngine(cfg))
        plain = run_model(model, xs, TorchSparseEngine())
        # tuned should never be far worse than the fixed default
        assert tuned.latency < plain.latency * 1.2

    def test_device_changes_latency_not_numerics(self, setup):
        model, xs = setup
        a = run_model(model, xs, TorchSparseEngine(), RTX_2080TI)
        b = run_model(model, xs, TorchSparseEngine(), GTX_1080TI)
        assert a.latency != b.latency
