"""Tests for timeline records, profiles, runner, and report helpers."""

import numpy as np
import pytest

from repro.core.engine import BaselineEngine, TorchSparseEngine
from repro.datasets.configs import nuscenes_like
from repro.gpu.device import GTX_1080TI, RTX_2080TI
from repro.gpu.timeline import STAGES, KernelRecord, Profile
from repro.models import MinkUNet
from repro.profiling import (
    collect_workloads,
    format_series,
    format_table,
    geomean,
    run_model,
    stage_breakdown,
    tune_model,
)
from repro.profiling.breakdown import format_breakdown
from repro.profiling.runner import tuned_engine_config


class TestKernelRecord:
    def test_valid(self):
        r = KernelRecord("x", "matmul", 1e-3)
        assert r.time == 1e-3

    def test_invalid_stage(self):
        with pytest.raises(ValueError):
            KernelRecord("x", "teleport", 1e-3)

    def test_negative_time(self):
        with pytest.raises(ValueError):
            KernelRecord("x", "matmul", -1.0)


class TestProfile:
    def _profile(self):
        p = Profile()
        p.log("a", "mapping", 1e-3, bytes_moved=10, flops=5)
        p.log("b", "matmul", 3e-3, flops=100, launches=2)
        p.log("a", "gather", 1e-3)
        return p

    def test_totals(self):
        p = self._profile()
        assert p.total_time == pytest.approx(5e-3)
        assert p.total_flops == 105
        assert p.total_bytes == 10
        assert p.total_launches == 4

    def test_stage_times_complete(self):
        st = self._profile().stage_times()
        assert set(st) == set(STAGES)
        assert st["scatter"] == 0.0

    def test_fractions_sum_to_one(self):
        fr = self._profile().stage_fractions()
        assert sum(fr.values()) == pytest.approx(1.0)

    def test_fractions_of_empty(self):
        fr = Profile().stage_fractions()
        assert set(fr) == set(STAGES)
        assert all(v == 0.0 for v in fr.values())

    def test_by_name_merges(self):
        assert self._profile().by_name()["a"] == pytest.approx(2e-3)

    def test_merge_and_clear(self):
        p = self._profile()
        q = p.merge(self._profile())
        assert q.total_time == pytest.approx(2 * p.total_time)
        p.clear()
        assert p.total_time == 0

    def test_merge_clear_round_trip(self):
        """merge copies records: clearing either side leaves the other."""
        p, q = self._profile(), self._profile()
        merged = p.merge(q)
        n = len(merged.records)
        p.clear()
        assert len(merged.records) == n
        merged.clear()
        assert len(q.records) == 3 and merged.records == []
        assert merged.stage_times() == Profile().stage_times()

    def test_span_stamping(self):
        from repro.obs.tracing import Tracer

        p = Profile(tracer=Tracer())
        with p.span("layer1"):
            with p.span("gather"):
                rec = p.log("g", "gather", 1e-3)
        out = p.log("free", "other", 1e-3)
        assert rec.span == ("layer1", "gather")
        assert rec.layer == "layer1"
        assert p.records[0] is rec  # add() returns the stored record
        assert out.span == () and out.layer == ""

    def test_span_noop_without_tracer(self):
        p = Profile()
        with p.span("ignored"):
            rec = p.log("k", "other", 1e-3)
        assert rec.span == ()

    def test_summary_text(self):
        assert "matmul" in self._profile().summary()

    def test_breakdown_helpers(self):
        p = self._profile()
        b = stage_breakdown(p)
        assert b["datamove"] == pytest.approx(b["gather"] + b["scatter"])
        assert "mapping" in format_breakdown(p, title="t")


class TestReport:
    def test_geomean(self):
        assert geomean([1, 4]) == pytest.approx(2.0)
        assert geomean([]) == 0.0
        assert geomean([2, 0]) == pytest.approx(2.0)  # zeros skipped

    def test_format_table(self):
        txt = format_table(["a", "bb"], [[1, 2.5], ["x", 0.001]], title="T")
        assert "T" in txt and "bb" in txt and "0.001" in txt

    def test_format_series(self):
        txt = format_series("s", [1, 2], [0.5, 1.5])
        assert txt.startswith("s:") and "1=0.50" in txt

    def _traced_profile(self):
        from repro.obs.tracing import Tracer

        p = Profile(tracer=Tracer())
        with p.span("conv1"):
            p.log("gather", "gather", 1e-3)
            p.log("mm", "matmul", 3e-3, launches=2)
        with p.span("conv2"):
            p.log("mm", "matmul", 1e-3)
        p.log("head", "other", 1e-3)
        return p

    def test_layer_table(self):
        from repro.profiling import layer_table

        rows = {r["layer"]: r for r in layer_table(self._traced_profile())}
        assert set(rows) == {"conv1", "conv2", "(untraced)"}
        assert rows["conv1"]["time"] == pytest.approx(4e-3)
        assert rows["conv1"]["matmul"] == pytest.approx(3e-3)
        assert rows["conv1"]["kernels"] == 2
        assert rows["conv1"]["launches"] == 3
        assert rows["conv1"]["share"] == pytest.approx(4 / 6)

    def test_format_layer_report(self):
        from repro.profiling import format_layer_report

        p = self._traced_profile()
        txt = format_layer_report(p, title="T")
        assert "T" in txt and "conv1" in txt and "(untraced)" in txt
        # sorted by time: conv1 (4ms) before conv2 (1ms)
        assert txt.index("conv1") < txt.index("conv2")
        md = format_layer_report(p, markdown=True)
        assert md.count("|") > 10 and "conv1" in md


class TestRunner:
    @pytest.fixture(scope="class")
    def setup(self):
        ds = nuscenes_like()
        xs = [ds.sample_tensor(seed=i, scale=0.15) for i in range(2)]
        return MinkUNet(width=0.5, num_classes=8), xs

    def test_run_model(self, setup):
        model, xs = setup
        r = run_model(model, xs, BaselineEngine(), RTX_2080TI, model_name="mu")
        assert r.model == "mu"
        assert r.latency > 0 and r.fps == pytest.approx(1 / r.latency)

    def test_fps_of_zero_latency_is_inf(self):
        from repro.profiling import BenchResult

        r = BenchResult(
            model="m", engine="e", device="d", latency=0.0, profile=Profile()
        )
        assert r.fps == float("inf")

    def test_run_model_empty_inputs(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            run_model(model, [], BaselineEngine())

    def test_collect_workloads(self, setup):
        model, xs = setup
        ws = collect_workloads(model, xs[:1])
        conv_names = {c.name for c in model.conv_layers()}
        assert {w.name for w in ws}.issubset(conv_names)
        assert all(len(w.samples) == 1 for w in ws)
        assert all(len(s) == w.kernel_size**3 for w in ws for s in w.samples)

    def test_tune_model_and_apply(self, setup):
        model, xs = setup
        book = tune_model(
            model, xs[:1], epsilons=[0.0, 0.5], thresholds=[0.0, np.inf]
        )
        assert len(book.layers) > 10
        cfg = tuned_engine_config(book)
        assert cfg.strategy_book is book
        from repro.core.engine import BaseEngine

        tuned = run_model(model, xs, BaseEngine(cfg))
        plain = run_model(model, xs, TorchSparseEngine())
        # tuned should never be far worse than the fixed default
        assert tuned.latency < plain.latency * 1.2

    def test_device_changes_latency_not_numerics(self, setup):
        model, xs = setup
        a = run_model(model, xs, TorchSparseEngine(), RTX_2080TI)
        b = run_model(model, xs, TorchSparseEngine(), GTX_1080TI)
        assert a.latency != b.latency
