"""Tests for the serve-campaign flight recorder (repro.obs.timeline),
the serve-mode Chrome trace, the windowed SLO monitor, and the
Prometheus exposition."""

import json

import pytest

from repro.obs.exposition import prometheus_name, to_prometheus
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.timeline import (
    EVENTS_SCHEMA,
    TimelineRecorder,
    load_journal,
    request_timeline,
    validate_journal,
    windowed_slo,
    worst_burn,
)
from repro.profiling.trace import (
    attempt_events,
    flow_events,
    to_serve_trace,
    write_serve_trace,
)
from repro.robust.faults import FaultInjector, FaultSpec
from repro.serve import (
    COMPLETED,
    FAILED,
    SHED,
    HedgePolicy,
    RetryPolicy,
    ServeConfig,
    TrafficConfig,
    run_serve_campaign,
)

try:  # the serve test harness defines the synthetic device tuple
    from repro.gpu.device import RTX_2080TI, RTX_3090
except ImportError:  # pragma: no cover
    RTX_2080TI = RTX_3090 = None

#: synthetic base latency; no engine evaluation in these tests
LAT = {"m": 0.004}


def make_config(**kw):
    defaults = dict(
        devices=(RTX_2080TI, RTX_2080TI, RTX_3090),
        latency_overrides=LAT,
        seed=7,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


def make_traffic(**kw):
    defaults = dict(rate=300.0, duration=0.5, models=("m",), seed=7)
    defaults.update(kw)
    return TrafficConfig(**defaults)


def recorded_campaign(config=None, traffic=None, specs=(), seed=7):
    """Run a campaign with the flight recorder attached."""
    injector = FaultInjector(seed=seed, specs=list(specs)) if specs else None
    recorder = TimelineRecorder()
    with use_registry(MetricsRegistry()) as reg:
        report = run_serve_campaign(
            config or make_config(), traffic or make_traffic(),
            injector=injector, recorder=recorder,
        )
    return report, recorder, reg


# -- recorder mechanics ----------------------------------------------------


class TestRecorder:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TimelineRecorder().emit("teleport", 0.0)

    def test_events_carry_context(self):
        rec = TimelineRecorder(meta={"seed": 3})
        e = rec.emit("arrival", 0.5, request=1, queue_depth=2, slack=0.25,
                     model="m")
        assert e["seq"] == 0 and e["t"] == 0.5
        assert e["queue_depth"] == 2 and e["slack"] == 0.25
        assert e["attrs"] == {"model": "m"}
        assert rec.header() == {"schema": EVENTS_SCHEMA, "seed": 3}

    def test_kind_named_attr_allowed(self):
        # dispatch events carry attrs["kind"]; the positional-only
        # signature keeps it out of the way of the event kind itself
        e = TimelineRecorder().emit("dispatch", 0.0, request=0, attempt=0,
                                    device="d", kind="retry")
        assert e["kind"] == "dispatch" and e["attrs"]["kind"] == "retry"

    def test_jsonl_roundtrip(self, tmp_path):
        rec = TimelineRecorder(meta={"seed": 1})
        rec.emit("arrival", 0.0, request=0)
        rec.emit("terminal", 0.1, request=0, state="shed")
        path = tmp_path / "ev.jsonl"
        rec.write(str(path))
        header, events = load_journal(str(path))
        assert header["schema"] == EVENTS_SCHEMA and header["seed"] == 1
        assert events == rec.events

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema": "other/9"}\n')
        with pytest.raises(ValueError):
            load_journal(str(path))

    def test_jsonl_is_deterministic(self):
        def build():
            rec = TimelineRecorder(meta={"seed": 1, "devices": ["a"]})
            rec.emit("arrival", 0.0, request=0, model="m")
            rec.emit("terminal", 0.2, request=0, state="completed",
                     latency=0.2)
            return rec.to_jsonl()

        assert build() == build()


# -- validator -------------------------------------------------------------


def minimal_events():
    rec = TimelineRecorder()
    rec.emit("arrival", 0.0, request=0)
    rec.emit("admit", 0.0, request=0)
    rec.emit("dequeue", 0.001, request=0)
    rec.emit("dispatch", 0.001, request=0, attempt=0, device="d",
             kind="primary")
    rec.emit("attempt_finish", 0.004, request=0, attempt=0, device="d",
             outcome="ok")
    rec.emit("terminal", 0.004, request=0, state="completed")
    return rec


class TestValidator:
    def test_minimal_lifecycle_valid(self):
        rec = minimal_events()
        assert validate_journal(rec.header(), rec.events) == []

    def test_missing_terminal_flagged(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        assert any("no terminal" in p
                   for p in validate_journal(rec.header(), rec.events))

    def test_event_after_terminal_flagged(self):
        rec = minimal_events()
        rec.emit("dequeue", 0.005, request=0)
        assert any("after its terminal" in p
                   for p in validate_journal(rec.header(), rec.events))

    def test_event_before_arrival_flagged(self):
        rec = TimelineRecorder()
        rec.emit("dequeue", 0.0, request=5)
        probs = validate_journal(rec.header(), rec.events)
        assert any("before its arrival" in p for p in probs)

    def test_time_regression_flagged(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.5, request=0)
        rec.events.append(dict(rec.events[0], seq=1, t=0.1, kind="terminal",
                               attrs={"state": "shed"}))
        assert any("precedes previous" in p
                   for p in validate_journal(rec.header(), rec.events))

    def test_unfinished_attempt_flagged(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        rec.emit("dispatch", 0.0, request=0, attempt=0, device="d",
                 kind="primary")
        rec.emit("terminal", 0.1, request=0, state="failed")
        assert any("never finished" in p
                   for p in validate_journal(rec.header(), rec.events))

    def test_retry_requires_causal_parent(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        rec.emit("dispatch", 0.0, request=0, attempt=1, device="d",
                 kind="retry")  # no parent at all
        probs = validate_journal(rec.header(), rec.events)
        assert any("without parent" in p for p in probs)

    def test_retry_parent_must_be_earlier_attempt(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        rec.emit("dispatch", 0.0, request=0, attempt=1, device="d",
                 kind="retry", parent=99)
        probs = validate_journal(rec.header(), rec.events)
        assert any("not an earlier attempt" in p for p in probs)

    def test_finish_device_must_match_dispatch(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        rec.emit("dispatch", 0.0, request=0, attempt=0, device="a",
                 kind="primary")
        rec.emit("attempt_finish", 0.1, request=0, attempt=0, device="b",
                 outcome="ok")
        rec.emit("terminal", 0.1, request=0, state="completed")
        assert any("dispatched on" in p
                   for p in validate_journal(rec.header(), rec.events))


# -- windowed SLO monitor --------------------------------------------------


class TestWindowedSLO:
    def test_exact_windows_and_burn(self):
        samples = [
            (0.05, True, 0.010),
            (0.08, False, 0.030),   # miss in window 0
            (0.15, True, 0.020),
            (0.25, True, 0.012),    # window 2
        ]
        windows = windowed_slo(samples, 0.1, target=0.9, end=0.3)
        assert len(windows) == 3
        w0 = windows[0]
        assert (w0.total, w0.misses) == (2, 1)
        assert w0.miss_rate == pytest.approx(0.5)
        # budget is 1 - 0.9 = 0.1 -> burn 5x
        assert w0.burn_rate == pytest.approx(5.0)
        # exact nearest-rank percentiles, not bucket bounds
        assert w0.p50 == pytest.approx(0.010)
        assert w0.p99 == pytest.approx(0.030)
        assert windows[1].total == 1 and windows[1].burn_rate == 0.0
        assert worst_burn(windows) == pytest.approx(5.0)

    def test_empty_windows_fill_the_horizon(self):
        windows = windowed_slo([], 0.1, end=0.35)
        assert len(windows) == 4
        assert all(w.total == 0 and w.burn_rate == 0.0 for w in windows)
        assert worst_burn(windows) == 0.0

    def test_boundary_sample_lands_in_later_window(self):
        windows = windowed_slo([(0.1, True, 0.01)], 0.1, end=0.2)
        assert [w.total for w in windows] == [0, 1]

    def test_sample_at_horizon_end_kept(self):
        windows = windowed_slo([(0.2, False, None)], 0.1, end=0.2)
        assert windows[-1].misses == 1

    def test_latency_none_excluded_from_percentiles(self):
        windows = windowed_slo(
            [(0.01, False, None), (0.02, True, 0.004)], 0.1
        )
        assert windows[0].p50 == pytest.approx(0.004)

    def test_rejects_bad_width_and_target(self):
        with pytest.raises(ValueError):
            windowed_slo([], 0.0)
        with pytest.raises(ValueError):
            windowed_slo([], 0.1, target=1.0)


# -- instrumented campaigns ------------------------------------------------


class TestCampaignJournal:
    def test_same_seed_journals_byte_identical(self):
        specs = [FaultSpec(kind="device_crash", count=3)]
        _, rec1, _ = recorded_campaign(specs=specs)
        _, rec2, _ = recorded_campaign(specs=specs)
        assert rec1.to_jsonl() == rec2.to_jsonl()
        trace1 = json.dumps(to_serve_trace(rec1.header(), rec1.events),
                            sort_keys=True)
        trace2 = json.dumps(to_serve_trace(rec2.header(), rec2.events),
                            sort_keys=True)
        assert trace1 == trace2

    def test_lifecycle_valid_under_faults(self):
        specs = [
            FaultSpec(kind="device_crash", count=6),
            FaultSpec(kind="device_stall", site="RTX 3090", count=-1,
                      severity=0.1),
            FaultSpec(kind="bitflip_feature", count=3),
        ]
        report, rec, _ = recorded_campaign(specs=specs)
        assert report.all_terminal
        assert validate_journal(rec.header(), rec.events) == []

    def test_every_request_exactly_one_terminal(self):
        report, rec, _ = recorded_campaign()
        terminals = [e for e in rec.events if e["kind"] == "terminal"]
        assert len(terminals) == report.total
        assert len({e["request"] for e in terminals}) == report.total

    def test_timestamps_monotonic_and_after_arrival(self):
        _, rec, _ = recorded_campaign(
            specs=[FaultSpec(kind="device_crash", count=4)]
        )
        times = [e["t"] for e in rec.events]
        assert times == sorted(times)
        arrival = {}
        for e in rec.events:
            req = e["request"]
            if req is None:
                continue
            if e["kind"] == "arrival":
                arrival[req] = e["t"]
            assert e["t"] >= arrival[req]

    def test_journal_matches_report_outcomes(self):
        report, rec, _ = recorded_campaign(
            specs=[FaultSpec(kind="device_crash", count=4)]
        )
        states = [e["attrs"]["state"] for e in rec.events
                  if e["kind"] == "terminal"]
        for state, n in report.outcomes.items():
            assert states.count(state) == n

    def test_retries_carry_causal_parent(self):
        specs = [FaultSpec(kind="device_crash", count=6)]
        report, rec, _ = recorded_campaign(
            config=make_config(retry=RetryPolicy(max_retries=2)),
            specs=specs,
        )
        assert report.retries > 0
        retries = [e for e in rec.events
                   if e["kind"] == "dispatch"
                   and e["attrs"].get("kind") == "retry"]
        assert retries
        finished = {e["attempt"]: e for e in rec.events
                    if e["kind"] == "attempt_finish"}
        for e in retries:
            parent = e["attrs"]["parent"]
            assert finished[parent]["attrs"]["outcome"] in (
                "crash", "integrity_fail"
            )

    def test_hedges_carry_causal_parent(self):
        specs = [FaultSpec(kind="device_stall", site="RTX 3090", count=-1,
                           severity=0.2)]
        report, rec, _ = recorded_campaign(specs=specs)
        assert report.hedges_launched > 0
        hedges = [e for e in rec.events
                  if e["kind"] == "dispatch"
                  and e["attrs"].get("kind") == "hedge"]
        assert len(hedges) == report.hedges_launched
        by_attempt = {e["attempt"]: e for e in rec.events
                      if e["kind"] == "dispatch"}
        for e in hedges:
            parent = by_attempt[e["attrs"]["parent"]]
            assert parent["request"] == e["request"]
            assert parent["t"] <= e["t"]

    def test_quarantine_and_readmit_journaled(self):
        specs = [FaultSpec(kind="device_crash", site="RTX 2080Ti #0",
                           count=2)]
        _, rec, _ = recorded_campaign(
            config=make_config(breaker_threshold=2), specs=specs
        )
        kinds = [(e["kind"], e["device"]) for e in rec.events
                 if e["kind"] in ("quarantine", "readmit")]
        assert ("quarantine", "RTX 2080Ti #0") in kinds
        assert ("readmit", "RTX 2080Ti #0") in kinds

    def test_dead_device_journaled(self):
        specs = [FaultSpec(kind="device_crash", site="RTX 3090", count=-1)]
        _, rec, _ = recorded_campaign(
            config=make_config(max_probes=3), specs=specs
        )
        dead = [e for e in rec.events if e["kind"] == "device_dead"]
        assert len(dead) == 1 and dead[0]["device"] == "RTX 3090"

    def test_overload_sheds_journaled(self):
        config = make_config(
            devices=(RTX_2080TI,), queue_capacity=4,
            hedge=HedgePolicy(enabled=False),
        )
        report, rec, _ = recorded_campaign(
            config=config, traffic=make_traffic(rate=2000.0, duration=0.3)
        )
        sheds = [e for e in rec.events if e["kind"] == "terminal"
                 and e["attrs"]["state"] == SHED]
        assert len(sheds) == report.count(SHED) > 0
        assert validate_journal(rec.header(), rec.events) == []

    def test_trace_ids_unique_and_seed_scoped(self):
        report, rec, _ = recorded_campaign()
        traces = [e["attrs"]["trace"] for e in rec.events
                  if e["kind"] == "arrival"]
        assert len(set(traces)) == report.total
        assert all(t.startswith("00000007-") for t in traces)

    def test_report_slo_series_covers_campaign(self):
        report, _, _ = recorded_campaign(
            config=make_config(slo_window=0.1)
        )
        series = report.slo_series()
        assert series and series[-1].end >= report.end_time
        assert sum(w.total for w in series) == report.total
        assert report.worst_window_burn == worst_burn(series)
        assert report.to_json()["slo"]["enabled"] is True


# -- serve-mode Chrome trace ----------------------------------------------


class TestServeTrace:
    def test_tracks_attempts_and_flows(self):
        specs = [
            FaultSpec(kind="device_crash", count=6),
            FaultSpec(kind="device_stall", site="RTX 3090", count=-1,
                      severity=0.2),
        ]
        report, rec, _ = recorded_campaign(specs=specs)
        trace = to_serve_trace(rec.header(), rec.events)
        names = {e["args"]["name"] for e in trace["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "thread_name"}
        assert {"requests", "RTX 2080Ti #0", "RTX 2080Ti #1",
                "RTX 3090"} <= names
        attempts = attempt_events(trace)
        dispatches = [e for e in rec.events if e["kind"] == "dispatch"]
        assert len(attempts) == len(dispatches)
        # every retry/hedge dispatch produced one s/f flow pair
        flows = flow_events(trace)
        linked = [e for e in dispatches
                  if e["attrs"].get("kind") in ("retry", "hedge")]
        assert len([e for e in flows if e["ph"] == "s"]) == len(linked)
        assert len([e for e in flows if e["ph"] == "f"]) == len(linked)
        ids = {}
        for e in flows:
            ids.setdefault(e["id"], []).append(e["ph"])
        assert all(sorted(phs) == ["f", "s"] for phs in ids.values())

    def test_counter_and_terminal_instants(self):
        report, rec, _ = recorded_campaign()
        trace = to_serve_trace(rec.header(), rec.events)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert counters and all(
            e["name"] == "queue depth" for e in counters
        )
        terminals = [e for e in trace["traceEvents"]
                     if e.get("cat") == "terminal"]
        assert len(terminals) == report.total

    def test_mapcache_instants_in_steady_state(self):
        report, rec, _ = recorded_campaign(
            config=make_config(steady_state=True),
            traffic=make_traffic(coherence=0.8),
        )
        assert report.warm_dispatches > 0
        trace = to_serve_trace(rec.header(), rec.events)
        warm = [e for e in trace["traceEvents"]
                if e.get("cat") == "mapcache"]
        assert sum(e["name"] == "mapcache:warm" for e in warm) == (
            report.warm_dispatches
        )
        assert sum(e["name"] == "mapcache:cold" for e in warm) == (
            report.cold_dispatches
        )

    def test_trace_durations_non_negative(self, tmp_path):
        _, rec, _ = recorded_campaign()
        path = tmp_path / "trace.json"
        write_serve_trace(rec.header(), rec.events, str(path))
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        for e in attempt_events(trace):
            assert e["dur"] >= 0


# -- Prometheus exposition -------------------------------------------------


class TestExposition:
    def test_counter_gauge_histogram_rendering(self):
        reg = MetricsRegistry()
        reg.counter("serve.arrivals").inc(3)
        reg.gauge("fleet.size", role="gpu").set(2)
        h = reg.histogram("lat", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(9.0)
        text = to_prometheus(reg)
        assert "# TYPE repro_serve_arrivals_total counter" in text
        assert "repro_serve_arrivals_total 3" in text
        assert 'repro_fleet_size{role="gpu"} 2' in text
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 3' in text
        assert "repro_lat_sum 11" in text
        assert "repro_lat_count 3" in text
        assert text.endswith("\n")

    def test_output_is_sorted_and_deterministic(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b.hits", cache="z").inc()
            reg.counter("b.hits", cache="a").inc(2)
            reg.counter("a.first").inc()
            return to_prometheus(reg)

        text = build()
        assert text == build()
        assert text.index("repro_a_first_total") < text.index(
            "repro_b_hits_total"
        )
        assert text.index('cache="a"') < text.index('cache="z"')

    def test_name_sanitization(self):
        assert prometheus_name("serve.latency_ms") == (
            "repro_serve_latency_ms"
        )
        assert prometheus_name("weird metric!", namespace="") == (
            "weird_metric_"
        )

    def test_label_value_escaping_round_trips(self):
        # 0.0.4 escaping: backslash, then newline, then quote — a value
        # carrying all three survives, and the parseable form decodes
        # back to the original
        reg = MetricsRegistry()
        hostile = 'rack"0\\zone\nA'
        reg.counter("serve.quarantines", device=hostile).inc()
        reg.counter("serve.domain_outages", domain="rack/0").inc(2)
        text = to_prometheus(reg)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert "\n" not in text.split("repro_serve_quarantines_total")[1] \
            .split("\n")[0].replace("\\n", "")
        # slash in a domain label needs no escaping — emitted verbatim
        assert 'domain="rack/0"' in text
        line = next(
            ln for ln in text.splitlines()
            if ln.startswith("repro_serve_quarantines_total")
        )
        raw = line.split('device="', 1)[1].rsplit('"} ', 1)[0]
        decoded = (
            raw.replace("\\\\", "\x00")
            .replace("\\n", "\n")
            .replace('\\"', '"')
            .replace("\x00", "\\")
        )
        assert decoded == hostile

    def test_nonfinite_samples_render_canonically(self):
        reg = MetricsRegistry()
        reg.gauge("a.nan").set(float("nan"))
        reg.gauge("a.pos").set(float("inf"))
        reg.gauge("a.neg").set(float("-inf"))
        text = to_prometheus(reg)
        assert "repro_a_nan NaN" in text
        assert "repro_a_pos +Inf" in text
        assert "repro_a_neg -Inf" in text
        # the lowercase repr() spellings parsers reject never appear
        assert "nan\n" not in text and " inf" not in text


# -- request_timeline ------------------------------------------------------


def test_request_timeline_filters_one_request():
    rec = minimal_events()
    rec.emit("arrival", 0.01, request=1)
    rows = request_timeline(rec.events, 0)
    assert [e["kind"] for e in rows] == [
        "arrival", "admit", "dequeue", "dispatch", "attempt_finish",
        "terminal",
    ]
    assert all(e["request"] == 0 for e in rows)


# -- replacement / warm-start causal rules -----------------------------------


class TestReplacementValidation:
    def replacement_rec(self):
        rec = minimal_events()
        rec.emit("device_dead", 0.004, device="d")
        rec.emit("device_replaced", 0.004, device="spare1", slot="d",
                 spec="RTX 3090")
        rec.emit("store_warmstart", 0.004, device="spare1", frames=3)
        return rec

    def test_replacement_lifecycle_valid(self):
        rec = self.replacement_rec()
        assert validate_journal(rec.header(), rec.events) == []

    def test_warmstart_zero_frames_valid(self):
        rec = minimal_events()
        rec.emit("store_warmstart", 0.004, device="d", frames=0)
        assert validate_journal(rec.header(), rec.events) == []

    def test_replacement_without_death_flagged(self):
        rec = minimal_events()
        rec.emit("device_replaced", 0.004, device="spare1", slot="d",
                 spec="RTX 3090")
        probs = validate_journal(rec.header(), rec.events)
        assert any("no prior device_dead" in p for p in probs)

    def test_slot_filled_twice_flagged(self):
        rec = self.replacement_rec()
        rec.emit("device_replaced", 0.005, device="spare2", slot="d",
                 spec="RTX 3090")
        probs = validate_journal(rec.header(), rec.events)
        assert any("replaced twice" in p for p in probs)

    def test_replacement_missing_fields_flagged(self):
        rec = minimal_events()
        rec.emit("device_dead", 0.004, device="d")
        rec.emit("device_replaced", 0.004)
        probs = validate_journal(rec.header(), rec.events)
        assert any("without a replacement device" in p for p in probs)
        assert any("without a slot" in p for p in probs)

    def test_warmstart_bad_frames_flagged(self):
        for frames in (-1, True, "three", None):
            rec = minimal_events()
            rec.emit("store_warmstart", 0.004, device="d", frames=frames)
            probs = validate_journal(rec.header(), rec.events)
            assert any("invalid frames" in p for p in probs), frames
