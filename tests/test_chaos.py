"""End-to-end chaos campaign tests (survival, bit-exactness, visibility)."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.robust.chaos import (
    PRESETS,
    ChaosReport,
    reference_probe,
    run_campaign,
    run_trial,
)
from repro.robust.faults import PIPELINE_FAULT_KINDS


class TestCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(seeds=(0,))

    def test_covers_all_kinds_and_presets(self, campaign):
        cells = {(t.kind, t.preset) for t in campaign.trials}
        assert cells == {(k, p) for k in PIPELINE_FAULT_KINDS for p in PRESETS}
        assert len(PIPELINE_FAULT_KINDS) >= 5

    def test_full_survival(self, campaign):
        assert campaign.survival_rate == 1.0

    def test_every_trial_ok(self, campaign):
        bad = [t.to_json() for t in campaign.trials if not t.ok]
        assert not bad, bad

    def test_surviving_outputs_bitexact(self, campaign):
        for t in campaign.trials:
            assert t.bitexact is True, t.to_json()

    def test_fired_faults_are_visible(self, campaign):
        fired = [t for t in campaign.trials if t.shots > 0]
        assert fired  # the campaign actually injects
        for t in fired:
            assert t.visible, t.to_json()

    def test_degradation_mix_reports_rungs(self, campaign):
        mix = campaign.degradation_mix
        assert mix.get("hashmap", 0) > 0
        assert mix.get("fp32-scalar", 0) > 0

    def test_detection_visible_for_engine_faults(self, campaign):
        engine_kinds = {"kmap_corrupt", "hash_overflow", "matmul_nan"}
        for t in campaign.trials:
            if t.kind in engine_kinds and t.shots:
                assert t.detected >= 1, t.to_json()

    def test_report_passes(self, campaign):
        assert campaign.passed
        assert all(campaign.reference_ok.values())


class TestDetectOnly:
    def test_faults_surface_as_typed_errors(self):
        report = run_campaign(seeds=(0,), degrade=False)
        assert report.ok_rate == 1.0
        # at least the always-detectable kinds must have raised typed errors
        raised = {t.kind for t in report.trials if t.error_kind}
        assert {"kmap_corrupt", "hash_overflow", "input_corrupt"} <= raised
        for t in report.trials:
            if not t.survived:
                assert t.error_kind, t.to_json()  # never an untyped crash


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        a = run_trial("kmap_corrupt", "torchsparse", 3)
        b = run_trial("kmap_corrupt", "torchsparse", 3)
        assert a.to_json() == b.to_json()

    def test_reference_probe_both_presets(self):
        for preset in PRESETS:
            assert reference_probe(preset)


class TestReportShape:
    def test_json_roundtrips(self):
        report = run_campaign(
            kinds=("matmul_nan",), presets=("torchsparse",), seeds=(0,)
        )
        d = json.loads(json.dumps(report.to_json()))
        assert d["passed"] is True
        assert d["survival_rate"] == 1.0
        assert d["trials"][0]["kind"] == "matmul_nan"

    def test_empty_report_defaults(self):
        r = ChaosReport()
        assert r.survival_rate == 1.0
        assert r.ok_rate == 1.0
        assert r.degradation_mix == {}

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(kinds=("nope",), seeds=(0,))
        with pytest.raises(ValueError):
            run_campaign(presets=("nope",), seeds=(0,))


class TestChaosCli:
    def test_cli_passes_and_writes_json(self, tmp_path, capsys):
        out = tmp_path / "chaos.json"
        rc = main(
            ["chaos", "--seeds", "1", "--kinds", "matmul_nan,grid_oom",
             "--json", str(out)]
        )
        assert rc == 0
        text = capsys.readouterr().out
        assert "survival 100%" in text
        d = json.loads(out.read_text())
        assert d["passed"] is True

    def test_cli_no_degrade(self, capsys):
        rc = main(
            ["chaos", "--seeds", "1", "--kinds", "kmap_corrupt",
             "--no-degrade"]
        )
        assert rc == 0
        assert "detect-only" in capsys.readouterr().out

    def test_cli_rejects_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["chaos", "--kinds", "bogus"])


# -- durable-store fault sites ----------------------------------------------


class TestStoreChaos:
    def test_store_kinds_in_pipeline_sweep(self):
        from repro.robust.faults import STORE_FAULT_KINDS

        for kind in STORE_FAULT_KINDS:
            assert kind in PIPELINE_FAULT_KINDS

    @pytest.mark.parametrize(
        "kind",
        [
            "store_torn_write",
            "store_bitrot",
            "store_manifest_corrupt",
            "store_stale_entry",
        ],
    )
    def test_store_trial_survives_detects_bitexact(self, kind):
        t = run_trial(kind, "torchsparse", seed=0)
        assert t.ok, t.to_json()
        assert t.survived and t.visible
        assert t.detected >= 1
        # the repaired store never served damaged bytes: outputs match
        # the clean run bit for bit
        assert t.bitexact is True

    def test_store_trial_deterministic(self):
        a = run_trial("store_bitrot", "torchsparse", seed=5).to_json()
        b = run_trial("store_bitrot", "torchsparse", seed=5).to_json()
        assert a == b


# -- correlated failure-domain fault sites -----------------------------------


class TestDomainChaos:
    def test_domain_kinds_in_pipeline_sweep(self):
        from repro.robust.faults import DOMAIN_FAULT_KINDS

        for kind in DOMAIN_FAULT_KINDS:
            assert kind in PIPELINE_FAULT_KINDS

    @pytest.mark.parametrize("kind", ["domain_outage", "domain_degrade"])
    @pytest.mark.parametrize("degrade", [True, False])
    def test_domain_trial_survives_and_reproduces(self, kind, degrade):
        t = run_trial(kind, "torchsparse", seed=0, degrade=degrade)
        assert t.ok, t.to_json()
        assert t.survived and t.visible
        # two same-seed campaigns under the same correlated fault
        # schedule produce identical serve reports
        assert t.bitexact is True

    def test_domain_outage_detected_by_fleet_machinery(self):
        t = run_trial("domain_outage", "torchsparse", seed=0)
        assert t.detected >= 1

    def test_domain_trial_deterministic(self):
        a = run_trial("domain_outage", "torchsparse", seed=5).to_json()
        b = run_trial("domain_outage", "torchsparse", seed=5).to_json()
        assert a == b
