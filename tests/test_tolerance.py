"""Tests for the shared tolerance envelopes and ABFT residual bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu.memory import DType
from repro.robust.tolerance import (
    CHECKSUM_EPS,
    CLOSE_FP32,
    DEFAULT_SAFETY,
    END_TO_END,
    ENVELOPES,
    EXACT_FP32,
    HALF,
    INT8_QUANT,
    TRAIN_FP32,
    Envelope,
    checksum_tolerance,
    envelope,
    gemm_residual_tolerance,
)


class TestEnvelopes:
    def test_allclose_and_assert_close_agree(self):
        env = Envelope(rtol=1e-3, atol=1e-4)
        a = np.array([1.0, 2.0])
        assert env.allclose(a, a * (1 + 5e-4))
        env.assert_close(a, a * (1 + 5e-4))
        assert not env.allclose(a, a * 1.1)
        with pytest.raises(AssertionError):
            env.assert_close(a, a * 1.1)

    def test_named_envelopes_ordered_loosest_last(self):
        # the ladder of comparisons must widen monotonically
        ladder = [EXACT_FP32, CLOSE_FP32, TRAIN_FP32, HALF, INT8_QUANT,
                  END_TO_END]
        for tight, loose in zip(ladder, ladder[1:]):
            assert tight.rtol <= loose.rtol
            assert tight.atol <= loose.atol

    def test_dtype_mapping_covers_every_storage_dtype(self):
        for dtype in (DType.FP32, DType.FP16, DType.INT8):
            assert envelope(dtype) is ENVELOPES[dtype]
        assert envelope(DType.FP32) is CLOSE_FP32
        assert envelope(DType.FP16) is HALF
        assert envelope(DType.INT8) is INT8_QUANT


class TestChecksumTolerance:
    def test_eps_widens_below_fp32(self):
        assert (
            CHECKSUM_EPS[DType.FP32]
            < CHECKSUM_EPS[DType.FP16]
            < CHECKSUM_EPS[DType.INT8]
        )

    def test_monotonic_in_accumulation_and_magnitude(self):
        t = checksum_tolerance(DType.FP32, 100, 1.0)
        assert t > 0
        assert checksum_tolerance(DType.FP32, 400, 1.0) == pytest.approx(2 * t)
        assert checksum_tolerance(DType.FP32, 100, 3.0) > t
        assert checksum_tolerance(
            DType.FP32, 100, 1.0, safety=2 * DEFAULT_SAFETY
        ) > t

    def test_zero_magnitude_keeps_a_floor(self):
        assert checksum_tolerance(DType.FP32, 10, 0.0) > 0

    def test_rejects_nonpositive_safety(self):
        with pytest.raises(ValueError):
            checksum_tolerance(DType.FP32, 10, 1.0, safety=0.0)

    def test_gemm_bound_is_checksum_bound_of_dot_magnitude(self):
        got = gemm_residual_tolerance(DType.FP16, m=64, k=16, amax_x=2.0,
                                      amax_w=0.5)
        want = checksum_tolerance(DType.FP16, 64, 16 * 2.0 * 0.5)
        assert got == pytest.approx(want)

    def test_bound_sits_below_an_exponent_flip(self):
        # a single flipped exponent bit rescales by ~2^64; the envelope
        # must stay orders of magnitude under it or detection is dead
        tol = gemm_residual_tolerance(DType.INT8, m=4096, k=512,
                                      amax_x=10.0, amax_w=10.0)
        assert tol < 10.0 * 2.0**32


class TestResidualBoundProperty:
    """The random-walk bound must dominate real float32 residuals."""

    @given(
        st.integers(2, 48),
        st.integers(1, 24),
        st.integers(1, 12),
        st.integers(0, 1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_gemm_column_checksum_within_bound(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, k)).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        y = x @ w  # the float32 GEMM under verification
        actual = y.astype(np.float64).sum(axis=0)
        expected = x.astype(np.float64).sum(axis=0) @ w.astype(np.float64)
        residual = float(np.max(np.abs(actual - expected)))
        tol = gemm_residual_tolerance(
            DType.FP32, m, k,
            float(np.abs(x).max()), float(np.abs(w).max()),
        )
        assert residual <= tol

    @given(st.integers(1, 200), st.integers(1, 8), st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_additive_checksum_within_bound(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        buf = rng.standard_normal((rows, cols)).astype(np.float32)
        # two float64 reductions of the same float32 data are exact, so
        # the bound trivially holds; perturb one side by a float32
        # round-off-sized wiggle to model the carried checksum
        carried = buf.astype(np.float64).sum(axis=0)
        recomputed = buf[::-1].astype(np.float64).sum(axis=0)
        residual = float(np.max(np.abs(carried - recomputed)))
        tol = checksum_tolerance(
            DType.FP32, rows, float(np.abs(buf).max()) if buf.size else 0.0
        )
        assert residual <= tol
