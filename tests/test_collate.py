"""Tests for batching: collate/split and batched inference."""

import numpy as np
import pytest

from repro.core.engine import BaselineEngine, ExecutionContext
from repro.core.sparse_tensor import SparseTensor
from repro.datasets.collate import batch_collate, batch_split
from repro.models import MinkUNet


def make_tensor(seed, n=60, c=4, extent=12):
    rng = np.random.default_rng(seed)
    xyz = np.unique(rng.integers(0, extent, size=(n, 3)), axis=0)
    coords = np.concatenate(
        [np.zeros((xyz.shape[0], 1), dtype=np.int64), xyz], axis=1
    ).astype(np.int32)
    return SparseTensor(
        coords, rng.standard_normal((xyz.shape[0], c)).astype(np.float32)
    )


class TestCollate:
    def test_roundtrip(self):
        ts = [make_tensor(i) for i in range(3)]
        batched = batch_collate(ts)
        assert batched.batch_size == 3
        assert batched.num_points == sum(t.num_points for t in ts)
        back = batch_split(batched)
        for orig, rec in zip(ts, back):
            assert np.array_equal(orig.coords, rec.coords)
            assert np.array_equal(orig.feats, rec.feats)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            batch_collate([])

    def test_channel_mismatch_rejected(self):
        with pytest.raises(ValueError):
            batch_collate([make_tensor(0, c=4), make_tensor(1, c=8)])

    def test_already_batched_rejected(self):
        t = make_tensor(0)
        batched = batch_collate([t, t])
        with pytest.raises(ValueError):
            batch_collate([batched])

    def test_stride_mismatch_rejected(self):
        a = make_tensor(0)
        b = SparseTensor(a.coords, a.feats, stride=2)
        with pytest.raises(ValueError):
            batch_collate([a, b])

    def test_feat_dtype_mismatch_rejected(self):
        """float32 + float64 inputs must not silently upcast the batch."""
        from repro.robust.errors import InputValidationError

        a = make_tensor(0)
        b = make_tensor(1)
        wide = SparseTensor(b.coords, b.feats.astype(np.float64))
        with pytest.raises(InputValidationError, match="dtype"):
            batch_collate([a, wide])

    def test_feat_dtype_mismatch_either_order(self):
        from repro.robust.errors import InputValidationError

        a = make_tensor(0)
        half = SparseTensor(a.coords, a.feats.astype(np.float16))
        with pytest.raises(InputValidationError, match="dtype"):
            batch_collate([half, make_tensor(1)])

    def test_negative_batch_index_rejected(self):
        """A nonzero batch column is nonzero even when it is negative."""
        from repro.robust.errors import InputValidationError

        a = make_tensor(0)
        coords = a.coords.copy()
        coords[:, 0] = -1
        neg = SparseTensor(coords, a.feats)
        with pytest.raises(InputValidationError, match="batch"):
            batch_collate([make_tensor(1), neg])


class TestBatchedInference:
    def test_batched_equals_per_sample(self):
        """Running a batch through the network must give exactly the
        per-sample results: mapping never crosses batch boundaries."""
        ts = [make_tensor(i, n=80, extent=14) for i in range(2)]
        net = MinkUNet(width=0.5, num_classes=5)

        singles = []
        for t in ts:
            ctx = ExecutionContext(engine=BaselineEngine())
            singles.append(net(t, ctx))

        ctx = ExecutionContext(engine=BaselineEngine())
        batched_out = net(batch_collate(ts), ctx)
        parts = batch_split(batched_out)

        for single, part in zip(singles, parts):
            # align rows by coordinate (the batched pass may order
            # points differently after downsample/upsample round trips)
            def key(coords):
                return [tuple(r) for r in coords.tolist()]

            order_a = np.lexsort(single.coords.T[::-1])
            order_b = np.lexsort(part.coords.T[::-1])
            assert np.array_equal(
                single.coords[order_a], part.coords[order_b]
            )
            np.testing.assert_allclose(
                single.feats[order_a], part.feats[order_b], rtol=1e-4, atol=1e-5
            )

    def test_batched_latency_sublinear_in_launches(self):
        """One batched pass launches far fewer kernels than N passes."""
        ts = [make_tensor(i, n=80, extent=14) for i in range(3)]
        net = MinkUNet(width=0.5, num_classes=5)
        single_launches = 0
        for t in ts:
            ctx = ExecutionContext(engine=BaselineEngine())
            net(t, ctx)
            single_launches += ctx.profile.total_launches
        ctx = ExecutionContext(engine=BaselineEngine())
        net(batch_collate(ts), ctx)
        assert ctx.profile.total_launches < single_launches * 0.6


class TestCPUDevice:
    def test_cpu_inference_runs_and_is_slower(self):
        from repro.core.engine import TorchSparseEngine
        from repro.gpu.device import CPU_16C, RTX_2080TI

        t = make_tensor(0, n=2000, extent=30)
        net = MinkUNet(width=0.5, num_classes=5)
        times = {}
        for dev in (CPU_16C, RTX_2080TI):
            ctx = ExecutionContext(engine=TorchSparseEngine(), device=dev)
            net(t, ctx)
            times[dev.name] = ctx.profile.total_time
        assert times["CPU (16-core)"] > 3 * times["RTX 2080Ti"]

    def test_cpu_has_no_fp16_math_advantage(self):
        from repro.gpu.device import CPU_16C
        from repro.gpu.memory import DType

        assert CPU_16C.math_throughput(DType.FP16) == CPU_16C.math_throughput(
            DType.FP32
        )
