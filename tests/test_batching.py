"""Tests for the deadline-aware batching scheduler (repro.serve.batching).

The load-bearing guarantees:

* **bit-exact off-switch** — ``batching=None`` campaigns reproduce the
  committed pre-batching golden fixture byte for byte (report AND
  journal), so enabling the feature cannot perturb existing runs;
* **deadline safety** — holding a device to coalesce never pushes a
  batch member past its deadline (under the modeled service time, i.e.
  zero noise and no faults);
* **model purity** — a batch never mixes models (and, in steady-state
  mode, never mixes scenes);
* **determinism** — same-seed batched campaigns are byte-for-byte
  reproducible, report and journal.
"""

import json
import os

import pytest

from repro.gpu.device import RTX_2080TI, RTX_3090
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.obs.timeline import (
    BATCH_CLOSE_REASONS,
    TimelineRecorder,
    validate_journal,
)
from repro.robust.errors import ConfigError
from repro.robust.faults import FaultInjector, FaultSpec
from repro.serve import (
    COMPLETED,
    AdmissionQueue,
    BatchingConfig,
    Request,
    RetryPolicy,
    ServeConfig,
    TrafficConfig,
    batch_close_time,
    format_serve_summary,
    run_serve_campaign,
)

DATA = os.path.join(os.path.dirname(__file__), "data")

#: synthetic base latency; no engine evaluation in these tests
LAT = {"m": 0.004, "big": 0.012}


def make_config(**kw):
    defaults = dict(
        devices=(RTX_2080TI, RTX_2080TI, RTX_3090),
        latency_overrides=LAT,
        seed=7,
    )
    defaults.update(kw)
    return ServeConfig(**defaults)


def make_traffic(**kw):
    defaults = dict(rate=300.0, duration=0.5, models=("m",), seed=7)
    defaults.update(kw)
    return TrafficConfig(**defaults)


def campaign(config=None, traffic=None, specs=(), seed=7, recorder=None):
    injector = FaultInjector(seed=seed, specs=list(specs)) if specs else None
    with use_registry(MetricsRegistry()) as reg:
        report = run_serve_campaign(
            config or make_config(), traffic or make_traffic(),
            injector=injector, recorder=recorder,
        )
    return report, reg


def canonical(report) -> str:
    return (
        json.dumps(report.to_json(), sort_keys=True, separators=(",", ":"))
        + "\n"
    )


class TestBatchingConfig:
    def test_defaults(self):
        assert BatchingConfig().max_batch == 4

    @pytest.mark.parametrize("bad", [0, -1, -7])
    def test_max_batch_validated_at_construction(self, bad):
        with pytest.raises(ConfigError, match="max_batch"):
            BatchingConfig(max_batch=bad)

    def test_close_time_is_oldest_slack_minus_service(self):
        members = [
            Request(id=0, model="m", arrival=0.0, deadline=0.040),
            Request(id=1, model="m", arrival=0.001, deadline=0.030),
        ]
        assert batch_close_time(members, 0.010) == pytest.approx(0.020)


class TestBatchLatencyOracle:
    def _oracle(self):
        from repro.core.engine import BaseEngine, EngineConfig
        from repro.serve import LatencyOracle

        return LatencyOracle(
            BaseEngine(config=EngineConfig.torchsparse()), overrides=LAT
        )

    def test_n1_delegates_to_base_latency(self):
        o = self._oracle()
        assert o.batch_latency("m", RTX_2080TI, 1) == o.base_latency(
            "m", RTX_2080TI
        )

    def test_overrides_path_is_sublinear_per_frame(self):
        o = self._oracle()
        per_frame = [
            o.batch_latency("m", RTX_2080TI, n) / n for n in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(per_frame, per_frame[1:]))
        # alpha = 0.5: a batch of 2 costs 1.5x one frame
        assert o.batch_latency("m", RTX_2080TI, 2) == pytest.approx(
            1.5 * LAT["m"]
        )

    def test_batch_cost_still_grows_with_n(self):
        o = self._oracle()
        totals = [o.batch_latency("m", RTX_2080TI, n) for n in (1, 2, 4)]
        assert totals[0] < totals[1] < totals[2]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError, match="batch size"):
            self._oracle().batch_latency("m", RTX_2080TI, 0)


class TestQueueCoalescingPrimitives:
    def _queue_with(self, n, now=0.0):
        q = AdmissionQueue(capacity=16)
        reqs = [
            Request(id=i, model="m", arrival=now, deadline=now + 1.0)
            for i in range(n)
        ]
        for r in reqs:
            assert q.offer(r, now)
        return q, reqs

    def test_peek_does_not_remove(self):
        q, reqs = self._queue_with(3)
        assert q.peek(0.0) is reqs[0]
        assert len(q) == 3

    def test_take_matching_preserves_fifo_of_rejects(self):
        q, reqs = self._queue_with(5)
        taken = q.take_matching(lambda r: r.id % 2 == 0, limit=8, now=0.0)
        assert [r.id for r in taken] == [0, 2, 4]
        assert [q.pop(0.0).id for _ in range(2)] == [1, 3]

    def test_take_matching_honors_limit(self):
        q, _ = self._queue_with(5)
        taken = q.take_matching(lambda r: True, limit=2, now=0.0)
        assert [r.id for r in taken] == [0, 1]
        assert len(q) == 3

    def test_take_matching_sheds_expired_first(self):
        q = AdmissionQueue(capacity=16)
        dead = Request(id=0, model="m", arrival=0.0, deadline=0.1)
        live = Request(id=1, model="m", arrival=0.0, deadline=9.0)
        q.offer(dead, 0.0)
        q.offer(live, 0.0)
        taken = q.take_matching(lambda r: True, limit=8, now=1.0)
        assert [r.id for r in taken] == [1]
        assert dead.state == "shed" and dead.shed_reason == "expired"


class TestDeadlineSafety:
    def test_waiting_never_pushes_a_member_past_deadline(self):
        """The close rule in action: with zero noise and no faults, every
        member of a multi-request batch completes within its deadline —
        coalescing may only spend slack that provably exists."""
        rec = TimelineRecorder()
        report, _ = campaign(
            make_config(
                batching=BatchingConfig(max_batch=4), noise_sigma=0.0
            ),
            make_traffic(rate=500.0, duration=0.4),
            recorder=rec,
        )
        assert not validate_journal(rec.header(), rec.events)
        state_of = {r.id: r.state for r in report.requests}
        finish_of = {r.id: r.finish for r in report.requests}
        deadline_of = {r.id: r.deadline for r in report.requests}
        batched = 0
        for e in rec.events:
            if e["kind"] != "batch_formed" or e["attrs"]["size"] < 2:
                continue
            for rid in e["attrs"]["members"]:
                batched += 1
                assert state_of[rid] == COMPLETED
                assert finish_of[rid] <= deadline_of[rid]
        assert batched > 0, "traffic never formed a multi-request batch"

    def test_close_reasons_are_known(self):
        rec = TimelineRecorder()
        campaign(
            make_config(batching=BatchingConfig(max_batch=3)),
            make_traffic(rate=600.0, duration=0.4),
            recorder=rec,
        )
        reasons = {
            e["attrs"]["reason"]
            for e in rec.events
            if e["kind"] == "batch_formed"
        }
        assert reasons and reasons <= set(BATCH_CLOSE_REASONS)


class TestBatchPurity:
    def test_batches_never_mix_models(self):
        rec = TimelineRecorder()
        report, _ = campaign(
            make_config(batching=BatchingConfig(max_batch=4)),
            make_traffic(
                rate=700.0, duration=0.4, models=("m", "big"),
                weights=(1.0, 1.0),
            ),
            recorder=rec,
        )
        assert not validate_journal(rec.header(), rec.events)
        model_of = {r.id: r.model for r in report.requests}
        formed = [e for e in rec.events if e["kind"] == "batch_formed"]
        assert any(e["attrs"]["size"] > 1 for e in formed)
        for e in formed:
            models = {model_of[rid] for rid in e["attrs"]["members"]}
            assert len(models) == 1
            assert e["attrs"]["model"] in models

    def test_steady_state_batches_never_mix_scenes(self):
        rec = TimelineRecorder()
        report, _ = campaign(
            make_config(
                batching=BatchingConfig(max_batch=4), steady_state=True
            ),
            make_traffic(rate=700.0, duration=0.4, coherence=0.9),
            recorder=rec,
        )
        assert not validate_journal(rec.header(), rec.events)
        scene_of = {r.id: r.scene for r in report.requests}
        formed = [e for e in rec.events if e["kind"] == "batch_formed"]
        assert any(e["attrs"]["size"] > 1 for e in formed)
        for e in formed:
            assert len({scene_of[rid] for rid in e["attrs"]["members"]}) == 1


class TestDeterminism:
    def _run(self, tmp_path, tag):
        rec = TimelineRecorder()
        report, _ = campaign(
            make_config(batching=BatchingConfig(max_batch=4), seed=11),
            make_traffic(rate=500.0, duration=0.4, seed=11),
            specs=[FaultSpec(kind="device_crash", count=3)],
            seed=11,
            recorder=rec,
        )
        path = tmp_path / f"{tag}.jsonl"
        rec.write(str(path))
        return canonical(report), path.read_bytes()

    def test_same_seed_batched_campaigns_byte_identical(self, tmp_path):
        r1, j1 = self._run(tmp_path, "a")
        r2, j2 = self._run(tmp_path, "b")
        assert r1 == r2
        assert j1 == j2


class TestOffSwitchBitExactness:
    """``batching=None`` must replay the committed pre-batching golden
    fixture byte for byte — the regression that proves the refactor
    left the legacy pump, report, and journal untouched."""

    def _fixture_campaign(self, tmp_path):
        config = ServeConfig(
            devices=(RTX_2080TI, RTX_2080TI, RTX_3090),
            latency_overrides=LAT,
            seed=11,
            retry=RetryPolicy(max_retries=2),
        )
        traffic = TrafficConfig(
            rate=400.0, duration=0.4, models=("m", "big"),
            weights=(3.0, 1.0), seed=11,
        )
        injector = FaultInjector(
            seed=11,
            specs=[
                FaultSpec(kind="device_crash", count=4),
                FaultSpec(
                    kind="device_stall", site="RTX 3090", count=-1,
                    severity=4.0,
                ),
            ],
        )
        rec = TimelineRecorder()
        with use_registry(MetricsRegistry()):
            report = run_serve_campaign(
                config, traffic, injector=injector, recorder=rec
            )
        path = tmp_path / "events.jsonl"
        rec.write(str(path))
        return report, path

    def test_report_bytes_match_pre_batching_golden(self, tmp_path):
        report, _ = self._fixture_campaign(tmp_path)
        with open(os.path.join(DATA, "pre_batching_report.json")) as f:
            assert canonical(report) == f.read()

    def test_journal_bytes_match_pre_batching_golden(self, tmp_path):
        _, path = self._fixture_campaign(tmp_path)
        with open(os.path.join(DATA, "pre_batching_events.jsonl"), "rb") as f:
            assert path.read_bytes() == f.read()

    def test_report_json_has_no_batching_key_when_off(self):
        report, _ = campaign()
        assert "batching" not in report.to_json()
        assert not report.requests[0].to_json().get("batches")


class TestBatchedCampaign:
    def test_under_faults_journal_validates_and_all_terminal(self):
        rec = TimelineRecorder()
        report, _ = campaign(
            make_config(batching=BatchingConfig(max_batch=4), seed=11),
            make_traffic(
                rate=400.0, duration=0.4, models=("m", "big"),
                weights=(3.0, 1.0), seed=11,
            ),
            specs=[
                FaultSpec(kind="device_crash", count=4),
                FaultSpec(
                    kind="device_stall", site="RTX 3090", count=-1,
                    severity=4.0,
                ),
            ],
            seed=11,
            recorder=rec,
        )
        assert not validate_journal(rec.header(), rec.events)
        assert report.passed
        assert rec.meta["batching"] is True and rec.meta["max_batch"] == 4

    def test_report_batching_block_and_mix(self):
        report, _ = campaign(
            make_config(batching=BatchingConfig(max_batch=4)),
            make_traffic(rate=600.0, duration=0.4),
        )
        j = report.to_json()["batching"]
        assert j["enabled"] and j["max_batch"] == 4
        assert j["batches"] == sum(report.batch_mix.values())
        assert j["batched_members"] == sum(
            n * c for n, c in report.batch_mix.items()
        )
        assert 0.0 < j["occupancy"] <= 1.0
        assert report.mean_batch_size > 1.0
        assert "batching <=" in format_serve_summary(report)
        served = [r for r in report.requests if r.devices]
        assert all(
            len(r.batches) == len(r.devices) for r in report.requests
        )
        assert served, "no requests served"

    def test_batched_attempts_coalesce_amplification(self):
        """Coalescing means strictly fewer dispatched attempts than
        served requests — the batched fleet's amplification < 1."""
        report, _ = campaign(
            make_config(batching=BatchingConfig(max_batch=4)),
            make_traffic(rate=600.0, duration=0.4),
        )
        served = sum(1 for r in report.requests if r.devices)
        assert 0 < report.attempts < served


class TestJournalValidation:
    def _base(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        rec.emit("admit", 0.0, request=0)
        return rec

    def test_unformed_batch_dispatch_flagged(self):
        rec = self._base()
        rec.emit(
            "batch_dispatch", 0.001, request=0, attempt=0, device="d0",
            batch=7, size=1, kind="primary",
        )
        problems = validate_journal(rec.header(), rec.events)
        assert any("unformed batch" in p for p in problems)

    def test_unadmitted_member_flagged(self):
        rec = TimelineRecorder()
        rec.emit("arrival", 0.0, request=0)
        rec.emit(
            "batch_formed", 0.001, request=0, device="d0",
            batch=1, size=1, members=[0], reason="solo", held=0.0,
        )
        problems = validate_journal(rec.header(), rec.events)
        assert any("never admitted" in p for p in problems)

    def test_unknown_close_reason_flagged(self):
        rec = self._base()
        rec.emit(
            "batch_formed", 0.001, request=0, device="d0",
            batch=1, size=1, members=[0], reason="timer", held=0.0,
        )
        problems = validate_journal(rec.header(), rec.events)
        assert any("unknown reason" in p for p in problems)

    def test_unclosed_member_slice_flagged(self):
        rec = self._base()
        rec.emit("arrival", 0.0, request=1)
        rec.emit("admit", 0.0, request=1)
        rec.emit(
            "batch_formed", 0.001, request=0, device="d0",
            batch=1, size=2, members=[0, 1], reason="full", held=0.0,
        )
        for rid in (0, 1):
            rec.emit(
                "batch_dispatch", 0.001, request=rid, attempt=0,
                device="d0", batch=1, size=2, kind="primary",
            )
        # only member 0's slice closes
        rec.emit(
            "attempt_finish", 0.002, request=0, attempt=0, device="d0",
            outcome="ok",
        )
        rec.emit("terminal", 0.002, request=0, state="completed")
        rec.emit("terminal", 0.002, request=1, state="failed")
        problems = validate_journal(rec.header(), rec.events)
        assert any("never finished for request 1" in p for p in problems)
