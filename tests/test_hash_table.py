"""Tests for the open-addressing hash table, against a dict oracle."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashmap.hash_table import HashTable, splitmix64

keys_strategy = st.lists(
    st.integers(0, 2**40), min_size=0, max_size=300
)


class TestSplitmix:
    def test_deterministic(self):
        k = np.arange(100, dtype=np.int64)
        assert np.array_equal(splitmix64(k), splitmix64(k))

    def test_spreads_sequential_keys(self):
        """Sequential keys should land in mostly distinct low bits."""
        k = np.arange(1024, dtype=np.int64)
        low = splitmix64(k) & np.uint64(1023)
        assert np.unique(low).shape[0] > 600


class TestHashTable:
    def test_build_and_lookup(self):
        keys = np.array([5, 17, 99, 12345], dtype=np.int64)
        t = HashTable.from_keys(keys)
        assert np.array_equal(t.lookup(keys), [0, 1, 2, 3])
        assert len(t) == 4

    def test_missing_keys_return_minus_one(self):
        t = HashTable.from_keys(np.array([1, 2, 3], dtype=np.int64))
        assert np.array_equal(t.lookup(np.array([4, 5])), [-1, -1])

    def test_custom_values(self):
        keys = np.array([10, 20], dtype=np.int64)
        t = HashTable.from_keys(keys, values=np.array([7, 9]))
        assert np.array_equal(t.lookup(keys), [7, 9])

    def test_duplicate_keys_last_wins(self):
        keys = np.array([10, 10, 10], dtype=np.int64)
        t = HashTable.from_keys(keys, values=np.array([1, 2, 3]))
        assert t.lookup(np.array([10]))[0] == 3
        assert len(t) == 1

    def test_overwrite_across_inserts(self):
        t = HashTable(capacity=16)
        t.insert(np.array([5], dtype=np.int64), np.array([1]))
        t.insert(np.array([5], dtype=np.int64), np.array([2]))
        assert t.lookup(np.array([5]))[0] == 2
        assert len(t) == 1

    def test_reserved_key_rejected(self):
        t = HashTable(capacity=8)
        with pytest.raises(ValueError):
            t.insert(np.array([-1], dtype=np.int64), np.array([0]))

    def test_overflow_rejected(self):
        t = HashTable(capacity=4)
        with pytest.raises(ValueError):
            t.insert(np.arange(5, dtype=np.int64), np.arange(5))

    def test_mismatched_shapes_rejected(self):
        t = HashTable(capacity=8)
        with pytest.raises(ValueError):
            t.insert(np.arange(3, dtype=np.int64), np.arange(2))

    def test_contains(self):
        t = HashTable.from_keys(np.array([7, 8], dtype=np.int64))
        assert np.array_equal(t.contains(np.array([7, 9, 8])), [True, False, True])

    def test_capacity_rounded_to_power_of_two(self):
        assert HashTable(capacity=100).capacity == 128

    def test_empty_queries(self):
        t = HashTable(capacity=8)
        assert t.lookup(np.empty(0, dtype=np.int64)).shape == (0,)

    def test_stats_accumulate(self):
        keys = np.arange(100, dtype=np.int64)
        t = HashTable.from_keys(keys)
        assert t.stats.build_accesses >= 100
        t.lookup(keys)
        assert t.stats.query_accesses >= 100
        assert t.stats.table_bytes == t.capacity * 16

    def test_high_load_factor_still_correct(self):
        """Correctness survives a nearly-full table (long probe chains)."""
        rng = np.random.default_rng(1)
        keys = np.unique(rng.integers(0, 2**50, size=200))
        t = HashTable(capacity=256)
        t.insert(keys, np.arange(len(keys)))
        assert np.array_equal(t.lookup(keys), np.arange(len(keys)))

    @given(keys_strategy, keys_strategy)
    @settings(max_examples=40, deadline=None)
    def test_matches_dict_oracle(self, insert_keys, query_keys):
        insert = np.array(insert_keys, dtype=np.int64)
        query = np.array(query_keys, dtype=np.int64)
        oracle = {int(k): i for i, k in enumerate(insert)}
        t = HashTable(capacity=max(2, 2 * len(set(insert_keys))))
        t.insert(insert, np.arange(len(insert)))
        got = t.lookup(query)
        want = np.array([oracle.get(int(k), -1) for k in query])
        assert np.array_equal(got, want.reshape(got.shape))
        assert len(t) == len(oracle)
