"""Tests for the robustness layer: validation, fault injection, the
degradation ladder, circuit breakers, and the typed error taxonomy."""

import math

import numpy as np
import pytest

from repro.core.engine import (
    MAX_GRID_BYTES,
    BaseEngine,
    EngineConfig,
    ExecutionContext,
)
from repro.core.sparse_tensor import SparseTensor
from repro.core.tuner import LayerStrategy, StrategyBook, load_strategy_book
from repro.gpu.memory import DType
from repro.hashmap.grid_table import GridTable
from repro.hashmap.hash_table import HashTable
from repro.mapping.kmap import CoordIndex
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.profiling.parallel import ShardResult
from repro.robust.degrade import (
    DEFAULT_LADDER,
    CircuitBreaker,
    DegradationLadder,
    RobustConfig,
)
from repro.robust.errors import (
    DegradationExhaustedError,
    GridMemoryError,
    InputValidationError,
    KernelMapCorruptionError,
    NumericFaultError,
    RobustnessError,
    StrategyBookError,
    TableOverflowError,
)
from repro.robust.faults import FaultInjector, FaultSpec, inject_faults
from repro.robust.validate import clean_batch, validate_cloud


def make_cloud(n=80, c=4, seed=0, extent=16):
    rng = np.random.default_rng(seed)
    coords = np.unique(
        np.concatenate(
            [np.zeros((n, 1), dtype=np.int64),
             rng.integers(0, extent, size=(n, 3))],
            axis=1,
        ),
        axis=0,
    )
    feats = rng.standard_normal((coords.shape[0], c)).astype(np.float32)
    return coords, feats


def make_weights(k, c_in, c_out, seed=1):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((k ** 3, c_in, c_out)) * 0.2).astype(np.float32)


def hardened_engine(degrade=True, base=None, **overrides):
    cfg = base if base is not None else EngineConfig.torchsparse()
    return BaseEngine(
        config=EngineConfig.hardened(cfg, degrade=degrade, **overrides)
    )


# -- validation --------------------------------------------------------------


class TestValidateCloud:
    def test_clean_cloud_passes_untouched(self):
        coords, feats = make_cloud()
        c, f, report = validate_cloud(coords, feats, policy="strict")
        assert report.clean
        assert np.array_equal(c, coords.astype(np.int32))
        assert np.array_equal(f, feats)

    def test_strict_raises_on_nan_features(self):
        coords, feats = make_cloud()
        feats[3, 1] = np.nan
        with pytest.raises(InputValidationError):
            validate_cloud(coords, feats, policy="strict")

    def test_repair_zeroes_nan_features(self):
        coords, feats = make_cloud()
        feats[3, 1] = np.nan
        feats[5, 0] = np.inf
        _, f, report = validate_cloud(coords, feats, policy="repair")
        assert np.isfinite(f).all()
        assert report.nonfinite_feats == 2

    def test_repair_drops_out_of_range_rows(self):
        coords, feats = make_cloud()
        coords = coords.copy()
        coords[0, 1] = 1 << 20
        c, f, report = validate_cloud(coords, feats, policy="repair")
        assert c.shape[0] == coords.shape[0] - 1
        assert report.dropped_rows == 1

    def test_repair_merges_duplicates_by_mean(self):
        coords = np.array([[0, 1, 1, 1], [0, 1, 1, 1], [0, 2, 2, 2]])
        feats = np.array([[2.0], [4.0], [8.0]], dtype=np.float32)
        c, f, report = validate_cloud(coords, feats, policy="repair")
        assert c.shape[0] == 2
        assert report.merged_duplicates == 1
        row = f[np.where((c[:, 1] == 1))[0][0]]
        assert row[0] == pytest.approx(3.0)

    def test_repair_rounds_integral_floats(self):
        coords = np.array([[0, 1.0, 2.0, 3.0]], dtype=np.float64)
        feats = np.ones((1, 2), dtype=np.float32)
        c, _, _ = validate_cloud(coords, feats, policy="repair")
        assert c.dtype == np.int32
        assert c[0, 3] == 3

    def test_unfixable_always_raises(self):
        with pytest.raises(InputValidationError):
            validate_cloud(np.empty((0, 4)), np.empty((0, 2)), policy="repair")
        coords, feats = make_cloud()
        with pytest.raises(InputValidationError):
            validate_cloud(coords[:, :3], feats, policy="repair")
        with pytest.raises(InputValidationError):
            validate_cloud(coords, feats[:-1], policy="repair")

    def test_validation_error_is_a_value_error(self):
        assert issubclass(InputValidationError, ValueError)
        assert issubclass(InputValidationError, RobustnessError)

    def test_clean_batch_rejects_bad_samples(self):
        good = make_cloud(seed=1)
        bad_coords, bad_feats = make_cloud(seed=2)
        bad = (bad_coords[:, :3], bad_feats)
        with use_registry(MetricsRegistry()) as reg:
            out = clean_batch([good, bad], policy="reject")
        assert len(out) == 1
        assert reg.scalars()["robust.inputs{action=rejected}"] == 1


class TestSparseTensorBoundary:
    def test_nan_coords_rejected(self):
        coords = np.array([[0, np.nan, 1, 1]], dtype=np.float64)
        with pytest.raises(InputValidationError):
            SparseTensor(coords, np.ones((1, 2), dtype=np.float32))

    def test_fractional_coords_rejected(self):
        coords = np.array([[0, 1.5, 1, 1]], dtype=np.float64)
        with pytest.raises(InputValidationError):
            SparseTensor(coords, np.ones((1, 2), dtype=np.float32))

    def test_int64_overflow_rejected(self):
        coords = np.array([[0, 1 << 40, 1, 1]], dtype=np.int64)
        with pytest.raises(InputValidationError):
            SparseTensor(coords, np.ones((1, 2), dtype=np.float32))

    def test_integral_floats_accepted(self):
        coords = np.array([[0, 1.0, 2.0, 3.0]], dtype=np.float64)
        t = SparseTensor(coords, np.ones((1, 2), dtype=np.float32))
        assert t.coords.dtype == np.int32

    def test_sanitized_repairs_dirty_cloud(self):
        coords, feats = make_cloud()
        coords = coords.copy()
        feats = feats.copy()
        feats[0, 0] = np.nan
        coords[1, 1] = 1 << 20
        t = SparseTensor.sanitized(coords, feats, policy="repair")
        assert np.isfinite(t.feats).all()
        assert t.num_points == coords.shape[0] - 1


# -- fault injection ---------------------------------------------------------


class TestFaultInjector:
    def test_noop_without_injector(self):
        keys = np.arange(50, dtype=np.int64)
        table = HashTable.from_keys(keys)  # no injector installed
        assert len(table) == 50

    def test_hash_overflow_injection(self):
        keys = np.arange(50, dtype=np.int64)
        inj = FaultInjector(seed=0, specs=[FaultSpec("hash_overflow")])
        with inject_faults(inj):
            with pytest.raises(TableOverflowError):
                HashTable.from_keys(keys)
        assert inj.shots == 1
        # one-shot: a rebuild succeeds
        with inject_faults(inj):
            assert len(HashTable.from_keys(keys)) == 50

    def test_overflow_error_is_value_error(self):
        assert issubclass(TableOverflowError, ValueError)

    def test_injection_counted_in_registry(self):
        keys = np.arange(50, dtype=np.int64)
        inj = FaultInjector(seed=0, specs=[FaultSpec("hash_overflow")])
        with use_registry(MetricsRegistry()) as reg:
            with inject_faults(inj):
                with pytest.raises(TableOverflowError):
                    HashTable.from_keys(keys)
        assert reg.scalars()["faults.injected{kind=hash_overflow}"] == 1

    def test_site_filter(self):
        inj = FaultInjector(seed=0, specs=[FaultSpec("grid_oom", site="s2")])
        from repro.robust.faults import maybe_grid_oom

        with inject_faults(inj):
            maybe_grid_oom("table.build.s1.grid")  # site mismatch: no fire
            with pytest.raises(GridMemoryError):
                maybe_grid_oom("table.build.s2.grid")

    def test_deterministic_given_seed(self):
        coords, feats = make_cloud()
        outs = []
        for _ in range(2):
            from repro.robust.faults import maybe_corrupt_cloud

            inj = FaultInjector(seed=7, specs=[FaultSpec("input_corrupt")])
            with inject_faults(inj):
                c, f, fired = maybe_corrupt_cloud(coords, feats)
            assert fired
            outs.append((c, f))
        assert np.array_equal(outs[0][0], outs[1][0])
        assert np.array_equal(outs[0][1], outs[1][1], equal_nan=True)


class TestGridBudget:
    def test_grid_table_respects_max_bytes(self):
        coords = np.array([[0, 0, 0, 0], [0, 900, 900, 900]])
        with pytest.raises(GridMemoryError):
            GridTable.from_coords(coords, max_bytes=1024)

    def test_grid_memory_error_is_memory_error(self):
        assert issubclass(GridMemoryError, MemoryError)

    def test_coord_index_passes_budget_through(self):
        coords = np.array([[0, 0, 0, 0], [0, 900, 900, 900]])
        with pytest.raises(GridMemoryError):
            CoordIndex.build(coords, backend="grid", max_grid_bytes=1024)

    def test_engine_auto_falls_back_to_hash_past_budget(self):
        # extent ~8000 voxels per axis -> grid would need > MAX_GRID_BYTES
        rng = np.random.default_rng(0)
        coords = np.unique(
            np.concatenate(
                [np.zeros((200, 1), dtype=np.int64),
                 rng.integers(0, 8000, size=(200, 3))],
                axis=1,
            ),
            axis=0,
        )
        engine = BaseEngine(config=EngineConfig.torchsparse(map_backend="grid"))
        extent = coords[:, 1:].max(axis=0) - coords[:, 1:].min(axis=0) + 3
        assert int(np.prod(extent)) * 8 > MAX_GRID_BYTES
        assert engine._choose_backend(coords) == "hash"

    def test_engine_runs_oversized_scene_via_hash(self):
        rng = np.random.default_rng(0)
        coords = np.unique(
            np.concatenate(
                [np.zeros((150, 1), dtype=np.int64),
                 rng.integers(0, 8000, size=(150, 3))],
                axis=1,
            ),
            axis=0,
        ).astype(np.int32)
        feats = rng.standard_normal((coords.shape[0], 4)).astype(np.float32)
        engine = BaseEngine(config=EngineConfig.torchsparse(map_backend="grid"))
        ctx = ExecutionContext(engine=engine)
        out = engine.convolution(
            SparseTensor(coords, feats), make_weights(3, 4, 6), ctx
        )
        assert out.num_points == coords.shape[0]


# -- the ladder and breakers -------------------------------------------------


class TestLadder:
    def test_levels_are_cumulative(self):
        cfg = EngineConfig.torchsparse()
        l1 = DEFAULT_LADDER.config_at(cfg, 1)
        assert l1.grouping == "separate" and l1.dtype is DType.FP16
        l2 = DEFAULT_LADDER.config_at(cfg, 2)
        assert l2.grouping == "separate" and l2.dtype is DType.FP32
        assert not l2.vectorized
        l3 = DEFAULT_LADDER.config_at(cfg, 3)
        assert l3.map_backend == "hash" and not l3.use_map_symmetry

    def test_level_zero_is_identity(self):
        cfg = EngineConfig.torchsparse()
        assert DEFAULT_LADDER.config_at(cfg, 0) == cfg

    def test_next_level_jumps_to_matching_stage(self):
        assert DEFAULT_LADDER.next_level(0, "mapping") == 3
        assert DEFAULT_LADDER.next_level(0, "numeric") == 2
        assert DEFAULT_LADDER.next_level(0, "matmul") == 1
        # unknown stage still advances one rung
        assert DEFAULT_LADDER.next_level(0, "other") == 1
        assert DEFAULT_LADDER.next_level(3, "mapping") is None

    def test_rung_names(self):
        assert DEFAULT_LADDER.rung_name(0) == "full"
        assert DEFAULT_LADDER.rung_name(3) == "hashmap"

    def test_bad_level_raises(self):
        with pytest.raises(ValueError):
            DEFAULT_LADDER.config_at(EngineConfig(), 99)


class TestCircuitBreaker:
    def test_pins_after_threshold(self):
        b = CircuitBreaker(threshold=2)
        assert not b.record_failure(3)
        assert not b.open
        assert b.record_failure(3)
        assert b.open and b.pinned == 3

    def test_engine_breaker_pins_sticky_fault(self):
        engine = hardened_engine(breaker_threshold=2)
        coords, feats = make_cloud()
        x = SparseTensor(coords, feats)
        w = make_weights(3, 4, 6)
        inj = FaultInjector(
            seed=0, specs=[FaultSpec("grid_oom", count=-1)]
        )
        with use_registry(MetricsRegistry()):
            with inject_faults(inj):
                for _ in range(3):
                    ctx = ExecutionContext(engine=engine)
                    engine.convolution(x, w, ctx, layer_name="layer")
        breaker = engine.breakers["layer"]
        assert breaker.open and breaker.pinned == 3
        # pinned: later calls start degraded, so the sticky fault no
        # longer fires at all
        shots_before = inj.shots
        with use_registry(MetricsRegistry()):
            with inject_faults(inj):
                ctx = ExecutionContext(engine=engine)
                engine.convolution(x, w, ctx, layer_name="layer")
        assert inj.shots == shots_before


# -- engine recovery ---------------------------------------------------------


class TestEngineRecovery:
    def run_with_fault(self, kind, degrade=True, count=1, base=None):
        engine = hardened_engine(degrade=degrade, base=base)
        coords, feats = make_cloud()
        x = SparseTensor(coords, feats)
        w = make_weights(3, 4, 6)
        inj = FaultInjector(seed=0, specs=[FaultSpec(kind, count=count)])
        with use_registry(MetricsRegistry()) as reg:
            with inject_faults(inj):
                ctx = ExecutionContext(engine=engine)
                out = engine.convolution(x, w, ctx, layer_name="conv")
        return engine, out, inj, reg

    def test_recovers_from_kmap_corruption(self):
        engine, out, inj, reg = self.run_with_fault("kmap_corrupt")
        assert inj.shots == 1
        assert np.isfinite(out.feats).all()
        assert engine.breakers["conv"].last_good == 3
        scalars = reg.scalars()
        assert scalars["robust.faults{kind=kmap_corrupt,layer=conv}"] == 1

    def test_recovers_from_grid_oom(self):
        engine, out, inj, _ = self.run_with_fault("grid_oom", count=-1)
        assert inj.shots >= 1
        assert engine.breakers["conv"].last_good == 3

    def test_recovers_from_matmul_nan_via_fp32(self):
        engine, out, inj, _ = self.run_with_fault("matmul_nan")
        assert inj.shots == 1
        assert np.isfinite(out.feats).all()
        assert engine.breakers["conv"].last_good == 2

    def test_degrade_disabled_raises_typed_errors(self):
        with pytest.raises(KernelMapCorruptionError):
            self.run_with_fault("kmap_corrupt", degrade=False)
        with pytest.raises(NumericFaultError):
            self.run_with_fault("matmul_nan", degrade=False)
        with pytest.raises(GridMemoryError):
            self.run_with_fault("grid_oom", degrade=False)

    def test_exhaustion_raises_degradation_exhausted(self):
        # a sticky numeric fault that even FP32 cannot fix does not
        # exist in the kind set, so exhaust via an unfixable input:
        # corrupt the kmap every single attempt
        engine = hardened_engine()
        coords, feats = make_cloud()
        x = SparseTensor(coords, feats)
        w = make_weights(3, 4, 6)
        inj = FaultInjector(seed=0, specs=[FaultSpec("kmap_corrupt", count=-1)])
        with use_registry(MetricsRegistry()):
            with inject_faults(inj):
                ctx = ExecutionContext(engine=engine)
                with pytest.raises(DegradationExhaustedError):
                    engine.convolution(x, w, ctx, layer_name="conv")

    def test_input_nan_repaired_at_conv_boundary(self):
        engine = hardened_engine()
        coords, feats = make_cloud()
        feats = feats.copy()
        feats[0, 0] = np.nan
        with use_registry(MetricsRegistry()) as reg:
            ctx = ExecutionContext(engine=engine)
            out = engine.convolution(
                SparseTensor(coords, feats), make_weights(3, 4, 6), ctx,
                layer_name="conv",
            )
        assert np.isfinite(out.feats).all()
        assert reg.scalars()["robust.inputs{action=repaired}"] >= 1

    def test_input_nan_strict_raises(self):
        engine = hardened_engine(input_policy="strict")
        coords, feats = make_cloud()
        feats = feats.copy()
        feats[0, 0] = np.nan
        with use_registry(MetricsRegistry()):
            ctx = ExecutionContext(engine=engine)
            with pytest.raises(InputValidationError):
                engine.convolution(
                    SparseTensor(coords, feats), make_weights(3, 4, 6), ctx
                )

    def test_no_robustness_preserves_seed_behavior(self):
        cfg = EngineConfig.torchsparse()
        assert cfg.robustness is None
        coords, feats = make_cloud()
        x = SparseTensor(coords, feats)
        w = make_weights(3, 4, 6)
        with use_registry(MetricsRegistry()):
            plain = BaseEngine(config=cfg)
            out_plain = plain.convolution(x, w, ExecutionContext(engine=plain))
            hard = hardened_engine()
            out_hard = hard.convolution(x, w, ExecutionContext(engine=hard))
        assert np.array_equal(out_plain.feats, out_hard.feats)

    def test_empty_tensor_raises_typed_error(self):
        engine = BaseEngine()
        x = SparseTensor(
            np.empty((0, 4), dtype=np.int32), np.empty((0, 3), dtype=np.float32)
        )
        with pytest.raises(InputValidationError):
            engine.convolution(x, make_weights(3, 3, 3), ExecutionContext(engine=engine))

    def test_strategy_drop_falls_back_to_defaults(self):
        book = StrategyBook()
        book.set("conv", LayerStrategy(epsilon=0.9, s_threshold=math.inf))
        base = EngineConfig.torchsparse(strategy_book=book)
        engine, out, inj, reg = self.run_with_fault(
            "strategy_drop", count=-1, base=base
        )
        assert inj.shots >= 1
        assert reg.scalars()["robust.strategy_fallback{layer=conv}"] >= 1
        assert np.isfinite(out.feats).all()


# -- strategy book hardening -------------------------------------------------


class TestStrategyBookErrors:
    def test_truncated_json(self):
        good = StrategyBook(device_name="d")
        good.set("a", LayerStrategy(epsilon=0.5, s_threshold=1e4))
        text = good.dumps()
        with pytest.raises(StrategyBookError):
            StrategyBook.loads(text[: len(text) // 2])

    def test_wrong_shape(self):
        with pytest.raises(StrategyBookError):
            StrategyBook.loads("[1, 2, 3]")
        with pytest.raises(StrategyBookError):
            StrategyBook.loads('{"layers": ["oops"]}')

    def test_missing_field(self):
        with pytest.raises(StrategyBookError):
            StrategyBook.loads('{"layers": {"a": {"epsilon": 0.5}}}')

    def test_out_of_range_epsilon(self):
        with pytest.raises(StrategyBookError):
            StrategyBook.loads(
                '{"layers": {"a": {"epsilon": 3.0, "s_threshold": 1}}}'
            )

    def test_error_is_value_error(self):
        assert issubclass(StrategyBookError, ValueError)

    def test_roundtrip_still_works(self):
        good = StrategyBook(device_name="d")
        good.set("a", LayerStrategy(epsilon=0.5, s_threshold=math.inf))
        loaded = StrategyBook.loads(good.dumps())
        assert loaded.get("a").s_threshold == math.inf

    def test_load_helper_fallback(self, tmp_path):
        p = tmp_path / "book.json"
        p.write_text("{nope")
        assert load_strategy_book(str(p), fallback=True) is None
        with pytest.raises(StrategyBookError):
            load_strategy_book(str(p))
        assert load_strategy_book(str(tmp_path / "absent"), fallback=True) is None


# -- satellite: shard throughput ---------------------------------------------


class TestShardResult:
    def test_zero_makespan_is_infinitely_fast(self):
        r = ShardResult(
            per_device={}, assignments={}, makespan=0.0, total_inputs=0
        )
        assert r.throughput == float("inf")
        assert r.speedup_over(1.0) == float("inf")

    def test_normal_makespan(self):
        r = ShardResult(
            per_device={}, assignments={}, makespan=2.0, total_inputs=10
        )
        assert r.throughput == pytest.approx(5.0)
        assert r.speedup_over(4.0) == pytest.approx(2.0)
